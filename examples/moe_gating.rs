//! Mixture-of-Experts gating with the row-wise matrix top-k: a batch of
//! token rows each picks its top-`k` experts from one `rows × experts`
//! logit matrix in a single fused row-block plan — one delegate pass per
//! row-block per device, never one per row — first through the core
//! [`topk_rows`] entry point, then as a [`RowQuery`] through the serving
//! engine.
//!
//! Run with: `cargo run --release --example moe_gating [rows] [experts] [k]`
//! (defaults: 4096 tokens × 128 experts, top-2 routing).
//!
//! The example self-verifies every row against the CPU reference and exits
//! non-zero on any mismatch.

use drtopk::prelude::*;
use drtopk::sim::GpuCluster;

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let experts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    // Softmax-ready gating logits: dense normal noise with 1–4 boosted
    // "hot" experts per token row, the shape a trained router produces.
    let logits = topk_datagen::moe_gating_logits(rows, experts, 1.0, 0x5eed);
    let matrix = RowMatrix::new(&logits, rows, experts);
    let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
    println!("{rows} tokens x {experts} experts, top-{k} routing, 2 devices");

    // Core path: the whole matrix as one fused row-block stage graph.
    let config = drtopk::core::DrTopKConfig::default();
    let routed = topk_rows(&cluster, matrix, &RowK::Uniform(k), &config);
    for r in 0..rows {
        assert_eq!(
            routed.rows[r].values,
            topk_baselines::reference_topk(matrix.row(r), k),
            "token {r}"
        );
    }
    assert!(
        routed.delegate_passes < rows,
        "fused plan must not scan per row"
    );
    println!(
        "\n[core] all {rows} rows verified; {} row-blocks of {} rows, \
         {} fused delegate passes (not {rows}), modeled {:.3} ms",
        routed.num_blocks, routed.rows_per_block, routed.delegate_passes, routed.time_ms
    );

    // Engine path: the same routing as one RowQuery in a served batch.
    let engine = TopKEngine::new(GpuCluster::homogeneous(2, DeviceSpec::v100s()));
    let mut batch = QueryBatch::new();
    let corpus = batch.add_corpus(1, &logits);
    batch.push_rows(corpus, rows, experts, RowK::Uniform(k));
    let out = engine.run_batch(&batch).expect("batch must execute");
    let served = &out.row_results[0];
    for r in 0..rows {
        assert_eq!(
            served.rows[r].values, routed.rows[r].values,
            "engine row {r} must match the core path"
        );
    }
    let report = &out.report;
    println!(
        "[engine] row query served: {} rows across {} blocks, \
         {:.0} selections/s, {} delegate passes",
        report.rows_served, served.num_blocks, report.throughput_qps, report.delegate_passes_run
    );
}
