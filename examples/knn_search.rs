//! k-nearest-neighbour search (the paper's ANN_SIFT1B use case): compute the
//! distances between a query descriptor and a database of 128-dimensional
//! descriptors, then use Dr. Top-k to find the k *closest* vectors.
//!
//! Distances stay native `f32` end to end: `dr_topk_min` answers
//! top-k-smallest directly through the generic-key pipeline, so no
//! caller-side bit flipping (the old `u32::MAX − d` hack) is needed. NaN
//! distances, if a computation ever produced one, would rank *after* every
//! real distance (see the NaN policy in `topk_baselines::key`).
//!
//! Run with: `cargo run --release --example knn_search [n_exp] [k]`

use drtopk::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(18);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let n = 1usize << n_exp;

    println!("computing L2 distances from the query to {n} SIFT-like descriptors...");
    let distances = topk_datagen::ann_sift_distances_f32(n, 7);

    let device = Device::new(DeviceSpec::v100s());
    let result = dr_topk_min(&device, &distances, k, &DrTopKConfig::auto(n, k));

    // `dr_topk_min` returns the k smallest distances, closest first.
    let nearest = &result.values;

    // verify against the CPU reference
    let mut expected = distances.clone();
    expected.sort_unstable_by(f32::total_cmp);
    expected.truncate(k);
    assert_eq!(nearest, &expected);

    println!("\n{k} nearest neighbours (L2 distances, closest first):");
    for (rank, d) in nearest.iter().take(10).enumerate() {
        println!("  #{:<3} distance = {d:.3}", rank + 1);
    }
    if k > 10 {
        println!("  ... ({} more)", k - 10);
    }
    println!(
        "\nmodeled GPU time: {:.3} ms (α = {})",
        result.time_ms, result.alpha
    );
    println!(
        "workload touched beyond the initial scan: {:.3}% of |V|",
        result.workload.workload_fraction() * 100.0
    );
}
