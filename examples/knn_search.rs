//! k-nearest-neighbour search (the paper's ANN_SIFT1B use case): compute the
//! distances between a query descriptor and a database of 128-dimensional
//! descriptors, then use Dr. Top-k to find the k *closest* vectors.
//!
//! Top-k-smallest is answered by flipping the key (`u32::MAX − distance`),
//! running the top-k-largest machinery, and flipping back.
//!
//! Run with: `cargo run --release --example knn_search [n_exp] [k]`

use drtopk::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(18);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let n = 1usize << n_exp;

    println!("computing L2 distances from the query to {n} SIFT-like descriptors...");
    let distances = topk_datagen::ann_sift_distances(n, 7);

    // smallest distances == largest flipped keys
    let flipped: Vec<u32> = distances.iter().map(|&d| u32::MAX - d).collect();

    let device = Device::new(DeviceSpec::v100s());
    let result = dr_topk(&device, &flipped, k, &DrTopKConfig::auto(n, k));

    let mut nearest: Vec<u32> = result.values.iter().map(|&v| u32::MAX - v).collect();
    nearest.sort_unstable();

    // verify against the CPU reference
    let mut expected = distances.clone();
    expected.sort_unstable();
    expected.truncate(k);
    assert_eq!(nearest, expected);

    println!("\n{k} nearest neighbours (squared L2 distances, closest first):");
    for (rank, d) in nearest.iter().take(10).enumerate() {
        println!("  #{:<3} distance² = {d}", rank + 1);
    }
    if k > 10 {
        println!("  ... ({} more)", k - 10);
    }
    println!(
        "\nmodeled GPU time: {:.3} ms (α = {})",
        result.time_ms, result.alpha
    );
    println!(
        "workload touched beyond the initial scan: {:.3}% of |V|",
        result.workload.workload_fraction() * 100.0
    );
}
