//! Recall-targeted approximate top-k, end to end: one corpus, three recall
//! targets, exact vs approximate — printing measured recall, the candidate
//! workload, and the global-memory transactions each mode moves, both for
//! a one-shot query and for corpus-resident repeat traffic (the engine's
//! warm delegate cache).
//!
//! Usage: `cargo run --release --example approx_search [n_exp] [k]`
//! (defaults: `n = 2^20`, `k = 256`).
//!
//! The example self-verifies: measured recall must meet each target and
//! the approximate mode must move fewer transactions than exact in both
//! settings, so CI can run it as a smoke test.

use drtopk::core::{
    build_delegate_vector, dr_topk, dr_topk_planned, measured_recall, DrTopKConfig, PlannedQuery,
};
use drtopk::prelude::*;
use gpu_sim::KernelStats;

fn transactions(s: &KernelStats) -> u64 {
    s.global_load_transactions + s.global_store_transactions
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let n = 1usize << n_exp;

    println!("corpus: 2^{n_exp} uniform u32 values, k = {k}");
    let data = topk_datagen::uniform(n, 0x5eed);
    let device = Device::new(DeviceSpec::v100s());
    let exact_ref = topk_baselines::reference_topk(&data, k);

    // Exact baseline: one-shot, then corpus-resident (shared delegates).
    let exact_plan = PlannedQuery::plan(n, k, &DrTopKConfig::default());
    let exact_cold = dr_topk(&device, &data, k, &DrTopKConfig::default());
    assert_eq!(exact_cold.values, exact_ref);
    let exact_shared = build_delegate_vector(
        &device,
        &data,
        exact_plan.alpha,
        exact_plan.config.beta,
        exact_plan.config.construction,
    );
    let exact_resident = dr_topk_planned(&device, &data, Some(&exact_shared), &exact_plan);
    println!(
        "exact:        α = {}, delegate vector {} entries; one-shot {} txns, resident {} txns",
        exact_cold.alpha,
        exact_cold.workload.delegate_vector_len,
        transactions(&exact_cold.stats),
        transactions(&exact_resident.stats),
    );

    for target in [0.99f64, 0.95, 0.90] {
        let cfg = DrTopKConfig::approx(target);
        let plan = PlannedQuery::plan(n, k, &cfg);
        let cold = dr_topk(&device, &data, k, &cfg);
        let recall = measured_recall(&cold.values, &exact_ref);

        // Corpus-resident: the candidate pass is already built (what the
        // engine's delegate cache holds for repeat traffic).
        let shared = build_delegate_vector(
            &device,
            &data,
            plan.alpha,
            plan.config.beta,
            plan.config.construction,
        );
        let resident = dr_topk_planned(&device, &data, Some(&shared), &plan);
        assert_eq!(
            resident.values, cold.values,
            "sharing must not change results"
        );

        let one_shot_saving =
            1.0 - transactions(&cold.stats) as f64 / transactions(&exact_cold.stats) as f64;
        let resident_saving =
            1.0 - transactions(&resident.stats) as f64 / transactions(&exact_resident.stats) as f64;
        println!(
            "approx {target:.2}:  α = {}, k' = {}, {} candidates; measured recall {recall:.4} \
             (predicted {:.4}); one-shot {} txns ({:.1}% fewer), resident {} txns ({:.1}% fewer)",
            plan.alpha,
            plan.config.beta,
            cold.workload.delegate_vector_len,
            plan.predicted_recall,
            transactions(&cold.stats),
            one_shot_saving * 100.0,
            transactions(&resident.stats),
            resident_saving * 100.0,
        );

        // Self-verification (CI runs this example as a smoke test).
        // Measured recall is quantised in 1/k steps around the modeled
        // expectation, so at small k a tight target can be missed by a
        // single stray winner on an arbitrary user-supplied shape;
        // tolerate exactly that one step here (the deterministic pinned
        // suite in tests/approx.rs holds the strict ≥ target line at its
        // seeded shapes).
        assert_eq!(cold.values.len(), k.min(n));
        assert!(
            recall >= target - 1.0 / k as f64,
            "measured recall {recall} below target {target}"
        );
        assert!(recall >= plan.predicted_recall - 0.05, "model far off");
        assert!(one_shot_saving > 0.0, "approx must beat exact one-shot");
        assert!(
            resident_saving >= 0.25,
            "corpus-resident approx must move at least 25% fewer transactions"
        );
    }
    println!("all recall targets verified; approximate mode checked against exact");
}
