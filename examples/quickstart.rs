//! Quickstart: find the top-k elements of a large random vector with
//! Dr. Top-k and compare against a plain GPU radix top-k baseline.
//!
//! Run with: `cargo run --release --example quickstart [n_exp] [k]`

use drtopk::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let n = 1usize << n_exp;

    println!("generating {n} uniformly distributed u32 values (|V| = 2^{n_exp})...");
    let data = topk_datagen::uniform(n, 0xC0FFEE);

    let device = Device::new(DeviceSpec::v100s());
    println!("simulated device: {}", device.spec().name);

    // Dr. Top-k with the recommended configuration (Rule 4 α, β = 2,
    // delegate filtering, automatic construction kernel).
    let config = DrTopKConfig::auto(n, k);
    let result = dr_topk(&device, &data, k, &config);

    // Baseline: stand-alone radix top-k on the same device.
    let baseline = radix_topk(&device, &data, k, &topk_baselines::RadixConfig::default());

    assert_eq!(result.values, baseline.values, "both must agree");
    assert_eq!(
        result.values,
        topk_baselines::reference_topk(&data, k),
        "and match the CPU ground truth"
    );

    println!(
        "\ntop-{k} (largest 5 shown): {:?}",
        &result.values[..5.min(k)]
    );
    println!("k-th largest value       : {}", result.kth_value);
    println!("\n--- modeled GPU cost ---");
    println!("Dr. Top-k (α = {}, β = {})", result.alpha, config.beta);
    println!(
        "  delegate construction : {:8.3} ms",
        result.breakdown.delegate_ms
    );
    println!(
        "  first top-k           : {:8.3} ms",
        result.breakdown.first_topk_ms
    );
    println!(
        "  concatenation         : {:8.3} ms",
        result.breakdown.concat_ms
    );
    println!(
        "  second top-k          : {:8.3} ms",
        result.breakdown.second_topk_ms
    );
    println!("  total                 : {:8.3} ms", result.time_ms);
    println!("stand-alone radix top-k : {:8.3} ms", baseline.time_ms);
    println!(
        "speedup                 : {:8.2}x",
        baseline.time_ms / result.time_ms
    );
    println!(
        "workload touched by the two top-k passes: {:.3}% of |V|",
        result.workload.workload_fraction() * 100.0
    );
}
