//! Serving a batch of heterogeneous top-k queries with the engine: a hot
//! shared corpus takes Zipf-distributed `k` traffic (mixed largest/smallest
//! directions) on a 4-device cluster, twice — the second, warm batch shows
//! the tuning-plan and delegate caches at work.
//!
//! Run with: `cargo run --release --example serve_batch [n_exp] [queries]`
//!
//! The example self-verifies every result against the CPU reference and
//! exits non-zero on any mismatch.

use drtopk::core::InnerAlgorithm;
use drtopk::engine::{Direction, Query, QueryBatch, TopKEngine};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;
use topk_datagen::{multi_query_workload, CorpusMix};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(18);
    let num_queries: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let n = 1usize << n_exp;

    let corpus = topk_datagen::uniform(n, 0x5eed);
    let specs = multi_query_workload(num_queries, CorpusMix::Shared, 1 << 10, 1.0, 0.25, 0.0, 7);
    let engine = TopKEngine::new(GpuCluster::homogeneous(4, DeviceSpec::v100s()));

    println!("|V| = 2^{n_exp}, {num_queries} queries (Zipf k, 25% smallest-direction), 4 devices");
    for round in ["cold", "warm"] {
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &corpus);
        for spec in &specs {
            batch.push(Query {
                corpus: c,
                k: spec.k,
                direction: if spec.largest {
                    Direction::Largest
                } else {
                    Direction::Smallest
                },
                inner: InnerAlgorithm::FlagRadix,
                mode: drtopk::core::Mode::Exact,
                path: drtopk::core::PathHint::Auto,
            });
        }
        let out = engine.run_batch(&batch).expect("batch must execute");

        for (i, spec) in specs.iter().enumerate() {
            let expect = if spec.largest {
                topk_baselines::reference_topk(&corpus, spec.k)
            } else {
                topk_baselines::reference_topk_min(&corpus, spec.k)
            };
            assert_eq!(out.results[i].values, expect, "query {i} ({spec:?})");
        }

        let r = &out.report;
        println!(
            "\n[{round}] all {} results verified against the CPU reference",
            r.num_queries
        );
        println!(
            "  units: {} ({} fused, {} sharded queries), occupancy {:.1} queries/unit",
            r.num_units, r.fused_units, r.sharded_queries, r.batch_occupancy
        );
        println!(
            "  delegate passes: {} run, {} fused/cached away",
            r.delegate_passes_run, r.delegate_passes_saved
        );
        println!(
            "  caches: tuning-plan {:.0}% hit, delegate {:.0}% hit",
            r.plan_cache.hit_rate() * 100.0,
            r.delegate_cache.hit_rate() * 100.0
        );
        println!(
            "  phases (ms): delegate {:.3}, first {:.3}, concat {:.3}, second {:.3}",
            r.phase_ms.delegate_ms,
            r.phase_ms.first_topk_ms,
            r.phase_ms.concat_ms,
            r.phase_ms.second_topk_ms
        );
        println!(
            "  makespan {:.3} ms → {:.0} queries/s (modeled)",
            r.total_ms, r.throughput_qps
        );
    }
}
