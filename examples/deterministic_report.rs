//! Deterministic stage-report replay: run the out-of-core distributed
//! graph under both the serial and the threaded executor and print the
//! **modeled** stage schedule's deterministic summary — stage kinds,
//! labels, resources, dependencies and bit-exact modeled timestamps, with
//! every measured wall-clock field deliberately excluded.
//!
//! Usage: `cargo run --release --example deterministic_report [cap_exp] [multiple]`
//! (defaults: per-device capacity `2^14` elements, corpus `4×` the aggregate).
//!
//! The example self-verifies: both executors must return bit-identical
//! values and byte-identical summaries, so CI runs it twice and diffs the
//! output — any nondeterminism in the threaded executor's modeled replay
//! shows up as a diff.

use drtopk::core::{distributed_dr_topk_executor, DrTopKConfig, Executor, ReloadSchedule};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;
use topk_baselines::reference_topk;

const DEVICES: usize = 4;

fn main() {
    let mut args = std::env::args().skip(1);
    let cap_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(14);
    let multiple: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let capacity = 1usize << cap_exp;
    let n = capacity * multiple * DEVICES;
    let k = 64;

    let cluster = GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s());
    for d in cluster.devices() {
        d.set_capacity_elems(capacity);
    }
    let data = topk_datagen::uniform(n, 7);
    let cfg = DrTopKConfig::default();

    let serial = distributed_dr_topk_executor(
        &cluster,
        &data,
        k,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        Executor::Serial,
    );
    let threaded = distributed_dr_topk_executor(
        &cluster,
        &data,
        k,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        Executor::Threaded,
    );

    // Self-verification: values match the CPU reference, and the modeled
    // report is executor-independent down to the last bit.
    assert_eq!(serial.values, reference_topk(&data, k));
    assert_eq!(threaded.values, serial.values, "executors must agree");
    let summary = threaded.stages.deterministic_summary();
    assert_eq!(
        summary,
        serial.stages.deterministic_summary(),
        "modeled schedule must not depend on the executor"
    );

    println!(
        "corpus: {n} u32 values — {multiple}× the aggregate memory of {DEVICES} devices \
         holding 2^{cap_exp} elements each; k = {k}"
    );
    println!("{summary}");
    // Wall-clock goes to stderr on purpose: stdout is the deterministic
    // artifact CI diffs across runs, and measured time varies run to run.
    eprintln!(
        "(measured, stderr only: threaded wall-clock {:.3} ms, serial {:.3} ms)",
        threaded.stages.measured_makespan_ms, serial.stages.measured_makespan_ms,
    );
}
