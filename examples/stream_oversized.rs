//! Out-of-core top-k over a host-resident corpus larger than the cluster's
//! aggregate device memory, end to end: the distributed stage graph chunks
//! the corpus, streams each chunk over the host→device lane, and — under the
//! default double-buffered schedule — transfers chunk *i + 1* while chunk *i*
//! computes. Prints the stage schedule of both reload schedules and the
//! makespan each models.
//!
//! Usage: `cargo run --release --example stream_oversized [cap_exp] [multiple]`
//! (defaults: per-device capacity `2^16` elements, corpus `8×` the aggregate).
//!
//! The example self-verifies: both schedules must return exactly the CPU
//! reference top-k, and double buffering must model a strictly lower
//! makespan, so CI can run it as a smoke test.

use drtopk::core::{
    distributed_dr_topk_scheduled, DrTopKConfig, ReloadSchedule, Resource, StageKind,
};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;

const DEVICES: usize = 2;

fn main() {
    let mut args = std::env::args().skip(1);
    let cap_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let mut multiple: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    if multiple < 2 {
        // At 1× every chunk is resident, nothing streams, and the two
        // schedules are identical — there is no out-of-core story to tell.
        println!("multiple {multiple} fits in device memory; raising to 2 so chunks stream");
        multiple = 2;
    }
    let capacity = 1usize << cap_exp;
    let n = capacity * multiple * DEVICES;
    let k = 256;

    println!(
        "corpus: {n} u32 values, host-resident — {multiple}× the aggregate memory of \
         {DEVICES} devices holding 2^{cap_exp} elements each; k = {k}"
    );
    let data = topk_datagen::uniform(n, 0x5eed);
    let expected = topk_baselines::reference_topk(&data, k);
    let cluster = GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s());
    for d in cluster.devices() {
        d.set_capacity_elems(capacity);
    }

    let mut makespans = Vec::new();
    for schedule in [ReloadSchedule::Serial, ReloadSchedule::DoubleBuffered] {
        let got =
            distributed_dr_topk_scheduled(&cluster, &data, k, &DrTopKConfig::default(), schedule);
        assert_eq!(got.values, expected, "{schedule} schedule must be exact");
        println!(
            "\n{schedule}: makespan {:.4} ms (reload {:.4} ms, gather {:.4} ms, overlap \
             efficiency {:.1}%)",
            got.total_ms,
            got.reload_overhead_ms,
            got.communication_ms,
            got.stages.overlap_efficiency() * 100.0
        );
        // A compact schedule view: transfers on their lanes vs compute.
        for stage in &got.stages.stages {
            let lane = match stage.resource {
                Resource::Compute(d) => format!("compute[{d}]"),
                Resource::Transfer(_) => "transfer ".to_string(),
            };
            if matches!(
                stage.kind,
                StageKind::ChunkLoad | StageKind::Gather | StageKind::FinalTopK
            ) || stage.kind == StageKind::LocalMerge
            {
                println!(
                    "  {lane}  [{:>8.4} → {:>8.4}] {}",
                    stage.start_ms, stage.end_ms, stage.label
                );
            }
        }
        makespans.push(got.total_ms);
    }

    let win = 1.0 - makespans[1] / makespans[0];
    println!(
        "\ndouble buffering hides {:.1}% of the serial makespan — same bits, less time",
        win * 100.0
    );
    assert!(
        makespans[1] < makespans[0],
        "double buffering must model a strictly lower makespan"
    );
    println!("OK: both schedules match the CPU reference exactly");
}
