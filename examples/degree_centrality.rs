//! Website degree centrality (the paper's ClueWeb09 use case): rank web
//! pages by degree and report the k best-connected hubs, comparing all
//! Dr. Top-k-assisted inner algorithms.
//!
//! Run with: `cargo run --release --example degree_centrality [n_exp] [k]`

use drtopk::core::InnerAlgorithm;
use drtopk::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let n = 1usize << n_exp;

    println!("generating a heavy-tailed degree vector for {n} pages...");
    let degrees = topk_datagen::web_degrees(n, 2021);
    let device = Device::new(DeviceSpec::v100s());

    let expected = topk_baselines::reference_topk(&degrees, k);
    println!(
        "\ntop-{k} hub degrees (largest 10): {:?}",
        &expected[..10.min(k)]
    );

    println!(
        "\n{:<28} {:>12} {:>14}",
        "configuration", "time (ms)", "workload (%|V|)"
    );
    for inner in InnerAlgorithm::ALL {
        let config = DrTopKConfig {
            inner,
            ..DrTopKConfig::default()
        };
        let result = dr_topk(&device, &degrees, k, &config);
        assert_eq!(result.values, expected);
        println!(
            "{:<28} {:>12.3} {:>14.3}",
            format!("Dr. Top-k + {inner}"),
            result.time_ms,
            result.workload.workload_fraction() * 100.0
        );
    }

    let baseline = bucket_topk(
        &device,
        &degrees,
        k,
        &topk_baselines::BucketConfig::default(),
    );
    assert_eq!(baseline.values, expected);
    println!(
        "{:<28} {:>12.3} {:>14}",
        "stand-alone bucket top-k", baseline.time_ms, "100.000"
    );
}
