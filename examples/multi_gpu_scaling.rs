//! Multi-GPU scaling study (the Table 2 experiment as an example): run
//! distributed Dr. Top-k over 1–16 simulated V100 GPUs, with the per-device
//! capacity pinned so that small clusters must stream sub-vectors from the
//! host (reload overhead). Unlike the `table2_multi_gpu` bench — which pins
//! the paper's serial reload timeline — this example runs the library
//! default (double-buffered ingestion), so the reload column shows what the
//! overlapped schedule still pays, not what it hides.
//!
//! Run with: `cargo run --release --example multi_gpu_scaling [n_exp] [k]`

use drtopk::core::{distributed_dr_topk, DrTopKConfig};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(22);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let n = 1usize << n_exp;
    let capacity = n / 8; // each device holds 1/8 of the input

    println!("|V| = 2^{n_exp}, k = {k}, per-device capacity = |V|/8");
    let data = topk_datagen::uniform(n, 99);
    let expected = topk_baselines::reference_topk(&data, k);

    println!(
        "\n{:>5} {:>16} {:>12} {:>12} {:>10}",
        "GPUs", "communication ms", "reload ms", "total ms", "speedup"
    );
    let mut single = None;
    for devices in [1usize, 2, 4, 8, 16] {
        let cluster = GpuCluster::homogeneous(devices, DeviceSpec::v100s());
        for d in cluster.devices() {
            d.set_capacity_elems(capacity);
        }
        let r = distributed_dr_topk(&cluster, &data, k, &DrTopKConfig::default());
        assert_eq!(r.values, expected);
        let speedup = match single {
            None => {
                single = Some(r.total_ms);
                1.0
            }
            Some(t1) => t1 / r.total_ms,
        };
        println!(
            "{:>5} {:>16.3} {:>12.3} {:>12.3} {:>9.2}x",
            devices, r.communication_ms, r.reload_overhead_ms, r.total_ms, speedup
        );
    }
}
