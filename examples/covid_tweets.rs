//! COVID-19 Twitter analysis (the paper's TwitterCOVID-19 use case): find
//! the k *least fearful* tweets from a large vector of fear scores, on a
//! single device and distributed across a simulated multi-GPU cluster.
//!
//! Run with: `cargo run --release --example covid_tweets [n_exp] [k]`

use drtopk::core::distributed_dr_topk;
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let k: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let n = 1usize << n_exp;

    println!("generating fear scores for {n} tweets...");
    let scores = topk_datagen::twitter_fear_scores(n, 1337);

    // "k least fearful" = k smallest scores: flip the key.
    let flipped: Vec<u32> = scores.iter().map(|&s| u32::MAX - s).collect();
    let device = Device::new(DeviceSpec::v100s());
    let single = dr_topk(&device, &flipped, k, &DrTopKConfig::auto(n, k));
    let mut least_fearful: Vec<u32> = single.values.iter().map(|&v| u32::MAX - v).collect();
    least_fearful.sort_unstable();

    let mut expected = scores.clone();
    expected.sort_unstable();
    expected.truncate(k);
    assert_eq!(least_fearful, expected);

    println!(
        "\n{k} least fearful tweet scores: {:?}",
        &least_fearful[..10.min(k)]
    );
    println!("single-device modeled time: {:.3} ms", single.time_ms);

    // The same query distributed over 4 simulated V100s.
    let cluster = GpuCluster::homogeneous(4, DeviceSpec::v100s());
    let distributed = distributed_dr_topk(&cluster, &flipped, k, &DrTopKConfig::auto(n, k));
    let mut dist_scores: Vec<u32> = distributed.values.iter().map(|&v| u32::MAX - v).collect();
    dist_scores.sort_unstable();
    assert_eq!(dist_scores, expected);

    println!("\n--- 4-GPU distributed run ---");
    println!(
        "per-device compute (ms): {:?}",
        distributed
            .per_device_compute_ms
            .iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
    );
    println!("communication: {:.3} ms", distributed.communication_ms);
    println!(
        "final top-k on primary: {:.3} ms",
        distributed.final_topk_ms
    );
    println!(
        "total: {:.3} ms (vs {:.3} ms on one device)",
        distributed.total_ms, single.time_ms
    );
}
