//! Trace a 4-device, double-buffered out-of-core query and export it as a
//! Chrome trace (open `trace.json` at <https://ui.perfetto.dev>), then
//! print the serving engine's metrics snapshot for the same workload.
//!
//! Usage: `cargo run --release --example trace_run [cap_exp] [multiple] [out_path]`
//! (defaults: per-device capacity `2^14` elements, corpus `4×` the
//! aggregate, trace written to `trace.json`).
//!
//! The example self-verifies, so CI can run it as a smoke test:
//! * the traced run returns exactly the CPU reference top-k;
//! * every recorded span matches the returned [`StageReport`]'s modeled
//!   intervals **bit for bit**, and the report passes `verify()`;
//! * the *deterministic* trace is byte-identical between the Serial and
//!   Threaded executors (CI diffs the written file across two runs);
//! * the exported JSON is well-formed Chrome Trace Event Format with one
//!   track per modeled resource.
//!
//! [`StageReport`]: drtopk::core::StageReport

use std::io::Write as _;
use std::sync::Arc;

use drtopk::core::{
    distributed_dr_topk_observed, DrTopKConfig, Executor, ReloadSchedule, StageKind,
};
use drtopk::engine::{QueryBatch, TopKEngine};
use drtopk::obs::{validate_chrome_trace, TraceRecorder};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;

const DEVICES: usize = 4;
const K: usize = 64;

fn cluster(capacity: usize) -> GpuCluster {
    let c = GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s());
    for d in c.devices() {
        d.set_capacity_elems(capacity);
    }
    c
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cap_exp: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(14);
    let multiple: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4).max(2);
    let out_path = args.next().unwrap_or_else(|| "trace.json".to_string());

    let capacity = 1usize << cap_exp;
    let n = capacity * multiple * DEVICES;
    let data = topk_datagen::uniform(n, 0x7ace);
    let cfg = DrTopKConfig::default();
    let expected = topk_baselines::reference_topk(&data, K);
    println!(
        "corpus: {n} keys over {DEVICES} devices of 2^{cap_exp} capacity \
         ({multiple}x aggregate, double-buffered), k = {K}"
    );

    // Deterministic traces under both executors: modeled spans only, in
    // stable order — they must agree byte for byte.
    let mut traces = Vec::new();
    for executor in [Executor::Serial, Executor::Threaded] {
        let rec = TraceRecorder::deterministic();
        let d = distributed_dr_topk_observed(
            &cluster(capacity),
            &data,
            K,
            &cfg,
            ReloadSchedule::DoubleBuffered,
            executor,
            &rec,
        );
        assert_eq!(d.values, expected, "{executor:?} run must be exact");
        assert!(
            d.stages.verify().is_empty(),
            "stage report failed dependency verification"
        );

        // Every span mirrors its report stage bit for bit.
        let spans = rec.spans();
        assert_eq!(spans.len(), d.stages.stages.len());
        for (span, stage) in spans.iter().zip(&d.stages.stages) {
            assert_eq!(span.start_ms.to_bits(), stage.start_ms.to_bits());
            assert_eq!(span.end_ms.to_bits(), stage.end_ms.to_bits());
            assert_eq!(span.kind, stage.kind.name());
            assert_eq!(span.deps, stage.deps);
        }

        let json = rec.chrome_trace_json();
        let check = validate_chrome_trace(&json).expect("trace must be valid Chrome JSON");
        let resources: std::collections::HashSet<String> =
            d.stages.stages.iter().map(|s| s.resource.label()).collect();
        assert_eq!(
            check.tracks,
            resources.len(),
            "one trace track per modeled resource"
        );
        println!(
            "{executor:?}: {} spans on {} tracks, modeled makespan {:.4} ms",
            check.spans, check.tracks, d.stages.makespan_ms
        );
        traces.push(json);
    }
    assert_eq!(
        traces[0], traces[1],
        "deterministic traces must be byte-identical across executors"
    );

    // A full (non-deterministic) recorder adds the measured track group and
    // executor instant events on top of the same modeled spans.
    let full = TraceRecorder::new();
    let d = distributed_dr_topk_observed(
        &cluster(capacity),
        &data,
        K,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        Executor::Threaded,
        &full,
    );
    assert_eq!(d.values, expected);
    validate_chrome_trace(&full.chrome_trace_json()).expect("full trace must validate");
    let dispatches = full.events().len();
    let transfers = full
        .spans()
        .iter()
        .filter(|s| {
            StageKind::ALL
                .iter()
                .any(|k| k.name() == s.kind && k.is_transfer())
        })
        .count();
    println!(
        "full trace: {} spans ({transfers} transfer), {dispatches} executor events, \
         measured makespan {:.4} ms",
        full.spans().len(),
        d.stages.measured_makespan_ms
    );

    std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(traces[0].as_bytes()))
        .expect("cannot write trace file");
    println!("[deterministic trace written to {out_path}]");

    // The same corpus through the serving engine, traced, with the metrics
    // registry live: percentiles, sustained QPS and per-worker occupancy.
    let engine = TopKEngine::new(cluster(capacity * multiple));
    let engine_rec = Arc::new(TraceRecorder::new());
    engine.attach_recorder(engine_rec.clone());
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(1, &data);
    for k in [8usize, K, 512] {
        batch.push_topk(c, k);
    }
    let out = engine.run_batch(&batch).expect("batch must execute");
    assert_eq!(out.results[1].values, expected);
    validate_chrome_trace(&engine_rec.chrome_trace_json())
        .expect("engine trace must be valid Chrome JSON");
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter(MetricName::QueriesServed), 3);
    assert!(snap.query_latency_ms.count >= 3);
    println!("\nengine metrics snapshot:");
    println!("{}", snap.to_json().to_pretty_string());
}
