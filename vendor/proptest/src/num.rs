//! Numeric strategy helpers, kept as a module for path compatibility with
//! real proptest (`proptest::num::...`). The range `Strategy`
//! implementations themselves live in [`crate::strategy`].

pub use crate::strategy::Strategy;
