//! The [`Strategy`] trait: a recipe for generating values of one type.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of type [`Strategy::Value`].
///
/// The real proptest `Strategy` produces *value trees* that support
/// shrinking; this stand-in samples final values directly.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// `&S` is a strategy wherever `S` is, so strategies can be reused without
/// moving them.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.next_below(span) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy {:?}", self);
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + rng.next_below(span + 1) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range_strategy {
    ($($ty:ty => $uty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u64;
                    self.start.wrapping_add(rng.next_below(span) as $ty)
                }
            }
        )*
    };
}

signed_int_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "invalid f64 range strategy {:?}",
            self
        );
        let v = self.start + rng.next_unit_f64() * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; clamp back
        // inside the half-open interval.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        let wide = (self.start as f64)..(self.end as f64);
        let v = wide.sample(rng) as f32;
        // The f64→f32 rounding can land exactly on `end` even though the
        // f64 sample was below it; re-clamp in f32.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// A strategy wrapping a plain function of the RNG. Used by combinators and
/// handy for one-off custom strategies.
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ranges_cover_bounds_eventually() {
        let mut rng = TestRng::from_seed(7);
        let strat = 0u32..4;
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should be generated");
    }

    #[test]
    fn inclusive_range_can_produce_end() {
        let mut rng = TestRng::from_seed(11);
        let strat = 0u8..=1;
        let mut saw_end = false;
        for _ in 0..64 {
            saw_end |= strat.sample(&mut rng) == 1;
        }
        assert!(saw_end);
    }

    #[test]
    fn f64_range_is_half_open() {
        let mut rng = TestRng::from_seed(3);
        let strat = -1.0f64..1.0;
        for _ in 0..1000 {
            let v = strat.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f32_range_is_half_open_despite_rounding() {
        let mut rng = TestRng::from_seed(17);
        // A range whose end sits where f64→f32 rounding pressure is real.
        let strat = 0.0f32..1.0;
        for _ in 0..10_000 {
            let v = strat.sample(&mut rng);
            assert!(
                (0.0..1.0).contains(&v),
                "sampled {v} outside half-open range"
            );
        }
    }

    #[test]
    fn signed_range_spans_zero() {
        let mut rng = TestRng::from_seed(5);
        let strat = -5i32..5;
        let (mut neg, mut pos) = (false, false);
        for _ in 0..256 {
            let v = strat.sample(&mut rng);
            assert!((-5..5).contains(&v));
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }
}
