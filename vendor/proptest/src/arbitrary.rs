//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value. Integer implementations bias toward
    /// edge values (zero, max) occasionally, since those are
    /// disproportionately likely to expose bugs.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Canonical strategy for `T`: `any::<u32>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    // ~1/16 of draws return an edge value.
                    match rng.next_below(16) {
                        0 => 0,
                        1 => <$ty>::MAX,
                        _ => rng.next_u64() as $ty,
                    }
                }
            }
        )*
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    match rng.next_below(16) {
                        0 => 0,
                        1 => <$ty>::MAX,
                        2 => <$ty>::MIN,
                        _ => rng.next_u64() as $ty,
                    }
                }
            }
        )*
    };
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only — the workspace's tests feed these straight
        // into ordering-sensitive code.
        (rng.next_unit_f64() - 0.5) * 2.0 * 1e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u32_hits_edge_values() {
        let mut rng = TestRng::from_seed(1);
        let strat = any::<u32>();
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..512 {
            match strat.sample(&mut rng) {
                0 => saw_zero = true,
                u32::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(saw_zero && saw_max);
    }

    #[test]
    fn any_bool_yields_both() {
        let mut rng = TestRng::from_seed(2);
        let strat = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
