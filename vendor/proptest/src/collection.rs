//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a collection-size specification.
pub trait SizeRange {
    /// Draw a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        Strategy::sample(self, rng)
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a length drawn from
/// `R`.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// `vec(any::<u32>(), 1..4000)` — a vector whose length is drawn from the
/// given range and whose elements come from `element`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_vary_within_range() {
        let mut rng = TestRng::from_seed(9);
        let strat = vec(any::<u32>(), 3..9);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..128 {
            let v = strat.sample(&mut rng);
            assert!((3..9).contains(&v.len()));
            lens.insert(v.len());
        }
        assert!(lens.len() > 1, "lengths should not be constant");
    }

    #[test]
    fn fixed_size_vec() {
        let mut rng = TestRng::from_seed(10);
        let strat = vec(any::<u8>(), 5usize);
        assert_eq!(strat.sample(&mut rng).len(), 5);
    }
}
