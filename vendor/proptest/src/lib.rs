//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of proptest's API that this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `pattern in strategy` arguments,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] implemented for numeric ranges,
//! * [`arbitrary::any`] for the primitive types the tests generate, and
//! * [`collection::vec`] for random-length vectors.
//!
//! Semantics differ from real proptest in two deliberate ways: failing
//! cases are **not shrunk** (the panic message reports the generated
//! arguments instead), and generation is plain uniform sampling with a
//! small bias toward edge values for `any::<T>()` integers. Each test
//! function derives its RNG seed deterministically from its own name, so
//! runs are reproducible; set `PROPTEST_RNG_SEED` to perturb it.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Supported grammar (the subset this workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(any::<u32>(), 1..100)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)*
                    // An immediately-called closure gives `prop_assume!` an
                    // early-return target without a labelled block.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).max(1024),
                                "too many prop_assume! rejections ({} accepted, {} rejected)",
                                accepted,
                                rejected,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a property test (panics on failure; the real
/// proptest would shrink first).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case (it does not count toward the configured number
/// of cases) when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u32..17,
            y in 1usize..4,
            f in 0.25f64..0.75,
            b in crate::arbitrary::any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_length_range(
            v in crate::collection::vec(crate::arbitrary::any::<u32>(), 2..50),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 50);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = TestRng::for_test("some_test");
        let mut b = TestRng::for_test("some_test");
        let mut c = TestRng::for_test("other_test");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
