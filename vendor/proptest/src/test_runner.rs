//! Test-runner types: configuration, the deterministic RNG, and the
//! case-outcome error type.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this stand-in keeps that so tests
        // that omit the config attribute get comparable coverage.
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not complete successfully. The stand-in only models
/// rejection (`prop_assume!` failing) — assertion failures panic directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and should not count.
    Reject,
}

/// A small, fast, deterministic RNG (xoshiro256** core, splitmix64
/// seeding) — the same generator family real proptest uses by default.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary u64.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        TestRng { state }
    }

    /// Deterministic seed derived from the test function's name (FNV-1a),
    /// optionally perturbed by `PROPTEST_RNG_SEED`.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        Self::from_seed(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `[0, bound)`; `bound` must be non-zero.
    /// Lemire-style rejection keeps it unbiased.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
