//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real crates.io `parking_lot` cannot be fetched. This crate re-implements
//! the (tiny) subset of its API the workspace uses — [`Mutex`] and
//! [`RwLock`] with panic-free, non-poisoning lock methods — on top of
//! `std::sync`. A poisoned std lock is recovered rather than propagated,
//! matching parking_lot's no-poisoning semantics.

// Approved `std::sync` lock holder (see clippy.toml + ARCHITECTURE.md):
// this shim *is* the workspace's sanctioned lock facade, so it wraps the
// std primitives the rest of the workspace is barred from naming.
#![allow(clippy::disallowed_types)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive whose `lock` returns the guard directly
/// (no `Result`), like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly,
/// like `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_returns_guard_directly() {
        let m = Mutex::new(7);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
