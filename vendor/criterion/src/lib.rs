//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of criterion's API the workspace's `topk_criterion` bench target
//! uses: [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with `iter` /
//! `iter_batched`, [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures wall-clock time with `std::time::Instant` and prints a
//! single mean-per-iteration line per benchmark — no statistics, plots or
//! `target/criterion` reports. Timings are indicative only; the macros and
//! structure exist primarily so `cargo bench --no-run` compiles and
//! `cargo bench` produces readable output.

use std::time::{Duration, Instant};

/// How per-iteration setup output is batched (accepted for API
/// compatibility; the stand-in runs every routine unbatched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// An opaque identity function that prevents the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a free-standing benchmark (outside any group).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", name, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmark a routine under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, name, self.sample_size, f);
        self
    }

    /// End the group. (The stand-in reports per-benchmark, so this is a
    /// no-op kept for API compatibility.)
    pub fn finish(self) {}
}

fn run_one<F>(group: &str, name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if bencher.iters == 0 {
        println!("{label:<48} (no iterations)");
    } else {
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        println!(
            "{label:<48} {:>12.3} us/iter ({} iters)",
            mean * 1e6,
            bencher.iters
        );
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Time `routine` on an input built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0;
        group.bench_function("count", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            );
        });
    }
}
