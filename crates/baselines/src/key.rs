//! The [`TopKKey`] trait: order-preserving bijections into an unsigned radix
//! space, making every top-k algorithm in the workspace generic over the key
//! type.
//!
//! Dr. Top-k's pipeline (and all the baselines it assists) only ever needs
//! two capabilities from a key: a *total order* and a *radix decomposition*
//! consistent with that order. Both are provided by mapping each key through
//! an order-preserving bijection onto an unsigned integer of the same width
//! (the key's [`TopKKey::Bits`]):
//!
//! * `u32` / `u64` — the identity;
//! * `i32` / `i64` — flip the sign bit (`x ^ MIN`), the classic two's
//!   complement → biased transform;
//! * `f32` / `f64` — the IEEE-754 total-order transform: positive floats get
//!   their sign bit set, negative floats are bitwise inverted. The induced
//!   order is exactly [`f32::total_cmp`] / [`f64::total_cmp`].
//!
//! ## NaN ordering policy (floats)
//!
//! Float keys are ordered by the IEEE-754 **totalOrder** predicate, i.e. the
//! order of [`f32::total_cmp`]:
//!
//! ```text
//! -NaN < -∞ < … < -0.0 < +0.0 < … < +∞ < +NaN
//! ```
//!
//! Consequently a *top-k largest* query ranks positive NaNs above `+∞`,
//! while a *top-k smallest* query (e.g. [`dr_topk_min`] over k-NN distances,
//! which are non-negative, possibly `NaN` when a computation misfired) ranks
//! positive NaNs **last** — after every real distance — so NaNs never
//! displace a genuine neighbour. Distinct NaN payloads round-trip bit-exactly
//! through the bijection; no canonicalization is performed. `-0.0` and `+0.0`
//! are distinct keys, with `-0.0 < +0.0`.
//!
//! [`dr_topk_min`]: https://docs.rs/drtopk-core
//!
//! ## Contract
//!
//! For every implementation the following must hold (and is exercised by the
//! unit tests below plus the workspace-level property tests):
//!
//! 1. **Bijection** — `from_bits(to_bits(x))` is bit-identical to `x` for
//!    every value, including every NaN payload;
//! 2. **Order preservation** — `a` precedes `b` in the key's documented
//!    total order iff `a.to_bits() < b.to_bits()` as unsigned integers;
//! 3. **Zero cost for `u32`** — `to_bits`/`from_bits` are the identity, so
//!    the monomorphized `u32` pipeline is byte-for-byte the pre-generic one.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{BitAnd, BitOr, BitOrAssign, BitXor, Not, Shl, Shr};

/// Unsigned integer types usable as a radix space (`u32`, `u64`).
///
/// This is the minimal integer surface the radix/bucket/flag selection
/// kernels need: bitwise ops, shifts by a `u32`, ordering, and widening
/// conversions for exact range arithmetic.
pub trait KeyBits:
    Copy
    + Ord
    + Eq
    + Hash
    + Debug
    + Send
    + Sync
    + 'static
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitOrAssign
    + BitXor<Output = Self>
    + Not<Output = Self>
    + Shl<u32, Output = Self>
    + Shr<u32, Output = Self>
{
    /// Width of the radix space in bits.
    const BITS: u32;
    /// All-zero bit pattern (the minimum of the space).
    const ZERO: Self;
    /// All-one bit pattern (the maximum of the space).
    const MAX: Self;

    /// Truncating conversion from `u64` (used to build digit masks).
    fn from_u64(x: u64) -> Self;
    /// Widening conversion to `u128` for exact range arithmetic.
    fn to_u128(self) -> u128;
    /// Truncating conversion from `u128` (inverse of [`Self::to_u128`] for
    /// in-range values).
    fn from_u128(x: u128) -> Self;
    /// The low bits as a digit index (callers mask before converting).
    fn as_digit(self) -> usize {
        self.to_u128() as usize
    }
}

impl KeyBits for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;
    const MAX: Self = u32::MAX;

    #[inline(always)]
    fn from_u64(x: u64) -> Self {
        x as u32
    }

    #[inline(always)]
    fn to_u128(self) -> u128 {
        self as u128
    }

    #[inline(always)]
    fn from_u128(x: u128) -> Self {
        x as u32
    }
}

impl KeyBits for u64 {
    const BITS: u32 = 64;
    const ZERO: Self = 0;
    const MAX: Self = u64::MAX;

    #[inline(always)]
    fn from_u64(x: u64) -> Self {
        x
    }

    #[inline(always)]
    fn to_u128(self) -> u128 {
        self as u128
    }

    #[inline(always)]
    fn from_u128(x: u128) -> Self {
        x as u64
    }
}

/// A key type every top-k algorithm in the workspace can select over.
///
/// See the [module documentation](self) for the bijection contract and the
/// float NaN ordering policy.
pub trait TopKKey: Copy + Default + PartialEq + PartialOrd + Debug + Send + Sync + 'static {
    /// The unsigned radix space this key maps into.
    type Bits: KeyBits;

    /// Order-preserving bijection into the radix space.
    fn to_bits(self) -> Self::Bits;

    /// Inverse of [`Self::to_bits`].
    fn from_bits(bits: Self::Bits) -> Self;

    /// Total-order comparison induced by the bijection.
    #[inline(always)]
    fn key_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.to_bits().cmp(&other.to_bits())
    }
}

impl TopKKey for u32 {
    type Bits = u32;

    #[inline(always)]
    fn to_bits(self) -> u32 {
        self
    }

    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        bits
    }
}

impl TopKKey for u64 {
    type Bits = u64;

    #[inline(always)]
    fn to_bits(self) -> u64 {
        self
    }

    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl TopKKey for i32 {
    type Bits = u32;

    #[inline(always)]
    fn to_bits(self) -> u32 {
        (self as u32) ^ (1 << 31)
    }

    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        (bits ^ (1 << 31)) as i32
    }
}

impl TopKKey for i64 {
    type Bits = u64;

    #[inline(always)]
    fn to_bits(self) -> u64 {
        (self as u64) ^ (1 << 63)
    }

    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        (bits ^ (1 << 63)) as i64
    }
}

impl TopKKey for f32 {
    type Bits = u32;

    #[inline(always)]
    fn to_bits(self) -> u32 {
        let b = f32::to_bits(self);
        // IEEE-754 total-order transform: negatives are bitwise inverted
        // (reversing their magnitude order), non-negatives get the sign bit.
        if b >> 31 == 1 {
            !b
        } else {
            b ^ (1 << 31)
        }
    }

    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        if bits >> 31 == 1 {
            f32::from_bits(bits ^ (1 << 31))
        } else {
            f32::from_bits(!bits)
        }
    }
}

impl TopKKey for f64 {
    type Bits = u64;

    #[inline(always)]
    fn to_bits(self) -> u64 {
        let b = f64::to_bits(self);
        if b >> 63 == 1 {
            !b
        } else {
            b ^ (1 << 63)
        }
    }

    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        if bits >> 63 == 1 {
            f64::from_bits(bits ^ (1 << 63))
        } else {
            f64::from_bits(!bits)
        }
    }
}

/// Order-reversing adapter: `Desc<K>` is a [`TopKKey`] whose order is the
/// *reverse* of `K`'s, obtained by complementing the bits (itself an
/// order-reversing bijection of the radix space).
///
/// This is how `dr_topk_min` and friends answer top-k-*smallest* queries
/// with the top-k-largest machinery and zero per-element work: the layout is
/// `#[repr(transparent)]`, so a `&[K]` reinterprets as `&[Desc<K>]` without
/// copying or flipping anything in memory.
///
/// `PartialEq`/`PartialOrd` are implemented via the (complemented) bits, so
/// `Desc(a) < Desc(b)` iff `b` precedes `a` in `K`'s order — the contract
/// rule 2 of the [module documentation](self) holds for `Desc` too. A side
/// effect of bit-space equality is that for float keys equal-bit NaNs
/// compare equal and `-0.0 != 0.0`, consistent with the total order.
#[derive(Debug, Clone, Copy, Default)]
#[repr(transparent)]
pub struct Desc<K>(pub K);

impl<K: TopKKey> PartialEq for Desc<K> {
    fn eq(&self, other: &Self) -> bool {
        TopKKey::to_bits(*self) == TopKKey::to_bits(*other)
    }
}

impl<K: TopKKey> PartialOrd for Desc<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(TopKKey::to_bits(*self).cmp(&TopKKey::to_bits(*other)))
    }
}

impl<K: TopKKey> TopKKey for Desc<K> {
    type Bits = K::Bits;

    #[inline(always)]
    fn to_bits(self) -> K::Bits {
        !self.0.to_bits()
    }

    #[inline(always)]
    fn from_bits(bits: K::Bits) -> Self {
        Desc(K::from_bits(!bits))
    }
}

/// Sort a key slice in descending key order (largest first).
pub fn sort_keys_desc<K: TopKKey>(keys: &mut [K]) {
    keys.sort_unstable_by_key(|k| std::cmp::Reverse(k.to_bits()));
}

/// Sort a key slice in ascending key order (smallest first).
pub fn sort_keys_asc<K: TopKKey>(keys: &mut [K]) {
    keys.sort_unstable_by_key(|k| k.to_bits());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trait-disambiguated `to_bits` (floats also have an inherent
    /// `to_bits`, which is *not* the order-preserving one).
    fn kbits<K: TopKKey>(k: K) -> K::Bits {
        TopKKey::to_bits(k)
    }

    fn assert_order_preserving<K: TopKKey>(sorted: &[K]) {
        for w in sorted.windows(2) {
            assert!(
                w[0].to_bits() < w[1].to_bits(),
                "bits order must follow key order: {:?} !< {:?}",
                w[0],
                w[1]
            );
        }
    }

    fn assert_round_trip<K: TopKKey>(values: &[K]) {
        for &v in values {
            let rt = K::from_bits(v.to_bits());
            // compare through bits so NaN payloads are checked bit-exactly
            assert_eq!(rt.to_bits(), v.to_bits(), "round trip of {v:?}");
        }
    }

    #[test]
    fn unsigned_keys_are_identity() {
        assert_eq!(7u32.to_bits(), 7);
        assert_eq!(u32::from_bits(7), 7);
        assert_eq!(7u64.to_bits(), 7);
        assert_order_preserving(&[0u32, 1, 2, u32::MAX]);
        assert_order_preserving(&[0u64, 1, 1 << 40, u64::MAX]);
        assert_round_trip(&[0u64, u64::MAX, 1 << 63]);
    }

    #[test]
    fn signed_keys_preserve_order_across_zero() {
        assert_order_preserving(&[i32::MIN, -1, 0, 1, i32::MAX]);
        assert_order_preserving(&[i64::MIN, -(1 << 40), -1, 0, 1, i64::MAX]);
        assert_round_trip(&[i32::MIN, -1, 0, i32::MAX]);
        assert_round_trip(&[i64::MIN, -1, 0, i64::MAX]);
    }

    #[test]
    fn float_keys_follow_total_cmp() {
        let sorted = [
            -f32::NAN,
            f32::NEG_INFINITY,
            f32::MIN,
            -1.0,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.0,
            f32::MAX,
            f32::INFINITY,
            f32::NAN,
        ];
        assert_order_preserving(&sorted);
        assert_round_trip(&sorted);
        // the induced order is exactly total_cmp
        for a in sorted {
            for b in sorted {
                assert_eq!(kbits(a).cmp(&kbits(b)), a.total_cmp(&b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn f64_keys_follow_total_cmp() {
        let sorted = [
            -f64::NAN,
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            2.5,
            f64::INFINITY,
            f64::NAN,
        ];
        assert_order_preserving(&sorted);
        assert_round_trip(&sorted);
        for a in sorted {
            for b in sorted {
                assert_eq!(kbits(a).cmp(&kbits(b)), a.total_cmp(&b));
            }
        }
    }

    #[test]
    fn nan_payloads_round_trip_bit_exactly() {
        for raw in [0x7FC0_0001u32, 0x7F80_0F00, 0xFFC0_0002, 0xFF80_1234] {
            let v = f32::from_bits(raw);
            assert!(v.is_nan());
            let rt = <f32 as TopKKey>::from_bits(TopKKey::to_bits(v));
            assert_eq!(rt.to_bits(), raw, "payload {raw:#x} must survive");
        }
    }

    #[test]
    fn desc_reverses_the_order() {
        let asc = [1.0f32, 2.0, 3.0];
        let desc: Vec<Desc<f32>> = asc.iter().map(|&x| Desc(x)).collect();
        for w in desc.windows(2) {
            assert!(w[0].to_bits() > w[1].to_bits());
        }
        assert_round_trip(&desc);
        // PartialOrd follows the reversed (bits) order, matching contract
        // rule 2, not the wrapped key's order.
        assert!(Desc(1.0f32) > Desc(2.0f32));
        assert!(Desc(5i64) < Desc(-5i64));
        assert_eq!(Desc(f32::NAN), Desc(f32::NAN));
        assert_ne!(Desc(-0.0f32), Desc(0.0f32));
        // repr(transparent): same size and alignment as the wrapped key
        assert_eq!(std::mem::size_of::<Desc<f64>>(), std::mem::size_of::<f64>());
    }

    #[test]
    fn sort_helpers_sort_both_ways() {
        let mut v = [3.0f32, f32::NAN, -1.0, 0.0];
        sort_keys_asc(&mut v);
        assert_eq!(&v[..3], &[-1.0, 0.0, 3.0]);
        assert!(v[3].is_nan());
        sort_keys_desc(&mut v);
        assert!(v[0].is_nan());
        assert_eq!(&v[1..], &[3.0, 0.0, -1.0]);
    }

    #[test]
    fn key_cmp_matches_bits() {
        assert_eq!((-3i64).key_cmp(&4), std::cmp::Ordering::Less);
        assert_eq!(4u32.key_cmp(&4), std::cmp::Ordering::Equal);
        assert_eq!(
            f32::NAN.key_cmp(&f32::INFINITY),
            std::cmp::Ordering::Greater
        );
    }
}
