//! Priority-queue (min-heap) top-k — the textbook CPU algorithm.
//!
//! The paper's introduction describes this as the most efficient approach on
//! single- and multi-core systems, but one that does not map to GPUs because
//! merging thousands of thread-local queues requires expensive global
//! synchronization. It is included here both as a CPU reference point and to
//! let the examples/benches show the CPU-vs-GPU crossover.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::key::TopKKey;
use crate::result::TopKResult;
use gpu_sim::KernelStats;

/// Single-threaded min-heap top-k over `data`.
///
/// A size-`k` min-heap slides over the input; each element larger than the
/// heap minimum replaces it. The heap orders elements by their
/// [`TopKKey::to_bits`] image, which gives floats the documented
/// `total_cmp` order. `stats` stays empty (no simulated device is
/// involved); `time_ms` is the measured host wall-clock time.
pub fn priority_queue_topk<K: TopKKey>(data: &[K], k: usize) -> TopKResult<K> {
    let k = k.min(data.len());
    if k == 0 {
        return TopKResult::from_values(Vec::new(), KernelStats::default(), 0.0);
    }
    let started = Instant::now();
    let mut heap: BinaryHeap<Reverse<K::Bits>> = BinaryHeap::with_capacity(k + 1);
    for &x in data.iter().take(k) {
        heap.push(Reverse(x.to_bits()));
    }
    for &x in data.iter().skip(k) {
        // peek is O(1); only elements beating the current minimum pay the
        // O(log k) heap update.
        if x.to_bits() > heap.peek().expect("heap is non-empty").0 {
            heap.pop();
            heap.push(Reverse(x.to_bits()));
        }
    }
    let values: Vec<K> = heap.into_iter().map(|Reverse(v)| K::from_bits(v)).collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    TopKResult::from_values(values, KernelStats::default(), wall_ms)
}

/// Multi-threaded min-heap top-k: each worker keeps a local heap over its
/// chunk, and the local results are merged at the end — the structure whose
/// GPU-scale synchronization cost the paper calls out.
pub fn parallel_priority_queue_topk<K: TopKKey>(
    data: &[K],
    k: usize,
    workers: usize,
) -> TopKResult<K> {
    let k = k.min(data.len());
    if k == 0 {
        return TopKResult::from_values(Vec::new(), KernelStats::default(), 0.0);
    }
    let workers = workers.max(1).min(data.len());
    let started = Instant::now();
    let mut partials: Vec<Vec<K>> = Vec::with_capacity(workers);
    scoped_partial_topk(data, k, workers, &mut partials);
    let mut merged: Vec<K> = partials.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|v| Reverse(v.to_bits()));
    merged.truncate(k);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    TopKResult::from_values(merged, KernelStats::default(), wall_ms)
}

fn scoped_partial_topk<K: TopKKey>(
    data: &[K],
    k: usize,
    workers: usize,
    partials: &mut Vec<Vec<K>>,
) {
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let range = gpu_sim::chunk_range(data.len(), workers, w);
            let chunk = &data[range];
            handles.push(scope.spawn(move || priority_queue_topk(chunk, k).values));
        }
        for h in handles {
            partials.push(h.join().expect("priority-queue worker panicked"));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference_topk;

    #[test]
    fn sequential_matches_reference() {
        let data = topk_datagen::uniform(1 << 14, 42);
        for &k in &[1usize, 7, 255, 5000] {
            assert_eq!(
                priority_queue_topk(&data, k).values,
                reference_topk(&data, k)
            );
        }
        assert!(priority_queue_topk(&data, 0).is_empty());
        assert_eq!(
            priority_queue_topk(&[3, 1], 10).values,
            vec![3, 1],
            "k larger than |V| clamps"
        );
    }

    #[test]
    fn parallel_matches_reference() {
        let data = topk_datagen::customized(1 << 14, 5);
        for &workers in &[1usize, 2, 7, 16] {
            for &k in &[1usize, 64, 1000] {
                assert_eq!(
                    parallel_priority_queue_topk(&data, k, workers).values,
                    reference_topk(&data, k),
                    "workers={workers} k={k}"
                );
            }
        }
    }

    #[test]
    fn handles_duplicates() {
        let data = vec![9u32; 100];
        assert_eq!(priority_queue_topk(&data, 3).values, vec![9, 9, 9]);
        assert_eq!(
            parallel_priority_queue_topk(&data, 3, 4).values,
            vec![9, 9, 9]
        );
    }

    #[test]
    fn records_wall_clock_time() {
        let data = topk_datagen::uniform(1 << 16, 3);
        let r = priority_queue_topk(&data, 128);
        assert!(r.time_ms >= 0.0);
        assert!(r.stats.is_empty());
    }
}
