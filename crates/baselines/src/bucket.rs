//! GGKS-style bucket top-k (Alabi et al.), generic over any [`TopKKey`].
//!
//! Bucket select first finds the min/max of the input, splits that value
//! range into equal-width buckets, histograms the candidates, keeps only the
//! bucket that contains the k-th largest element and repeats on the narrowed
//! value range until the bucket of interest is pinned down to a single value
//! (or the remaining candidates can be resolved directly).
//!
//! Bucketing happens in the key's radix space ([`TopKKey::Bits`]): the
//! order-preserving bijection makes equal-width *bit-space* buckets a valid
//! monotone partition for every key type (for floats the buckets are not
//! equal-width in value space, which affects only the refinement rate, not
//! correctness). Range arithmetic is done in `u128` so 64-bit key spaces
//! cannot overflow.
//!
//! Unlike radix select, the number of iterations and the rate at which the
//! candidate set shrinks depend entirely on the *value distribution*: on the
//! paper's customized distribution (CD) the bucket of interest keeps the
//! majority of the candidates at every iteration, which is the instability
//! Figure 4 demonstrates and Dr. Top-k removes.

use gpu_sim::{AtomicBuffer, AtomicCounter, Device, KernelStats};

use crate::key::{KeyBits, TopKKey};
use crate::radix::gather_topk;
use crate::result::TopKResult;

/// Configuration of the bucket top-k baseline.
#[derive(Debug, Clone)]
pub struct BucketConfig {
    /// Number of equal-width buckets per iteration.
    pub num_buckets: usize,
    /// Elements assigned to each warp in scan kernels.
    pub elems_per_warp: usize,
    /// Safety cap on refinement iterations.
    pub max_iterations: usize,
}

impl Default for BucketConfig {
    fn default() -> Self {
        BucketConfig {
            num_buckets: 256,
            elems_per_warp: 8192,
            max_iterations: 64,
        }
    }
}

/// Outcome of the bucket k-selection.
#[derive(Debug, Clone)]
pub struct BucketSelectOutcome<K: TopKKey = u32> {
    /// The k-th largest value.
    pub threshold: K,
    /// Number of refinement iterations executed (excluding min/max).
    pub iterations: usize,
    /// Counters accumulated by the selection kernels.
    pub stats: KernelStats,
    /// Modeled selection time in milliseconds.
    pub time_ms: f64,
}

/// Find the global min and max of `data` (in radix space) with one
/// warp-reduction kernel.
fn min_max<B: KeyBits>(
    device: &Device,
    data: &[B],
    elems_per_warp: usize,
) -> (B, B, KernelStats, f64) {
    let num_warps = data.len().div_ceil(elems_per_warp).max(1);
    let launch = device.launch("baseline_bucket_minmax", num_warps, |ctx| {
        let chunk = ctx.chunk_of(data.len());
        let slice = ctx.read_coalesced(&data[chunk]);
        let mut lo = B::MAX;
        let mut hi = B::ZERO;
        for &x in slice {
            lo = lo.min(x);
            hi = hi.max(x);
            ctx.record_alu(2);
        }
        let hi = ctx.warp_reduce_max(hi);
        let lo = ctx.warp_reduce_min_lanes(&[lo]);
        (lo, hi)
    });
    let mut lo = B::MAX;
    let mut hi = B::ZERO;
    for (l, h) in &launch.output {
        lo = lo.min(*l);
        hi = hi.max(*h);
    }
    (lo, hi, launch.stats, launch.time_ms)
}

/// Bucket **k-selection**: find the k-th largest value of `data`
/// (1 ≤ k ≤ |data|).
pub fn bucket_select_kth<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &BucketConfig,
) -> BucketSelectOutcome<K> {
    assert!(k >= 1 && k <= data.len(), "k must be in 1..=|V|");
    assert!(config.num_buckets >= 2, "need at least two buckets");

    let bits: Vec<K::Bits> = data.iter().map(|x| x.to_bits()).collect();
    let (mut lo, mut hi, mut stats, mut time_ms) = min_max(device, &bits, config.elems_per_warp);
    let mut k_remaining = k;
    let mut candidates: Vec<K::Bits> = bits;
    let mut iterations = 0usize;

    // Special case: k == 1 is answered by the min/max kernel alone, which is
    // why the paper notes that "bucket top-k performs fairly well when k=1".
    if k == 1 {
        return BucketSelectOutcome {
            threshold: K::from_bits(hi),
            iterations: 0,
            stats,
            time_ms,
        };
    }

    let nb = config.num_buckets;
    loop {
        iterations += 1;
        if lo == hi || candidates.len() <= 1 || iterations > config.max_iterations {
            // All remaining candidates share one value (or we hit the cap).
            break;
        }
        if candidates.len() == k_remaining {
            // every remaining candidate is part of the top-k: the threshold
            // is their minimum, found with one more reduction over them.
            let num_warps = candidates.len().div_ceil(config.elems_per_warp).max(1);
            let cand = &candidates;
            let launch = device.launch("baseline_bucket_min_of_rest", num_warps, |ctx| {
                let chunk = ctx.chunk_of(cand.len());
                let slice = ctx.read_coalesced(&cand[chunk]);
                let m = slice.iter().copied().min().unwrap_or(K::Bits::MAX);
                ctx.warp_reduce_min_lanes(&[m])
            });
            stats += launch.stats;
            time_ms += launch.time_ms;
            let threshold = launch.output.into_iter().min().unwrap_or(lo);
            return BucketSelectOutcome {
                threshold: K::from_bits(threshold),
                iterations,
                stats,
                time_ms,
            };
        }

        let range = hi.to_u128() - lo.to_u128() + 1;
        let width = range.div_ceil(nb as u128).max(1);
        let lo_wide = lo.to_u128();
        let bucket_of = |x: K::Bits| -> usize {
            ((x.to_u128() - lo_wide) / width).min(nb as u128 - 1) as usize
        };

        // --- histogram over the current candidates ---------------------------
        let num_warps = candidates.len().div_ceil(config.elems_per_warp).max(1);
        let hist_buf = AtomicBuffer::zeroed(nb);
        let cand = &candidates;
        let launch = device.launch(
            &format!("baseline_bucket_hist_iter{iterations}"),
            num_warps,
            |ctx| {
                let chunk = ctx.chunk_of(cand.len());
                let slice = ctx.read_coalesced(&cand[chunk]);
                let mut local = vec![0u32; nb];
                for &x in slice {
                    local[bucket_of(x)] += 1;
                    ctx.record_alu(3);
                }
                for (b, &c) in local.iter().enumerate() {
                    if c > 0 {
                        hist_buf.fetch_add(ctx, b, c);
                    }
                }
            },
        );
        stats += launch.stats;
        time_ms += launch.time_ms;
        let histogram = hist_buf.to_vec();

        // --- locate the bucket containing the k-th largest -------------------
        let mut chosen = 0usize;
        let mut above = 0usize;
        for b in (0..nb).rev() {
            let count = histogram[b] as usize;
            if above + count >= k_remaining {
                chosen = b;
                break;
            }
            above += count;
        }
        k_remaining -= above;

        let new_lo_wide = lo.to_u128() + chosen as u128 * width;
        let new_hi_wide = (new_lo_wide + width - 1).min(hi.to_u128());
        let (new_lo, new_hi) = (
            K::Bits::from_u128(new_lo_wide),
            K::Bits::from_u128(new_hi_wide),
        );

        // --- compact the candidates into the chosen bucket -------------------
        let cursor = AtomicCounter::new(0);
        let launch = device.launch(
            &format!("baseline_bucket_compact_iter{iterations}"),
            num_warps,
            |ctx| {
                let chunk = ctx.chunk_of(cand.len());
                let slice = ctx.read_coalesced(&cand[chunk]);
                let mut kept: Vec<K::Bits> = Vec::new();
                for &x in slice {
                    if x >= new_lo && x <= new_hi {
                        kept.push(x);
                    }
                    ctx.record_alu(2);
                }
                if !kept.is_empty() {
                    cursor.fetch_add(ctx, kept.len() as u64);
                    ctx.record_store_coalesced::<K::Bits>(kept.len());
                }
                kept
            },
        );
        stats += launch.stats;
        time_ms += launch.time_ms;
        candidates = launch.output.into_iter().flatten().collect();
        lo = new_lo;
        hi = new_hi;

        if candidates.len() == 1 {
            return BucketSelectOutcome {
                threshold: K::from_bits(candidates[0]),
                iterations,
                stats,
                time_ms,
            };
        }
    }

    BucketSelectOutcome {
        threshold: K::from_bits(lo),
        iterations,
        stats,
        time_ms,
    }
}

/// Full bucket **top-k**: selection followed by the shared gather pass.
pub fn bucket_topk<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &BucketConfig,
) -> TopKResult<K> {
    let k = k.min(data.len());
    if k == 0 {
        return TopKResult::from_values(Vec::new(), KernelStats::default(), 0.0);
    }
    let select = bucket_select_kth(device, data, k, config);
    gather_topk(
        device,
        data,
        k,
        select.threshold,
        config.elems_per_warp,
        select.stats,
        select.time_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{reference_kth, reference_topk};
    use gpu_sim::DeviceSpec;
    use topk_datagen::Distribution;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn bucket_select_matches_reference_on_all_distributions() {
        let dev = device();
        for dist in Distribution::SYNTHETIC {
            let data = topk_datagen::generate(dist, 1 << 14, 5);
            for &k in &[1usize, 2, 100, 2048] {
                let got = bucket_select_kth(&dev, &data, k, &BucketConfig::default());
                assert_eq!(got.threshold, reference_kth(&data, k), "{dist} k={k}");
            }
        }
    }

    #[test]
    fn bucket_topk_matches_reference() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 8);
        for &k in &[1usize, 17, 333, 4096] {
            let got = bucket_topk(&dev, &data, k, &BucketConfig::default());
            assert_eq!(got.values, reference_topk(&data, k), "k={k}");
        }
    }

    #[test]
    fn bucket_topk_handles_duplicates_and_tiny_inputs() {
        let dev = device();
        let data = vec![42u32; 500];
        let got = bucket_topk(&dev, &data, 5, &BucketConfig::default());
        assert_eq!(got.values, vec![42u32; 5]);
        let two = vec![9u32, 3];
        assert_eq!(
            bucket_topk(&dev, &two, 2, &BucketConfig::default()).values,
            vec![9, 3]
        );
        assert!(bucket_topk(&dev, &two, 0, &BucketConfig::default()).is_empty());
    }

    #[test]
    fn bucket_topk_is_generic_over_keys() {
        let dev = device();
        let signed: Vec<i32> = (-2000i32..2000).map(|x| x.wrapping_mul(7919)).collect();
        for &k in &[1usize, 9, 500] {
            assert_eq!(
                bucket_topk(&dev, &signed, k, &BucketConfig::default()).values,
                reference_topk(&signed, k),
                "i32 k={k}"
            );
        }
        let floats: Vec<f64> = (0..3000)
            .map(|i| ((i * 37) % 1000) as f64 - 500.0 + 0.25)
            .collect();
        assert_eq!(
            bucket_topk(&dev, &floats, 11, &BucketConfig::default()).values,
            reference_topk(&floats, 11)
        );
    }

    #[test]
    fn k_equal_one_needs_no_refinement() {
        let dev = device();
        let data = topk_datagen::normal(1 << 14, 2);
        let got = bucket_select_kth(&dev, &data, 1, &BucketConfig::default());
        assert_eq!(got.iterations, 0);
        assert_eq!(got.threshold, *data.iter().max().unwrap());
    }

    #[test]
    fn customized_distribution_forces_more_work_than_uniform() {
        let dev = device();
        let n = 1 << 16;
        let k = 64;
        let ud = topk_datagen::uniform(n, 3);
        let cd = topk_datagen::customized(n, 3);
        let got_ud = bucket_select_kth(&dev, &ud, k, &BucketConfig::default());
        let got_cd = bucket_select_kth(&dev, &cd, k, &BucketConfig::default());
        // CD keeps the majority of candidates in the bucket of interest, so
        // it must scan strictly more data overall than UD does.
        assert!(
            got_cd.stats.global_loaded_bytes > got_ud.stats.global_loaded_bytes,
            "CD loaded {} bytes, UD loaded {} bytes",
            got_cd.stats.global_loaded_bytes,
            got_ud.stats.global_loaded_bytes
        );
        assert!(got_cd.iterations >= got_ud.iterations);
    }

    #[test]
    fn narrow_range_normal_distribution_terminates() {
        // ND values concentrate within ~100 of 1e8: the range collapses after
        // a couple of iterations and the loop must still terminate correctly.
        let dev = device();
        let data = topk_datagen::normal(1 << 14, 13);
        let got = bucket_select_kth(&dev, &data, 77, &BucketConfig::default());
        assert_eq!(got.threshold, reference_kth(&data, 77));
        assert!(got.iterations <= 8);
    }
}
