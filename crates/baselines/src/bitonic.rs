//! Bitonic top-k (Shanbhag, Pirk and Madden, SIGMOD'18).
//!
//! Bitonic top-k repeatedly merges pairs of sorted length-`k` sequences into
//! a bitonic sequence of length `2k` and keeps only its top half, halving the
//! surviving vector at every iteration until exactly `k` elements remain.
//! The first iteration sorts each `2k`-element chunk locally (in shared
//! memory); each later iteration loads the surviving elements, merges them
//! in shared memory and writes back half of them.
//!
//! The workload is **data independent** — the number of iterations and the
//! traffic depend only on `|V|` and `k` — which is why the paper's Figure 4
//! shows bitonic as the *stable* baseline. Its weakness, also modeled here,
//! is the shared-memory footprint: each merge needs `2k` elements resident
//! per thread block, so for `k` beyond a few hundred the achievable occupancy
//! collapses and performance falls off a cliff (the paper caps the original
//! implementation at `k ≤ 256`).

use gpu_sim::{Device, KernelStats, WARP_SIZE};
use std::cmp::Reverse;

use crate::key::TopKKey;
use crate::result::TopKResult;

/// Configuration of the bitonic top-k baseline.
#[derive(Debug, Clone)]
pub struct BitonicConfig {
    /// Number of elements each thread block keeps resident in shared memory
    /// per merge (the `2k` working set is padded up to this granularity).
    pub elems_per_warp: usize,
    /// Occupancy threshold: the largest `k` for which the merge working set
    /// still allows full occupancy. The paper reports the original
    /// implementation overflowing shared memory beyond `k = 256`.
    pub full_occupancy_k: usize,
}

impl Default for BitonicConfig {
    fn default() -> Self {
        BitonicConfig {
            elems_per_warp: 8192,
            full_occupancy_k: 256,
        }
    }
}

/// Bitonic **top-k** of `data`. The merge network is comparison-based, so
/// genericity over [`TopKKey`] costs nothing: elements are compared in the
/// key's order-preserving radix space.
pub fn bitonic_topk<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &BitonicConfig,
) -> TopKResult<K> {
    let k = k.min(data.len());
    if k == 0 {
        return TopKResult::from_values(Vec::new(), KernelStats::default(), 0.0);
    }
    let mut stats = KernelStats::default();
    let mut time_ms = 0.0;

    // Occupancy penalty: once the 2k-element working set exceeds what a
    // fully-occupied SM can hold per block, the number of resident blocks
    // drops roughly in proportion to k, serializing the shared-memory
    // traffic by the same factor (the paper's k > 256 cliff).
    let occupancy_penalty = k.div_ceil(config.full_occupancy_k.max(1)).max(1);

    // Iteration 0: sort every 2k chunk and keep its top k.
    // Iterations 1..: merge adjacent k-sequences (a bitonic 2k merge) and
    // keep the top k of each, halving the survivors every time.
    let mut survivors: Vec<K> = data.to_vec();
    let mut iteration = 0usize;
    while survivors.len() > k {
        let chunk = (2 * k).max(2);
        let num_chunks = survivors.len().div_ceil(chunk);
        // cap the number of simulated warps; each warp loops over its share
        // of the 2k chunks
        let num_warps = num_chunks.clamp(1, 4096);
        let input = &survivors;
        let merge_depth = (usize::BITS - (chunk - 1).leading_zeros()) as u64; // log2(2k)
        let launch = device.launch(
            &format!("baseline_bitonic_merge_iter{iteration}"),
            num_warps,
            |ctx| {
                // each simulated warp handles its share of the 2k chunks
                let chunk_range = ctx.chunk_of(num_chunks);
                let mut kept: Vec<K> = Vec::new();
                for c in chunk_range {
                    let start = c * chunk;
                    let end = ((c + 1) * chunk).min(input.len());
                    let slice = ctx.read_coalesced(&input[start..end]);
                    // bitonic merge of the 2k working set in shared memory:
                    // log2(2k) stages, each touching every element once.
                    let ops = (slice.len() as u64) * merge_depth * occupancy_penalty as u64;
                    ctx.record_shared(2 * ops);
                    ctx.record_alu(ops);
                    if iteration == 0 {
                        // the initial local sort is a full bitonic sort:
                        // log2(2k)·(log2(2k)+1)/2 stages instead of log2(2k)
                        let extra = (slice.len() as u64) * merge_depth * (merge_depth + 1) / 2
                            * occupancy_penalty as u64;
                        ctx.record_shared(2 * extra);
                        ctx.record_alu(extra);
                    }
                    ctx.syncthreads();
                    let mut local: Vec<K> = slice.to_vec();
                    local.sort_unstable_by_key(|v| Reverse(v.to_bits()));
                    local.truncate(k);
                    ctx.record_store_coalesced::<K>(local.len());
                    kept.extend(local);
                }
                kept
            },
        );
        stats += launch.stats;
        time_ms += launch.time_ms;
        survivors = launch.output.into_iter().flatten().collect();
        iteration += 1;
        // Defensive: guarantee progress even for degenerate k / |V| combos.
        if survivors.len() <= k {
            break;
        }
    }

    survivors.sort_unstable_by_key(|v| Reverse(v.to_bits()));
    survivors.truncate(k);
    TopKResult::from_values(survivors, stats, time_ms)
}

/// Convenience: the number of merge iterations bitonic top-k needs for a
/// vector of `n` elements, ⌈log2(n / k)⌉.
pub fn bitonic_iterations(n: usize, k: usize) -> usize {
    if n <= k || k == 0 {
        return 0;
    }
    let ratio = n.div_ceil(k);
    (usize::BITS - (ratio - 1).leading_zeros()) as usize
}

/// Warp size re-export used by sizing heuristics in callers.
pub const BITONIC_WARP: usize = WARP_SIZE;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference_topk;
    use gpu_sim::DeviceSpec;
    use topk_datagen::Distribution;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn bitonic_matches_reference_across_distributions() {
        let dev = device();
        for dist in Distribution::SYNTHETIC {
            let data = topk_datagen::generate(dist, 1 << 14, 21);
            for &k in &[1usize, 8, 100, 1000] {
                let got = bitonic_topk(&dev, &data, k, &BitonicConfig::default());
                assert_eq!(got.values, reference_topk(&data, k), "{dist} k={k}");
            }
        }
    }

    #[test]
    fn bitonic_handles_non_power_of_two_and_edges() {
        let dev = device();
        let data = topk_datagen::uniform(10_007, 9);
        let got = bitonic_topk(&dev, &data, 37, &BitonicConfig::default());
        assert_eq!(got.values, reference_topk(&data, 37));
        assert!(bitonic_topk(&dev, &data, 0, &BitonicConfig::default()).is_empty());
        let tiny = vec![5u32, 2, 8];
        assert_eq!(
            bitonic_topk(&dev, &tiny, 3, &BitonicConfig::default()).values,
            vec![8, 5, 2]
        );
        assert_eq!(
            bitonic_topk(&dev, &tiny, 10, &BitonicConfig::default()).values,
            vec![8, 5, 2]
        );
    }

    #[test]
    fn workload_is_distribution_independent() {
        let dev = device();
        let n = 1 << 14;
        let k = 64;
        let ud = bitonic_topk(
            &dev,
            &topk_datagen::uniform(n, 3),
            k,
            &BitonicConfig::default(),
        );
        let cd = bitonic_topk(
            &dev,
            &topk_datagen::customized(n, 3),
            k,
            &BitonicConfig::default(),
        );
        assert_eq!(
            ud.stats.global_load_transactions,
            cd.stats.global_load_transactions
        );
        assert_eq!(ud.stats.shared_ops, cd.stats.shared_ops);
    }

    #[test]
    fn large_k_pays_occupancy_penalty() {
        let dev = device();
        let n = 1 << 15;
        let data = topk_datagen::uniform(n, 17);
        let small = bitonic_topk(&dev, &data, 128, &BitonicConfig::default());
        let large = bitonic_topk(&dev, &data, 2048, &BitonicConfig::default());
        // beyond k=256 the shared-memory working set forces extra serialized
        // passes, so per-element shared traffic must grow super-linearly
        let small_per_elem = small.stats.shared_ops as f64 / n as f64;
        let large_per_elem = large.stats.shared_ops as f64 / n as f64;
        assert!(
            large_per_elem > 2.0 * small_per_elem,
            "expected occupancy cliff: {small_per_elem} vs {large_per_elem}"
        );
    }

    #[test]
    fn iteration_count_formula() {
        assert_eq!(bitonic_iterations(1 << 20, 1 << 10), 10);
        assert_eq!(bitonic_iterations(1024, 1024), 0);
        assert_eq!(bitonic_iterations(1000, 0), 0);
        assert_eq!(bitonic_iterations(1 << 14, 1), 14);
    }
}
