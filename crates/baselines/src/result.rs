//! Common result type and reference (ground-truth) helpers shared by every
//! top-k algorithm in the workspace.

use gpu_sim::KernelStats;

/// Result of a top-k computation.
///
/// `values` always contains exactly `min(k, |V|)` elements, sorted in
/// descending order. When the input contains duplicates of the k-th value,
/// ties are resolved arbitrarily but the returned *multiset* of values is
/// exact, so results can be compared against [`reference_topk`] directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The k largest values, descending.
    pub values: Vec<u32>,
    /// The k-th largest value (the selection threshold).
    pub kth_value: u32,
    /// Instrumentation counters accumulated by all kernels this computation
    /// launched.
    pub stats: KernelStats,
    /// Modeled GPU time in milliseconds (sum over launched kernels).
    pub time_ms: f64,
}

impl TopKResult {
    /// Build a result from an unsorted list of selected values.
    pub fn from_values(mut values: Vec<u32>, stats: KernelStats, time_ms: f64) -> Self {
        values.sort_unstable_by(|a, b| b.cmp(a));
        let kth_value = values.last().copied().unwrap_or(0);
        TopKResult {
            values,
            kth_value,
            stats,
            time_ms,
        }
    }

    /// Number of selected values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no values were selected (k = 0 or empty input).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// CPU reference: the `min(k, |V|)` largest values of `data`, descending.
/// Used as ground truth by every test in the workspace.
pub fn reference_topk(data: &[u32], k: usize) -> Vec<u32> {
    let k = k.min(data.len());
    if k == 0 {
        return Vec::new();
    }
    let mut copy = data.to_vec();
    // select_nth_unstable puts the (len-k)-th smallest in place with all
    // larger elements to its right: O(n) instead of a full sort.
    let split = copy.len() - k;
    copy.select_nth_unstable(split);
    let mut top: Vec<u32> = copy[split..].to_vec();
    top.sort_unstable_by(|a, b| b.cmp(a));
    top
}

/// CPU reference for the k-th largest value (k ≥ 1).
pub fn reference_kth(data: &[u32], k: usize) -> u32 {
    assert!(k >= 1 && k <= data.len(), "k out of range");
    let mut copy = data.to_vec();
    let split = copy.len() - k;
    let (_, kth, _) = copy.select_nth_unstable(split);
    *kth
}

/// Given a threshold (the k-th largest value), collect exactly `k` values:
/// everything strictly greater than the threshold plus enough copies of the
/// threshold itself to reach `k`. Panics if the threshold is not consistent
/// with `k` (fewer than `k` elements ≥ threshold).
pub fn collect_topk_by_threshold(data: &[u32], k: usize, threshold: u32) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(k);
    let mut ties = 0usize;
    for &v in data {
        if v > threshold {
            out.push(v);
        } else if v == threshold {
            ties += 1;
        }
    }
    assert!(
        out.len() <= k && out.len() + ties >= k,
        "inconsistent threshold: {} above, {} ties, k={}",
        out.len(),
        ties,
        k
    );
    let need = k - out.len();
    out.extend(std::iter::repeat_n(threshold, need));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_topk_simple() {
        let data = vec![5, 1, 9, 3, 9, 2];
        assert_eq!(reference_topk(&data, 3), vec![9, 9, 5]);
        assert_eq!(reference_topk(&data, 1), vec![9]);
        assert_eq!(reference_topk(&data, 0), Vec::<u32>::new());
        assert_eq!(reference_topk(&data, 100), vec![9, 9, 5, 3, 2, 1]);
        assert_eq!(reference_topk(&[], 3), Vec::<u32>::new());
    }

    #[test]
    fn reference_kth_matches_sorted() {
        let data = vec![10u32, 20, 30, 40, 50];
        assert_eq!(reference_kth(&data, 1), 50);
        assert_eq!(reference_kth(&data, 3), 30);
        assert_eq!(reference_kth(&data, 5), 10);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn reference_kth_rejects_zero() {
        reference_kth(&[1, 2, 3], 0);
    }

    #[test]
    fn threshold_collection_handles_ties() {
        let data = vec![7, 7, 7, 5, 9, 7];
        // top-3 is {9, 7, 7}: threshold 7 with 4 ties present
        let got = collect_topk_by_threshold(&data, 3, 7);
        assert_eq!(got.len(), 3);
        let mut sorted = got.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sorted, vec![9, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "inconsistent threshold")]
    fn threshold_collection_rejects_bad_threshold() {
        collect_topk_by_threshold(&[1, 2, 3], 2, 3);
    }

    #[test]
    fn result_from_values_sorts_and_exposes_kth() {
        let r = TopKResult::from_values(vec![3, 9, 5], KernelStats::default(), 1.0);
        assert_eq!(r.values, vec![9, 5, 3]);
        assert_eq!(r.kth_value, 3);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        let empty = TopKResult::from_values(vec![], KernelStats::default(), 0.0);
        assert!(empty.is_empty());
        assert_eq!(empty.kth_value, 0);
    }
}
