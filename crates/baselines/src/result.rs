//! Common result type and reference (ground-truth) helpers shared by every
//! top-k algorithm in the workspace, generic over any [`TopKKey`].

use gpu_sim::KernelStats;
use std::cmp::Reverse;

use crate::key::TopKKey;

/// Result of a top-k computation.
///
/// `values` always contains exactly `min(k, |V|)` elements, sorted in
/// descending key order (the total order induced by [`TopKKey::to_bits`];
/// for floats this is the `total_cmp` order). When the input contains
/// duplicates of the k-th value, ties are resolved arbitrarily but the
/// returned *multiset* of values is exact, so results can be compared
/// against [`reference_topk`] directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult<K: TopKKey = u32> {
    /// The k largest values, descending.
    pub values: Vec<K>,
    /// The k-th largest value (the selection threshold).
    pub kth_value: K,
    /// Instrumentation counters accumulated by all kernels this computation
    /// launched.
    pub stats: KernelStats,
    /// Modeled GPU time in milliseconds (sum over launched kernels).
    pub time_ms: f64,
}

impl<K: TopKKey> TopKResult<K> {
    /// Build a result from an unsorted list of selected values.
    pub fn from_values(mut values: Vec<K>, stats: KernelStats, time_ms: f64) -> Self {
        values.sort_unstable_by_key(|v| Reverse(v.to_bits()));
        let kth_value = values.last().copied().unwrap_or_default();
        TopKResult {
            values,
            kth_value,
            stats,
            time_ms,
        }
    }

    /// Number of selected values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no values were selected (k = 0 or empty input).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// CPU reference: the `min(k, |V|)` largest values of `data`, descending.
/// Used as ground truth by every test in the workspace.
pub fn reference_topk<K: TopKKey>(data: &[K], k: usize) -> Vec<K> {
    let k = k.min(data.len());
    if k == 0 {
        return Vec::new();
    }
    let mut copy = data.to_vec();
    // select_nth_unstable puts the (len-k)-th smallest in place with all
    // larger elements to its right: O(n) instead of a full sort.
    let split = copy.len() - k;
    copy.select_nth_unstable_by_key(split, |v| v.to_bits());
    let mut top: Vec<K> = copy[split..].to_vec();
    top.sort_unstable_by_key(|v| Reverse(v.to_bits()));
    top
}

/// CPU reference: the `min(k, |V|)` *smallest* values of `data`, ascending.
/// Ground truth for the `dr_topk_min` / descending-order entry points.
pub fn reference_topk_min<K: TopKKey>(data: &[K], k: usize) -> Vec<K> {
    let k = k.min(data.len());
    if k == 0 {
        return Vec::new();
    }
    let mut copy = data.to_vec();
    copy.select_nth_unstable_by_key(k - 1, |v| v.to_bits());
    let mut bottom: Vec<K> = copy[..k].to_vec();
    bottom.sort_unstable_by_key(|v| v.to_bits());
    bottom
}

/// CPU reference for the k-th largest value (k ≥ 1).
pub fn reference_kth<K: TopKKey>(data: &[K], k: usize) -> K {
    assert!(k >= 1 && k <= data.len(), "k out of range");
    let mut copy = data.to_vec();
    let split = copy.len() - k;
    let (_, kth, _) = copy.select_nth_unstable_by_key(split, |v| v.to_bits());
    *kth
}

/// Given a threshold (the k-th largest value), collect exactly `k` values:
/// everything strictly greater than the threshold plus enough copies of the
/// threshold itself to reach `k`. Panics if the threshold is not consistent
/// with `k` (fewer than `k` elements ≥ threshold).
pub fn collect_topk_by_threshold<K: TopKKey>(data: &[K], k: usize, threshold: K) -> Vec<K> {
    let tb = threshold.to_bits();
    let mut out: Vec<K> = Vec::with_capacity(k);
    let mut ties = 0usize;
    for &v in data {
        let vb = v.to_bits();
        if vb > tb {
            out.push(v);
        } else if vb == tb {
            ties += 1;
        }
    }
    assert!(
        out.len() <= k && out.len() + ties >= k,
        "inconsistent threshold: {} above, {} ties, k={}",
        out.len(),
        ties,
        k
    );
    let need = k - out.len();
    out.extend(std::iter::repeat_n(threshold, need));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_topk_simple() {
        let data = vec![5, 1, 9, 3, 9, 2];
        assert_eq!(reference_topk(&data, 3), vec![9, 9, 5]);
        assert_eq!(reference_topk(&data, 1), vec![9]);
        assert_eq!(reference_topk(&data, 0), Vec::<u32>::new());
        assert_eq!(reference_topk(&data, 100), vec![9, 9, 5, 3, 2, 1]);
        assert_eq!(reference_topk::<u32>(&[], 3), Vec::<u32>::new());
    }

    #[test]
    fn reference_kth_matches_sorted() {
        let data = vec![10u32, 20, 30, 40, 50];
        assert_eq!(reference_kth(&data, 1), 50);
        assert_eq!(reference_kth(&data, 3), 30);
        assert_eq!(reference_kth(&data, 5), 10);
    }

    #[test]
    fn reference_helpers_are_generic_over_keys() {
        let signed = vec![-5i64, 3, -1, 7, 0];
        assert_eq!(reference_topk(&signed, 2), vec![7, 3]);
        assert_eq!(reference_kth(&signed, 4), -1);
        assert_eq!(reference_topk_min(&signed, 2), vec![-5, -1]);
        let floats = vec![1.5f32, -2.0, 0.0, f32::INFINITY];
        assert_eq!(reference_topk(&floats, 2), vec![f32::INFINITY, 1.5]);
        assert_eq!(reference_topk_min(&floats, 2), vec![-2.0, 0.0]);
        assert_eq!(reference_kth(&floats, 1), f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn reference_kth_rejects_zero() {
        reference_kth(&[1u32, 2, 3], 0);
    }

    #[test]
    fn threshold_collection_handles_ties() {
        let data = vec![7u32, 7, 7, 5, 9, 7];
        // top-3 is {9, 7, 7}: threshold 7 with 4 ties present
        let got = collect_topk_by_threshold(&data, 3, 7);
        assert_eq!(got.len(), 3);
        let mut sorted = got.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sorted, vec![9, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "inconsistent threshold")]
    fn threshold_collection_rejects_bad_threshold() {
        collect_topk_by_threshold(&[1u32, 2, 3], 2, 3);
    }

    #[test]
    fn result_from_values_sorts_and_exposes_kth() {
        let r = TopKResult::from_values(vec![3u32, 9, 5], KernelStats::default(), 1.0);
        assert_eq!(r.values, vec![9, 5, 3]);
        assert_eq!(r.kth_value, 3);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        let empty = TopKResult::from_values(Vec::<u32>::new(), KernelStats::default(), 0.0);
        assert!(empty.is_empty());
        assert_eq!(empty.kth_value, 0);
    }
}
