//! Sort-and-choose top-k (THRUST-style baseline).
//!
//! The simplest GPU approach the paper compares against: sort the entire
//! input vector with a radix sort and take the first `k` elements. This does
//! far more work than necessary — the paper's Figure 17 shows it an order of
//! magnitude slower than the dedicated top-k algorithms — but it is the
//! approach many applications still use (THRUST `sort` + slice).
//!
//! The simulated cost model charges the canonical LSD radix-sort traffic:
//! four counting passes plus four scatter passes over the full vector
//! (reads + writes), followed by reading back the `k` winners.

use gpu_sim::{Device, KernelStats};
use std::cmp::Reverse;

use crate::key::{KeyBits, TopKKey};
use crate::result::TopKResult;

/// Elements assigned to each simulated warp when scanning.
const ELEMS_PER_WARP: usize = 8192;

/// Sort-and-choose top-k: full radix sort, then take the top `k`.
///
/// Generic over [`TopKKey`]: the LSD radix sort runs over the key's radix
/// space, so a 32-bit key pays 4 byte passes and a 64-bit key pays 8.
pub fn sort_and_choose_topk<K: TopKKey>(device: &Device, data: &[K], k: usize) -> TopKResult<K> {
    let k = k.min(data.len());
    if k == 0 {
        return TopKResult::from_values(Vec::new(), KernelStats::default(), 0.0);
    }
    let mut stats = KernelStats::default();
    let mut time_ms = 0.0;

    // One LSD radix-sort pass per byte of the key: each pass histograms
    // (read all) and scatters (read all + write all, scattered by digit).
    let num_warps = data.len().div_ceil(ELEMS_PER_WARP).max(1);
    let sort_passes = K::Bits::BITS.div_ceil(8);
    for pass in 0..sort_passes {
        let launch = device.launch(&format!("baseline_sort_pass{pass}"), num_warps, |ctx| {
            let chunk = ctx.chunk_of(data.len());
            let slice = ctx.read_coalesced(&data[chunk]);
            // histogram read is the coalesced load above; the scatter write
            // goes to digit-dependent locations: charge the store as random
            // at cache-line granularity (radix sort scatters are partially
            // coalesced, one line per 32-element run on average).
            ctx.record_alu(slice.len() as u64);
            ctx.record_load_coalesced::<K>(slice.len());
            ctx.record_store_coalesced::<K>(slice.len());
        });
        stats += launch.stats;
        time_ms += launch.time_ms;
    }

    // Selection of the top k from the sorted output.
    let launch = device.launch("baseline_sort_choose", 1, |ctx| {
        ctx.record_load_coalesced::<K>(k);
        ctx.record_store_coalesced::<K>(k);
    });
    stats += launch.stats;
    time_ms += launch.time_ms;

    // The actual values: host-side sort of a copy (the simulated kernels
    // above already charged the device cost).
    let mut sorted = data.to_vec();
    sorted.sort_unstable_by_key(|v| Reverse(v.to_bits()));
    sorted.truncate(k);
    TopKResult::from_values(sorted, stats, time_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::reference_topk;
    use gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn matches_reference() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 4);
        for &k in &[1usize, 10, 1000] {
            assert_eq!(
                sort_and_choose_topk(&dev, &data, k).values,
                reference_topk(&data, k)
            );
        }
        assert!(sort_and_choose_topk(&dev, &data, 0).is_empty());
    }

    #[test]
    fn charges_full_sort_traffic() {
        let dev = device();
        let n = 1 << 16;
        let data = topk_datagen::uniform(n, 4);
        let got = sort_and_choose_topk(&dev, &data, 32);
        // 4 passes × (2 reads + 1 write) of n u32 each ≈ 12n·4 bytes + ε
        let bytes = got.stats.total_bytes();
        assert!(bytes as f64 > 11.0 * n as f64 * 4.0, "bytes {bytes}");
        assert!(got.time_ms > 0.0);
    }

    #[test]
    fn is_much_more_expensive_than_needed_for_small_k() {
        // sanity: the sort moves ~12x more bytes than a single streaming scan
        let dev = device();
        let n = 1 << 16;
        let data = topk_datagen::uniform(n, 4);
        let got = sort_and_choose_topk(&dev, &data, 8);
        let single_scan_bytes = (n * 4) as u64;
        assert!(got.stats.total_bytes() > 10 * single_scan_bytes);
    }
}
