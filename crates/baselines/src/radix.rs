//! GGKS-style radix top-k (Alabi et al., "Fast k-Selection Algorithms for
//! Graphics Processing Units"), generic over any [`TopKKey`].
//!
//! Radix select walks the bits of the values from the most significant digit
//! to the least significant digit (8 bits per pass by default). Each pass
//! histograms the current candidates by their digit, locates the digit that
//! contains the k-th largest element, and restricts the candidate set to
//! that digit. After all passes the accumulated digit prefix *is* the k-th
//! value; a final gather pass collects every element above it.
//!
//! All digit arithmetic happens in the key's radix space
//! ([`TopKKey::Bits`]): the order-preserving bijection makes unsigned radix
//! selection correct for signed integers and IEEE-754 floats unchanged. A
//! 32-bit key takes 4 passes at the default 8 bits per digit; a 64-bit key
//! takes 8.
//!
//! Two variants are provided, matching the paper's discussion:
//!
//! * **out-of-place** ([`RadixVariant::OutOfPlace`]) — candidates matching
//!   the digit of interest are compacted into a fresh buffer each pass, so
//!   later passes read fewer elements (at the cost of the compaction
//!   stores). How quickly the candidate set shrinks depends on the value
//!   distribution, which is the source of the instability shown in Figure 4.
//! * **in-place GGKS** ([`RadixVariant::InPlaceZeroing`]) — every pass
//!   re-scans the full vector and *overwrites ineligible elements with zero*
//!   so they drop out of later histograms. The overwrites are random stores,
//!   which is exactly the overhead the paper's flag-based optimization
//!   (Section 5.1, Figure 12) removes.
//!
//! Histogram updates use global atomics (per-warp counts flushed with
//! atomicAdd), as in the GGKS code; on skewed distributions most updates hit
//! the same bucket and serialize, which the simulator's contention model
//! captures.

use gpu_sim::{AtomicBuffer, AtomicCounter, Device, KernelStats};

use crate::key::{KeyBits, TopKKey};
use crate::result::TopKResult;

/// Which radix-select variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadixVariant {
    /// Compact surviving candidates into a new buffer every pass.
    OutOfPlace,
    /// Re-scan the input every pass, overwriting ineligible elements with 0
    /// (the GGKS in-place scheme the paper criticises).
    InPlaceZeroing,
}

/// Configuration of the radix top-k baseline.
#[derive(Debug, Clone)]
pub struct RadixConfig {
    /// Bits consumed per pass. 8 matches the paper ("8-bit per digit yields
    /// the optimal performance").
    pub bits_per_pass: u32,
    /// Elements assigned to each warp in scan kernels.
    pub elems_per_warp: usize,
    /// Algorithm variant.
    pub variant: RadixVariant,
}

impl Default for RadixConfig {
    fn default() -> Self {
        RadixConfig {
            bits_per_pass: 8,
            elems_per_warp: 8192,
            variant: RadixVariant::OutOfPlace,
        }
    }
}

impl RadixConfig {
    /// The GGKS in-place variant (used as the slow baseline of Figure 12).
    pub fn in_place() -> Self {
        RadixConfig {
            variant: RadixVariant::InPlaceZeroing,
            ..RadixConfig::default()
        }
    }

    fn num_digits(&self) -> u32 {
        1 << self.bits_per_pass
    }

    fn num_passes<B: KeyBits>(&self) -> u32 {
        B::BITS.div_ceil(self.bits_per_pass)
    }
}

/// Outcome of a k-selection (threshold search) on the device.
#[derive(Debug, Clone)]
pub struct SelectOutcome<K: TopKKey = u32> {
    /// The k-th largest value.
    pub threshold: K,
    /// Counters accumulated by the selection kernels.
    pub stats: KernelStats,
    /// Modeled time of the selection kernels in milliseconds.
    pub time_ms: f64,
}

/// Radix **k-selection**: find the k-th largest value of `data`
/// (1 ≤ k ≤ |data|).
pub fn radix_select_kth<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &RadixConfig,
) -> SelectOutcome<K> {
    assert!(k >= 1 && k <= data.len(), "k must be in 1..=|V|");
    let mut stats = KernelStats::default();
    let mut time_ms = 0.0;

    let bits = config.bits_per_pass;
    let digits = config.num_digits() as usize;
    let passes = config.num_passes::<K::Bits>();

    let mut prefix_value = K::Bits::ZERO;
    let mut prefix_mask = K::Bits::ZERO;
    let digit_mask = K::Bits::from_u64(digits as u64 - 1);
    let mut k_remaining = k;

    // All selection arithmetic happens in the radix space; the initial
    // conversion is the same host-side copy the u32 version always made.
    // Out-of-place candidate buffer (starts as the full input, shrinks).
    let mut candidates: Vec<K::Bits> = match config.variant {
        RadixVariant::OutOfPlace => data.iter().map(|x| x.to_bits()).collect(),
        RadixVariant::InPlaceZeroing => Vec::new(),
    };
    // In-place working copy (ineligible elements are overwritten with 0).
    let mut working: Vec<K::Bits> = match config.variant {
        RadixVariant::InPlaceZeroing => data.iter().map(|x| x.to_bits()).collect(),
        RadixVariant::OutOfPlace => Vec::new(),
    };

    for pass in 0..passes {
        let shift = K::Bits::BITS - bits * (pass + 1);
        let scan: &[K::Bits] = match config.variant {
            RadixVariant::OutOfPlace => &candidates,
            RadixVariant::InPlaceZeroing => &working,
        };
        if scan.is_empty() {
            break;
        }

        // --- histogram kernel -------------------------------------------------
        let num_warps = scan.len().div_ceil(config.elems_per_warp);
        let hist_buf = AtomicBuffer::zeroed(digits);
        let launch = device.launch(
            &format!("baseline_radix_hist_pass{pass}"),
            num_warps,
            |ctx| {
                let chunk = ctx.chunk_of(scan.len());
                let slice = ctx.read_coalesced(&scan[chunk]);
                let mut local = vec![0u32; digits];
                for &x in slice {
                    if x & prefix_mask == prefix_value {
                        let d = ((x >> shift) & digit_mask).as_digit();
                        local[d] += 1;
                    }
                    ctx.record_alu(2);
                }
                // flush the warp-local histogram to the global one with one
                // atomicAdd per non-empty bucket (block-level flush, GGKS style)
                for (d, &c) in local.iter().enumerate() {
                    if c > 0 {
                        hist_buf.fetch_add(ctx, d, c);
                    }
                }
            },
        );
        stats += launch.stats;
        time_ms += launch.time_ms;

        let histogram = hist_buf.to_vec();

        // --- locate the digit that holds the k-th largest --------------------
        let mut chosen = 0usize;
        let mut above = 0usize;
        for d in (0..digits).rev() {
            let count = histogram[d] as usize;
            if above + count >= k_remaining {
                chosen = d;
                break;
            }
            above += count;
        }
        k_remaining -= above;
        prefix_value |= K::Bits::from_u64(chosen as u64) << shift;
        prefix_mask |= digit_mask << shift;

        // --- restrict candidates ----------------------------------------------
        match config.variant {
            RadixVariant::OutOfPlace => {
                let cursor = AtomicCounter::new(0);
                let launch = device.launch(
                    &format!("baseline_radix_compact_pass{pass}"),
                    num_warps,
                    |ctx| {
                        let chunk = ctx.chunk_of(scan.len());
                        let slice = ctx.read_coalesced(&scan[chunk]);
                        let mut kept: Vec<K::Bits> = Vec::new();
                        for &x in slice {
                            if x & prefix_mask == prefix_value {
                                kept.push(x);
                            }
                            ctx.record_alu(1);
                        }
                        if !kept.is_empty() {
                            // warp-aggregated position allocation + coalesced store
                            cursor.fetch_add(ctx, kept.len() as u64);
                            ctx.record_store_coalesced::<K::Bits>(kept.len());
                        }
                        kept
                    },
                );
                stats += launch.stats;
                time_ms += launch.time_ms;
                candidates = launch.output.into_iter().flatten().collect();
                if candidates.len() == 1 {
                    // the k-th value is pinned down early
                    return SelectOutcome {
                        threshold: K::from_bits(candidates[0]),
                        stats,
                        time_ms,
                    };
                }
            }
            RadixVariant::InPlaceZeroing => {
                // Overwrite every element that can no longer contain the k-th
                // value with zero so later histograms drop it. The writes are
                // scattered (the elements sit wherever they sit in V), so we
                // charge them as random store transactions; the zeroing is
                // fused with the histogram scan, so no extra loads.
                let mut zeroed: u64 = 0;
                for x in working.iter_mut() {
                    if *x != K::Bits::ZERO && *x & prefix_mask != prefix_value && *x < prefix_value
                    {
                        *x = K::Bits::ZERO;
                        zeroed += 1;
                    }
                }
                let elem_bytes = std::mem::size_of::<K::Bits>() as u64;
                let zero_stats = KernelStats {
                    global_store_transactions: zeroed,
                    global_stored_bytes: zeroed * elem_bytes,
                    ..KernelStats::default()
                };
                let zero_time = gpu_sim::estimate_time_ms(&zero_stats, device.spec());
                device.record_external(
                    &format!("baseline_radix_zero_pass{pass}"),
                    zero_stats,
                    zero_time,
                );
                stats += zero_stats;
                time_ms += zero_time;
            }
        }
    }

    let threshold = match config.variant {
        RadixVariant::OutOfPlace => {
            // After the final pass every surviving candidate equals the full
            // prefix, which is the k-th value.
            if candidates.is_empty() {
                K::from_bits(prefix_value)
            } else {
                K::from_bits(candidates[0])
            }
        }
        RadixVariant::InPlaceZeroing => K::from_bits(prefix_value),
    };

    SelectOutcome {
        threshold,
        stats,
        time_ms,
    }
}

/// Gather every element above `threshold` (plus enough ties to reach `k`)
/// into a [`TopKResult`], charging the scan and the output stores.
pub fn gather_topk<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    threshold: K,
    elems_per_warp: usize,
    mut stats: KernelStats,
    mut time_ms: f64,
) -> TopKResult<K> {
    let tb = threshold.to_bits();
    let num_warps = data.len().div_ceil(elems_per_warp).max(1);
    let cursor = AtomicCounter::new(0);
    let launch = device.launch("baseline_topk_gather", num_warps, |ctx| {
        let chunk = ctx.chunk_of(data.len());
        let slice = ctx.read_coalesced(&data[chunk]);
        let mut kept: Vec<K> = Vec::new();
        let mut ties = 0u32;
        for &x in slice {
            let xb = x.to_bits();
            if xb > tb {
                kept.push(x);
            } else if xb == tb {
                ties += 1;
            }
            ctx.record_alu(1);
        }
        if !kept.is_empty() {
            cursor.fetch_add(ctx, kept.len() as u64);
            ctx.record_store_coalesced::<K>(kept.len());
        }
        (kept, ties)
    });
    stats += launch.stats;
    time_ms += launch.time_ms;

    let mut above: Vec<K> = Vec::new();
    let mut total_ties = 0usize;
    for (kept, ties) in launch.output {
        above.extend(kept);
        total_ties += ties as usize;
    }
    debug_assert!(above.len() <= k && above.len() + total_ties >= k);
    let need = k - above.len().min(k);
    above.truncate(k);
    above.extend(std::iter::repeat_n(threshold, need));
    TopKResult::from_values(above, stats, time_ms)
}

/// Full radix **top-k**: selection followed by the gather pass.
pub fn radix_topk<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &RadixConfig,
) -> TopKResult<K> {
    let k = k.min(data.len());
    if k == 0 {
        return TopKResult::from_values(Vec::new(), KernelStats::default(), 0.0);
    }
    let select = radix_select_kth(device, data, k, config);
    gather_topk(
        device,
        data,
        k,
        select.threshold,
        config.elems_per_warp,
        select.stats,
        select.time_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{reference_kth, reference_topk};
    use gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn radix_select_matches_reference_on_uniform() {
        let data = topk_datagen::uniform(1 << 14, 42);
        let dev = device();
        for &k in &[1usize, 2, 37, 1024, 1 << 13] {
            let got = radix_select_kth(&dev, &data, k, &RadixConfig::default());
            assert_eq!(got.threshold, reference_kth(&data, k), "k={k}");
        }
    }

    #[test]
    fn radix_select_in_place_matches_reference() {
        let data = topk_datagen::normal(1 << 14, 7);
        let dev = device();
        for &k in &[1usize, 100, 4096] {
            let got = radix_select_kth(&dev, &data, k, &RadixConfig::in_place());
            assert_eq!(got.threshold, reference_kth(&data, k), "k={k}");
        }
    }

    #[test]
    fn radix_topk_matches_reference_across_distributions() {
        let dev = device();
        for dist in topk_datagen::Distribution::SYNTHETIC {
            let data = topk_datagen::generate(dist, 1 << 14, 3);
            for &k in &[1usize, 33, 512] {
                let got = radix_topk(&dev, &data, k, &RadixConfig::default());
                assert_eq!(got.values, reference_topk(&data, k), "{dist} k={k}");
            }
        }
    }

    #[test]
    fn radix_topk_handles_duplicates_and_edge_sizes() {
        let dev = device();
        let data = vec![7u32; 1000];
        let got = radix_topk(&dev, &data, 10, &RadixConfig::default());
        assert_eq!(got.values, vec![7u32; 10]);
        let tiny = vec![3u32, 1, 2];
        let got = radix_topk(&dev, &tiny, 3, &RadixConfig::default());
        assert_eq!(got.values, vec![3, 2, 1]);
        let zero = radix_topk(&dev, &tiny, 0, &RadixConfig::default());
        assert!(zero.is_empty());
        // k larger than |V| clamps
        let clamped = radix_topk(&dev, &tiny, 10, &RadixConfig::default());
        assert_eq!(clamped.values, vec![3, 2, 1]);
    }

    #[test]
    fn radix_topk_works_with_extreme_values() {
        let dev = device();
        let data = vec![0u32, u32::MAX, 5, u32::MAX - 1, 0];
        let got = radix_topk(&dev, &data, 2, &RadixConfig::default());
        assert_eq!(got.values, vec![u32::MAX, u32::MAX - 1]);
    }

    #[test]
    fn radix_topk_is_generic_over_keys() {
        let dev = device();
        // i64 with negatives, u64 with high bits, f32 with specials: 64-bit
        // keys run 8 digit passes, floats go through the total-order map.
        let signed: Vec<i64> = (-500i64..500).map(|x| x * 3_000_000_007).collect();
        assert_eq!(
            radix_topk(&dev, &signed, 7, &RadixConfig::default()).values,
            reference_topk(&signed, 7)
        );
        let wide: Vec<u64> = (0..1000u64).map(|x| x << 40 | x).collect();
        assert_eq!(
            radix_topk(&dev, &wide, 5, &RadixConfig::in_place()).values,
            reference_topk(&wide, 5)
        );
        let floats = vec![
            1.5f32,
            -2.25,
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            3.75,
        ];
        let got = radix_topk(&dev, &floats, 3, &RadixConfig::default());
        assert_eq!(got.values, vec![f32::INFINITY, 3.75, 1.5]);
        assert_eq!(got.kth_value, 1.5);
    }

    #[test]
    fn in_place_variant_pays_random_stores() {
        let data = topk_datagen::uniform(1 << 14, 11);
        let dev = device();
        let oop = radix_topk(&dev, &data, 64, &RadixConfig::default());
        let inp = radix_topk(&dev, &data, 64, &RadixConfig::in_place());
        assert_eq!(oop.values, inp.values);
        // GGKS in-place zeroes out most of the vector in the first pass,
        // producing far more store transactions than the compaction variant
        // writes for small k.
        assert!(
            inp.stats.global_store_transactions > oop.stats.global_store_transactions,
            "in-place stores {} should exceed out-of-place stores {}",
            inp.stats.global_store_transactions,
            oop.stats.global_store_transactions
        );
    }

    #[test]
    fn stats_and_time_are_recorded() {
        let data = topk_datagen::uniform(1 << 14, 1);
        let dev = device();
        dev.reset_stats();
        let got = radix_topk(&dev, &data, 128, &RadixConfig::default());
        assert!(got.stats.global_load_transactions > 0);
        assert!(got.time_ms > 0.0);
        // the device log saw the same kernels
        let log = dev.stats();
        assert!(log.kernels.iter().any(|k| k.name.contains("radix_hist")));
        assert!(log.kernels.iter().any(|k| k.name.contains("topk_gather")));
    }
}
