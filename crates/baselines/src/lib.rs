//! # topk-baselines — state-of-the-art top-k algorithms on the simulated GPU
//!
//! Dr. Top-k is not a standalone algorithm: it is a workload reducer that
//! feeds a smaller problem to an existing top-k algorithm. This crate
//! provides those algorithms, implemented warp-centrically on the
//! [`gpu_sim`] substrate with full memory-transaction accounting, exactly as
//! they appear in the paper's related-work and evaluation sections:
//!
//! | algorithm | paper reference | module |
//! |---|---|---|
//! | radix top-k (out-of-place & GGKS in-place) | Alabi et al. \[2\] | [`radix`] |
//! | bucket top-k | Alabi et al. \[2\] | [`bucket`] |
//! | bitonic top-k | Shanbhag et al. \[42\] | [`bitonic`] |
//! | sort-and-choose | THRUST \[6\] | [`sort_and_choose`] |
//! | priority queue (CPU reference) | textbook | [`priority_queue`] |
//!
//! Every algorithm returns a [`TopKResult`] whose `values` are exactly the
//! `k` largest elements (ties included), so results are interchangeable and
//! can all be validated against [`reference_topk`].
//!
//! ```
//! use gpu_sim::{Device, DeviceSpec};
//! use topk_baselines::{radix_topk, reference_topk, RadixConfig};
//!
//! let device = Device::new(DeviceSpec::v100s());
//! let data: Vec<u32> = (0..10_000u32).rev().collect();
//! let top = radix_topk(&device, &data, 5, &RadixConfig::default());
//! assert_eq!(top.values, reference_topk(&data, 5));
//! assert_eq!(top.values, vec![9999, 9998, 9997, 9996, 9995]);
//! ```

pub mod bitonic;
pub mod bucket;
pub mod key;
pub mod priority_queue;
pub mod radix;
pub mod result;
pub mod sort_and_choose;

pub use bitonic::{bitonic_iterations, bitonic_topk, BitonicConfig};
pub use bucket::{bucket_select_kth, bucket_topk, BucketConfig, BucketSelectOutcome};
pub use key::{sort_keys_asc, sort_keys_desc, Desc, KeyBits, TopKKey};
pub use priority_queue::{parallel_priority_queue_topk, priority_queue_topk};
pub use radix::{
    gather_topk, radix_select_kth, radix_topk, RadixConfig, RadixVariant, SelectOutcome,
};
pub use result::{
    collect_topk_by_threshold, reference_kth, reference_topk, reference_topk_min, TopKResult,
};
pub use sort_and_choose::sort_and_choose_topk;

/// The inner top-k algorithms Dr. Top-k can assist (Figures 17–19 evaluate
/// all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineAlgorithm {
    /// GGKS radix top-k.
    Radix,
    /// GGKS bucket top-k.
    Bucket,
    /// Bitonic top-k.
    Bitonic,
    /// Sort-and-choose (THRUST).
    SortAndChoose,
}

impl BaselineAlgorithm {
    /// The three dedicated top-k baselines (excludes sort-and-choose).
    pub const TOPK: [BaselineAlgorithm; 3] = [
        BaselineAlgorithm::Radix,
        BaselineAlgorithm::Bucket,
        BaselineAlgorithm::Bitonic,
    ];

    /// Short display name used by the bench harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineAlgorithm::Radix => "radix",
            BaselineAlgorithm::Bucket => "bucket",
            BaselineAlgorithm::Bitonic => "bitonic",
            BaselineAlgorithm::SortAndChoose => "sort-and-choose",
        }
    }

    /// Run this baseline with its default configuration, on any key type.
    pub fn run<K: TopKKey>(&self, device: &gpu_sim::Device, data: &[K], k: usize) -> TopKResult<K> {
        match self {
            BaselineAlgorithm::Radix => radix_topk(device, data, k, &RadixConfig::default()),
            BaselineAlgorithm::Bucket => bucket_topk(device, data, k, &BucketConfig::default()),
            BaselineAlgorithm::Bitonic => bitonic_topk(device, data, k, &BitonicConfig::default()),
            BaselineAlgorithm::SortAndChoose => sort_and_choose_topk(device, data, k),
        }
    }
}

impl std::fmt::Display for BaselineAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec};

    #[test]
    fn all_baselines_agree_with_each_other() {
        let device = Device::with_host_threads(DeviceSpec::v100s(), 4);
        let data = topk_datagen::uniform(1 << 13, 77);
        let k = 99;
        let expected = reference_topk(&data, k);
        for algo in [
            BaselineAlgorithm::Radix,
            BaselineAlgorithm::Bucket,
            BaselineAlgorithm::Bitonic,
            BaselineAlgorithm::SortAndChoose,
        ] {
            assert_eq!(algo.run(&device, &data, k).values, expected, "{algo}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(BaselineAlgorithm::Radix.to_string(), "radix");
        assert_eq!(BaselineAlgorithm::Bucket.to_string(), "bucket");
        assert_eq!(BaselineAlgorithm::Bitonic.to_string(), "bitonic");
        assert_eq!(
            BaselineAlgorithm::SortAndChoose.to_string(),
            "sort-and-choose"
        );
        assert_eq!(BaselineAlgorithm::TOPK.len(), 3);
    }
}
