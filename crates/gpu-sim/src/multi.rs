//! Multi-device cluster model.
//!
//! Section 5.4 of the paper distributes Dr. Top-k over up to 16 V100 GPUs on
//! 4 compute nodes, using asynchronous MPI to gather each device's local
//! top-k onto a primary device. This module provides:
//!
//! * [`GpuCluster`] — a set of [`Device`]s plus an [`InterconnectSpec`]
//!   describing intra-node (NVLink-class) and inter-node (network) links;
//! * a parallel [`GpuCluster::run_on_all`] helper that executes one closure
//!   per device on host threads (the "each GPU computes its local top-k"
//!   step);
//! * transfer-time models for device↔device messages and host→device
//!   reloads, used to produce the Communication and Reload Overhead columns
//!   of Table 2.

use crate::device::Device;
use crate::spec::DeviceSpec;
use crate::timing::host_transfer_time_ms;

/// A failure reported by one device's worker during
/// [`GpuCluster::try_run_on_all`], carrying the id of the device whose
/// closure failed so callers can retry, exclude or report that device
/// without losing the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceError<E> {
    /// Index of the failing device within the cluster.
    pub device: usize,
    /// The error the worker closure returned.
    pub error: E,
}

impl<E: std::fmt::Display> std::fmt::Display for DeviceError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device {}: {}", self.device, self.error)
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for DeviceError<E> {}

/// Link characteristics of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectSpec {
    /// Devices installed per compute node.
    pub devices_per_node: usize,
    /// One-way latency between two devices on the same node, microseconds.
    pub intra_node_latency_us: f64,
    /// Bandwidth between two devices on the same node, GB/s.
    pub intra_node_bandwidth_gbps: f64,
    /// One-way latency between devices on different nodes, microseconds.
    pub inter_node_latency_us: f64,
    /// Bandwidth between devices on different nodes, GB/s.
    pub inter_node_bandwidth_gbps: f64,
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        // NVLink-class intra-node links and a 100 Gb/s-class network between
        // nodes, matching the platform class used in the paper (4 V100 per
        // node, 4 nodes).
        InterconnectSpec {
            devices_per_node: 4,
            intra_node_latency_us: 8.0,
            intra_node_bandwidth_gbps: 50.0,
            inter_node_latency_us: 25.0,
            inter_node_bandwidth_gbps: 12.0,
        }
    }
}

/// Direction of a modeled transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDirection {
    /// Device-to-device message (MPI send/recv between ranks).
    DeviceToDevice { src: usize, dst: usize },
    /// Host memory to a device (used for sub-vector reloads).
    HostToDevice { dst: usize },
    /// Device back to host memory.
    DeviceToHost { src: usize },
}

/// A collection of simulated devices connected by a modeled interconnect.
pub struct GpuCluster {
    devices: Vec<Device>,
    interconnect: InterconnectSpec,
}

impl GpuCluster {
    /// Build a homogeneous cluster of `n` devices with the given spec and
    /// default interconnect.
    pub fn homogeneous(n: usize, spec: DeviceSpec) -> Self {
        assert!(n > 0, "a cluster needs at least one device");
        let devices = (0..n).map(|_| Device::new(spec.clone())).collect();
        GpuCluster {
            devices,
            interconnect: InterconnectSpec::default(),
        }
    }

    /// Modeled per-message ingest/processing cost at a gather's primary
    /// rank, in milliseconds — charged once per asynchronous gather
    /// message on top of the wire transfer time.
    pub const MESSAGE_OVERHEAD_MS: f64 = 0.01;

    /// Build a cluster from explicit devices and interconnect.
    pub fn new(devices: Vec<Device>, interconnect: InterconnectSpec) -> Self {
        assert!(!devices.is_empty(), "a cluster needs at least one device");
        GpuCluster {
            devices,
            interconnect,
        }
    }

    /// Number of devices in the cluster.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of compute nodes occupied by the cluster.
    pub fn num_nodes(&self) -> usize {
        self.devices
            .len()
            .div_ceil(self.interconnect.devices_per_node.max(1))
    }

    /// Access one device.
    pub fn device(&self, idx: usize) -> &Device {
        &self.devices[idx]
    }

    /// Access all devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Interconnect description.
    pub fn interconnect(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// Which node a device lives on.
    pub fn node_of(&self, device: usize) -> usize {
        device / self.interconnect.devices_per_node.max(1)
    }

    /// Reset the kernel logs of every device.
    pub fn reset_stats(&self) {
        for d in &self.devices {
            d.reset_stats();
        }
    }

    /// Modeled one-way transfer time for `bytes` moved along `direction`,
    /// in milliseconds.
    pub fn transfer_time_ms(&self, direction: TransferDirection, bytes: u64) -> f64 {
        match direction {
            TransferDirection::DeviceToDevice { src, dst } => {
                if src == dst {
                    return 0.0;
                }
                let (lat_us, bw_gbps) = if self.node_of(src) == self.node_of(dst) {
                    (
                        self.interconnect.intra_node_latency_us,
                        self.interconnect.intra_node_bandwidth_gbps,
                    )
                } else {
                    (
                        self.interconnect.inter_node_latency_us,
                        self.interconnect.inter_node_bandwidth_gbps,
                    )
                };
                lat_us * 1e-3 + bytes as f64 / (bw_gbps * 1e9) * 1e3
            }
            TransferDirection::HostToDevice { dst } => {
                host_transfer_time_ms(bytes, self.devices[dst].spec())
            }
            TransferDirection::DeviceToHost { src } => {
                host_transfer_time_ms(bytes, self.devices[src].spec())
            }
        }
    }

    /// Model a transfer *and* record it in the destination/source device's
    /// kernel log (as [`Device::record_external`] would), returning the
    /// modeled milliseconds. This is the one-call form the chunked
    /// ingestion stages use: the transfer shows up both in the stage
    /// schedule and in the device's own log.
    pub fn record_transfer(&self, name: &str, direction: TransferDirection, bytes: u64) -> f64 {
        let t = self.transfer_time_ms(direction, bytes);
        let device = match direction {
            TransferDirection::DeviceToDevice { dst, .. } => dst,
            TransferDirection::HostToDevice { dst } => dst,
            TransferDirection::DeviceToHost { src } => src,
        };
        self.devices[device].record_external(name, crate::stats::KernelStats::default(), t);
        t
    }

    /// Modeled time of an **asynchronous gather**: every secondary device
    /// sends `bytes_per_rank` to `primary` concurrently; the result is the
    /// slowest individual transfer plus a small per-message ingest cost at
    /// the primary, matching the paper's observation that the asynchronous
    /// MPI gather stays in the 0.1–1.5 ms range even at 16 GPUs.
    pub fn async_gather_time_ms(&self, primary: usize, bytes_per_rank: u64) -> f64 {
        let mut slowest: f64 = 0.0;
        let mut messages = 0u32;
        for src in 0..self.num_devices() {
            if src == primary {
                continue;
            }
            let t = self.transfer_time_ms(
                TransferDirection::DeviceToDevice { src, dst: primary },
                bytes_per_rank,
            );
            slowest = slowest.max(t);
            messages += 1;
        }
        // per-message ingest/processing at the primary rank
        slowest + messages as f64 * Self::MESSAGE_OVERHEAD_MS
    }

    /// Run `work` once per device, in parallel on host threads, and return
    /// the per-device results in device order.
    ///
    /// The closure is infallible; use [`GpuCluster::try_run_on_all`] when a
    /// worker can fail and the failing device id matters.
    pub fn run_on_all<R, F>(&self, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &Device) -> R + Sync,
    {
        match self.try_run_on_all(|idx, dev| Ok::<R, std::convert::Infallible>(work(idx, dev))) {
            Ok(results) => results,
            Err(err) => match err.error {},
        }
    }

    /// Run `work` once per device, in parallel on host threads. Every
    /// worker runs to completion even when another device's worker fails;
    /// the results are returned in device order, or the error of the
    /// lowest-indexed failing device is surfaced as a [`DeviceError`] so the
    /// caller knows *which* device to blame (and can retry elsewhere)
    /// instead of the whole run being poisoned.
    pub fn try_run_on_all<R, E, F>(&self, work: F) -> Result<Vec<R>, DeviceError<E>>
    where
        R: Send,
        E: Send,
        F: Fn(usize, &Device) -> Result<R, E> + Sync,
    {
        let n = self.num_devices();
        let mut results: Vec<Option<Result<R, E>>> = if n == 1 {
            vec![Some(work(0, &self.devices[0]))]
        } else {
            let mut slots: Vec<Option<Result<R, E>>> = (0..n).map(|_| None).collect();
            std::thread::scope(|scope| {
                let work = &work;
                let handles: Vec<_> = self
                    .devices
                    .iter()
                    .enumerate()
                    .map(|(idx, dev)| (idx, scope.spawn(move || work(idx, dev))))
                    .collect();
                for (idx, h) in handles {
                    let r = h
                        .join()
                        .unwrap_or_else(|_| panic!("worker of device {idx} panicked"));
                    slots[idx] = Some(r);
                }
            });
            slots
        };
        // Surface the lowest-indexed failure deterministically.
        for (device, slot) in results.iter_mut().enumerate() {
            if let Some(Err(_)) = slot {
                let Some(Err(error)) = slot.take() else {
                    unreachable!()
                };
                return Err(DeviceError { device, error });
            }
        }
        Ok(results
            .into_iter()
            .map(|r| {
                r.expect("every device produced a result")
                    .unwrap_or_else(|_| unreachable!())
            })
            .collect())
    }
}

impl std::fmt::Debug for GpuCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuCluster")
            .field("num_devices", &self.num_devices())
            .field("num_nodes", &self.num_nodes())
            .field("device", &self.devices[0].spec().name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster_layout() {
        let cluster = GpuCluster::homogeneous(16, DeviceSpec::v100s());
        assert_eq!(cluster.num_devices(), 16);
        assert_eq!(cluster.num_nodes(), 4);
        assert_eq!(cluster.node_of(0), 0);
        assert_eq!(cluster.node_of(3), 0);
        assert_eq!(cluster.node_of(4), 1);
        assert_eq!(cluster.node_of(15), 3);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_panics() {
        GpuCluster::homogeneous(0, DeviceSpec::v100s());
    }

    #[test]
    fn intra_node_is_faster_than_inter_node() {
        let cluster = GpuCluster::homogeneous(8, DeviceSpec::v100s());
        let bytes = 1 << 20;
        let intra =
            cluster.transfer_time_ms(TransferDirection::DeviceToDevice { src: 0, dst: 1 }, bytes);
        let inter =
            cluster.transfer_time_ms(TransferDirection::DeviceToDevice { src: 0, dst: 7 }, bytes);
        assert!(intra < inter);
        let same =
            cluster.transfer_time_ms(TransferDirection::DeviceToDevice { src: 2, dst: 2 }, bytes);
        assert_eq!(same, 0.0);
    }

    #[test]
    fn host_transfer_is_much_slower_than_nvlink() {
        let cluster = GpuCluster::homogeneous(4, DeviceSpec::v100s());
        let bytes = 256 << 20;
        let h2d = cluster.transfer_time_ms(TransferDirection::HostToDevice { dst: 0 }, bytes);
        let d2d =
            cluster.transfer_time_ms(TransferDirection::DeviceToDevice { src: 0, dst: 1 }, bytes);
        assert!(h2d > d2d);
        let d2h = cluster.transfer_time_ms(TransferDirection::DeviceToHost { src: 0 }, bytes);
        assert!((d2h - h2d).abs() < 1e-9);
    }

    #[test]
    fn record_transfer_logs_on_the_touched_device() {
        let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
        let bytes = 1 << 20;
        let t = cluster.record_transfer(
            "chunk_load",
            TransferDirection::HostToDevice { dst: 1 },
            bytes,
        );
        assert_eq!(
            t,
            cluster.transfer_time_ms(TransferDirection::HostToDevice { dst: 1 }, bytes)
        );
        assert!(cluster.device(0).stats().kernels.is_empty());
        let log = cluster.device(1).stats();
        assert_eq!(log.kernels.len(), 1);
        assert_eq!(log.kernels[0].name, "chunk_load");
        assert!((log.time_ms_for("chunk_load") - t).abs() < 1e-12);
    }

    #[test]
    fn async_gather_grows_slowly_with_devices() {
        let small = GpuCluster::homogeneous(2, DeviceSpec::v100s());
        let large = GpuCluster::homogeneous(16, DeviceSpec::v100s());
        let bytes = 128 * 4; // k=128 u32 values
        let t_small = small.async_gather_time_ms(0, bytes);
        let t_large = large.async_gather_time_ms(0, bytes);
        assert!(t_small > 0.0);
        assert!(t_large > t_small);
        // Paper Table 2 reports ≤ 1.43 ms even at 16 GPUs with k = 128.
        assert!(t_large < 2.0, "gather time {t_large} too large");
    }

    #[test]
    fn try_run_on_all_surfaces_the_failing_device_id() {
        let cluster = GpuCluster::homogeneous(5, DeviceSpec::v100s());
        // device 3 fails; everything else succeeds — the error names device 3
        let got = cluster.try_run_on_all(|idx, _dev| {
            if idx == 3 {
                Err(format!("simulated ECC fault on {idx}"))
            } else {
                Ok(idx * 10)
            }
        });
        let err = got.expect_err("device 3 must fail the run");
        assert_eq!(err.device, 3);
        assert!(err.error.contains("ECC fault"));
        assert_eq!(format!("{err}"), "device 3: simulated ECC fault on 3");

        // several failures: the lowest device id wins deterministically
        let got = cluster.try_run_on_all(|idx, _dev| if idx % 2 == 0 { Err(idx) } else { Ok(()) });
        assert_eq!(got.expect_err("even devices fail").device, 0);

        // all-success path returns device-ordered results
        let got: Result<Vec<usize>, DeviceError<String>> =
            cluster.try_run_on_all(|idx, _dev| Ok(idx));
        assert_eq!(got.unwrap(), vec![0, 1, 2, 3, 4]);

        // single-device clusters take the inline path
        let single = GpuCluster::homogeneous(1, DeviceSpec::v100s());
        let err = single
            .try_run_on_all(|idx, _dev| Err::<(), _>(idx + 100))
            .expect_err("sole device fails");
        assert_eq!(err.device, 0);
        assert_eq!(err.error, 100);
    }

    #[test]
    fn try_run_on_all_failure_does_not_lose_other_devices_work() {
        // A failing worker must not prevent the other devices from running
        // to completion (their kernel logs prove they did the work).
        let cluster = GpuCluster::homogeneous(4, DeviceSpec::v100s());
        let data = vec![1u32; 1024];
        let got = cluster.try_run_on_all(|idx, dev| {
            dev.launch("probe", 2, |ctx| {
                ctx.read_coalesced(&data[ctx.chunk_of(data.len())]);
            });
            if idx == 1 {
                Err("late failure")
            } else {
                Ok(())
            }
        });
        assert_eq!(got.expect_err("device 1 fails").device, 1);
        for d in cluster.devices() {
            assert_eq!(d.stats().kernels.len(), 1, "every device ran its kernel");
        }
    }

    #[test]
    fn run_on_all_returns_in_device_order() {
        let cluster = GpuCluster::homogeneous(6, DeviceSpec::titan_xp());
        let results = cluster.run_on_all(|idx, dev| {
            let data = vec![idx as u32; 1024];
            let launch = dev.launch("scan", 2, |ctx| {
                ctx.read_coalesced(&data[ctx.chunk_of(data.len())]);
                ctx.warp_id
            });
            (idx, launch.output.len())
        });
        assert_eq!(results.len(), 6);
        for (i, (idx, warps)) in results.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*warps, 2);
        }
        // every device logged a kernel
        for d in cluster.devices() {
            assert_eq!(d.stats().kernels.len(), 1);
        }
        cluster.reset_stats();
        for d in cluster.devices() {
            assert!(d.stats().kernels.is_empty());
        }
    }
}
