//! Device-global writable buffers shared between concurrently executing
//! warps.
//!
//! Simulated kernels run in parallel on host threads, so any buffer written
//! by more than one warp must be shared safely. Two primitives cover every
//! pattern the paper's kernels need:
//!
//! * [`AtomicCounter`] — a single `u64` used to hand out output positions
//!   (the paper's concatenation step "resorts to atomic operations to
//!   calculate the location for each eligible element").
//! * [`AtomicBuffer`] — an array of `u32`/`u64` words written with relaxed
//!   atomic stores (histograms, delegate vectors, concatenated vectors).
//!
//! Both types optionally take a [`WarpCtx`] so the access is charged to the
//! kernel's counters.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::warp::WarpCtx;

/// A single shared counter, typically used to allocate positions in an
/// output buffer from many warps concurrently.
#[derive(Debug, Default)]
pub struct AtomicCounter {
    value: AtomicU64,
}

impl AtomicCounter {
    /// Create a counter starting at `initial`.
    pub fn new(initial: u64) -> Self {
        AtomicCounter {
            value: AtomicU64::new(initial),
        }
    }

    /// Atomically add `n`, returning the previous value, and charge one
    /// atomic operation plus one sector store to the warp.
    pub fn fetch_add(&self, ctx: &mut WarpCtx<'_>, n: u64) -> u64 {
        ctx.record_atomics(1);
        self.value.fetch_add(n, Ordering::Relaxed)
    }

    /// Atomically record the maximum of the current value and `v`.
    pub fn fetch_max(&self, ctx: &mut WarpCtx<'_>, v: u64) -> u64 {
        ctx.record_atomics(1);
        self.value.fetch_max(v, Ordering::Relaxed)
    }

    /// Read the counter outside a kernel (host side, not charged).
    pub fn load(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset the counter (host side).
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed)
    }
}

/// A fixed-size device buffer of 32-bit words writable from any warp.
///
/// Reads and writes use relaxed atomics, which is the correct model for a
/// GPU global-memory buffer written by data-parallel threads without
/// ordering requirements (ordering across kernel launches is provided by the
/// launch boundary itself, as on real hardware).
#[derive(Debug)]
pub struct AtomicBuffer {
    words: Box<[AtomicU32]>,
}

impl AtomicBuffer {
    /// Allocate a zero-initialised buffer of `len` words.
    pub fn zeroed(len: usize) -> Self {
        let words: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        AtomicBuffer {
            words: words.into_boxed_slice(),
        }
    }

    /// Allocate a buffer initialised from a slice (host side).
    pub fn from_slice(data: &[u32]) -> Self {
        let words: Vec<AtomicU32> = data.iter().map(|&v| AtomicU32::new(v)).collect();
        AtomicBuffer {
            words: words.into_boxed_slice(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Store a word from a kernel. Charged as one random (sector) store.
    pub fn store(&self, ctx: &mut WarpCtx<'_>, idx: usize, value: u32) {
        ctx.record_store_random::<u32>(1);
        self.words[idx].store(value, Ordering::Relaxed);
    }

    /// Store a contiguous run of words from a kernel (coalesced store).
    pub fn store_coalesced(&self, ctx: &mut WarpCtx<'_>, start: usize, values: &[u32]) {
        ctx.record_store_coalesced::<u32>(values.len());
        for (i, &v) in values.iter().enumerate() {
            self.words[start + i].store(v, Ordering::Relaxed);
        }
    }

    /// Load a word from a kernel. Charged as one random (sector) load.
    pub fn load(&self, ctx: &mut WarpCtx<'_>, idx: usize) -> u32 {
        ctx.record_load_random::<u32>(1);
        self.words[idx].load(Ordering::Relaxed)
    }

    /// Atomic add on a word (histogram building). Charged as one atomic.
    pub fn fetch_add(&self, ctx: &mut WarpCtx<'_>, idx: usize, value: u32) -> u32 {
        ctx.record_atomics(1);
        self.words[idx].fetch_add(value, Ordering::Relaxed)
    }

    /// Atomic max on a word. Charged as one atomic.
    pub fn fetch_max(&self, ctx: &mut WarpCtx<'_>, idx: usize, value: u32) -> u32 {
        ctx.record_atomics(1);
        self.words[idx].fetch_max(value, Ordering::Relaxed)
    }

    /// Read the whole buffer back on the host (not charged to any kernel).
    pub fn to_vec(&self) -> Vec<u32> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Read a single word on the host (not charged).
    pub fn get(&self, idx: usize) -> u32 {
        self.words[idx].load(Ordering::Relaxed)
    }

    /// Reset all words to zero on the host (not charged).
    pub fn clear(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }
}

/// A fixed-size device buffer of 64-bit words writable from any warp.
/// Used for packed (value, payload) pairs such as the delegate vector's
/// (delegate value, subrange id) entries.
#[derive(Debug)]
pub struct AtomicBuffer64 {
    words: Box<[AtomicU64]>,
}

impl AtomicBuffer64 {
    /// Allocate a zero-initialised buffer of `len` words.
    pub fn zeroed(len: usize) -> Self {
        let words: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        AtomicBuffer64 {
            words: words.into_boxed_slice(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Store a word from a kernel. Charged as one random store.
    pub fn store(&self, ctx: &mut WarpCtx<'_>, idx: usize, value: u64) {
        ctx.record_store_random::<u64>(1);
        self.words[idx].store(value, Ordering::Relaxed);
    }

    /// Store a contiguous run of words from a kernel (coalesced store).
    pub fn store_coalesced(&self, ctx: &mut WarpCtx<'_>, start: usize, values: &[u64]) {
        ctx.record_store_coalesced::<u64>(values.len());
        for (i, &v) in values.iter().enumerate() {
            self.words[start + i].store(v, Ordering::Relaxed);
        }
    }

    /// Load a word from a kernel. Charged as one random load.
    pub fn load(&self, ctx: &mut WarpCtx<'_>, idx: usize) -> u64 {
        ctx.record_load_random::<u64>(1);
        self.words[idx].load(Ordering::Relaxed)
    }

    /// Read the whole buffer back on the host (not charged).
    pub fn to_vec(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Read a single word on the host (not charged).
    pub fn get(&self, idx: usize) -> u64 {
        self.words[idx].load(Ordering::Relaxed)
    }
}

/// Pack a `(value, payload)` pair into a single `u64` that orders by value
/// first (descending comparisons on the packed word match comparisons on the
/// value). Used for the key-value delegate vector.
#[inline]
pub fn pack_kv(value: u32, payload: u32) -> u64 {
    ((value as u64) << 32) | payload as u64
}

/// Inverse of [`pack_kv`].
#[inline]
pub fn unpack_kv(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, (packed & 0xFFFF_FFFF) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn with_ctx<R>(f: impl FnOnce(&mut WarpCtx<'_>) -> R) -> (R, crate::stats::KernelStats) {
        let spec = DeviceSpec::v100s();
        let mut ctx = WarpCtx::new(0, 1, &spec);
        let r = f(&mut ctx);
        let stats = *ctx.stats();
        (r, stats)
    }

    #[test]
    fn counter_hands_out_unique_positions() {
        let counter = AtomicCounter::new(0);
        let (positions, stats) = with_ctx(|ctx| {
            (0..10)
                .map(|_| counter.fetch_add(ctx, 2))
                .collect::<Vec<_>>()
        });
        assert_eq!(positions, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
        assert_eq!(counter.load(), 20);
        assert_eq!(stats.atomic_operations, 10);
    }

    #[test]
    fn counter_fetch_max_and_store() {
        let counter = AtomicCounter::new(5);
        let ((), _) = with_ctx(|ctx| {
            counter.fetch_max(ctx, 3);
            counter.fetch_max(ctx, 9);
        });
        assert_eq!(counter.load(), 9);
        counter.store(1);
        assert_eq!(counter.load(), 1);
    }

    #[test]
    fn buffer_store_load_roundtrip() {
        let buf = AtomicBuffer::zeroed(8);
        let (v, stats) = with_ctx(|ctx| {
            buf.store(ctx, 3, 42);
            buf.store_coalesced(ctx, 4, &[1, 2, 3]);
            buf.load(ctx, 3)
        });
        assert_eq!(v, 42);
        assert_eq!(buf.to_vec(), vec![0, 0, 0, 42, 1, 2, 3, 0]);
        assert_eq!(stats.global_store_transactions, 1 + 1); // 1 random + 1 coalesced line
        assert_eq!(stats.global_load_transactions, 1);
        buf.clear();
        assert_eq!(buf.get(3), 0);
    }

    #[test]
    fn buffer_histogram_with_fetch_add() {
        let hist = AtomicBuffer::zeroed(4);
        let ((), stats) = with_ctx(|ctx| {
            for v in [0usize, 1, 1, 3, 3, 3] {
                hist.fetch_add(ctx, v, 1);
            }
        });
        assert_eq!(hist.to_vec(), vec![1, 2, 0, 3]);
        assert_eq!(stats.atomic_operations, 6);
    }

    #[test]
    fn buffer_fetch_max() {
        let buf = AtomicBuffer::from_slice(&[5, 5]);
        let ((), _) = with_ctx(|ctx| {
            buf.fetch_max(ctx, 0, 9);
            buf.fetch_max(ctx, 1, 2);
        });
        assert_eq!(buf.to_vec(), vec![9, 5]);
    }

    #[test]
    fn buffer64_roundtrip() {
        let buf = AtomicBuffer64::zeroed(4);
        let (v, _) = with_ctx(|ctx| {
            buf.store(ctx, 0, pack_kv(7, 9));
            buf.store_coalesced(ctx, 1, &[pack_kv(1, 2)]);
            buf.load(ctx, 0)
        });
        assert_eq!(unpack_kv(v), (7, 9));
        assert_eq!(unpack_kv(buf.get(1)), (1, 2));
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
    }

    #[test]
    fn pack_orders_by_value() {
        let a = pack_kv(10, 0xFFFF_FFFF);
        let b = pack_kv(11, 0);
        assert!(b > a);
        let c = pack_kv(10, 5);
        let d = pack_kv(10, 6);
        assert!(d > c); // ties broken by payload, still deterministic
    }

    #[test]
    fn empty_buffers() {
        assert!(AtomicBuffer::zeroed(0).is_empty());
        assert_eq!(AtomicBuffer::zeroed(0).len(), 0);
        assert!(AtomicBuffer64::zeroed(0).is_empty());
    }
}
