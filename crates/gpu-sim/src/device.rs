//! The simulated device and its kernel launcher.
//!
//! A [`Device`] owns a [`DeviceSpec`], a log of every kernel launched on it
//! ([`DeviceStats`]), and a host-side thread pool size. Kernels are
//! warp-centric closures executed once per warp; warps are distributed over
//! host threads with `std::thread::scope`, each thread accumulating
//! instrumentation counters locally which the launcher merges at the end.

use std::time::Instant;

use parking_lot::Mutex;

use crate::spec::DeviceSpec;
use crate::stats::{DeviceStats, KernelRecord, KernelStats};
use crate::timing::estimate_time_ms;
use crate::warp::WarpCtx;

/// Result of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchResult<R> {
    /// Per-warp outputs, in warp-id order.
    pub output: Vec<R>,
    /// Counters accumulated across all warps of the launch.
    pub stats: KernelStats,
    /// Modeled execution time of the kernel in milliseconds.
    pub time_ms: f64,
    /// Host wall-clock time spent simulating the kernel, in milliseconds.
    pub wall_ms: f64,
}

/// A simulated GPU.
pub struct Device {
    spec: DeviceSpec,
    stats: Mutex<DeviceStats>,
    host_threads: usize,
    /// Maximum number of `u32` elements this device is allowed to hold at
    /// once. Defaults to the spec's capacity; experiments (Table 2) shrink it
    /// to reproduce the out-of-memory / reload regime at reduced scale.
    capacity_elems: Mutex<usize>,
}

impl Device {
    /// Create a device with the given hardware spec, using all available
    /// host CPUs to simulate it.
    pub fn new(spec: DeviceSpec) -> Self {
        let host_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Device::with_host_threads(spec, host_threads)
    }

    /// Create a device simulated with an explicit number of host threads
    /// (useful for deterministic single-threaded debugging).
    pub fn with_host_threads(spec: DeviceSpec, host_threads: usize) -> Self {
        let capacity = spec.capacity_u32_elems(0.25);
        Device {
            spec,
            stats: Mutex::new(DeviceStats::default()),
            host_threads: host_threads.max(1),
            capacity_elems: Mutex::new(capacity),
        }
    }

    /// Hardware description of the device.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Number of host threads used to simulate kernels.
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Current device memory capacity expressed in `u32` elements.
    pub fn capacity_elems(&self) -> usize {
        *self.capacity_elems.lock()
    }

    /// Override the device memory capacity (in `u32` elements). Used by the
    /// multi-GPU scalability experiment to reproduce the reload-overhead
    /// regime with scaled-down inputs.
    pub fn set_capacity_elems(&self, elems: usize) {
        *self.capacity_elems.lock() = elems;
    }

    /// Snapshot of the accumulated per-kernel log.
    pub fn stats(&self) -> DeviceStats {
        self.stats.lock().clone()
    }

    /// Clear the per-kernel log and counters.
    pub fn reset_stats(&self) {
        self.stats.lock().reset();
    }

    /// Sum of the modeled time of all kernels launched since the last reset.
    pub fn total_time_ms(&self) -> f64 {
        self.stats.lock().total_time_ms
    }

    /// Record a non-kernel cost (e.g. a host↔device transfer) in the device
    /// log so it shows up in breakdowns and total time.
    pub fn record_external(&self, name: &str, stats: KernelStats, time_ms: f64) {
        self.stats.lock().record(KernelRecord {
            name: name.to_string(),
            stats,
            time_ms,
            wall_ms: 0.0,
        });
    }

    /// Launch a warp-centric kernel: `kernel` is called once per warp with a
    /// [`WarpCtx`], warps being distributed over the host thread pool.
    /// Returns the per-warp outputs in warp order plus the merged counters
    /// and the modeled time.
    pub fn launch<R, F>(&self, name: &str, num_warps: usize, kernel: F) -> LaunchResult<R>
    where
        R: Send,
        F: Fn(&mut WarpCtx<'_>) -> R + Sync,
    {
        let started = Instant::now();
        let mut stats = KernelStats::default();
        let mut output: Vec<R> = Vec::with_capacity(num_warps);

        if num_warps == 0 {
            let time_ms = estimate_time_ms(&stats, &self.spec);
            self.stats.lock().record(KernelRecord {
                name: name.to_string(),
                stats,
                time_ms,
                wall_ms: 0.0,
            });
            return LaunchResult {
                output,
                stats,
                time_ms,
                wall_ms: 0.0,
            };
        }

        let workers = self.host_threads.min(num_warps);
        if workers <= 1 {
            for warp_id in 0..num_warps {
                let mut ctx = WarpCtx::new(warp_id, num_warps, &self.spec);
                output.push(kernel(&mut ctx));
                stats.merge(&ctx.into_stats());
            }
        } else {
            let kernel_ref = &kernel;
            let spec_ref = &self.spec;
            let mut partials: Vec<(Vec<R>, KernelStats)> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let range = crate::warp::chunk_range(num_warps, workers, w);
                    handles.push(scope.spawn(move || {
                        let mut local_out = Vec::with_capacity(range.len());
                        let mut local_stats = KernelStats::default();
                        for warp_id in range {
                            let mut ctx = WarpCtx::new(warp_id, num_warps, spec_ref);
                            local_out.push(kernel_ref(&mut ctx));
                            local_stats.merge(&ctx.into_stats());
                        }
                        (local_out, local_stats)
                    }));
                }
                for h in handles {
                    partials.push(h.join().expect("simulated warp panicked"));
                }
            });
            for (mut out, s) in partials {
                output.append(&mut out);
                stats.merge(&s);
            }
        }

        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let time_ms = estimate_time_ms(&stats, &self.spec);
        self.stats.lock().record(KernelRecord {
            name: name.to_string(),
            stats,
            time_ms,
            wall_ms,
        });
        LaunchResult {
            output,
            stats,
            time_ms,
            wall_ms,
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("spec", &self.spec.name)
            .field("host_threads", &self.host_threads)
            .field("capacity_elems", &self.capacity_elems())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{AtomicBuffer, AtomicCounter};

    #[test]
    fn launch_collects_outputs_in_warp_order() {
        let device = Device::with_host_threads(DeviceSpec::v100s(), 4);
        let result = device.launch("identity", 100, |ctx| ctx.warp_id);
        assert_eq!(result.output, (0..100).collect::<Vec<_>>());
        assert_eq!(result.stats.warps_launched, 100);
    }

    #[test]
    fn launch_zero_warps_is_ok() {
        let device = Device::with_host_threads(DeviceSpec::v100s(), 4);
        let result: LaunchResult<()> = device.launch("empty", 0, |_| ());
        assert!(result.output.is_empty());
        assert!(result.stats.is_empty() || result.stats.warps_launched == 0);
    }

    #[test]
    fn single_threaded_and_parallel_agree_on_stats() {
        let data: Vec<u32> = (0..32 * 64u32).collect();
        let run = |threads: usize| {
            let device = Device::with_host_threads(DeviceSpec::v100s(), threads);
            let result = device.launch("scan", 64, |ctx| {
                let chunk = ctx.chunk_of(data.len());
                let slice = ctx.read_coalesced(&data[chunk]);
                let lane_max = slice.iter().copied().max().unwrap_or(0);
                ctx.warp_reduce_max(lane_max)
            });
            (result.output.clone(), result.stats)
        };
        let (out1, stats1) = run(1);
        let (out8, stats8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(stats1, stats8);
    }

    #[test]
    fn device_log_accumulates_and_resets() {
        let device = Device::with_host_threads(DeviceSpec::v100s(), 2);
        let data = vec![1u32; 1024];
        device.launch("a", 4, |ctx| {
            ctx.read_coalesced(&data[ctx.chunk_of(data.len())]);
        });
        device.launch("b", 4, |ctx| {
            ctx.read_coalesced(&data[ctx.chunk_of(data.len())]);
        });
        let log = device.stats();
        assert_eq!(log.kernels.len(), 2);
        assert!(log.total_time_ms > 0.0);
        assert_eq!(log.total.global_loaded_bytes, 2 * 4096);
        device.reset_stats();
        assert!(device.stats().kernels.is_empty());
    }

    #[test]
    fn atomic_counter_yields_disjoint_slots_across_parallel_warps() {
        let device = Device::with_host_threads(DeviceSpec::v100s(), 8);
        let counter = AtomicCounter::new(0);
        let out = AtomicBuffer::zeroed(256);
        device.launch("concat", 64, |ctx| {
            // each warp writes 4 entries at atomically allocated positions
            for i in 0..4u32 {
                let pos = counter.fetch_add(ctx, 1) as usize;
                out.store(ctx, pos, ctx.warp_id as u32 * 10 + i);
            }
        });
        assert_eq!(counter.load(), 256);
        let mut values = out.to_vec();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 256, "every slot written exactly once");
    }

    #[test]
    fn record_external_shows_in_log() {
        let device = Device::new(DeviceSpec::v100s());
        device.record_external("host_to_device", KernelStats::default(), 12.5);
        let log = device.stats();
        assert_eq!(log.kernels.len(), 1);
        assert!((log.total_time_ms - 12.5).abs() < 1e-12);
        assert!((log.time_ms_for("host_to_device") - 12.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_override() {
        let device = Device::new(DeviceSpec::v100s());
        let default_cap = device.capacity_elems();
        assert!(default_cap > 1 << 30);
        device.set_capacity_elems(1 << 20);
        assert_eq!(device.capacity_elems(), 1 << 20);
    }
}
