//! Kernel and device level instrumentation counters.
//!
//! [`KernelStats`] plays the role of `nvprof` in the paper: it counts global
//! load/store transactions (Table 3), shuffle instructions and atomics (the
//! quantities the Section 5.2 cost model is built from). Each warp
//! accumulates into a private copy which the launcher merges, so counting
//! adds no synchronization to the simulated kernel's hot path.

use std::ops::{Add, AddAssign};

/// Per-kernel (or per-warp, before merging) instrumentation counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of global-memory *load* transactions (128-byte granularity for
    /// coalesced accesses, one transaction per access for random accesses).
    pub global_load_transactions: u64,
    /// Number of global-memory *store* transactions.
    pub global_store_transactions: u64,
    /// Bytes loaded from global memory.
    pub global_loaded_bytes: u64,
    /// Bytes stored to global memory.
    pub global_stored_bytes: u64,
    /// Warp shuffle (`__shfl_sync`) instructions executed.
    pub shuffle_instructions: u64,
    /// Global atomic operations (atomicAdd etc.).
    pub atomic_operations: u64,
    /// Length of the longest same-address atomic dependency chain: atomics
    /// to the same word serialize, so this is the lower bound on the number
    /// of serialized atomic rounds (models histogram contention on skewed
    /// distributions, the mechanism behind the bucket/radix instability in
    /// Figure 4 of the paper).
    pub atomic_serialized_ops: u64,
    /// Shared-memory load/store operations.
    pub shared_ops: u64,
    /// Shared-memory bank conflicts (extra serialized accesses).
    pub bank_conflicts: u64,
    /// `__syncthreads()` barriers executed.
    pub syncthreads: u64,
    /// Arithmetic / logic operations explicitly attributed by kernels.
    pub alu_ops: u64,
    /// Number of simulated warps that executed work in this kernel.
    pub warps_launched: u64,
}

impl KernelStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total global memory transactions (loads + stores), the quantity
    /// Table 3 of the paper reports.
    pub fn total_transactions(&self) -> u64 {
        self.global_load_transactions + self.global_store_transactions
    }

    /// Total bytes moved through global memory.
    pub fn total_bytes(&self) -> u64 {
        self.global_loaded_bytes + self.global_stored_bytes
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.global_load_transactions += other.global_load_transactions;
        self.global_store_transactions += other.global_store_transactions;
        self.global_loaded_bytes += other.global_loaded_bytes;
        self.global_stored_bytes += other.global_stored_bytes;
        self.shuffle_instructions += other.shuffle_instructions;
        self.atomic_operations += other.atomic_operations;
        self.atomic_serialized_ops += other.atomic_serialized_ops;
        self.shared_ops += other.shared_ops;
        self.bank_conflicts += other.bank_conflicts;
        self.syncthreads += other.syncthreads;
        self.alu_ops += other.alu_ops;
        self.warps_launched += other.warps_launched;
    }

    /// True when no activity has been recorded.
    pub fn is_empty(&self) -> bool {
        *self == KernelStats::default()
    }

    /// `(field name, value)` pairs in declaration order — the one place the
    /// field list is enumerated for exporters, so JSON snapshot emitters
    /// cannot drift from the struct when a counter is added.
    pub fn field_entries(&self) -> [(&'static str, u64); 12] {
        [
            ("global_load_transactions", self.global_load_transactions),
            ("global_store_transactions", self.global_store_transactions),
            ("global_loaded_bytes", self.global_loaded_bytes),
            ("global_stored_bytes", self.global_stored_bytes),
            ("shuffle_instructions", self.shuffle_instructions),
            ("atomic_operations", self.atomic_operations),
            ("atomic_serialized_ops", self.atomic_serialized_ops),
            ("shared_ops", self.shared_ops),
            ("bank_conflicts", self.bank_conflicts),
            ("syncthreads", self.syncthreads),
            ("alu_ops", self.alu_ops),
            ("warps_launched", self.warps_launched),
        ]
    }
}

impl Add for KernelStats {
    type Output = KernelStats;
    fn add(mut self, rhs: KernelStats) -> KernelStats {
        self.merge(&rhs);
        self
    }
}

impl AddAssign for KernelStats {
    fn add_assign(&mut self, rhs: KernelStats) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for KernelStats {
    fn sum<I: Iterator<Item = KernelStats>>(iter: I) -> Self {
        iter.fold(KernelStats::default(), |acc, s| acc + s)
    }
}

/// A record of one kernel launch kept in the device log.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Name given at launch time (e.g. `"delegate_construction"`).
    pub name: String,
    /// Counters accumulated by the launch.
    pub stats: KernelStats,
    /// Modeled execution time in milliseconds.
    pub time_ms: f64,
    /// Host wall-clock time spent simulating the kernel, in milliseconds.
    pub wall_ms: f64,
}

/// Aggregated statistics for a whole device (all launches since creation or
/// since the last [`DeviceStats::reset`]).
#[derive(Debug, Default, Clone)]
pub struct DeviceStats {
    /// Per-launch log, in launch order.
    pub kernels: Vec<KernelRecord>,
    /// Sum of all kernel counters.
    pub total: KernelStats,
    /// Sum of modeled kernel times in milliseconds.
    pub total_time_ms: f64,
}

impl DeviceStats {
    /// Record one kernel launch.
    pub fn record(&mut self, record: KernelRecord) {
        self.total.merge(&record.stats);
        self.total_time_ms += record.time_ms;
        self.kernels.push(record);
    }

    /// Clear the log and counters.
    pub fn reset(&mut self) {
        self.kernels.clear();
        self.total = KernelStats::default();
        self.total_time_ms = 0.0;
    }

    /// Sum the modeled time of all launches whose name contains `needle`.
    /// Used by the figure harnesses to build per-phase breakdowns
    /// (e.g. everything named `"first_topk*"`).
    pub fn time_ms_for(&self, needle: &str) -> f64 {
        self.kernels
            .iter()
            .filter(|k| k.name.contains(needle))
            .map(|k| k.time_ms)
            .sum()
    }

    /// Sum the counters of all launches whose name contains `needle`.
    pub fn stats_for(&self, needle: &str) -> KernelStats {
        self.kernels
            .iter()
            .filter(|k| k.name.contains(needle))
            .map(|k| k.stats)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(loads: u64, stores: u64) -> KernelStats {
        KernelStats {
            global_load_transactions: loads,
            global_store_transactions: stores,
            global_loaded_bytes: loads * 128,
            global_stored_bytes: stores * 128,
            shuffle_instructions: 7,
            atomic_operations: 3,
            atomic_serialized_ops: 2,
            shared_ops: 11,
            bank_conflicts: 1,
            syncthreads: 2,
            alu_ops: 100,
            warps_launched: 4,
        }
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = sample(10, 5);
        let b = sample(1, 2);
        a.merge(&b);
        assert_eq!(a.global_load_transactions, 11);
        assert_eq!(a.global_store_transactions, 7);
        assert_eq!(a.global_loaded_bytes, 11 * 128);
        assert_eq!(a.shuffle_instructions, 14);
        assert_eq!(a.atomic_operations, 6);
        assert_eq!(a.atomic_serialized_ops, 4);
        assert_eq!(a.shared_ops, 22);
        assert_eq!(a.bank_conflicts, 2);
        assert_eq!(a.syncthreads, 4);
        assert_eq!(a.alu_ops, 200);
        assert_eq!(a.warps_launched, 8);
    }

    #[test]
    fn totals() {
        let s = sample(10, 5);
        assert_eq!(s.total_transactions(), 15);
        assert_eq!(s.total_bytes(), 15 * 128);
        assert!(!s.is_empty());
        assert!(KernelStats::default().is_empty());
    }

    #[test]
    fn add_and_sum_traits() {
        let total: KernelStats = vec![sample(1, 1), sample(2, 2), sample(3, 3)]
            .into_iter()
            .sum();
        assert_eq!(total.global_load_transactions, 6);
        let combined = sample(1, 0) + sample(0, 1);
        assert_eq!(combined.total_transactions(), 2);
    }

    #[test]
    fn field_entries_cover_every_counter() {
        let s = sample(10, 5);
        let entries = s.field_entries();
        // every entry maps back to its field, and the sum over entries
        // equals the sum over fields (catches a swapped or dropped pair)
        let by_name = |n: &str| entries.iter().find(|(e, _)| *e == n).unwrap().1;
        assert_eq!(by_name("global_load_transactions"), 10);
        assert_eq!(by_name("global_store_transactions"), 5);
        assert_eq!(by_name("warps_launched"), 4);
        let names: std::collections::HashSet<&str> = entries.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), entries.len(), "duplicate field name");
    }

    #[test]
    fn device_stats_record_and_filter() {
        let mut ds = DeviceStats::default();
        ds.record(KernelRecord {
            name: "delegate_construction".into(),
            stats: sample(100, 10),
            time_ms: 1.5,
            wall_ms: 0.1,
        });
        ds.record(KernelRecord {
            name: "first_topk_radix_pass0".into(),
            stats: sample(50, 5),
            time_ms: 0.5,
            wall_ms: 0.05,
        });
        ds.record(KernelRecord {
            name: "first_topk_radix_pass1".into(),
            stats: sample(25, 2),
            time_ms: 0.25,
            wall_ms: 0.02,
        });
        assert_eq!(ds.kernels.len(), 3);
        assert!((ds.total_time_ms - 2.25).abs() < 1e-12);
        assert!((ds.time_ms_for("first_topk") - 0.75).abs() < 1e-12);
        assert_eq!(ds.stats_for("first_topk").global_load_transactions, 75);
        assert_eq!(ds.total.global_load_transactions, 175);

        ds.reset();
        assert!(ds.kernels.is_empty());
        assert_eq!(ds.total_time_ms, 0.0);
        assert!(ds.total.is_empty());
    }
}
