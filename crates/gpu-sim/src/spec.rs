//! Device hardware specifications.
//!
//! A [`DeviceSpec`] collects the hardware parameters that the paper's cost
//! model (Section 5.2) and the timing model in [`crate::timing`] consume:
//! memory bandwidth, clock frequency, the per-access cost of a global memory
//! transaction (`C_global`), the cost of a CUDA shuffle (`C_shfl`), shared
//! memory size, and the amount of parallelism available (SMs × cores).

/// Hardware description of a simulated GPU.
///
/// The presets mirror the devices used in the paper's evaluation
/// (Platform I: Tesla V100S, Platform II: Titan Xp) plus an A100 preset for
/// forward-looking experiments. All fields are public so experiments can
/// construct hypothetical devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human readable device name, e.g. `"V100S"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Threads per warp. Always 32 on NVIDIA hardware.
    pub warp_size: u32,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Peak global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Fraction of peak bandwidth a well-tuned streaming kernel achieves.
    /// The paper reports 84% of peak for delegate vector construction.
    pub mem_efficiency: f64,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm_bytes: u32,
    /// L2 cache size in bytes.
    pub l2_bytes: u32,
    /// Cycles for one global-memory access (`C_global` in Rule 4).
    pub c_global_cycles: f64,
    /// Issue cycles per warp shuffle instruction per SM (`C_shfl` in Rule 4,
    /// interpreted as a throughput cost).
    pub c_shfl_cycles: f64,
    /// Cycles per shared-memory lane operation (throughput cost per bank).
    pub c_shared_cycles: f64,
    /// Latency in cycles of one serialized (same-address) atomic operation.
    pub c_atomic_cycles: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Host ↔ device transfer bandwidth in GB/s (PCIe / NVLink to host).
    pub host_bandwidth_gbps: f64,
}

impl DeviceSpec {
    /// Tesla V100S (Volta) — the paper's Platform I device.
    ///
    /// 80 SMs × 64 cores @ 1.5 GHz, 32 GB HBM2 @ 1134 GB/s, 96 KB shared
    /// memory per SM, 6144 KB L2.
    pub fn v100s() -> Self {
        DeviceSpec {
            name: "V100S".to_string(),
            num_sms: 80,
            cores_per_sm: 64,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.5,
            global_mem_bytes: 32 * (1 << 30),
            mem_bandwidth_gbps: 1134.0,
            mem_efficiency: 0.84,
            shared_mem_per_sm_bytes: 96 * 1024,
            l2_bytes: 6144 * 1024,
            c_global_cycles: 400.0,
            c_shfl_cycles: 1.0,
            c_shared_cycles: 1.0,
            c_atomic_cycles: 60.0,
            launch_overhead_us: 2.0,
            host_bandwidth_gbps: 12.0,
        }
    }

    /// Titan Xp (Pascal) — the paper's Platform II device.
    ///
    /// 30 SMs × 128 cores @ ~1.58 GHz, 12 GB GDDR5X @ 547.7 GB/s.
    pub fn titan_xp() -> Self {
        DeviceSpec {
            name: "TitanXp".to_string(),
            num_sms: 30,
            cores_per_sm: 128,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.582,
            global_mem_bytes: 12 * (1 << 30),
            mem_bandwidth_gbps: 547.7,
            mem_efficiency: 0.80,
            shared_mem_per_sm_bytes: 96 * 1024,
            l2_bytes: 3072 * 1024,
            c_global_cycles: 440.0,
            c_shfl_cycles: 1.3,
            c_shared_cycles: 1.2,
            c_atomic_cycles: 70.0,
            launch_overhead_us: 2.5,
            host_bandwidth_gbps: 12.0,
        }
    }

    /// A100 (Ampere) preset — mentioned in the paper's introduction as the
    /// most recent device (312 TFLOPS, 2039 GB/s); useful for what-if runs.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".to_string(),
            num_sms: 108,
            cores_per_sm: 64,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.41,
            global_mem_bytes: 80 * (1 << 30),
            mem_bandwidth_gbps: 2039.0,
            mem_efficiency: 0.86,
            shared_mem_per_sm_bytes: 164 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            c_global_cycles: 380.0,
            c_shfl_cycles: 0.9,
            c_shared_cycles: 0.9,
            c_atomic_cycles: 55.0,
            launch_overhead_us: 1.5,
            host_bandwidth_gbps: 25.0,
        }
    }

    /// H100 SXM (Hopper) preset — the successor generation to the paper's
    /// testbed: 132 SMs × 128 cores, 80 GB HBM3 @ 3350 GB/s.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "H100".to_string(),
            num_sms: 132,
            cores_per_sm: 128,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.78,
            global_mem_bytes: 80 * (1 << 30),
            mem_bandwidth_gbps: 3350.0,
            mem_efficiency: 0.88,
            shared_mem_per_sm_bytes: 228 * 1024,
            l2_bytes: 50 * 1024 * 1024,
            c_global_cycles: 360.0,
            c_shfl_cycles: 0.8,
            c_shared_cycles: 0.8,
            c_atomic_cycles: 50.0,
            launch_overhead_us: 1.2,
            host_bandwidth_gbps: 55.0,
        }
    }

    /// B200-class (Blackwell) preset — 148 SMs × 128 cores, 192 GB HBM3e
    /// @ 8000 GB/s; the largest-memory, highest-bandwidth point of the
    /// catalog for forward-looking crossover sweeps.
    pub fn b200() -> Self {
        DeviceSpec {
            name: "B200".to_string(),
            num_sms: 148,
            cores_per_sm: 128,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.8,
            global_mem_bytes: 192 * (1u64 << 30),
            mem_bandwidth_gbps: 8000.0,
            mem_efficiency: 0.88,
            shared_mem_per_sm_bytes: 228 * 1024,
            l2_bytes: 126 * 1024 * 1024,
            c_global_cycles: 340.0,
            c_shfl_cycles: 0.7,
            c_shared_cycles: 0.7,
            c_atomic_cycles: 45.0,
            launch_overhead_us: 1.0,
            host_bandwidth_gbps: 60.0,
        }
    }

    /// The real-device catalog: every preset this crate ships, oldest to
    /// newest. Device-comparison sweeps (`fig23_device_comparison`) and the
    /// per-device crossover tests iterate this instead of hard-coding
    /// individual presets, so a new preset is picked up everywhere at once.
    pub fn catalog() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::titan_xp(),
            DeviceSpec::v100s(),
            DeviceSpec::a100(),
            DeviceSpec::h100(),
            DeviceSpec::b200(),
        ]
    }

    /// Total number of CUDA cores.
    pub fn total_cores(&self) -> u32 {
        self.num_sms * self.cores_per_sm
    }

    /// Number of warps that can execute concurrently (compute-side
    /// parallelism used by the timing model for instruction-bound phases).
    pub fn concurrent_warps(&self) -> u32 {
        (self.total_cores() / self.warp_size).max(1)
    }

    /// Maximum number of resident warps across the whole device
    /// (latency-hiding parallelism).
    pub fn max_resident_warps(&self) -> u32 {
        self.num_sms * self.max_warps_per_sm
    }

    /// Effective (achievable) memory bandwidth in bytes per second.
    pub fn effective_bandwidth_bytes_per_s(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency
    }

    /// How many `u32` elements fit in global memory, leaving `reserve`
    /// fraction of the memory for intermediate buffers.
    pub fn capacity_u32_elems(&self, reserve: f64) -> usize {
        let usable = self.global_mem_bytes as f64 * (1.0 - reserve);
        (usable / 4.0) as usize
    }

    /// The `Const` term of Rule 4:
    /// `log2(6·C_global + 31·C_shfl) − log2(6·C_global)`.
    ///
    /// The paper reports that `const = 3` fits the V100S after performance
    /// tuning (the analytic value is adjusted by the Δ′ term in Eq. 11);
    /// [`crate::timing`] exposes both the analytic and tuned values.
    pub fn rule4_const_analytic(&self) -> f64 {
        let num = 6.0 * self.c_global_cycles + 31.0 * self.c_shfl_cycles;
        let den = 6.0 * self.c_global_cycles;
        (num / den).log2()
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::v100s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100s_matches_paper_numbers() {
        let spec = DeviceSpec::v100s();
        assert_eq!(spec.num_sms, 80);
        assert_eq!(spec.cores_per_sm, 64);
        assert_eq!(spec.total_cores(), 5120);
        assert_eq!(spec.warp_size, 32);
        assert_eq!(spec.global_mem_bytes, 32 * (1 << 30));
        assert!((spec.mem_bandwidth_gbps - 1134.0).abs() < 1e-9);
        assert_eq!(spec.shared_mem_per_sm_bytes, 96 * 1024);
        assert_eq!(spec.l2_bytes, 6144 * 1024);
    }

    #[test]
    fn titan_xp_bandwidth_ratio_matches_paper() {
        // The paper attributes the V100S / Titan Xp performance gap (1.3×–1.8×)
        // to the 1134 / 547.7 bandwidth ratio (~2.07×).
        let v = DeviceSpec::v100s();
        let t = DeviceSpec::titan_xp();
        let ratio = v.mem_bandwidth_gbps / t.mem_bandwidth_gbps;
        assert!(ratio > 2.0 && ratio < 2.1);
    }

    #[test]
    fn concurrent_warps_positive() {
        for spec in DeviceSpec::catalog() {
            assert!(spec.concurrent_warps() >= 1);
            assert!(spec.max_resident_warps() >= spec.concurrent_warps());
        }
    }

    #[test]
    fn catalog_covers_every_preset_with_distinct_names() {
        let catalog = DeviceSpec::catalog();
        assert_eq!(catalog.len(), 5);
        let names: Vec<&str> = catalog.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["TitanXp", "V100S", "A100", "H100", "B200"]);
        // the catalog is ordered oldest→newest: bandwidth and memory are
        // monotone non-decreasing across generations
        for pair in catalog.windows(2) {
            assert!(pair[1].mem_bandwidth_gbps >= pair[0].mem_bandwidth_gbps);
            assert!(pair[1].global_mem_bytes >= pair[0].global_mem_bytes);
        }
        // every preset yields sane derived quantities
        for spec in &catalog {
            assert!(spec.effective_bandwidth_bytes_per_s() > 0.0);
            assert!(spec.rule4_const_analytic() > 0.0);
            assert!(spec.capacity_u32_elems(0.25) > 0);
        }
    }

    #[test]
    fn rule4_const_is_positive_and_small() {
        let spec = DeviceSpec::v100s();
        let c = spec.rule4_const_analytic();
        assert!(c > 0.0, "const must be positive");
        assert!(c < 4.0, "const should be a small number of bits, got {c}");
    }

    #[test]
    fn capacity_reserves_memory() {
        let spec = DeviceSpec::v100s();
        let full = spec.capacity_u32_elems(0.0);
        let half = spec.capacity_u32_elems(0.5);
        assert!(half < full);
        assert_eq!(full, (32u64 * (1 << 30) / 4) as usize);
    }
}
