//! Device hardware specifications.
//!
//! A [`DeviceSpec`] collects the hardware parameters that the paper's cost
//! model (Section 5.2) and the timing model in [`crate::timing`] consume:
//! memory bandwidth, clock frequency, the per-access cost of a global memory
//! transaction (`C_global`), the cost of a CUDA shuffle (`C_shfl`), shared
//! memory size, and the amount of parallelism available (SMs × cores).

/// Hardware description of a simulated GPU.
///
/// The presets mirror the devices used in the paper's evaluation
/// (Platform I: Tesla V100S, Platform II: Titan Xp) plus an A100 preset for
/// forward-looking experiments. All fields are public so experiments can
/// construct hypothetical devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human readable device name, e.g. `"V100S"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Threads per warp. Always 32 on NVIDIA hardware.
    pub warp_size: u32,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Peak global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Fraction of peak bandwidth a well-tuned streaming kernel achieves.
    /// The paper reports 84% of peak for delegate vector construction.
    pub mem_efficiency: f64,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm_bytes: u32,
    /// L2 cache size in bytes.
    pub l2_bytes: u32,
    /// Cycles for one global-memory access (`C_global` in Rule 4).
    pub c_global_cycles: f64,
    /// Issue cycles per warp shuffle instruction per SM (`C_shfl` in Rule 4,
    /// interpreted as a throughput cost).
    pub c_shfl_cycles: f64,
    /// Cycles per shared-memory lane operation (throughput cost per bank).
    pub c_shared_cycles: f64,
    /// Latency in cycles of one serialized (same-address) atomic operation.
    pub c_atomic_cycles: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Host ↔ device transfer bandwidth in GB/s (PCIe / NVLink to host).
    pub host_bandwidth_gbps: f64,
}

impl DeviceSpec {
    /// Tesla V100S (Volta) — the paper's Platform I device.
    ///
    /// 80 SMs × 64 cores @ 1.5 GHz, 32 GB HBM2 @ 1134 GB/s, 96 KB shared
    /// memory per SM, 6144 KB L2.
    pub fn v100s() -> Self {
        DeviceSpec {
            name: "V100S".to_string(),
            num_sms: 80,
            cores_per_sm: 64,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.5,
            global_mem_bytes: 32 * (1 << 30),
            mem_bandwidth_gbps: 1134.0,
            mem_efficiency: 0.84,
            shared_mem_per_sm_bytes: 96 * 1024,
            l2_bytes: 6144 * 1024,
            c_global_cycles: 400.0,
            c_shfl_cycles: 1.0,
            c_shared_cycles: 1.0,
            c_atomic_cycles: 60.0,
            launch_overhead_us: 2.0,
            host_bandwidth_gbps: 12.0,
        }
    }

    /// Titan Xp (Pascal) — the paper's Platform II device.
    ///
    /// 30 SMs × 128 cores @ ~1.58 GHz, 12 GB GDDR5X @ 547.7 GB/s.
    pub fn titan_xp() -> Self {
        DeviceSpec {
            name: "TitanXp".to_string(),
            num_sms: 30,
            cores_per_sm: 128,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.582,
            global_mem_bytes: 12 * (1 << 30),
            mem_bandwidth_gbps: 547.7,
            mem_efficiency: 0.80,
            shared_mem_per_sm_bytes: 96 * 1024,
            l2_bytes: 3072 * 1024,
            c_global_cycles: 440.0,
            c_shfl_cycles: 1.3,
            c_shared_cycles: 1.2,
            c_atomic_cycles: 70.0,
            launch_overhead_us: 2.5,
            host_bandwidth_gbps: 12.0,
        }
    }

    /// A100 (Ampere) preset — mentioned in the paper's introduction as the
    /// most recent device (312 TFLOPS, 2039 GB/s); useful for what-if runs.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".to_string(),
            num_sms: 108,
            cores_per_sm: 64,
            warp_size: 32,
            max_warps_per_sm: 64,
            clock_ghz: 1.41,
            global_mem_bytes: 80 * (1 << 30),
            mem_bandwidth_gbps: 2039.0,
            mem_efficiency: 0.86,
            shared_mem_per_sm_bytes: 164 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            c_global_cycles: 380.0,
            c_shfl_cycles: 0.9,
            c_shared_cycles: 0.9,
            c_atomic_cycles: 55.0,
            launch_overhead_us: 1.5,
            host_bandwidth_gbps: 25.0,
        }
    }

    /// Total number of CUDA cores.
    pub fn total_cores(&self) -> u32 {
        self.num_sms * self.cores_per_sm
    }

    /// Number of warps that can execute concurrently (compute-side
    /// parallelism used by the timing model for instruction-bound phases).
    pub fn concurrent_warps(&self) -> u32 {
        (self.total_cores() / self.warp_size).max(1)
    }

    /// Maximum number of resident warps across the whole device
    /// (latency-hiding parallelism).
    pub fn max_resident_warps(&self) -> u32 {
        self.num_sms * self.max_warps_per_sm
    }

    /// Effective (achievable) memory bandwidth in bytes per second.
    pub fn effective_bandwidth_bytes_per_s(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency
    }

    /// How many `u32` elements fit in global memory, leaving `reserve`
    /// fraction of the memory for intermediate buffers.
    pub fn capacity_u32_elems(&self, reserve: f64) -> usize {
        let usable = self.global_mem_bytes as f64 * (1.0 - reserve);
        (usable / 4.0) as usize
    }

    /// The `Const` term of Rule 4:
    /// `log2(6·C_global + 31·C_shfl) − log2(6·C_global)`.
    ///
    /// The paper reports that `const = 3` fits the V100S after performance
    /// tuning (the analytic value is adjusted by the Δ′ term in Eq. 11);
    /// [`crate::timing`] exposes both the analytic and tuned values.
    pub fn rule4_const_analytic(&self) -> f64 {
        let num = 6.0 * self.c_global_cycles + 31.0 * self.c_shfl_cycles;
        let den = 6.0 * self.c_global_cycles;
        (num / den).log2()
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::v100s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100s_matches_paper_numbers() {
        let spec = DeviceSpec::v100s();
        assert_eq!(spec.num_sms, 80);
        assert_eq!(spec.cores_per_sm, 64);
        assert_eq!(spec.total_cores(), 5120);
        assert_eq!(spec.warp_size, 32);
        assert_eq!(spec.global_mem_bytes, 32 * (1 << 30));
        assert!((spec.mem_bandwidth_gbps - 1134.0).abs() < 1e-9);
        assert_eq!(spec.shared_mem_per_sm_bytes, 96 * 1024);
        assert_eq!(spec.l2_bytes, 6144 * 1024);
    }

    #[test]
    fn titan_xp_bandwidth_ratio_matches_paper() {
        // The paper attributes the V100S / Titan Xp performance gap (1.3×–1.8×)
        // to the 1134 / 547.7 bandwidth ratio (~2.07×).
        let v = DeviceSpec::v100s();
        let t = DeviceSpec::titan_xp();
        let ratio = v.mem_bandwidth_gbps / t.mem_bandwidth_gbps;
        assert!(ratio > 2.0 && ratio < 2.1);
    }

    #[test]
    fn concurrent_warps_positive() {
        for spec in [
            DeviceSpec::v100s(),
            DeviceSpec::titan_xp(),
            DeviceSpec::a100(),
        ] {
            assert!(spec.concurrent_warps() >= 1);
            assert!(spec.max_resident_warps() >= spec.concurrent_warps());
        }
    }

    #[test]
    fn rule4_const_is_positive_and_small() {
        let spec = DeviceSpec::v100s();
        let c = spec.rule4_const_analytic();
        assert!(c > 0.0, "const must be positive");
        assert!(c < 4.0, "const should be a small number of bits, got {c}");
    }

    #[test]
    fn capacity_reserves_memory() {
        let spec = DeviceSpec::v100s();
        let full = spec.capacity_u32_elems(0.0);
        let half = spec.capacity_u32_elems(0.5);
        assert!(half < full);
        assert_eq!(full, (32u64 * (1 << 30) / 4) as usize);
    }
}
