//! Warp-level execution context and instrumented primitives.
//!
//! Simulated kernels are *warp programs*: the launcher calls the kernel
//! closure once per warp, and the closure uses the [`WarpCtx`] passed to it
//! to perform (and account for) global-memory accesses, shared-memory
//! traffic, shuffle-based intra-warp communication, atomics and barriers.
//!
//! Accounting follows the model the paper uses in Section 5.2:
//!
//! * a **coalesced** access by a warp moves ⌈bytes / 128⌉ transactions of a
//!   128-byte cache line each;
//! * a **random** (non-coalesced) access costs one 32-byte sector transaction
//!   per element;
//! * a full warp reduction via `__shfl_sync` costs `Σ_{1≤i≤5} 32/2^i = 31`
//!   shuffle instructions (Equation 2 of the paper).

use crate::spec::DeviceSpec;
use crate::stats::KernelStats;

/// Number of threads in a warp. Fixed at 32, matching NVIDIA hardware and the
/// constants in the paper's cost model.
pub const WARP_SIZE: usize = 32;

/// Size in bytes of one coalesced global-memory transaction (a cache line).
pub const TRANSACTION_BYTES: u64 = 128;

/// Size in bytes of one non-coalesced (sector) transaction.
pub const SECTOR_BYTES: u64 = 32;

/// Number of shuffle instructions a full-warp butterfly reduction issues
/// (`Σ_{1≤i≤5} 32/2^i = 31`, as counted in Equation 2).
pub const SHUFFLES_PER_WARP_REDUCTION: u64 = 31;

/// Number of shared-memory banks (used by the bank-conflict model).
pub const SHARED_BANKS: usize = 32;

/// Execution context handed to a kernel closure, one per simulated warp.
///
/// The context carries the warp's identity within the launch grid and a
/// private [`KernelStats`] accumulator; the launcher merges the accumulators
/// of all warps when the launch completes, so no synchronization happens on
/// the instrumentation path.
pub struct WarpCtx<'a> {
    /// Index of this warp within the launch grid, `0..num_warps`.
    pub warp_id: usize,
    /// Total number of warps in the launch grid.
    pub num_warps: usize,
    pub(crate) stats: KernelStats,
    spec: &'a DeviceSpec,
}

impl<'a> WarpCtx<'a> {
    pub(crate) fn new(warp_id: usize, num_warps: usize, spec: &'a DeviceSpec) -> Self {
        WarpCtx {
            warp_id,
            num_warps,
            stats: KernelStats {
                warps_launched: 1,
                ..KernelStats::default()
            },
            spec,
        }
    }

    /// The hardware description of the device this warp runs on.
    pub fn spec(&self) -> &DeviceSpec {
        self.spec
    }

    /// Counters accumulated by this warp so far.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    pub(crate) fn into_stats(self) -> KernelStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // Global memory
    // ------------------------------------------------------------------

    /// Read a contiguous slice from global memory in a coalesced manner and
    /// return it. Accounts ⌈bytes/128⌉ load transactions.
    pub fn read_coalesced<'b, T: Copy>(&mut self, buf: &'b [T]) -> &'b [T] {
        self.record_load_coalesced::<T>(buf.len());
        buf
    }

    /// Read one element at an arbitrary index (non-coalesced). Accounts one
    /// 32-byte sector load transaction.
    pub fn read_random<T: Copy>(&mut self, buf: &[T], idx: usize) -> T {
        self.record_load_random::<T>(1);
        buf[idx]
    }

    /// Account for a coalesced load of `len` elements of type `T` without
    /// touching data (used when the data movement is done by safe Rust code
    /// outside the context, e.g. iterating a sub-slice).
    pub fn record_load_coalesced<T>(&mut self, len: usize) {
        if len == 0 {
            return;
        }
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.stats.global_loaded_bytes += bytes;
        self.stats.global_load_transactions += bytes.div_ceil(TRANSACTION_BYTES);
    }

    /// Account for a coalesced store of `len` elements of type `T`.
    pub fn record_store_coalesced<T>(&mut self, len: usize) {
        if len == 0 {
            return;
        }
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.stats.global_stored_bytes += bytes;
        self.stats.global_store_transactions += bytes.div_ceil(TRANSACTION_BYTES);
    }

    /// Account for `count` random (non-coalesced) element loads.
    pub fn record_load_random<T>(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        let per_elem = (std::mem::size_of::<T>() as u64).min(SECTOR_BYTES);
        self.stats.global_loaded_bytes += per_elem * count as u64;
        self.stats.global_load_transactions += count as u64;
    }

    /// Account for `count` random (non-coalesced) element stores.
    pub fn record_store_random<T>(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        let per_elem = (std::mem::size_of::<T>() as u64).min(SECTOR_BYTES);
        self.stats.global_stored_bytes += per_elem * count as u64;
        self.stats.global_store_transactions += count as u64;
    }

    // ------------------------------------------------------------------
    // Intra-warp communication (shuffles)
    // ------------------------------------------------------------------

    /// Account for `n` raw `__shfl_sync` instructions.
    pub fn record_shuffles(&mut self, n: u64) {
        self.stats.shuffle_instructions += n;
    }

    /// Full-warp maximum reduction over up to 32 lane values via shuffles.
    /// Returns the maximum and accounts 31 shuffle instructions, matching the
    /// paper's per-subrange accounting. Generic over any totally ordered
    /// word (`u32` values, or the radix-space bits of a wider key type).
    pub fn warp_reduce_max<T: Copy + Ord>(&mut self, lane_value: T) -> T {
        self.record_shuffles(SHUFFLES_PER_WARP_REDUCTION);
        lane_value
    }

    /// Full-warp maximum reduction over explicit lane values (≤ 32 lanes).
    pub fn warp_reduce_max_lanes<T: Copy + Ord>(&mut self, lane_values: &[T]) -> T {
        assert!(!lane_values.is_empty(), "warp reduction over zero lanes");
        assert!(lane_values.len() <= WARP_SIZE);
        self.record_shuffles(SHUFFLES_PER_WARP_REDUCTION);
        *lane_values.iter().max().unwrap()
    }

    /// Full-warp minimum reduction over explicit lane values (≤ 32 lanes).
    pub fn warp_reduce_min_lanes<T: Copy + Ord>(&mut self, lane_values: &[T]) -> T {
        assert!(!lane_values.is_empty(), "warp reduction over zero lanes");
        assert!(lane_values.len() <= WARP_SIZE);
        self.record_shuffles(SHUFFLES_PER_WARP_REDUCTION);
        *lane_values.iter().min().unwrap()
    }

    /// Full-warp sum reduction over explicit lane values (≤ 32 lanes).
    pub fn warp_reduce_sum_lanes(&mut self, lane_values: &[u64]) -> u64 {
        assert!(lane_values.len() <= WARP_SIZE);
        self.record_shuffles(SHUFFLES_PER_WARP_REDUCTION);
        lane_values.iter().sum()
    }

    /// Warp ballot: which lanes have a true predicate. Accounts one shuffle
    /// class instruction (ballot is a single SIMT vote instruction).
    pub fn warp_ballot(&mut self, predicates: &[bool]) -> u32 {
        assert!(predicates.len() <= WARP_SIZE);
        self.record_shuffles(1);
        predicates
            .iter()
            .enumerate()
            .fold(0u32, |acc, (i, &p)| if p { acc | (1 << i) } else { acc })
    }

    // ------------------------------------------------------------------
    // Atomics
    // ------------------------------------------------------------------

    /// Account for `n` global atomic operations (the data movement itself is
    /// done through [`crate::memory::AtomicBuffer`] / [`crate::memory::AtomicCounter`],
    /// which call this internally when given a context).
    pub fn record_atomics(&mut self, n: u64) {
        self.stats.atomic_operations += n;
    }

    /// Account for `n` global atomic operations of which at most
    /// `max_same_address` target the same word (e.g. a histogram bucket that
    /// receives most of a skewed distribution). Same-address atomics
    /// serialize on real hardware, so the timing model charges at least
    /// `max_same_address` serialized rounds for this batch.
    pub fn record_contended_atomics(&mut self, n: u64, max_same_address: u64) {
        debug_assert!(max_same_address <= n);
        self.stats.atomic_operations += n;
        self.stats.atomic_serialized_ops += max_same_address;
    }

    // ------------------------------------------------------------------
    // Shared memory
    // ------------------------------------------------------------------

    /// Account for `n` shared-memory load/store operations (no conflicts).
    pub fn record_shared(&mut self, n: u64) {
        self.stats.shared_ops += n;
    }

    /// Account for one warp-wide shared-memory access where lane `i`
    /// accesses the 4-byte word index `word_indices[i]`. Bank conflicts are
    /// counted as the extra serialized passes the access requires
    /// (`max accesses to a single bank − 1`), ignoring broadcasts of the
    /// exact same word.
    pub fn shared_access(&mut self, word_indices: &[usize]) {
        assert!(word_indices.len() <= WARP_SIZE);
        self.stats.shared_ops += 1;
        let mut per_bank_words: [Option<usize>; SHARED_BANKS] = [None; SHARED_BANKS];
        let mut per_bank_count = [0u32; SHARED_BANKS];
        for &w in word_indices {
            let bank = w % SHARED_BANKS;
            match per_bank_words[bank] {
                None => {
                    per_bank_words[bank] = Some(w);
                    per_bank_count[bank] = 1;
                }
                Some(prev) if prev == w => {
                    // broadcast: same word, no extra pass
                }
                Some(_) => {
                    per_bank_count[bank] += 1;
                }
            }
        }
        let max_passes = per_bank_count.iter().copied().max().unwrap_or(1).max(1);
        self.stats.bank_conflicts += (max_passes - 1) as u64;
    }

    /// `__syncthreads()` — one CTA-wide barrier.
    pub fn syncthreads(&mut self) {
        self.stats.syncthreads += 1;
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Account for `n` arithmetic/logic operations explicitly attributed by
    /// the kernel (the timing model weights these far below memory).
    pub fn record_alu(&mut self, n: u64) {
        self.stats.alu_ops += n;
    }

    /// Split a total element count into this warp's contiguous chunk using a
    /// balanced block distribution. Returns `start..end` indices.
    pub fn chunk_of(&self, total: usize) -> std::ops::Range<usize> {
        chunk_range(total, self.num_warps, self.warp_id)
    }
}

/// Balanced block distribution of `total` items over `parts` parts; returns
/// the range owned by `part`.
pub fn chunk_range(total: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    assert!(parts > 0);
    assert!(part < parts);
    let base = total / parts;
    let rem = total % parts;
    let start = part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    start..(start + len).min(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with_spec(spec: &DeviceSpec) -> WarpCtx<'_> {
        WarpCtx::new(0, 4, spec)
    }

    #[test]
    fn coalesced_load_counts_cache_lines() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        let data = vec![1u32; 64]; // 256 bytes = 2 cache lines
        let s = ctx.read_coalesced(&data);
        assert_eq!(s.len(), 64);
        assert_eq!(ctx.stats().global_load_transactions, 2);
        assert_eq!(ctx.stats().global_loaded_bytes, 256);
    }

    #[test]
    fn partial_cache_line_rounds_up() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        ctx.record_load_coalesced::<u32>(33); // 132 bytes -> 2 transactions
        assert_eq!(ctx.stats().global_load_transactions, 2);
    }

    #[test]
    fn zero_length_access_is_free() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        ctx.record_load_coalesced::<u32>(0);
        ctx.record_store_coalesced::<u64>(0);
        ctx.record_load_random::<u32>(0);
        ctx.record_store_random::<u32>(0);
        assert!(ctx.stats().total_transactions() == 0);
    }

    #[test]
    fn random_access_counts_per_element() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        let data = vec![7u32; 100];
        let v = ctx.read_random(&data, 99);
        assert_eq!(v, 7);
        ctx.record_store_random::<u32>(9);
        assert_eq!(ctx.stats().global_load_transactions, 1);
        assert_eq!(ctx.stats().global_store_transactions, 9);
    }

    #[test]
    fn warp_reduction_counts_31_shuffles() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        let lanes: Vec<u32> = (0..32).collect();
        assert_eq!(ctx.warp_reduce_max_lanes(&lanes), 31);
        assert_eq!(ctx.stats().shuffle_instructions, 31);
        assert_eq!(ctx.warp_reduce_min_lanes(&lanes), 0);
        assert_eq!(ctx.stats().shuffle_instructions, 62);
        assert_eq!(ctx.warp_reduce_sum_lanes(&[1, 2, 3]), 6);
        assert_eq!(ctx.stats().shuffle_instructions, 93);
    }

    #[test]
    #[should_panic(expected = "zero lanes")]
    fn empty_reduction_panics() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        ctx.warp_reduce_max_lanes::<u32>(&[]);
    }

    #[test]
    fn ballot_builds_mask() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        let preds = [true, false, true, true];
        assert_eq!(ctx.warp_ballot(&preds), 0b1101);
        assert_eq!(ctx.stats().shuffle_instructions, 1);
    }

    #[test]
    fn shared_access_conflict_free_when_strided_by_one() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        let idx: Vec<usize> = (0..32).collect();
        ctx.shared_access(&idx);
        assert_eq!(ctx.stats().bank_conflicts, 0);
        assert_eq!(ctx.stats().shared_ops, 1);
    }

    #[test]
    fn shared_access_same_bank_conflicts() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        // every lane touches a different word in bank 0 -> 31 extra passes
        let idx: Vec<usize> = (0..32).map(|i| i * 32).collect();
        ctx.shared_access(&idx);
        assert_eq!(ctx.stats().bank_conflicts, 31);
    }

    #[test]
    fn shared_access_broadcast_is_free() {
        let spec = DeviceSpec::v100s();
        let mut ctx = ctx_with_spec(&spec);
        let idx = [5usize; 32];
        ctx.shared_access(&idx);
        assert_eq!(ctx.stats().bank_conflicts, 0);
    }

    #[test]
    fn chunk_range_covers_everything_without_overlap() {
        let total = 1003;
        let parts = 7;
        let mut covered = 0;
        let mut prev_end = 0;
        for p in 0..parts {
            let r = chunk_range(total, parts, p);
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
            covered += r.len();
        }
        assert_eq!(covered, total);
        assert_eq!(prev_end, total);
    }

    #[test]
    fn chunk_of_uses_warp_id() {
        let spec = DeviceSpec::v100s();
        let ctx = WarpCtx::new(3, 4, &spec);
        assert_eq!(ctx.chunk_of(400), 300..400);
    }
}
