//! Modeled streams and events — the CUDA-stream analogue of the simulator.
//!
//! A real GPU overlaps work by launching kernels and copies on different
//! *streams*: operations on one stream serialize, operations on different
//! streams run concurrently, and `cudaEventRecord` / `cudaStreamWaitEvent`
//! impose cross-stream ordering. This module models exactly that, in
//! *modeled* time: a [`Stream`] is a monotone time cursor, [`Stream::launch`]
//! appends work of a known modeled duration, [`Stream::record`] captures the
//! cursor as an [`Event`], and [`Stream::wait_event`] stalls a stream until
//! another stream's event has fired.
//!
//! The stage-graph executor of the core crate drives one stream per
//! *resource* (a device's compute queue, a host→device copy lane, the
//! inter-device interconnect) so that stages on different resources overlap
//! — e.g. chunk *i + 1* of an out-of-core corpus transfers while chunk *i*
//! computes — while stages on the same resource serialize, just like
//! hardware queues.
//!
//! ```
//! use gpu_sim::stream::Stream;
//!
//! let mut compute = Stream::new();
//! let mut copy = Stream::new();
//!
//! let chunk0_done = compute.launch(4.0); // compute chunk 0: [0, 4)
//! let load1_done = copy.launch(3.0); //    load chunk 1:    [0, 3) — overlapped
//! compute.wait_event(&load1_done); //      chunk 1 may not start before its data
//! let chunk1_done = compute.launch(4.0); // compute chunk 1: [4, 8)
//! assert_eq!(chunk0_done.ready_at_ms(), 4.0);
//! assert_eq!(chunk1_done.ready_at_ms(), 8.0); // load fully hidden
//! ```

use std::collections::HashMap;
use std::hash::Hash;

/// A point in modeled time recorded on a [`Stream`] (the
/// `cudaEvent_t` analogue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    ready_at_ms: f64,
}

impl Event {
    /// An event that has already fired at time zero (waiting on it never
    /// stalls).
    pub const READY: Event = Event { ready_at_ms: 0.0 };

    /// The modeled time at which the event fires, in milliseconds.
    pub fn ready_at_ms(&self) -> f64 {
        self.ready_at_ms
    }
}

/// A modeled in-order work queue: operations launched on the same stream
/// serialize; streams only interact through [`Event`]s.
#[derive(Debug, Clone, Default)]
pub struct Stream {
    cursor_ms: f64,
    busy_ms: f64,
}

impl Stream {
    /// A stream whose cursor starts at time zero.
    pub fn new() -> Stream {
        Stream::default()
    }

    /// The stream's current modeled time: when the next launched operation
    /// would start.
    pub fn cursor_ms(&self) -> f64 {
        self.cursor_ms
    }

    /// Total modeled time spent executing launched work, excluding stalls
    /// introduced by [`Stream::wait_event`].
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Modeled time the stream spent stalled waiting on events from other
    /// streams: `cursor_ms() - busy_ms()`.
    pub fn idle_ms(&self) -> f64 {
        (self.cursor_ms - self.busy_ms).max(0.0)
    }

    /// Record an event at the stream's current cursor (fires once
    /// everything already launched on this stream has finished).
    pub fn record(&self) -> Event {
        Event {
            ready_at_ms: self.cursor_ms,
        }
    }

    /// Stall this stream until `event` has fired: the cursor advances to
    /// the event time when the event is later than the cursor, and is left
    /// untouched otherwise (waiting on the past is free).
    pub fn wait_event(&mut self, event: &Event) {
        self.cursor_ms = self.cursor_ms.max(event.ready_at_ms);
    }

    /// Enqueue work of `duration_ms` modeled milliseconds, returning the
    /// event that fires at its completion.
    pub fn launch(&mut self, duration_ms: f64) -> Event {
        debug_assert!(
            duration_ms >= 0.0 && duration_ms.is_finite(),
            "stage durations must be finite and non-negative, got {duration_ms}"
        );
        self.cursor_ms += duration_ms;
        self.busy_ms += duration_ms;
        self.record()
    }
}

/// A lazily created family of [`Stream`]s keyed by an arbitrary resource
/// tag — one compute stream per device, one copy lane per transfer
/// direction, and so on.
#[derive(Debug, Clone)]
pub struct StreamSet<R> {
    streams: HashMap<R, Stream>,
}

impl<R: Eq + Hash + Copy> StreamSet<R> {
    /// An empty stream family.
    pub fn new() -> StreamSet<R> {
        StreamSet {
            streams: HashMap::new(),
        }
    }

    /// The stream of `resource`, created at cursor zero on first use.
    pub fn stream_mut(&mut self, resource: R) -> &mut Stream {
        self.streams.entry(resource).or_default()
    }

    /// The stream of `resource` if it has received work, without creating it.
    pub fn get(&self, resource: &R) -> Option<&Stream> {
        self.streams.get(resource)
    }

    /// The latest cursor across every stream — the modeled makespan of all
    /// work launched so far.
    pub fn makespan_ms(&self) -> f64 {
        self.streams
            .values()
            .map(Stream::cursor_ms)
            .fold(0.0, f64::max)
    }

    /// Number of distinct resources that have received work.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no stream has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

impl<R: Eq + Hash + Copy> Default for StreamSet<R> {
    fn default() -> Self {
        StreamSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_work_serializes() {
        let mut s = Stream::new();
        let a = s.launch(2.0);
        let b = s.launch(3.0);
        assert_eq!(a.ready_at_ms(), 2.0);
        assert_eq!(b.ready_at_ms(), 5.0);
        assert_eq!(s.cursor_ms(), 5.0);
    }

    #[test]
    fn cross_stream_waits_impose_ordering() {
        let mut copy = Stream::new();
        let mut compute = Stream::new();
        let loaded = copy.launch(10.0);
        compute.launch(1.0); // unrelated earlier work
        compute.wait_event(&loaded);
        let done = compute.launch(2.0);
        assert_eq!(done.ready_at_ms(), 12.0);
        // waiting on an event from the past is free
        let past = Event::READY;
        compute.wait_event(&past);
        assert_eq!(compute.cursor_ms(), 12.0);
    }

    #[test]
    fn overlap_hides_the_shorter_side() {
        // compute [0,4), copy [0,3) concurrently: the dependent compute of
        // chunk 1 starts at 4 (its input arrived at 3), total 8 instead of
        // the serialized 11.
        let mut compute = Stream::new();
        let mut copy = Stream::new();
        compute.launch(4.0);
        let load = copy.launch(3.0);
        compute.wait_event(&load);
        let done = compute.launch(4.0);
        assert_eq!(done.ready_at_ms(), 8.0);
    }

    #[test]
    fn stream_set_tracks_makespan_per_resource() {
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        enum R {
            Compute,
            Copy,
        }
        let mut set: StreamSet<R> = StreamSet::new();
        assert!(set.is_empty());
        assert_eq!(set.makespan_ms(), 0.0);
        set.stream_mut(R::Compute).launch(5.0);
        set.stream_mut(R::Copy).launch(7.0);
        set.stream_mut(R::Compute).launch(1.0);
        assert_eq!(set.len(), 2);
        assert_eq!(set.makespan_ms(), 7.0);
    }

    #[test]
    fn busy_time_excludes_event_stalls() {
        let mut copy = Stream::new();
        let mut compute = Stream::new();
        let loaded = copy.launch(10.0);
        compute.launch(1.0);
        compute.wait_event(&loaded); // stalls [1, 10)
        compute.launch(2.0);
        assert_eq!(compute.cursor_ms(), 12.0);
        assert_eq!(compute.busy_ms(), 3.0);
        assert_eq!(compute.idle_ms(), 9.0);
        // the copy stream never waited: fully busy
        assert_eq!(copy.idle_ms(), 0.0);
    }

    #[test]
    fn stream_set_get_is_read_only() {
        let mut set: StreamSet<u8> = StreamSet::new();
        assert!(set.get(&0).is_none());
        set.stream_mut(0).launch(2.0);
        assert_eq!(set.get(&0).unwrap().busy_ms(), 2.0);
        assert!(set.get(&1).is_none(), "get must not create streams");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn record_captures_the_current_cursor() {
        let mut s = Stream::new();
        s.launch(1.5);
        let e = s.record();
        assert_eq!(e.ready_at_ms(), 1.5);
        s.launch(1.0);
        assert_eq!(e.ready_at_ms(), 1.5, "events are immutable snapshots");
    }
}
