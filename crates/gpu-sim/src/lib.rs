//! # gpu-sim — a software SIMT execution model
//!
//! The Dr. Top-k paper (SC '21) is evaluated on NVIDIA V100S / Titan Xp GPUs
//! with CUDA kernels. This crate is the substitute substrate used by the
//! reproduction: a *software* model of a CUDA-like device that
//!
//! * executes **warp-centric kernels** (a kernel is a function of a warp id,
//!   run for every warp of a launch grid) in parallel on host threads,
//! * **instruments** every global-memory transaction, shared-memory access,
//!   shuffle instruction and atomic operation exactly the way the paper's own
//!   cost model (Section 5.2) accounts for them, and
//! * converts those counters into an **estimated kernel time** through an
//!   analytic timing model parameterised by a [`DeviceSpec`] (V100S,
//!   Titan Xp, A100 presets).
//!
//! The absolute times produced by the model are not meant to match the
//! paper's testbed; the *relative* behaviour (which algorithm wins, where the
//! crossovers are, how workload scales with `k` and `|V|`) is preserved
//! because it is a function of exactly the quantities this crate measures.
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`spec`] | [`DeviceSpec`]: hardware parameters and presets |
//! | [`stats`] | [`KernelStats`] / [`DeviceStats`]: transaction counters |
//! | [`warp`] | [`WarpCtx`]: instrumented warp-level primitives (coalesced loads, shuffles, atomics, shared memory) |
//! | [`device`] | [`Device`]: kernel launcher + per-kernel log |
//! | [`timing`] | the analytic timing model |
//! | [`memory`] | [`AtomicBuffer`], [`AtomicCounter`]: device-global writable buffers |
//! | [`multi`] | [`GpuCluster`]: multiple devices + MPI-like interconnect model |
//! | [`stream`] | [`Stream`] / [`Event`]: modeled CUDA-stream overlap (transfer/compute concurrency) |
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{Device, DeviceSpec};
//!
//! let device = Device::new(DeviceSpec::v100s());
//! let data: Vec<u32> = (0..4096u32).collect();
//!
//! // One warp per 128-element subrange; each warp returns the subrange max.
//! let launch = device.launch("subrange_max", data.len() / 128, |ctx| {
//!     let sub = ctx.read_coalesced(&data[ctx.warp_id * 128..(ctx.warp_id + 1) * 128]);
//!     let lane_max = sub.iter().copied().max().unwrap();
//!     ctx.warp_reduce_max(lane_max)
//! });
//! assert_eq!(launch.output.len(), 32);
//! assert_eq!(launch.output[0], 127);
//! assert!(launch.stats.global_load_transactions > 0);
//! assert!(launch.time_ms > 0.0);
//! ```

pub mod device;
pub mod memory;
pub mod multi;
pub mod spec;
pub mod stats;
pub mod stream;
pub mod timing;
pub mod warp;

pub use device::{Device, LaunchResult};
pub use memory::{pack_kv, unpack_kv, AtomicBuffer, AtomicBuffer64, AtomicCounter};
pub use multi::{DeviceError, GpuCluster, InterconnectSpec, TransferDirection};
pub use spec::DeviceSpec;
pub use stats::{DeviceStats, KernelRecord, KernelStats};
pub use stream::{Event, Stream, StreamSet};
pub use timing::{estimate_time_ms, host_transfer_time_ms};
pub use warp::{chunk_range, WarpCtx, WARP_SIZE};
