//! Analytic timing model.
//!
//! The paper's own cost analysis (Section 5.2) estimates kernel time from
//! global-memory accesses and shuffle instructions, weighted by the device's
//! `C_global` / `C_shfl` costs, because "one global memory access or
//! intra-warp shuffle operation takes a much longer time than a single
//! arithmetic and logic operation". This module implements the same model
//! with a few practical refinements:
//!
//! * coalesced traffic is charged at the device's **effective bandwidth**
//!   (the V100S delegate construction achieves 84% of peak in the paper);
//! * random transactions, shuffles, atomics and shared-memory traffic are
//!   charged per-operation and divided by the available parallelism
//!   (concurrent warps for instruction-like costs, SM count for serialized
//!   atomic traffic);
//! * a fixed launch overhead is added per kernel, which is what makes very
//!   small kernels (e.g. the second top-k on a tiny concatenated vector)
//!   latency-bound rather than free.

use crate::spec::DeviceSpec;
use crate::stats::KernelStats;

/// Number of un-contended atomic operations the L2 can retire per core
/// clock cycle across the whole device (V100-class hardware sustains on the
/// order of 10^10 atomics/s when the targets are spread across addresses).
const ATOMIC_OPS_PER_CYCLE: f64 = 16.0;

/// Estimate the execution time of a kernel in **milliseconds** from its
/// instrumentation counters and the device it ran on.
pub fn estimate_time_ms(stats: &KernelStats, spec: &DeviceSpec) -> f64 {
    let clock_hz = spec.clock_ghz * 1e9;

    // Streaming (bandwidth-bound) component: every byte moved through global
    // memory, charged at effective bandwidth.
    let mem_time_s = stats.total_bytes() as f64 / spec.effective_bandwidth_bytes_per_s();

    // Latency-bound component: if the kernel performs only a handful of
    // transactions they cannot saturate bandwidth, so the time is bounded
    // below by transaction latency divided by the latency-hiding parallelism.
    let latency_time_s = stats.total_transactions() as f64 * spec.c_global_cycles
        / clock_hz
        / spec.max_resident_warps() as f64;

    let global_time_s = mem_time_s.max(latency_time_s);

    // Intra-warp communication: shuffles are warp-wide instructions issued at
    // roughly `1 / c_shfl_cycles` per SM per cycle across the device.
    let shfl_time_s =
        stats.shuffle_instructions as f64 * spec.c_shfl_cycles / clock_hz / spec.num_sms as f64;

    // Shared memory: per-lane operations served by 32 banks per SM per cycle;
    // bank conflicts add warp-wide serialized replays.
    let shared_lane_throughput = spec.num_sms as f64 * 32.0 * clock_hz;
    let shared_time_s = stats.shared_ops as f64 * spec.c_shared_cycles / shared_lane_throughput
        + stats.bank_conflicts as f64 * spec.c_shared_cycles / (spec.num_sms as f64 * clock_hz);

    // Atomics: throughput-limited when spread over addresses, but never
    // faster than the serialized same-address chain (histogram hot-spot
    // model, each serialized update paying the full round-trip latency).
    let atomic_throughput_s = stats.atomic_operations as f64 / (ATOMIC_OPS_PER_CYCLE * clock_hz);
    let atomic_serial_s = stats.atomic_serialized_ops as f64 * spec.c_atomic_cycles / clock_hz;
    let atomic_time_s = atomic_throughput_s.max(atomic_serial_s);

    // Explicitly attributed ALU work (weighted well below memory).
    let alu_time_s = stats.alu_ops as f64 / clock_hz / (spec.total_cores() as f64);

    // Barriers: a few hundred cycles each, amortized over resident warps.
    let sync_time_s =
        stats.syncthreads as f64 * 100.0 / clock_hz / spec.max_resident_warps() as f64;

    let launch_s = spec.launch_overhead_us * 1e-6;

    (global_time_s
        + shfl_time_s
        + shared_time_s
        + atomic_time_s
        + alu_time_s
        + sync_time_s
        + launch_s)
        * 1e3
}

/// Estimate the time to move `bytes` between host and device (PCIe), in ms.
/// Used by the distributed runner to model the "reload overhead" column of
/// Table 2 (sub-vectors streamed from outside the GPU).
pub fn host_transfer_time_ms(bytes: u64, spec: &DeviceSpec) -> f64 {
    let bw = spec.host_bandwidth_gbps * 1e9;
    let latency_s = 10e-6;
    (bytes as f64 / bw + latency_s) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_bytes(bytes: u64) -> KernelStats {
        KernelStats {
            global_load_transactions: bytes / 128,
            global_loaded_bytes: bytes,
            ..KernelStats::default()
        }
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let spec = DeviceSpec::v100s();
        let t = estimate_time_ms(&KernelStats::default(), &spec);
        assert!((t - spec.launch_overhead_us * 1e-3).abs() < 1e-9);
    }

    #[test]
    fn streaming_scan_of_4gib_is_a_few_ms() {
        // Reading 2^30 u32 (4 GiB) at ~952 GB/s effective should take ~4.5 ms,
        // matching the paper's "delegate vector construction is ~4.2 ms at
        // 84% of peak" observation for |V| = 2^30.
        let spec = DeviceSpec::v100s();
        let bytes = 4u64 << 30;
        let t = estimate_time_ms(&stats_with_bytes(bytes), &spec);
        assert!(t > 3.0 && t < 7.0, "expected a few ms, got {t}");
    }

    #[test]
    fn time_is_monotone_in_traffic() {
        let spec = DeviceSpec::v100s();
        let t1 = estimate_time_ms(&stats_with_bytes(1 << 20), &spec);
        let t2 = estimate_time_ms(&stats_with_bytes(1 << 26), &spec);
        let t3 = estimate_time_ms(&stats_with_bytes(1 << 30), &spec);
        assert!(t1 <= t2 && t2 < t3);
    }

    #[test]
    fn shuffles_add_time() {
        let spec = DeviceSpec::v100s();
        let base = stats_with_bytes(1 << 28);
        let mut with_shfl = base;
        with_shfl.shuffle_instructions = 500_000_000;
        assert!(estimate_time_ms(&with_shfl, &spec) > estimate_time_ms(&base, &spec));
    }

    #[test]
    fn atomics_and_shared_add_time() {
        let spec = DeviceSpec::v100s();
        let base = KernelStats::default();
        let mut with_atomics = base;
        with_atomics.atomic_operations = 10_000_000;
        let mut with_shared = base;
        with_shared.shared_ops = 10_000_000;
        with_shared.bank_conflicts = 5_000_000;
        assert!(estimate_time_ms(&with_atomics, &spec) > estimate_time_ms(&base, &spec));
        assert!(estimate_time_ms(&with_shared, &spec) > estimate_time_ms(&base, &spec));
    }

    #[test]
    fn slower_device_is_slower() {
        let v100 = DeviceSpec::v100s();
        let titan = DeviceSpec::titan_xp();
        let stats = stats_with_bytes(1 << 30);
        let tv = estimate_time_ms(&stats, &v100);
        let tt = estimate_time_ms(&stats, &titan);
        let ratio = tt / tv;
        // The paper reports V100S beats Titan Xp by 1.3x - 1.8x; a bandwidth
        // bound kernel approaches the bandwidth ratio (~2x). Accept 1.2-2.2.
        assert!(ratio > 1.2 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn host_transfer_scales_with_bytes() {
        let spec = DeviceSpec::v100s();
        let t_small = host_transfer_time_ms(1 << 20, &spec);
        let t_large = host_transfer_time_ms(4 << 30, &spec);
        assert!(t_large > t_small);
        // 4 GiB over 12 GB/s PCIe should be a few hundred ms.
        assert!(t_large > 200.0 && t_large < 600.0, "got {t_large}");
    }
}
