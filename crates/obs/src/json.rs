//! A tiny, dependency-free JSON layer shared by every exporter in the repo.
//!
//! The workspace builds offline, so there is no serde. This module provides
//! the three things the observability stack actually needs:
//!
//! * [`Json`] — an *order-preserving* value type with a deterministic writer
//!   (objects serialize their keys in insertion order, floats use Rust's
//!   shortest round-trip formatting), so identical values produce
//!   byte-identical text and CI can diff exports.
//! * [`Json::parse`] — a minimal recursive-descent parser, enough to
//!   validate and introspect files this crate (or a bench) wrote.
//! * [`validate_chrome_trace`] — a structural checker for Chrome Trace
//!   Event Format files produced by
//!   [`TraceRecorder::chrome_trace_json`](crate::TraceRecorder::chrome_trace_json).
//!
//! Every export carries [`SCHEMA_VERSION`] in a `"schema"` field (see
//! [`Snapshot`]) so downstream tooling can detect format drift.

/// Version tag stamped into every JSON snapshot this crate produces.
///
/// Bump the suffix when a snapshot's structure changes incompatibly.
pub const SCHEMA_VERSION: &str = "drtopk-obs/v1";

/// An ordered JSON value.
///
/// Unlike map-based representations, object members keep their insertion
/// order, which makes the serialized form deterministic — a requirement for
/// byte-diffing traces and baselines in CI.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, kept exact (no float round-trip) up to `i64` range.
    Int(i64),
    /// A finite floating-point number. Non-finite values are serialized as
    /// `null` (JSON has no representation for them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: `(key, value)` pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value (convenience for `Json::Str(s.into())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the numeric value of an `Int` or `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes on a single line with no whitespace.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes with two-space indentation — the format used for
    /// committed baselines and snapshot files.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Parses a JSON document.
    ///
    /// Numbers always parse into [`Json::Num`] (the reader cannot know the
    /// writer meant an integer); use [`Json::as_f64`] for lookups. Returns a
    /// human-readable error naming the byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral floats print with a trailing `.0` so the value's type is
        // stable across the write/parse round trip.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

/// Builder for a versioned snapshot object.
///
/// Every snapshot opens with `"schema": "drtopk-obs/v1"` and a `"kind"`
/// discriminator, then whatever fields the producer appends — benches and
/// the engine share this shape instead of hand-rolling JSON.
#[derive(Debug, Clone)]
pub struct Snapshot {
    members: Vec<(String, Json)>,
}

impl Snapshot {
    /// Starts a snapshot of the given kind (e.g. `"engine_throughput"`).
    pub fn new(kind: &str) -> Snapshot {
        Snapshot {
            members: vec![
                ("schema".to_string(), Json::str(SCHEMA_VERSION)),
                ("kind".to_string(), Json::str(kind)),
            ],
        }
    }

    /// Appends a field; returns `self` for chaining.
    pub fn field(mut self, key: &str, value: Json) -> Snapshot {
        self.members.push((key.to_string(), value));
        self
    }

    /// Finishes the snapshot as a [`Json`] object.
    pub fn build(self) -> Json {
        Json::Obj(self.members)
    }

    /// Finishes and pretty-prints the snapshot.
    pub fn to_pretty_string(self) -> String {
        self.build().to_pretty_string()
    }
}

/// Structural summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in `traceEvents` (spans + instants + metadata).
    pub events: usize,
    /// Number of `"X"` (complete span) events.
    pub spans: usize,
    /// Number of distinct `(pid, tid)` tracks that carry spans.
    pub tracks: usize,
    /// Number of distinct `pid` groups that carry spans (1 when the trace is
    /// modeled-only, 2 when a measured track group is present).
    pub span_pids: usize,
}

/// Validates a Chrome Trace Event Format document structurally.
///
/// Checks that the text is well-formed JSON, that `traceEvents` is an array
/// of objects each carrying `ph`/`pid`/`tid`/`name`, that every `"X"` span
/// has finite `ts >= 0` and `dur >= 0`, and that *modeled* spans (pid 1,
/// the recorder's modeled process) on each `(pid, tid)` track are monotone
/// and non-overlapping in emission order — the recorder emits per-track
/// spans in schedule order, so out-of-order modeled spans indicate a
/// corrupted trace. Measured mirror spans (pid 2) are exempt: they are
/// wall-clock samples from runs whose epochs need not compose into one
/// coherent timeline (e.g. engine batch replays), so they may overlap.
/// Returns counts for further assertions.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let root = Json::parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing `traceEvents` array")?;
    let mut spans = 0usize;
    // (pid, tid) -> end of the last span seen on that track, in µs.
    let mut track_ends: Vec<((i64, i64), f64)> = Vec::new();
    let mut span_pids: Vec<i64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing `ph`"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing `pid`"))? as i64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing `tid`"))? as i64;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        if ph != "X" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("span {i}: missing `ts`"))?;
        let dur = ev
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or(format!("span {i}: missing `dur`"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("span {i}: bad ts {ts}"));
        }
        if !dur.is_finite() || dur < 0.0 {
            return Err(format!("span {i}: bad dur {dur}"));
        }
        spans += 1;
        if !span_pids.contains(&pid) {
            span_pids.push(pid);
        }
        const EPS_US: f64 = 1e-3;
        match track_ends.iter_mut().find(|(key, _)| *key == (pid, tid)) {
            Some((_, end)) => {
                if pid == 1 && ts + EPS_US < *end {
                    return Err(format!(
                        "span {i}: overlaps previous span on modeled track ({pid},{tid}): \
                         ts {ts} < prior end {end}"
                    ));
                }
                *end = (ts + dur).max(*end);
            }
            None => track_ends.push(((pid, tid), ts + dur)),
        }
    }
    Ok(TraceCheck {
        events: events.len(),
        spans,
        tracks: track_ends.len(),
        span_pids: span_pids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_parser() {
        let value = Json::obj(vec![
            ("schema", Json::str(SCHEMA_VERSION)),
            ("count", Json::Int(42)),
            ("ratio", Json::Num(0.25)),
            ("whole", Json::Num(3.0)),
            (
                "tags",
                Json::Arr(vec![Json::str("a"), Json::Bool(true), Json::Null]),
            ),
            ("nested", Json::obj(vec![("k", Json::Int(-7))])),
        ]);
        for text in [value.to_compact_string(), value.to_pretty_string()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.get("schema").unwrap().as_str(), Some(SCHEMA_VERSION));
            assert_eq!(back.get("count").unwrap().as_f64(), Some(42.0));
            assert_eq!(back.get("ratio").unwrap().as_f64(), Some(0.25));
            assert_eq!(back.get("whole").unwrap().as_f64(), Some(3.0));
            assert_eq!(back.get("tags").unwrap().as_array().unwrap().len(), 3);
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let build = || {
            Json::obj(vec![
                ("b", Json::Num(1.5)),
                ("a", Json::Int(2)),
                ("s", Json::str("x\"y\n")),
            ])
        };
        assert_eq!(build().to_compact_string(), build().to_compact_string());
        assert_eq!(
            build().to_compact_string(),
            "{\"b\":1.5,\"a\":2,\"s\":\"x\\\"y\\n\"}"
        );
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{263a}";
        let text = Json::str(s).to_compact_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn snapshot_carries_schema_and_kind() {
        let snap = Snapshot::new("unit_test").field("n", Json::Int(3)).build();
        assert_eq!(snap.get("schema").unwrap().as_str(), Some(SCHEMA_VERSION));
        assert_eq!(snap.get("kind").unwrap().as_str(), Some("unit_test"));
        assert_eq!(snap.get("n").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn validator_accepts_a_minimal_trace() {
        let text = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"modeled"}},
            {"ph":"X","pid":1,"tid":1,"name":"a","ts":0.0,"dur":5.0},
            {"ph":"X","pid":1,"tid":1,"name":"b","ts":5.0,"dur":1.0},
            {"ph":"X","pid":1,"tid":2,"name":"c","ts":2.0,"dur":1.0}
        ],"displayTimeUnit":"ms"}"#;
        let check = validate_chrome_trace(text).unwrap();
        assert_eq!(check.events, 4);
        assert_eq!(check.spans, 3);
        assert_eq!(check.tracks, 2);
        assert_eq!(check.span_pids, 1);
    }

    #[test]
    fn validator_rejects_overlapping_spans_on_one_track() {
        let text = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":1,"name":"a","ts":0.0,"dur":5.0},
            {"ph":"X","pid":1,"tid":1,"name":"b","ts":3.0,"dur":1.0}
        ]}"#;
        assert!(validate_chrome_trace(text).is_err());
    }

    #[test]
    fn validator_rejects_malformed_spans() {
        for bad in [
            r#"{"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0.0,"dur":1.0}]}"#,
            r#"{"traceEvents":[{"ph":"X","pid":1,"tid":1,"name":"a","dur":1.0}]}"#,
            r#"{"traceEvents":[{"ph":"X","pid":1,"tid":1,"name":"a","ts":-1.0,"dur":1.0}]}"#,
            r#"{"nothing":[]}"#,
            "not json",
        ] {
            assert!(validate_chrome_trace(bad).is_err(), "accepted: {bad}");
        }
    }
}
