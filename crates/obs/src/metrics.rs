//! Lock-free metrics: atomic counters, float gauges, log-bucketed
//! histograms, and the [`MetricsRegistry`] that names them.
//!
//! Every metric the engine exposes is declared in the [`MetricName`]
//! catalog; `tests/docs_drift.rs` matches the catalog exhaustively against
//! `docs/OBSERVABILITY.md`, so a metric cannot ship undocumented. All hot
//! paths are single atomic RMW operations — no locks, safe to call from the
//! per-resource executor workers.

use crate::json::{Json, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically-increasing integer counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically-increasing float accumulator (e.g. busy milliseconds).
///
/// Stored as `f64` bit patterns in an atomic; `add` is a CAS loop.
#[derive(Debug)]
pub struct FloatCounter(AtomicU64);

impl Default for FloatCounter {
    fn default() -> FloatCounter {
        FloatCounter::new()
    }
}

impl FloatCounter {
    /// A float counter starting at zero.
    pub const fn new() -> FloatCounter {
        FloatCounter(AtomicU64::new(0))
    }

    /// Adds `v` (negative or non-finite contributions are ignored).
    pub fn add(&self, v: f64) {
        if !v.is_finite() || v <= 0.0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A last-write-wins float gauge (e.g. an occupancy fraction).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge (non-finite values are coerced to zero).
    pub fn set(&self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Log-bucketed histogram bucket layout: growth factor `γ = 2^(1/8)` per
/// bucket, i.e. any quantile estimate is within `√γ − 1 ≈ 4.4%` relative
/// error of a sample in its bucket.
const GAMMA_LOG2: f64 = 0.125;
/// Values at or below this (ms) land in bucket 0.
const LOW: f64 = 1e-6;
/// Bucket count: bucket 0 is `[0, LOW]`; buckets 1..=399 cover
/// `LOW · γ^(i-1)` up to ≈ 1.0e9 ms; larger values clamp into the last.
const BUCKETS: usize = 400;

/// A lock-free log-bucketed histogram over non-negative milliseconds.
///
/// `record` is one atomic increment plus three atomic RMWs (count, sum,
/// min/max). Quantiles are estimated as the geometric midpoint of the
/// bucket containing the nearest-rank sample, clamped to the observed
/// `[min, max]`; relative error is bounded by the bucket width (≈ ±4.4%).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: FloatCounter,
    /// Bits of the running minimum; `f64` bit patterns order like the
    /// values themselves for non-negative floats, so `fetch_min` works.
    min_bits: AtomicU64,
    /// Bits of the running maximum (same representation trick).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: FloatCounter::new(),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v <= LOW {
            return 0;
        }
        let i = 1 + ((v / LOW).log2() / GAMMA_LOG2).floor() as usize;
        i.min(BUCKETS - 1)
    }

    /// Lower bound of bucket `i` (0 for bucket 0).
    fn bucket_low(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            LOW * ((i - 1) as f64 * GAMMA_LOG2).exp2()
        }
    }

    /// Records one sample. Negative and NaN samples are clamped to zero;
    /// `+∞` lands in the top bucket.
    pub fn record(&self, v: f64) {
        let v = if v.is_nan() { 0.0 } else { v.max(0.0) };
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let clamped = if v.is_finite() { v } else { f64::MAX };
        self.sum.add(clamped);
        self.min_bits
            .fetch_min(clamped.to_bits(), Ordering::Relaxed);
        self.max_bits
            .fetch_max(clamped.to_bits(), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by nearest rank:
    /// the bucket holding the `⌈q·n⌉`-th smallest sample, reported as that
    /// bucket's geometric midpoint clamped to `[min, max]`. Returns `None`
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        let mut bucket = BUCKETS - 1;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                bucket = i;
                break;
            }
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let estimate = if bucket == 0 {
            0.0
        } else {
            // Geometric midpoint of [low, low·γ).
            Self::bucket_low(bucket) * (GAMMA_LOG2 * 0.5).exp2()
        };
        Some(estimate.clamp(min, max))
    }

    /// Snapshot of count/sum/min/max and the p50/p95/p99 estimates.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        if count == 0 {
            return HistogramSummary::default();
        }
        HistogramSummary {
            count,
            sum_ms: self.sum(),
            min_ms: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max_ms: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            p50_ms: self.quantile(0.50).unwrap_or(0.0),
            p95_ms: self.quantile(0.95).unwrap_or(0.0),
            p99_ms: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// Point-in-time summary of a [`Histogram`]. All-zero when empty.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples, ms.
    pub sum_ms: f64,
    /// Smallest sample, ms.
    pub min_ms: f64,
    /// Largest sample, ms.
    pub max_ms: f64,
    /// Median estimate, ms.
    pub p50_ms: f64,
    /// 95th-percentile estimate, ms.
    pub p95_ms: f64,
    /// 99th-percentile estimate, ms.
    pub p99_ms: f64,
}

impl HistogramSummary {
    /// Mean sample, ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// JSON form used inside snapshots.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum_ms", Json::Num(self.sum_ms)),
            ("min_ms", Json::Num(self.min_ms)),
            ("max_ms", Json::Num(self.max_ms)),
            ("p50_ms", Json::Num(self.p50_ms)),
            ("p95_ms", Json::Num(self.p95_ms)),
            ("p99_ms", Json::Num(self.p99_ms)),
        ])
    }
}

/// How a metric aggregates — used by the docs catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricUnit {
    /// Monotone integer count.
    Count,
    /// Monotone millisecond accumulator.
    SumMs,
    /// Latency histogram with percentile extraction.
    HistogramMs,
    /// Last-write gauge, one instance per worker slot.
    SlotGauge,
    /// Monotone millisecond accumulator, one instance per worker slot.
    SlotSumMs,
    /// Last-write gauge, one instance per `StageKind`.
    KindGauge,
}

/// The closed catalog of metric families the registry exposes.
///
/// `ALL` lists every variant in declaration order; `name()` is the stable
/// snake_case identifier used in snapshots and documented in
/// `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricName {
    /// Tuning-plan cache hits across all batches.
    PlanCacheHits,
    /// Tuning-plan cache misses across all batches.
    PlanCacheMisses,
    /// Delegate-vector cache hits across all batches.
    DelegateCacheHits,
    /// Delegate-vector cache misses across all batches.
    DelegateCacheMisses,
    /// Delegate construction passes actually executed.
    DelegatePassesRun,
    /// Delegate construction passes avoided by fusion/caching.
    DelegatePassesSaved,
    /// Queries answered (every query in every batch).
    QueriesServed,
    /// Batches answered.
    BatchesServed,
    /// Queries that took the sharded (over-capacity) path.
    ShardedQueries,
    /// Modeled engine busy time across batches, ms — denominator of
    /// sustained QPS.
    EngineBusyMs,
    /// Per-query end-to-end modeled latency, ms.
    QueryLatencyMs,
    /// Per-batch modeled makespan, ms.
    BatchMakespanMs,
    /// Per-worker-slot busy time in the device pool phase, ms.
    WorkerBusyMs,
    /// Per-worker-slot busy fraction of the pool phase (idle = 1 − busy).
    WorkerOccupancy,
    /// Per-worker-slot scheduled unit count in the last batch.
    WorkerQueueDepth,
    /// Per-`StageKind` mean |measured − calibrated-model| residual, ms.
    StageResidualMs,
}

impl MetricName {
    /// Every metric family, in declaration order.
    pub const ALL: [MetricName; 16] = [
        MetricName::PlanCacheHits,
        MetricName::PlanCacheMisses,
        MetricName::DelegateCacheHits,
        MetricName::DelegateCacheMisses,
        MetricName::DelegatePassesRun,
        MetricName::DelegatePassesSaved,
        MetricName::QueriesServed,
        MetricName::BatchesServed,
        MetricName::ShardedQueries,
        MetricName::EngineBusyMs,
        MetricName::QueryLatencyMs,
        MetricName::BatchMakespanMs,
        MetricName::WorkerBusyMs,
        MetricName::WorkerOccupancy,
        MetricName::WorkerQueueDepth,
        MetricName::StageResidualMs,
    ];

    /// Stable snake_case identifier.
    pub fn name(self) -> &'static str {
        match self {
            MetricName::PlanCacheHits => "plan_cache_hits",
            MetricName::PlanCacheMisses => "plan_cache_misses",
            MetricName::DelegateCacheHits => "delegate_cache_hits",
            MetricName::DelegateCacheMisses => "delegate_cache_misses",
            MetricName::DelegatePassesRun => "delegate_passes_run",
            MetricName::DelegatePassesSaved => "delegate_passes_saved",
            MetricName::QueriesServed => "queries_served",
            MetricName::BatchesServed => "batches_served",
            MetricName::ShardedQueries => "sharded_queries",
            MetricName::EngineBusyMs => "engine_busy_ms",
            MetricName::QueryLatencyMs => "query_latency_ms",
            MetricName::BatchMakespanMs => "batch_makespan_ms",
            MetricName::WorkerBusyMs => "worker_busy_ms",
            MetricName::WorkerOccupancy => "worker_occupancy",
            MetricName::WorkerQueueDepth => "worker_queue_depth",
            MetricName::StageResidualMs => "stage_residual_ms",
        }
    }

    /// How the family aggregates.
    pub fn unit(self) -> MetricUnit {
        match self {
            MetricName::PlanCacheHits
            | MetricName::PlanCacheMisses
            | MetricName::DelegateCacheHits
            | MetricName::DelegateCacheMisses
            | MetricName::DelegatePassesRun
            | MetricName::DelegatePassesSaved
            | MetricName::QueriesServed
            | MetricName::BatchesServed
            | MetricName::ShardedQueries => MetricUnit::Count,
            MetricName::EngineBusyMs => MetricUnit::SumMs,
            MetricName::QueryLatencyMs | MetricName::BatchMakespanMs => MetricUnit::HistogramMs,
            MetricName::WorkerBusyMs => MetricUnit::SlotSumMs,
            MetricName::WorkerOccupancy | MetricName::WorkerQueueDepth => MetricUnit::SlotGauge,
            MetricName::StageResidualMs => MetricUnit::KindGauge,
        }
    }
}

impl std::fmt::Display for MetricName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The engine's metric store: one instance per [`MetricName`] family, with
/// per-slot and per-kind instances where the family calls for them.
///
/// All update paths are lock-free atomics; `snapshot()` reads a consistent-
/// enough point-in-time view (metrics are monotone or last-write, so torn
/// reads across families are harmless).
#[derive(Debug)]
pub struct MetricsRegistry {
    plan_cache_hits: Counter,
    plan_cache_misses: Counter,
    delegate_cache_hits: Counter,
    delegate_cache_misses: Counter,
    delegate_passes_run: Counter,
    delegate_passes_saved: Counter,
    queries_served: Counter,
    batches_served: Counter,
    sharded_queries: Counter,
    engine_busy_ms: FloatCounter,
    query_latency_ms: Histogram,
    batch_makespan_ms: Histogram,
    worker_busy_ms: Vec<FloatCounter>,
    worker_occupancy: Vec<Gauge>,
    worker_queue_depth: Vec<Gauge>,
    stage_residual_ms: Vec<(&'static str, Gauge)>,
}

impl MetricsRegistry {
    /// A registry with `slots` worker slots and one residual gauge per
    /// stage-kind name in `kinds`.
    pub fn new(slots: usize, kinds: &[&'static str]) -> MetricsRegistry {
        MetricsRegistry {
            plan_cache_hits: Counter::new(),
            plan_cache_misses: Counter::new(),
            delegate_cache_hits: Counter::new(),
            delegate_cache_misses: Counter::new(),
            delegate_passes_run: Counter::new(),
            delegate_passes_saved: Counter::new(),
            queries_served: Counter::new(),
            batches_served: Counter::new(),
            sharded_queries: Counter::new(),
            engine_busy_ms: FloatCounter::new(),
            query_latency_ms: Histogram::new(),
            batch_makespan_ms: Histogram::new(),
            worker_busy_ms: (0..slots).map(|_| FloatCounter::new()).collect(),
            worker_occupancy: (0..slots).map(|_| Gauge::new()).collect(),
            worker_queue_depth: (0..slots).map(|_| Gauge::new()).collect(),
            stage_residual_ms: kinds.iter().map(|k| (*k, Gauge::new())).collect(),
        }
    }

    /// The counter for a `Count` family.
    ///
    /// # Panics
    /// If `name` is not a plain counter (see [`MetricName::unit`]).
    pub fn counter(&self, name: MetricName) -> &Counter {
        match name {
            MetricName::PlanCacheHits => &self.plan_cache_hits,
            MetricName::PlanCacheMisses => &self.plan_cache_misses,
            MetricName::DelegateCacheHits => &self.delegate_cache_hits,
            MetricName::DelegateCacheMisses => &self.delegate_cache_misses,
            MetricName::DelegatePassesRun => &self.delegate_passes_run,
            MetricName::DelegatePassesSaved => &self.delegate_passes_saved,
            MetricName::QueriesServed => &self.queries_served,
            MetricName::BatchesServed => &self.batches_served,
            MetricName::ShardedQueries => &self.sharded_queries,
            other => panic!("{other} is not a plain counter"),
        }
    }

    /// The histogram for a `HistogramMs` family.
    ///
    /// # Panics
    /// If `name` is not a histogram.
    pub fn histogram(&self, name: MetricName) -> &Histogram {
        match name {
            MetricName::QueryLatencyMs => &self.query_latency_ms,
            MetricName::BatchMakespanMs => &self.batch_makespan_ms,
            other => panic!("{other} is not a histogram"),
        }
    }

    /// Adds modeled engine busy time (`engine_busy_ms`).
    pub fn add_engine_busy_ms(&self, ms: f64) {
        self.engine_busy_ms.add(ms);
    }

    /// Adds busy time for one worker slot (`worker_busy_ms`). Out-of-range
    /// slots are ignored.
    pub fn add_worker_busy_ms(&self, slot: usize, ms: f64) {
        if let Some(c) = self.worker_busy_ms.get(slot) {
            c.add(ms);
        }
    }

    /// Sets the occupancy gauge for one worker slot (`worker_occupancy`).
    pub fn set_worker_occupancy(&self, slot: usize, fraction: f64) {
        if let Some(g) = self.worker_occupancy.get(slot) {
            g.set(fraction);
        }
    }

    /// Sets the queue-depth gauge for one worker slot
    /// (`worker_queue_depth`).
    pub fn set_worker_queue_depth(&self, slot: usize, depth: f64) {
        if let Some(g) = self.worker_queue_depth.get(slot) {
            g.set(depth);
        }
    }

    /// Sets the modeled-vs-calibrated residual gauge for one stage kind
    /// (`stage_residual_ms`). Unknown kind names are ignored.
    pub fn set_stage_residual_ms(&self, kind: &str, ms: f64) {
        if let Some((_, g)) = self.stage_residual_ms.iter().find(|(k, _)| *k == kind) {
            g.set(ms);
        }
    }

    /// Number of worker slots this registry tracks.
    pub fn slots(&self) -> usize {
        self.worker_busy_ms.len()
    }

    /// Point-in-time snapshot of every family in the catalog.
    ///
    /// The `match` below is intentionally exhaustive over [`MetricName`]:
    /// adding a family without deciding how it snapshots is a compile
    /// error.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        for name in MetricName::ALL {
            let value = match name {
                MetricName::PlanCacheHits
                | MetricName::PlanCacheMisses
                | MetricName::DelegateCacheHits
                | MetricName::DelegateCacheMisses
                | MetricName::DelegatePassesRun
                | MetricName::DelegatePassesSaved
                | MetricName::QueriesServed
                | MetricName::BatchesServed
                | MetricName::ShardedQueries => Some(self.counter(name).get()),
                // Snapshotted below as typed fields rather than counters.
                MetricName::EngineBusyMs
                | MetricName::QueryLatencyMs
                | MetricName::BatchMakespanMs
                | MetricName::WorkerBusyMs
                | MetricName::WorkerOccupancy
                | MetricName::WorkerQueueDepth
                | MetricName::StageResidualMs => None,
            };
            if let Some(v) = value {
                counters.push((name, v));
            }
        }
        let engine_busy_ms = self.engine_busy_ms.get();
        let queries = self.queries_served.get();
        let sustained_qps = if engine_busy_ms > 0.0 {
            queries as f64 / engine_busy_ms * 1000.0
        } else {
            0.0
        };
        MetricsSnapshot {
            counters,
            engine_busy_ms,
            query_latency_ms: self.query_latency_ms.summary(),
            batch_makespan_ms: self.batch_makespan_ms.summary(),
            workers: (0..self.slots())
                .map(|slot| WorkerSnapshot {
                    slot,
                    busy_ms: self.worker_busy_ms[slot].get(),
                    occupancy: self.worker_occupancy[slot].get(),
                    queue_depth: self.worker_queue_depth[slot].get(),
                })
                .collect(),
            stage_residual_ms: self
                .stage_residual_ms
                .iter()
                .map(|(k, g)| (k.to_string(), g.get()))
                .collect(),
            sustained_qps,
        }
    }
}

/// One worker slot's view in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerSnapshot {
    /// Slot index (device id in the engine's pool).
    pub slot: usize,
    /// Cumulative busy time, ms.
    pub busy_ms: f64,
    /// Busy fraction of the last batch's pool phase, `0.0 ..= 1.0`.
    pub occupancy: f64,
    /// Units scheduled onto this slot in the last batch.
    pub queue_depth: f64,
}

/// Point-in-time view of a [`MetricsRegistry`], attached to `EngineReport`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(family, value)` for every `Count` family, in catalog order.
    pub counters: Vec<(MetricName, u64)>,
    /// Cumulative modeled engine busy time, ms.
    pub engine_busy_ms: f64,
    /// Per-query end-to-end latency distribution.
    pub query_latency_ms: HistogramSummary,
    /// Per-batch makespan distribution.
    pub batch_makespan_ms: HistogramSummary,
    /// Per-slot worker telemetry.
    pub workers: Vec<WorkerSnapshot>,
    /// `(stage kind name, mean abs residual ms)` per kind, in `StageKind`
    /// declaration order.
    pub stage_residual_ms: Vec<(String, f64)>,
    /// Queries served per second of modeled engine busy time.
    pub sustained_qps: f64,
}

impl MetricsSnapshot {
    /// Value of a `Count` family in this snapshot (0 if absent).
    pub fn counter(&self, name: MetricName) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Serializes under the shared snapshot schema
    /// ([`SCHEMA_VERSION`](crate::SCHEMA_VERSION), kind
    /// `"metrics_snapshot"`).
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.name().to_string(), Json::Int(*v as i64)))
                .collect(),
        );
        let workers = Json::Arr(
            self.workers
                .iter()
                .map(|w| {
                    Json::obj(vec![
                        ("slot", Json::Int(w.slot as i64)),
                        ("busy_ms", Json::Num(w.busy_ms)),
                        ("occupancy", Json::Num(w.occupancy)),
                        ("queue_depth", Json::Num(w.queue_depth)),
                    ])
                })
                .collect(),
        );
        let residuals = Json::Obj(
            self.stage_residual_ms
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        Snapshot::new("metrics_snapshot")
            .field("counters", counters)
            .field("engine_busy_ms", Json::Num(self.engine_busy_ms))
            .field("query_latency_ms", self.query_latency_ms.to_json())
            .field("batch_makespan_ms", self.batch_makespan_ms.to_json())
            .field("workers", workers)
            .field("stage_residual_ms", residuals)
            .field("sustained_qps", Json::Num(self.sustained_qps))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let f = FloatCounter::new();
        f.add(1.5);
        f.add(2.25);
        f.add(-3.0); // ignored
        f.add(f64::NAN); // ignored
        assert_eq!(f.get(), 3.75);

        let g = Gauge::new();
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_quantiles_are_close_on_a_known_stream() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 1000.0);
        assert!((s.p50_ms - 500.0).abs() / 500.0 < 0.05, "p50 {}", s.p50_ms);
        assert!((s.p95_ms - 950.0).abs() / 950.0 < 0.05, "p95 {}", s.p95_ms);
        assert!((s.p99_ms - 990.0).abs() / 990.0 < 0.05, "p99 {}", s.p99_ms);
        assert!((s.mean_ms() - 500.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_edge_cases() {
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.summary(), HistogramSummary::default());

        let one = Histogram::new();
        one.record(42.0);
        // A single sample is exact: the estimate clamps to [min, max].
        assert_eq!(one.quantile(0.0), Some(42.0));
        assert_eq!(one.quantile(0.5), Some(42.0));
        assert_eq!(one.quantile(1.0), Some(42.0));

        let zeros = Histogram::new();
        for _ in 0..10 {
            zeros.record(0.0);
        }
        assert_eq!(zeros.quantile(0.99), Some(0.0));

        let dup = Histogram::new();
        for _ in 0..100 {
            dup.record(7.0);
        }
        let s = dup.summary();
        assert_eq!(s.p50_ms, 7.0);
        assert_eq!(s.p99_ms, 7.0);
    }

    #[test]
    fn catalog_is_complete_and_distinctly_named() {
        let mut names: Vec<&str> = MetricName::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MetricName::ALL.len());
    }

    #[test]
    fn registry_snapshot_reflects_updates() {
        let kinds = ["local_topk", "gather"];
        let reg = MetricsRegistry::new(2, &kinds);
        reg.counter(MetricName::QueriesServed).add(10);
        reg.counter(MetricName::BatchesServed).inc();
        reg.add_engine_busy_ms(50.0);
        reg.histogram(MetricName::QueryLatencyMs).record(5.0);
        reg.add_worker_busy_ms(1, 12.5);
        reg.set_worker_occupancy(1, 0.8);
        reg.set_worker_queue_depth(1, 3.0);
        reg.set_stage_residual_ms("gather", 0.25);
        reg.set_stage_residual_ms("unknown_kind", 9.0); // ignored

        let snap = reg.snapshot();
        assert_eq!(snap.counter(MetricName::QueriesServed), 10);
        assert_eq!(snap.counter(MetricName::BatchesServed), 1);
        assert_eq!(snap.engine_busy_ms, 50.0);
        assert_eq!(snap.query_latency_ms.count, 1);
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.workers[1].busy_ms, 12.5);
        assert_eq!(snap.workers[1].occupancy, 0.8);
        assert_eq!(snap.workers[1].queue_depth, 3.0);
        assert_eq!(snap.stage_residual_ms[1], ("gather".to_string(), 0.25));
        // 10 queries over 50 ms busy = 200 QPS sustained.
        assert_eq!(snap.sustained_qps, 200.0);

        let json = snap.to_json().to_pretty_string();
        let back = crate::json::Json::parse(&json).unwrap();
        assert_eq!(
            back.get("schema").unwrap().as_str(),
            Some(crate::json::SCHEMA_VERSION)
        );
        assert_eq!(
            back.get("counters")
                .unwrap()
                .get("queries_served")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
        assert_eq!(back.get("sustained_qps").unwrap().as_f64(), Some(200.0));
    }

    #[test]
    fn registry_updates_are_thread_safe() {
        let reg = MetricsRegistry::new(1, &[]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        reg.counter(MetricName::QueriesServed).inc();
                        reg.add_engine_busy_ms(0.001);
                        reg.histogram(MetricName::QueryLatencyMs).record(i as f64);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter(MetricName::QueriesServed), 4000);
        assert_eq!(snap.query_latency_ms.count, 4000);
        assert!((snap.engine_busy_ms - 4.0).abs() < 1e-9);
    }
}
