//! Stage-graph tracing: a [`TraceSink`] trait the executors emit into, and a
//! [`TraceRecorder`] that collects spans/events and exports Chrome Trace
//! Event Format JSON (loads directly in Perfetto or `chrome://tracing`).
//!
//! The sink is deliberately string-typed (stage kinds and resource tracks
//! arrive as names) so this crate stays a leaf: core, engine and benches all
//! depend on it without cycles.
//!
//! Two trace shapes exist:
//!
//! * **Full** ([`TraceRecorder::new`]): every span carries both the modeled
//!   timeline (deterministic stream-schedule milliseconds) and the measured
//!   wall-clock timeline; executor events (dispatch, dependency-gate wakes,
//!   cache hits/misses, verifier passes) are kept. The Chrome export places
//!   modeled spans under process 1 and measured spans under process 2, one
//!   thread track per resource, so modeled-vs-measured skew is visible per
//!   stage.
//! * **Deterministic** ([`TraceRecorder::deterministic`]): measured fields
//!   are zeroed at ingest and events are dropped, leaving only the modeled
//!   timeline in stable (schedule) order. Two runs of the same workload —
//!   under *any* executor — serialize to byte-identical JSON, so CI diffs
//!   traces the same way it diffs `deterministic_summary()`.

use crate::json::Json;
use parking_lot::Mutex;

/// One executed stage, as reported to a [`TraceSink`].
///
/// All times are milliseconds. The modeled interval comes from the stream
/// simulator and is deterministic; the measured interval is host wall-clock
/// relative to the executor's epoch and varies run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Stage index in schedule (insertion) order — stable across executors.
    pub seq: usize,
    /// Stage kind name (e.g. `"local_topk"`).
    pub kind: String,
    /// Human-readable stage label (e.g. `"dev0 chunk1 top-k"`).
    pub label: String,
    /// Resource track label (e.g. `"compute[0]"`, `"h2d[1]"`).
    pub track: String,
    /// Indices (`seq` values) of the stages this span depended on.
    pub deps: Vec<usize>,
    /// Modeled start, ms.
    pub start_ms: f64,
    /// Modeled end, ms.
    pub end_ms: f64,
    /// Measured wall-clock start, ms since the executor epoch.
    pub measured_start_ms: f64,
    /// Measured wall-clock end, ms since the executor epoch.
    pub measured_end_ms: f64,
    /// Modeled time between this stage's readiness (all dependencies done)
    /// and its start — resource-contention wait, `>= 0`.
    pub queue_wait_ms: f64,
}

/// What happened, for an [`ExecEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An executor handed a stage to a worker (or ran it inline).
    Dispatch,
    /// A threaded worker woke after blocking on an unfinished dependency.
    DepGateWake,
    /// A cache lookup hit (label names the cache).
    CacheHit,
    /// A cache lookup missed (label names the cache).
    CacheMiss,
    /// A stage graph passed `core::verify` before execution.
    VerifierPass,
}

impl EventKind {
    /// Stable snake_case name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Dispatch => "dispatch",
            EventKind::DepGateWake => "dep_gate_wake",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::VerifierPass => "verifier_pass",
        }
    }
}

/// A point event on the executor timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecEvent {
    /// What happened.
    pub kind: EventKind,
    /// Subject — a stage label or cache name.
    pub label: String,
    /// Wall-clock ms since the emitting executor's epoch (0 when the event
    /// precedes execution, e.g. a verifier pass).
    pub at_ms: f64,
}

/// Receiver for executor telemetry.
///
/// Implementations must be thread-safe: the threaded executor emits from
/// one worker per resource concurrently. Emission sites hold an
/// `Option<&dyn TraceSink>` and skip all work (including argument
/// construction) when it is `None`, so an unattached graph pays one branch.
pub trait TraceSink: Send + Sync {
    /// Records one executed stage.
    fn span(&self, span: SpanRecord);
    /// Records one executor event.
    fn event(&self, event: ExecEvent);
    /// Whether the sink wants [`event`](TraceSink::event) calls at all.
    /// Emitters may skip constructing events when this is `false`
    /// (deterministic recorders return `false`: event timing is wall-clock
    /// and would break byte-stable traces).
    fn wants_events(&self) -> bool {
        true
    }
}

/// Collects spans and events in memory and exports Chrome Trace JSON.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    deterministic: bool,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<ExecEvent>>,
}

impl TraceRecorder {
    /// A full recorder: modeled + measured timelines, events kept.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// A deterministic recorder: measured fields zeroed, events dropped,
    /// export byte-stable across runs and executors.
    pub fn deterministic() -> TraceRecorder {
        TraceRecorder {
            deterministic: true,
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Whether this recorder is in deterministic mode.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    /// Spans recorded so far, in ingestion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Events recorded so far, in ingestion order (always empty in
    /// deterministic mode).
    pub fn events(&self) -> Vec<ExecEvent> {
        self.events.lock().clone()
    }

    /// Drops all recorded spans and events.
    pub fn clear(&self) {
        self.spans.lock().clear();
        self.events.lock().clear();
    }

    /// Serializes everything recorded so far as Chrome Trace Event Format.
    ///
    /// Layout: process 1 (`"modeled"`) holds one thread track per resource
    /// with the modeled spans; unless deterministic, process 2
    /// (`"measured"`) mirrors the same tracks with measured wall-clock
    /// spans, and events appear as instants on process 2, tid 0.
    /// Timestamps are microseconds (`ms * 1000`, the format's unit);
    /// each span's `args` carries `seq`, `deps`, `queue_wait_ms`, and the
    /// exact modeled interval as hex bit patterns (`start_bits`/`end_bits`)
    /// so traces can be checked bit-for-bit against `StageReport`.
    /// One event per line, so trace files diff cleanly.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans.lock();
        let events = self.events.lock();

        // Intern resource tracks in first-appearance order: tid 1, 2, ...
        let mut tracks: Vec<&str> = Vec::new();
        for span in spans.iter() {
            if !tracks.iter().any(|t| *t == span.track) {
                tracks.push(&span.track);
            }
        }

        let mut lines: Vec<String> = Vec::new();
        let meta = |pid: i64, tid: i64, kind: &str, name: &str| {
            Json::obj(vec![
                ("ph", Json::str("M")),
                ("pid", Json::Int(pid)),
                ("tid", Json::Int(tid)),
                ("name", Json::str(kind)),
                ("args", Json::obj(vec![("name", Json::str(name))])),
            ])
            .to_compact_string()
        };
        lines.push(meta(1, 0, "process_name", "modeled"));
        for (i, track) in tracks.iter().enumerate() {
            lines.push(meta(1, i as i64 + 1, "thread_name", track));
        }
        if !self.deterministic {
            lines.push(meta(2, 0, "process_name", "measured"));
            for (i, track) in tracks.iter().enumerate() {
                lines.push(meta(2, i as i64 + 1, "thread_name", track));
            }
        }

        let span_event = |pid: i64, tid: i64, span: &SpanRecord, start: f64, end: f64| {
            Json::obj(vec![
                ("ph", Json::str("X")),
                ("pid", Json::Int(pid)),
                ("tid", Json::Int(tid)),
                ("name", Json::str(&span.label)),
                ("cat", Json::str(&span.kind)),
                ("ts", Json::Num(start * 1000.0)),
                ("dur", Json::Num((end - start).max(0.0) * 1000.0)),
                (
                    "args",
                    Json::obj(vec![
                        ("seq", Json::Int(span.seq as i64)),
                        (
                            "deps",
                            Json::Arr(span.deps.iter().map(|&d| Json::Int(d as i64)).collect()),
                        ),
                        ("queue_wait_ms", Json::Num(span.queue_wait_ms)),
                        (
                            "start_bits",
                            Json::str(format!("{:016x}", span.start_ms.to_bits())),
                        ),
                        (
                            "end_bits",
                            Json::str(format!("{:016x}", span.end_ms.to_bits())),
                        ),
                    ]),
                ),
            ])
            .to_compact_string()
        };

        // Modeled tracks: emit per track, in ingestion order within a track
        // (= schedule order on that resource, so spans are monotone).
        for (t, track) in tracks.iter().enumerate() {
            let tid = t as i64 + 1;
            for span in spans.iter().filter(|s| s.track == *track) {
                lines.push(span_event(1, tid, span, span.start_ms, span.end_ms));
            }
        }
        if !self.deterministic {
            for (t, track) in tracks.iter().enumerate() {
                let tid = t as i64 + 1;
                for span in spans.iter().filter(|s| s.track == *track) {
                    lines.push(span_event(
                        2,
                        tid,
                        span,
                        span.measured_start_ms,
                        span.measured_end_ms,
                    ));
                }
            }
            for event in events.iter() {
                lines.push(
                    Json::obj(vec![
                        ("ph", Json::str("i")),
                        ("pid", Json::Int(2)),
                        ("tid", Json::Int(0)),
                        ("name", Json::str(event.kind.name())),
                        ("s", Json::str("p")),
                        ("ts", Json::Num(event.at_ms * 1000.0)),
                        ("args", Json::obj(vec![("label", Json::str(&event.label))])),
                    ])
                    .to_compact_string(),
                );
            }
        }

        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, line) in lines.iter().enumerate() {
            out.push_str(line);
            if i + 1 < lines.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

impl TraceSink for TraceRecorder {
    fn span(&self, mut span: SpanRecord) {
        if self.deterministic {
            span.measured_start_ms = 0.0;
            span.measured_end_ms = 0.0;
        }
        self.spans.lock().push(span);
    }

    fn event(&self, event: ExecEvent) {
        if self.deterministic {
            return;
        }
        self.events.lock().push(event);
    }

    fn wants_events(&self) -> bool {
        !self.deterministic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;

    fn span(seq: usize, track: &str, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            seq,
            kind: "local_topk".to_string(),
            label: format!("stage {seq}"),
            track: track.to_string(),
            deps: if seq == 0 { vec![] } else { vec![seq - 1] },
            start_ms: start,
            end_ms: end,
            measured_start_ms: start + 0.125,
            measured_end_ms: end + 0.5,
            queue_wait_ms: 0.0,
        }
    }

    #[test]
    fn full_recorder_keeps_measured_and_events() {
        let rec = TraceRecorder::new();
        rec.span(span(0, "compute[0]", 0.0, 2.0));
        rec.span(span(1, "h2d[0]", 2.0, 3.0));
        rec.event(ExecEvent {
            kind: EventKind::Dispatch,
            label: "stage 0".to_string(),
            at_ms: 0.5,
        });
        assert!(rec.wants_events());
        assert_eq!(rec.spans().len(), 2);
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.spans()[0].measured_end_ms, 2.5);

        let check = validate_chrome_trace(&rec.chrome_trace_json()).unwrap();
        assert_eq!(check.spans, 4); // 2 modeled + 2 measured
        assert_eq!(check.tracks, 4); // 2 resources × 2 process groups
        assert_eq!(check.span_pids, 2);
    }

    #[test]
    fn deterministic_recorder_zeroes_measured_and_drops_events() {
        let rec = TraceRecorder::deterministic();
        rec.span(span(0, "compute[0]", 0.0, 2.0));
        rec.event(ExecEvent {
            kind: EventKind::Dispatch,
            label: "x".to_string(),
            at_ms: 1.0,
        });
        assert!(!rec.wants_events());
        assert!(rec.events().is_empty());
        let spans = rec.spans();
        assert_eq!(spans[0].measured_start_ms, 0.0);
        assert_eq!(spans[0].measured_end_ms, 0.0);
        // Modeled fields untouched.
        assert_eq!(spans[0].end_ms, 2.0);

        let check = validate_chrome_trace(&rec.chrome_trace_json()).unwrap();
        assert_eq!(check.spans, 1);
        assert_eq!(check.span_pids, 1);
    }

    #[test]
    fn deterministic_export_is_byte_stable() {
        let run = || {
            let rec = TraceRecorder::deterministic();
            for i in 0..4 {
                let track = if i % 2 == 0 { "compute[0]" } else { "h2d[0]" };
                rec.span(span(i, track, i as f64, i as f64 + 0.75));
            }
            rec.chrome_trace_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_empties_the_recorder() {
        let rec = TraceRecorder::new();
        rec.span(span(0, "compute[0]", 0.0, 1.0));
        rec.clear();
        assert!(rec.spans().is_empty());
    }
}
