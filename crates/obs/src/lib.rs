//! # drtopk-obs — observability for the Dr. Top-k stack
//!
//! Three pillars, re-exported at the crate root:
//!
//! * **Tracing** ([`trace`]): a [`TraceSink`] trait the stage-graph
//!   executors emit into, and a [`TraceRecorder`] that exports Chrome Trace
//!   Event Format JSON — one track per modeled resource, a parallel track
//!   group for measured wall-clock, and a deterministic mode CI can
//!   byte-diff.
//! * **Metrics** ([`metrics`]): lock-free counters, gauges and log-bucketed
//!   [`Histogram`]s behind the [`MetricsRegistry`], whose families are
//!   closed over the [`MetricName`] catalog (drift-tested against
//!   `docs/OBSERVABILITY.md`).
//! * **Export** ([`json`]): an ordered, dependency-free [`Json`] value with
//!   deterministic serialization, a minimal parser, the shared versioned
//!   [`Snapshot`] schema ([`SCHEMA_VERSION`]), and a
//!   [`validate_chrome_trace`] structural checker.
//!
//! This crate is a *leaf*: it depends only on the vendored `parking_lot`
//! facade, so `drtopk-core`, `drtopk-engine`, `gpu-sim` and the benches can
//! all feed it without dependency cycles. Stage kinds and resources arrive
//! as their stable string names.
//!
//! ```
//! use drtopk_obs::{SpanRecord, TraceRecorder, TraceSink};
//!
//! let rec = TraceRecorder::deterministic();
//! rec.span(SpanRecord {
//!     seq: 0,
//!     kind: "local_topk".into(),
//!     label: "dev0 chunk0".into(),
//!     track: "compute[0]".into(),
//!     deps: vec![],
//!     start_ms: 0.0,
//!     end_ms: 1.5,
//!     measured_start_ms: 0.0,
//!     measured_end_ms: 0.0,
//!     queue_wait_ms: 0.0,
//! });
//! let json = rec.chrome_trace_json();
//! drtopk_obs::validate_chrome_trace(&json).unwrap();
//! ```

#![deny(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::{validate_chrome_trace, Json, Snapshot, TraceCheck, SCHEMA_VERSION};
pub use metrics::{
    Counter, FloatCounter, Gauge, Histogram, HistogramSummary, MetricName, MetricUnit,
    MetricsRegistry, MetricsSnapshot, WorkerSnapshot,
};
pub use trace::{EventKind, ExecEvent, SpanRecord, TraceRecorder, TraceSink};
