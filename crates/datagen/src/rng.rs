//! Small, fast, seedable PRNGs for data generation.
//!
//! Dataset generation must be (a) deterministic for a given seed so that
//! every figure harness and test sees the same input vector, and (b) fast
//! enough to fill multi-hundred-million element vectors. We use SplitMix64
//! for seeding and xoshiro256** as the bulk generator — the standard choice
//! for reproducible scientific workloads — implemented locally to keep the
//! crate dependency-free.

/// SplitMix64: used to expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256StarStar`] and to derive independent per-chunk seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: fast, high-quality 64-bit generator with 256-bit state.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed from a single `u64` via SplitMix64 (never produces the all-zero
    /// state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (high half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (slightly biased for astronomically large bounds, irrelevant here).
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A pair of independent standard-normal samples (Box–Muller transform).
    pub fn next_normal_pair(&mut self) -> (f64, f64) {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        let mut c = Xoshiro256StarStar::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_does_not_lock_up() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let vals: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(123);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_stays_in_bound() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..1000 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Xoshiro256StarStar::seed_from_u64(5).next_bounded(0);
    }

    #[test]
    fn uniformity_rough_check() {
        // Mean of uniform u32 should be close to 2^31.
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_u32() as f64).sum::<f64>() / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!((mean - expected).abs() / expected < 0.01);
    }

    #[test]
    fn normal_pairs_have_plausible_moments() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2024);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n / 2 {
            let (a, b) = rng.next_normal_pair();
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
