//! Synthetic proxies for the paper's real-world datasets (Table 1).
//!
//! The paper evaluates on three real datasets that are not redistributable
//! here; each proxy reproduces the *value distribution family* of the
//! original, which is the property that matters for top-k behaviour:
//!
//! | paper dataset | proxy |
//! |---|---|
//! | ANN_SIFT1B (`AN`) — L2 distances from one query to 10^9 SIFT descriptors | [`ann_sift_distances`]: squared L2 distances between a fixed random 128-d byte vector and `n` random 128-d byte vectors (sum of 128 i.i.d. terms → tight, near-normal distance distribution) |
//! | ClueWeb09 (`CW`) — per-page in-degrees of a web graph | [`web_degrees`]: Pareto/Zipf-tailed degree samples (heavy tail, many small values, few huge hubs) |
//! | TwitterCOVID-19 (`TR`) — COVID-fear scores of 132M tweets tiled to 10^9 | [`twitter_fear_scores`]: bounded integer scores generated for a smaller base population and tiled to `n`, mirroring how the paper duplicates the original posts |

use crate::parallel_fill;
use crate::rng::{SplitMix64, Xoshiro256StarStar};

/// Dimensionality of the synthetic SIFT descriptors.
pub const SIFT_DIMS: usize = 128;

/// Pareto tail exponent used for the web-degree proxy (α ≈ 2.1 is typical
/// for web graphs).
pub const WEB_DEGREE_ALPHA: f64 = 2.1;

/// Number of distinct base tweets the Twitter proxy generates before tiling,
/// expressed as a divisor of `n` (the paper tiles 132M posts to 10^9,
/// roughly ×8).
pub const TWITTER_TILE_FACTOR: usize = 8;

/// Maximum fear score of the Twitter proxy (scores are scaled to integers).
pub const TWITTER_MAX_SCORE: u32 = 100_000;

/// Squared L2 distances between a fixed query descriptor and `n` random
/// 128-dimensional byte descriptors (the `AN` proxy).
///
/// This is exactly the array the paper feeds to top-k for k-NN search: "We
/// use the first vector from the ANN_SIFT1B dataset to calculate the
/// euclidean distances between this vector and the 1 billion vectors."
pub fn ann_sift_distances(n: usize, seed: u64) -> Vec<u32> {
    // The query vector is derived from the seed so the whole dataset is
    // reproducible from a single number.
    let mut qrng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xA11C_E500);
    let query: Vec<u8> = (0..SIFT_DIMS)
        .map(|_| (qrng.next_u32() >> 24) as u8)
        .collect();
    let query_ref = &query;
    parallel_fill(n, seed, move |rng, out| {
        let mut descriptor = [0u8; SIFT_DIMS];
        for v in out.iter_mut() {
            // 8 random bytes per u64 draw: 16 draws per descriptor.
            for chunk in 0..SIFT_DIMS / 8 {
                let word = rng.next_u64();
                for b in 0..8 {
                    descriptor[chunk * 8 + b] = (word >> (8 * b)) as u8;
                }
            }
            let mut dist: u64 = 0;
            for d in 0..SIFT_DIMS {
                let diff = descriptor[d] as i64 - query_ref[d] as i64;
                dist += (diff * diff) as u64;
            }
            *v = dist.min(u32::MAX as u64) as u32;
        }
    })
}

/// Euclidean (non-squared) L2 distances between a fixed query descriptor and
/// `n` random 128-dimensional byte descriptors, as native `f32` values.
///
/// This is the float-keyed counterpart of [`ann_sift_distances`], feeding
/// `dr_topk_min` directly: real ANN pipelines keep distances in `f32` and a
/// generic-key top-k has no reason to quantize them. The descriptor stream
/// is identical to the `u32` generator's (same per-chunk RNG draws), so the
/// two datasets rank vectors identically.
pub fn ann_sift_distances_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut qrng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xA11C_E500);
    let query: Vec<u8> = (0..SIFT_DIMS)
        .map(|_| (qrng.next_u32() >> 24) as u8)
        .collect();
    let query_ref = &query;
    parallel_fill(n, seed, move |rng, out| {
        let mut descriptor = [0u8; SIFT_DIMS];
        for v in out.iter_mut() {
            for chunk in 0..SIFT_DIMS / 8 {
                let word = rng.next_u64();
                for b in 0..8 {
                    descriptor[chunk * 8 + b] = (word >> (8 * b)) as u8;
                }
            }
            let mut dist: u64 = 0;
            for d in 0..SIFT_DIMS {
                let diff = descriptor[d] as i64 - query_ref[d] as i64;
                dist += (diff * diff) as u64;
            }
            *v = (dist as f32).sqrt();
        }
    })
}

/// BM25-like retrieval scores as native `f32` values — the float score
/// stream a Block-Max WAND index ranks (the Figure 24 use case with real
/// scoring instead of integer proxies).
///
/// Scores follow the classic shape `idf · tf·(k1+1)/(tf+k1)`: an
/// exponential idf tail (few rare, high-weight terms) saturated by the
/// BM25 `k1 = 1.2` term-frequency curve. All scores are positive and
/// finite, with a long right tail.
pub fn bm25_scores(n: usize, seed: u64) -> Vec<f32> {
    const K1: f64 = 1.2;
    parallel_fill(n, seed, |rng, out| {
        for v in out.iter_mut() {
            let idf = -rng.next_f64().max(1e-12).ln();
            let tf = -rng.next_f64().max(1e-12).ln() * 4.0;
            *v = (idf * (tf * (K1 + 1.0)) / (tf + K1)) as f32;
        }
    })
}

/// Heavy-tailed web-page degree samples (the `CW` proxy).
///
/// Degrees follow a power law with density exponent
/// `α =` [`WEB_DEGREE_ALPHA`] (so the inverse-CDF is
/// `d = ⌊x_min · u^(−1/(α−1))⌋`), producing the many-small / few-huge shape
/// of real web graphs such as ClueWeb09.
pub fn web_degrees(n: usize, seed: u64) -> Vec<u32> {
    parallel_fill(n, seed, |rng, out| {
        for v in out.iter_mut() {
            let u = rng.next_f64().max(1e-12);
            let degree = 1.0 * u.powf(-1.0 / (WEB_DEGREE_ALPHA - 1.0));
            *v = if degree >= u32::MAX as f64 {
                u32::MAX
            } else {
                degree as u32
            };
        }
    })
}

/// COVID-fear scores tiled to `n` elements (the `TR` proxy).
///
/// A base population of `n /` [`TWITTER_TILE_FACTOR`] distinct scores is
/// generated from a right-skewed (beta-like) distribution over
/// `[0,` [`TWITTER_MAX_SCORE`]`]` and then repeated to length `n`, mirroring
/// the paper's duplication of 132M original posts onto a 10^9-element
/// vector so the value distribution is preserved.
pub fn twitter_fear_scores(n: usize, seed: u64) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    let base_len = (n / TWITTER_TILE_FACTOR).max(1);
    let base = parallel_fill(base_len, seed, |rng, out| {
        for v in out.iter_mut() {
            // Right-skewed score: product of two uniforms biases toward low
            // fear, with a long tail of highly fearful posts.
            let x = rng.next_f64() * rng.next_f64();
            *v = (x * TWITTER_MAX_SCORE as f64) as u32;
        }
    });
    let mut out = Vec::with_capacity(n);
    while out.len() + base.len() <= n {
        out.extend_from_slice(&base);
    }
    let remaining = n - out.len();
    out.extend_from_slice(&base[..remaining]);
    out
}

/// Derive a per-chunk seed that is unique per (dataset seed, chunk index).
pub(crate) fn chunk_seed(seed: u64, chunk_idx: usize) -> u64 {
    let mut sm = SplitMix64::new(seed ^ (chunk_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_distances_are_deterministic_and_plausible() {
        let a = ann_sift_distances(4096, 3);
        let b = ann_sift_distances(4096, 3);
        assert_eq!(a, b);
        // Expected squared distance between random byte vectors:
        // E[(X-Y)^2] per dim ≈ 10 837; over 128 dims ≈ 1.39e6.
        let mean = a.iter().map(|&x| x as f64).sum::<f64>() / a.len() as f64;
        assert!(mean > 1.0e6 && mean < 1.8e6, "mean {mean}");
        // distances concentrate: relative spread is modest
        let max = *a.iter().max().unwrap() as f64;
        let min = *a.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 3.0, "spread too large: {min}..{max}");
    }

    #[test]
    fn f32_distances_track_the_u32_generator() {
        let sq = ann_sift_distances(2048, 3);
        let eu = ann_sift_distances_f32(2048, 3);
        assert_eq!(sq.len(), eu.len());
        // identical descriptor streams: the float distance is the square
        // root of the integer squared distance, element for element.
        for (&s, &e) in sq.iter().zip(&eu) {
            assert!((e - (s as f32).sqrt()).abs() < 1e-3, "{s} vs {e}");
        }
        assert_eq!(eu, ann_sift_distances_f32(2048, 3), "deterministic");
        assert_ne!(eu, ann_sift_distances_f32(2048, 4));
    }

    #[test]
    fn bm25_scores_are_positive_finite_and_skewed() {
        let s = bm25_scores(1 << 14, 9);
        assert_eq!(s, bm25_scores(1 << 14, 9), "deterministic");
        assert!(s.iter().all(|&x| x.is_finite() && x >= 0.0));
        let mean = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
        let max = s.iter().cloned().fold(0.0f32, f32::max) as f64;
        // long right tail: the max is far above the mean
        assert!(max > 4.0 * mean, "mean {mean}, max {max}");
    }

    #[test]
    fn web_degrees_have_heavy_tail() {
        let v = web_degrees(1 << 16, 5);
        let ones = v.iter().filter(|&&d| d <= 2).count() as f64 / v.len() as f64;
        assert!(ones > 0.5, "most pages should have tiny degree, got {ones}");
        let max = *v.iter().max().unwrap();
        assert!(max > 1_000, "expected a hub with large degree, max {max}");
    }

    #[test]
    fn twitter_scores_are_tiled() {
        let n = 4096;
        let v = twitter_fear_scores(n, 9);
        assert_eq!(v.len(), n);
        let base_len = n / TWITTER_TILE_FACTOR;
        // tiling: the second block repeats the first
        assert_eq!(&v[..base_len], &v[base_len..2 * base_len]);
        assert!(v.iter().all(|&s| s <= TWITTER_MAX_SCORE));
        // skewed toward low fear
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!(mean < TWITTER_MAX_SCORE as f64 / 2.0);
    }

    #[test]
    fn twitter_handles_non_multiple_lengths() {
        let v = twitter_fear_scores(1000, 1);
        assert_eq!(v.len(), 1000);
        let w = twitter_fear_scores(3, 1);
        assert_eq!(w.len(), 3);
        assert!(twitter_fear_scores(0, 1).is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(web_degrees(1024, 1), web_degrees(1024, 2));
        assert_ne!(ann_sift_distances(256, 1), ann_sift_distances(256, 2));
        assert_ne!(twitter_fear_scores(1024, 1), twitter_fear_scores(1024, 2));
    }

    #[test]
    fn chunk_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|i| chunk_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
