//! Multi-query workload generators for the batching engine.
//!
//! A serving workload is a stream of top-k *queries*, not a single vector:
//! each query names a corpus, a `k`, and a direction. Real traffic is
//! heavily skewed — most queries ask for a small `k` (autocomplete, top-10
//! retrieval) while a long tail asks for large candidate sets — so `k` is
//! drawn from a Zipf distribution. The corpus mix controls how much
//! same-corpus fusion a batch admits: `Shared` (everyone queries the one
//! hot corpus — the best case for RTop-K-style batched selection),
//! `Disjoint` (every query brings its own vector — no fusion possible), and
//! `Clustered` (a handful of hot corpora, the realistic middle).
//!
//! Like every generator in this crate the output is a pure function of the
//! seed, independent of thread count (the workload is tiny; it is generated
//! sequentially).

use crate::rng::Xoshiro256StarStar;

/// One query of a generated workload, in engine-agnostic form: `corpus` is
/// an index into whatever corpus set the consumer maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Which corpus the query selects over (an index in `0..num_corpora`).
    pub corpus: usize,
    /// How many winners the query asks for.
    pub k: usize,
    /// `true` for top-k-largest, `false` for top-k-smallest (k-NN-style).
    pub largest: bool,
    /// `None` for an exact query; `Some(bp)` for a recall-targeted
    /// approximate query whose target is `bp` basis points (`9500` = 0.95).
    /// Kept as an integer so specs stay `Eq`/`Hash`-able; consumers map it
    /// to their recall-target type.
    pub approx_recall_bp: Option<u16>,
}

/// How queries are spread over corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusMix {
    /// Every query hits corpus 0 (one hot shared corpus).
    Shared,
    /// Query `i` hits corpus `i` (no two queries share a corpus).
    Disjoint,
    /// Queries are spread uniformly over `corpora` hot corpora.
    Clustered {
        /// Number of distinct corpora in the mix.
        corpora: usize,
    },
}

impl CorpusMix {
    /// Number of distinct corpora a workload of `num_queries` uses.
    pub fn num_corpora(&self, num_queries: usize) -> usize {
        match self {
            CorpusMix::Shared => 1,
            CorpusMix::Disjoint => num_queries,
            CorpusMix::Clustered { corpora } => (*corpora).clamp(1, num_queries.max(1)),
        }
    }
}

/// Draw `num` values of `k` from a (truncated) Zipf distribution over
/// `1..=k_max`: `P(k) ∝ 1/k^exponent`. `exponent = 0` degenerates to
/// uniform; the classic web-traffic skew is `exponent ≈ 1`.
pub fn zipf_ks(num: usize, k_max: usize, exponent: f64, seed: u64) -> Vec<usize> {
    assert!(k_max >= 1, "k_max must be at least 1");
    assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
    // Cumulative weights over the support (k_max is at most a few million in
    // any realistic sweep; O(k_max) precompute is fine and exact).
    let mut cumulative = Vec::with_capacity(k_max);
    let mut total = 0.0f64;
    for k in 1..=k_max {
        total += (k as f64).powf(-exponent);
        cumulative.push(total);
    }
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5A1F_0000_0000_0001);
    (0..num)
        .map(|_| {
            let u = rng.next_f64() * total;
            // first k whose cumulative weight reaches u
            cumulative.partition_point(|&c| c < u) + 1
        })
        .collect()
}

/// The recall-target palette (in basis points) that approximate workload
/// queries draw from: the targets real retrieval stacks quote (99%, 95%,
/// 90%), matching the targets the `approx_recall` bench sweeps.
pub const APPROX_RECALL_PALETTE_BP: [u16; 3] = [9900, 9500, 9000];

/// Generate a `num_queries`-query workload: Zipf-distributed `k` over
/// `1..=k_max`, corpora assigned by `mix`, a `smallest_fraction` share of
/// top-k-smallest queries (0.0 = all largest, 1.0 = all smallest), and an
/// `approx_fraction` share of recall-targeted approximate queries whose
/// targets are drawn from [`APPROX_RECALL_PALETTE_BP`] (0.0 = all exact).
///
/// The mode stream is seeded independently of the corpus/direction stream,
/// so changing `approx_fraction` never reshuffles which corpus or
/// direction a query gets.
pub fn multi_query_workload(
    num_queries: usize,
    mix: CorpusMix,
    k_max: usize,
    zipf_exponent: f64,
    smallest_fraction: f64,
    approx_fraction: f64,
    seed: u64,
) -> Vec<QuerySpec> {
    assert!(
        (0.0..=1.0).contains(&smallest_fraction),
        "smallest_fraction must be within [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&approx_fraction),
        "approx_fraction must be within [0, 1]"
    );
    let ks = zipf_ks(num_queries, k_max, zipf_exponent, seed);
    let corpora = mix.num_corpora(num_queries);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5A1F_0000_0000_0002);
    let mut mode_rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5A1F_0000_0000_0003);
    ks.into_iter()
        .enumerate()
        .map(|(i, k)| {
            let corpus = match mix {
                CorpusMix::Shared => 0,
                CorpusMix::Disjoint => i,
                CorpusMix::Clustered { .. } => rng.next_bounded(corpora as u64) as usize,
            };
            let largest = rng.next_f64() >= smallest_fraction;
            let approx_recall_bp = (mode_rng.next_f64() < approx_fraction).then(|| {
                APPROX_RECALL_PALETTE_BP
                    [mode_rng.next_bounded(APPROX_RECALL_PALETTE_BP.len() as u64) as usize]
            });
            QuerySpec {
                corpus,
                k,
                largest,
                approx_recall_bp,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_in_range() {
        let a = zipf_ks(500, 1 << 12, 1.0, 7);
        let b = zipf_ks(500, 1 << 12, 1.0, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| (1..=1 << 12).contains(&k)));
        assert_ne!(a, zipf_ks(500, 1 << 12, 1.0, 8), "seed must matter");
    }

    #[test]
    fn zipf_skews_toward_small_k() {
        let ks = zipf_ks(4000, 1024, 1.1, 42);
        let small = ks.iter().filter(|&&k| k <= 32).count();
        let large = ks.iter().filter(|&&k| k > 512).count();
        assert!(
            small > 5 * large.max(1),
            "Zipf must concentrate mass on small k: {small} small vs {large} large"
        );
        // exponent 0 is uniform: the tail half carries roughly half the mass
        let flat = zipf_ks(4000, 1024, 0.0, 42);
        let upper_half = flat.iter().filter(|&&k| k > 512).count();
        assert!((1500..=2500).contains(&upper_half), "got {upper_half}");
    }

    #[test]
    fn corpus_mixes_assign_corpora_as_documented() {
        let shared = multi_query_workload(64, CorpusMix::Shared, 256, 1.0, 0.0, 0.0, 3);
        assert!(shared.iter().all(|q| q.corpus == 0));
        assert!(shared.iter().all(|q| q.largest));

        let disjoint = multi_query_workload(64, CorpusMix::Disjoint, 256, 1.0, 0.0, 0.0, 3);
        let ids: Vec<usize> = disjoint.iter().map(|q| q.corpus).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());

        let clustered = multi_query_workload(
            256,
            CorpusMix::Clustered { corpora: 4 },
            256,
            1.0,
            0.0,
            0.0,
            3,
        );
        assert!(clustered.iter().all(|q| q.corpus < 4));
        // all four corpora get traffic
        for c in 0..4 {
            assert!(clustered.iter().any(|q| q.corpus == c), "corpus {c} unused");
        }
    }

    #[test]
    fn smallest_fraction_controls_direction_mix() {
        let all_min = multi_query_workload(128, CorpusMix::Shared, 64, 1.0, 1.0, 0.0, 9);
        assert!(all_min.iter().all(|q| !q.largest));
        let mixed = multi_query_workload(512, CorpusMix::Shared, 64, 1.0, 0.5, 0.0, 9);
        let smallest = mixed.iter().filter(|q| !q.largest).count();
        assert!(
            (150..=350).contains(&smallest),
            "≈ half the queries should be smallest-direction, got {smallest}/512"
        );
    }

    #[test]
    fn approx_fraction_controls_mode_mix_without_reshuffling() {
        let exact_only = multi_query_workload(256, CorpusMix::Shared, 128, 1.0, 0.25, 0.0, 9);
        assert!(exact_only.iter().all(|q| q.approx_recall_bp.is_none()));

        let all_approx = multi_query_workload(256, CorpusMix::Shared, 128, 1.0, 0.25, 1.0, 9);
        assert!(all_approx.iter().all(|q| q.approx_recall_bp.is_some()));
        // every target comes from the palette, and all three appear
        for bp in APPROX_RECALL_PALETTE_BP {
            assert!(
                all_approx.iter().any(|q| q.approx_recall_bp == Some(bp)),
                "palette target {bp} unused"
            );
        }
        assert!(all_approx
            .iter()
            .all(|q| APPROX_RECALL_PALETTE_BP.contains(&q.approx_recall_bp.unwrap())));

        // the mode stream is independent: ks, corpora and directions match
        for (e, a) in exact_only.iter().zip(&all_approx) {
            assert_eq!((e.corpus, e.k, e.largest), (a.corpus, a.k, a.largest));
        }

        // a mixed fraction lands near its expectation, deterministically
        let mixed = multi_query_workload(512, CorpusMix::Shared, 128, 1.0, 0.0, 0.5, 9);
        assert_eq!(
            mixed,
            multi_query_workload(512, CorpusMix::Shared, 128, 1.0, 0.0, 0.5, 9)
        );
        let approx = mixed
            .iter()
            .filter(|q| q.approx_recall_bp.is_some())
            .count();
        assert!(
            (150..=350).contains(&approx),
            "≈ half the queries should be approximate, got {approx}/512"
        );
    }

    #[test]
    fn num_corpora_is_consistent() {
        assert_eq!(CorpusMix::Shared.num_corpora(10), 1);
        assert_eq!(CorpusMix::Disjoint.num_corpora(10), 10);
        assert_eq!(CorpusMix::Clustered { corpora: 4 }.num_corpora(10), 4);
        assert_eq!(CorpusMix::Clustered { corpora: 99 }.num_corpora(10), 10);
        assert_eq!(CorpusMix::Clustered { corpora: 0 }.num_corpora(10), 1);
    }
}
