//! Synthetic value distributions from Section 6 of the paper.
//!
//! * **UD** — uniform over `[0, 2^32 − 1]`.
//! * **ND** — normal with mean `10^8` and standard deviation `10`, rounded
//!   to `u32`. Because almost all values share their high-order bits, ND is
//!   the distribution where radix/bucket top-k carry most elements from one
//!   iteration to the next.
//! * **CD** — the paper's "customized distribution", constructed so that the
//!   bucket containing the k-th element keeps the majority of the elements
//!   at every iteration while every other bucket still receives at least one
//!   element: a very dense cluster at the top of the value range plus a thin
//!   uniform sprinkle across the rest of the range.

use crate::parallel_fill;
use crate::realworld::chunk_seed;
use crate::rng::Xoshiro256StarStar;

/// Mean of the ND distribution (`10^8`), as specified in the paper.
pub const NORMAL_MEAN: f64 = 1.0e8;
/// Standard deviation of the ND distribution.
pub const NORMAL_STD_DEV: f64 = 10.0;

/// Exponent of the CD distribution: values are
/// `u32::MAX − ⌊2^32 · u^CD_EXPONENT⌋ − jitter`. The exponent is chosen so
/// that, at every 256-way bucket refinement of the value range, the majority
/// (≈ `256^(−1/CD_EXPONENT)` ≈ 70%) of the remaining elements stay inside the
/// bucket that contains the k-th largest element, which is the paper's
/// definition of the customized distribution; an 8-bit jitter term breaks
/// exact ties at the finest scale so the distribution stays a proper
/// multiset rather than collapsing onto `u32::MAX`.
pub const CD_EXPONENT: i32 = 16;

/// Width of the tie-breaking jitter applied by the CD generator.
pub const CD_JITTER: u32 = 256;

/// Uniformly distributed `u32` values (the UD dataset).
pub fn uniform(n: usize, seed: u64) -> Vec<u32> {
    parallel_fill(n, seed, |rng, out| {
        for v in out.iter_mut() {
            *v = rng.next_u32();
        }
    })
}

/// Uniformly distributed `f32` values in `[0, 1)` — the float counterpart of
/// [`uniform`], for exercising the generic-key pipeline on native floats.
///
/// Built from 24 high mantissa bits directly (`m / 2^24` is exact in `f32`),
/// so the half-open bound is strict: a wider draw cast down to `f32` could
/// round up to exactly `1.0`.
pub fn uniform_f32(n: usize, seed: u64) -> Vec<f32> {
    parallel_fill(n, seed, |rng, out| {
        for v in out.iter_mut() {
            *v = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        }
    })
}

/// Normally distributed values, `N(10^8, 10)`, clamped to `u32` (the ND
/// dataset).
pub fn normal(n: usize, seed: u64) -> Vec<u32> {
    parallel_fill(n, seed, |rng, out| {
        let mut i = 0;
        while i < out.len() {
            let (a, b) = rng.next_normal_pair();
            out[i] = to_u32(NORMAL_MEAN + NORMAL_STD_DEV * a);
            i += 1;
            if i < out.len() {
                out[i] = to_u32(NORMAL_MEAN + NORMAL_STD_DEV * b);
                i += 1;
            }
        }
    })
}

/// The paper's customized distribution (CD): adversarial for bucket top-k.
///
/// Values are `u32::MAX − Y − jitter` with `Y = ⌊2^32 · u^CD_EXPONENT⌋`,
/// i.e. a power law concentrated just below `u32::MAX` *at every scale*:
/// whenever the current value range is split into 256 equal buckets, the
/// majority of the elements land in the top bucket (the one that will
/// contain the k-th largest element) while the long tail keeps every other
/// bucket non-empty — the construction the paper describes: "every bucket
/// other than the bucket containing the k-th element will always have at
/// least one element in every iteration and majority of the elements is
/// present in the bucket with the k-th element".
pub fn customized(n: usize, seed: u64) -> Vec<u32> {
    parallel_fill(n, seed, move |rng, out| {
        for v in out.iter_mut() {
            let u = rng.next_f64();
            let y = (u.powi(CD_EXPONENT) * u32::MAX as f64) as u64;
            let jitter = rng.next_bounded(CD_JITTER as u64);
            *v = u32::MAX - (y + jitter).min(u32::MAX as u64) as u32;
        }
    })
}

/// Default palette size of the [`low_entropy`] generator: small enough
/// that every radix digit of every pass is shared by thousands of
/// duplicates, large enough that a top-k query still has ordering work
/// to do.
pub const LOW_ENTROPY_DISTINCT: usize = 16;

/// A low-entropy adversarial dataset: `n` draws from a palette of only
/// `distinct_values` distinct values, packed contiguously just below
/// `u32::MAX`.
///
/// This is the worst case for multi-pass radix select, for two
/// compounding reasons:
///
/// * the palette values share all their high-order bits (they differ only
///   in the last `⌈log2 distinct_values⌉` bits), so every early
///   histogram pass puts *all* elements in one digit bucket and refines
///   nothing — the pipeline pays its full per-pass scan for zero
///   candidate shrinkage until the final byte; and
/// * each value is duplicated ≈ `n / distinct_values` times, so the
///   candidate set at the k-th boundary never shrinks below the duplicate
///   mass of the boundary value — the final selection must break a huge
///   tie instead of reading off a singleton.
///
/// Deterministic in `(n, distinct_values, seed)` and independent of
/// thread count, like every generator here.
///
/// # Panics
///
/// Panics when `distinct_values` is zero or exceeds `2^32` (the palette
/// must fit in the `u32` value space).
pub fn low_entropy(n: usize, distinct_values: usize, seed: u64) -> Vec<u32> {
    assert!(distinct_values >= 1, "need at least one distinct value");
    assert!(
        distinct_values as u128 <= 1u128 << 32,
        "distinct_values must fit in the u32 value space"
    );
    let d = distinct_values as u64;
    parallel_fill(n, seed, move |rng, out| {
        for v in out.iter_mut() {
            *v = u32::MAX - rng.next_bounded(d) as u32;
        }
    })
}

/// Default skew of the [`zipf`] generator (the classic web-traffic
/// exponent).
pub const ZIPF_EXPONENT: f64 = 1.1;

/// Zipf-distributed `u32` values: value `v ∈ 1..=max_value` is drawn with
/// probability `∝ 1/v^exponent` (continuous bounded-power-law inverse CDF,
/// floored to integers), so small values dominate while the large values
/// that a top-k query hunts are rare and scattered uniformly over the
/// vector — the value-skewed corpus shape used by the approximate-mode
/// recall evaluation (positions are i.i.d., so the bucket exchangeability
/// assumption of the recall model holds by construction).
///
/// Sampling is O(1) per draw with no per-support table — `max_value` may
/// be `u32::MAX` — unlike [`crate::workload::zipf_ks`], whose exact
/// discrete table is the right tool for small supports (k sweeps).
///
/// Like every generator here the output is a pure function of
/// `(n, max_value, exponent, seed)` and independent of thread count.
pub fn zipf(n: usize, max_value: u32, exponent: f64, seed: u64) -> Vec<u32> {
    assert!(max_value >= 1, "max_value must be at least 1");
    assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
    // Inverse CDF of the density ∝ v^-s on [1, B+1):
    //   s = 1:  v = (B+1)^u                  (log-uniform)
    //   s ≠ 1:  v = [1 + u((B+1)^(1-s) − 1)]^(1/(1-s))
    let top = max_value as f64 + 1.0;
    parallel_fill(n, seed, move |rng, out| {
        for slot in out.iter_mut() {
            let u = rng.next_f64();
            let v = if (exponent - 1.0).abs() < 1e-12 {
                top.powf(u)
            } else {
                let one_minus_s = 1.0 - exponent;
                (1.0 + u * (top.powf(one_minus_s) - 1.0)).powf(1.0 / one_minus_s)
            };
            *slot = (v as u32).clamp(1, max_value);
        }
    })
}

/// Largest number of boosted "hot" experts per row of
/// [`moe_gating_logits`] (each row draws 1..=this many, capped by the
/// expert count).
pub const MOE_MAX_HOT_EXPERTS: usize = 4;

/// Base logit boost applied to each hot expert of a row (before the
/// temperature scaling); each boost is jittered up to 2× so hot experts
/// are clearly separated from the Gaussian bulk without being ties.
pub const MOE_HOT_BOOST: f32 = 4.0;

/// A row-major `rows × experts` matrix of MoE router logits — the
/// softmax-input shape that row-wise top-k gating consumes
/// (`drtopk_core::topk_rows` over this matrix picks each token's experts).
///
/// Each row is i.i.d. standard-normal logits plus 1–[`MOE_MAX_HOT_EXPERTS`]
/// boosted hot experts (the dominant-expert structure routers actually
/// produce), all divided by `temperature`: a low temperature sharpens the
/// winners, a high one flattens the row toward uniform — the logits are
/// exactly what a `softmax(z / T)` gate would consume.
///
/// Deterministic in `(rows, experts, temperature, seed)` and independent
/// of thread count: the Gaussian bulk rides the chunked
/// [`parallel_fill`](crate) streams and the hot-expert pass derives one
/// RNG stream per row.
///
/// # Panics
///
/// Panics when `temperature` is not a finite positive number.
pub fn moe_gating_logits(rows: usize, experts: usize, temperature: f32, seed: u64) -> Vec<f32> {
    assert!(
        temperature.is_finite() && temperature > 0.0,
        "temperature must be a finite positive number"
    );
    let mut out: Vec<f32> = parallel_fill(rows * experts, seed, |rng, out| {
        let mut i = 0;
        while i < out.len() {
            let (a, b) = rng.next_normal_pair();
            out[i] = a as f32;
            i += 1;
            if i < out.len() {
                out[i] = b as f32;
                i += 1;
            }
        }
    });
    if experts > 0 {
        // A distinct stream namespace from the bulk fill (chunk indices
        // start at 0 there too), so row streams never alias chunk streams.
        const HOT_STREAM: u64 = 0x6d6f655f686f74; // "moe_hot"
        for r in 0..rows {
            let mut rng = Xoshiro256StarStar::seed_from_u64(chunk_seed(seed ^ HOT_STREAM, r));
            let hot = 1 + rng.next_bounded(MOE_MAX_HOT_EXPERTS.min(experts) as u64) as usize;
            let row = &mut out[r * experts..(r + 1) * experts];
            for _ in 0..hot {
                let e = rng.next_bounded(experts as u64) as usize;
                row[e] += MOE_HOT_BOOST * (1.0 + rng.next_f64() as f32);
            }
        }
    }
    let inv_t = 1.0 / temperature;
    for v in &mut out {
        *v *= inv_t;
    }
    out
}

fn to_u32(x: f64) -> u32 {
    if x <= 0.0 {
        0
    } else if x >= u32::MAX as f64 {
        u32::MAX
    } else {
        x as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_spread() {
        let a = uniform(1 << 16, 1);
        let b = uniform(1 << 16, 1);
        let c = uniform(1 << 16, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mean = a.iter().map(|&v| v as f64).sum::<f64>() / a.len() as f64;
        let expected = u32::MAX as f64 / 2.0;
        assert!((mean - expected).abs() / expected < 0.02);
    }

    #[test]
    fn normal_concentrates_around_mean() {
        let v = normal(1 << 16, 7);
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!((mean - NORMAL_MEAN).abs() < 1.0, "mean {mean}");
        let min = *v.iter().min().unwrap() as f64;
        let max = *v.iter().max().unwrap() as f64;
        // within ~6 sigma of the mean
        assert!(min > NORMAL_MEAN - 100.0);
        assert!(max < NORMAL_MEAN + 100.0);
    }

    #[test]
    fn customized_majority_stays_in_top_bucket_at_every_scale() {
        let n = 1 << 16;
        let v = customized(n, 11);
        // At refinement level j the bucket of interest is the top 256^-j
        // slice of the value range; ~(256^(-1/CD_EXPONENT))^j of all elements
        // should stay inside it.
        let retention = 256f64.powf(-1.0 / CD_EXPONENT as f64);
        for j in 1..=3u32 {
            let width = (1u64 << 32) / 256u64.pow(j);
            let lo = (u32::MAX as u64 + 1 - width) as u32;
            let inside = v.iter().filter(|&&x| x >= lo).count() as f64 / n as f64;
            let expected = retention.powi(j as i32);
            assert!(
                (inside - expected).abs() < 0.05,
                "level {j}: inside fraction {inside}, expected ~{expected}"
            );
            assert!(
                inside > 0.3,
                "majority-ish retention at level {j}: {inside}"
            );
        }
        // the tail keeps lower buckets populated
        assert!(v.iter().any(|&x| x < u32::MAX / 2));
        // the jitter keeps the top of the range from collapsing onto a
        // single duplicated value
        let max_dups = v.iter().filter(|&&x| x == u32::MAX).count() as f64 / n as f64;
        assert!(
            max_dups < 0.01,
            "too many exact duplicates of MAX: {max_dups}"
        );
    }

    #[test]
    fn zero_length_inputs_are_fine() {
        assert!(uniform(0, 3).is_empty());
        assert!(normal(0, 3).is_empty());
        assert!(customized(0, 3).is_empty());
        assert!(uniform_f32(0, 3).is_empty());
        assert!(low_entropy(0, 4, 3).is_empty());
    }

    #[test]
    fn low_entropy_is_deterministic_duplicated_and_bit_shared() {
        let n = 1 << 14;
        let d = LOW_ENTROPY_DISTINCT;
        let v = low_entropy(n, d, 5);
        assert_eq!(v, low_entropy(n, d, 5));
        assert_ne!(v, low_entropy(n, d, 6));
        // the palette is exactly the top `d` values of the u32 range
        let lo = u32::MAX - (d as u32 - 1);
        assert!(v.iter().all(|&x| x >= lo));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), d, "palette size");
        // heavy duplicates: every palette value carries ~n/d copies
        for &p in &sorted {
            let copies = v.iter().filter(|&&x| x == p).count();
            assert!(
                copies > n / (4 * d),
                "value {p} underrepresented: {copies} copies"
            );
        }
        // all high-order bits are shared — radix passes refine nothing
        // until the final byte
        assert!(v.iter().all(|&x| x >> 8 == u32::MAX >> 8));
    }

    #[test]
    fn low_entropy_degenerate_palettes() {
        // a single-value palette collapses onto u32::MAX
        assert!(low_entropy(1 << 10, 1, 9).iter().all(|&x| x == u32::MAX));
    }

    #[test]
    #[should_panic(expected = "at least one distinct value")]
    fn low_entropy_rejects_empty_palette() {
        low_entropy(16, 0, 1);
    }

    #[test]
    fn uniform_f32_is_deterministic_and_in_unit_interval() {
        let a = uniform_f32(1 << 14, 5);
        assert_eq!(a, uniform_f32(1 << 14, 5));
        assert_ne!(a, uniform_f32(1 << 14, 6));
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = a.iter().map(|&x| x as f64).sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zipf_is_deterministic_skewed_and_in_range() {
        let n = 1 << 16;
        let v = zipf(n, 1 << 16, ZIPF_EXPONENT, 5);
        assert_eq!(v, zipf(n, 1 << 16, ZIPF_EXPONENT, 5));
        assert_ne!(v, zipf(n, 1 << 16, ZIPF_EXPONENT, 6));
        assert!(v.iter().all(|&x| (1..=1 << 16).contains(&x)));
        // mass concentrates on small values, the top-k tail is rare
        let small = v.iter().filter(|&&x| x <= 32).count();
        let large = v.iter().filter(|&&x| x > (1 << 15)).count();
        assert!(small > 10 * large.max(1), "small {small} vs large {large}");
        // but the tail exists: a top-k query has real work to do
        assert!(large > 0);
        assert!(zipf(0, 100, 1.0, 1).is_empty());
    }

    #[test]
    fn moe_gating_logits_shape_determinism_and_temperature() {
        let rows = 64;
        let experts = 128;
        let a = moe_gating_logits(rows, experts, 1.0, 9);
        assert_eq!(a.len(), rows * experts);
        assert_eq!(a, moe_gating_logits(rows, experts, 1.0, 9));
        assert_ne!(a, moe_gating_logits(rows, experts, 1.0, 10));
        // temperature only rescales: T = 2 halves every logit
        let cool = moe_gating_logits(rows, experts, 2.0, 9);
        for (x, y) in a.iter().zip(&cool) {
            assert!((x * 0.5 - y).abs() < 1e-6);
        }
        // every row has a clear hot expert well above the N(0,1) bulk
        for r in 0..rows {
            let row = &a[r * experts..(r + 1) * experts];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(max >= MOE_HOT_BOOST, "row {r} max {max}");
        }
        // degenerate shapes are fine
        assert!(moe_gating_logits(0, experts, 1.0, 1).is_empty());
        assert!(moe_gating_logits(rows, 0, 1.0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "temperature must be")]
    fn moe_gating_logits_rejects_zero_temperature() {
        moe_gating_logits(4, 4, 0.0, 1);
    }

    #[test]
    fn odd_lengths_are_fine() {
        assert_eq!(normal(7, 3).len(), 7);
        assert_eq!(uniform(1, 3).len(), 1);
        assert_eq!(customized(13, 3).len(), 13);
    }
}
