//! # topk-datagen — evaluation datasets for the Dr. Top-k reproduction
//!
//! Section 6 of the paper evaluates on three synthetic distributions
//! (uniform **UD**, normal **ND**, customized/adversarial **CD**) and three
//! real-world datasets (ANN_SIFT1B distances, ClueWeb09 degrees,
//! TwitterCOVID-19 fear scores). This crate generates all six — the real
//! datasets as distribution-faithful synthetic proxies (see
//! [`realworld`]) — deterministically from a seed, in parallel.
//!
//! ```
//! use topk_datagen::{generate, Distribution};
//!
//! let v = generate(Distribution::Uniform, 1 << 16, 42);
//! assert_eq!(v.len(), 1 << 16);
//! // same seed, same data
//! assert_eq!(v, generate(Distribution::Uniform, 1 << 16, 42));
//! ```

pub mod realworld;
pub mod rng;
pub mod synthetic;
pub mod workload;

pub use realworld::{
    ann_sift_distances, ann_sift_distances_f32, bm25_scores, twitter_fear_scores, web_degrees,
};
pub use synthetic::{
    customized, low_entropy, moe_gating_logits, normal, uniform, uniform_f32, zipf,
    LOW_ENTROPY_DISTINCT, MOE_HOT_BOOST, MOE_MAX_HOT_EXPERTS, ZIPF_EXPONENT,
};
pub use workload::{multi_query_workload, zipf_ks, CorpusMix, QuerySpec, APPROX_RECALL_PALETTE_BP};

use rng::Xoshiro256StarStar;

/// The datasets used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// UD — uniform over `[0, 2^32 − 1]`.
    Uniform,
    /// ND — normal `N(10^8, 10)`.
    Normal,
    /// CD — the paper's customized, bucket-adversarial distribution.
    Customized,
    /// AN — ANN_SIFT1B proxy: squared L2 distances of 128-d descriptors.
    AnnSift,
    /// CW — ClueWeb09 proxy: heavy-tailed web-page degrees.
    WebDegrees,
    /// TR — TwitterCOVID-19 proxy: tiled fear scores.
    TwitterFear,
}

impl Distribution {
    /// All synthetic distributions (Figure 18's x-axis groups).
    pub const SYNTHETIC: [Distribution; 3] = [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::Customized,
    ];

    /// All real-world proxies (Figure 19's datasets).
    pub const REAL_WORLD: [Distribution; 3] = [
        Distribution::AnnSift,
        Distribution::WebDegrees,
        Distribution::TwitterFear,
    ];

    /// Every distribution, synthetic then real-world. Derived from
    /// [`Self::SYNTHETIC`] and [`Self::REAL_WORLD`] so the three constants
    /// cannot drift apart; a new variant must be added to one of those two.
    pub const ALL: [Distribution; 6] = {
        let mut all = [Distribution::Uniform; 6];
        let mut i = 0;
        while i < Self::SYNTHETIC.len() {
            all[i] = Self::SYNTHETIC[i];
            i += 1;
        }
        let mut j = 0;
        while j < Self::REAL_WORLD.len() {
            all[Self::SYNTHETIC.len() + j] = Self::REAL_WORLD[j];
            j += 1;
        }
        all
    };

    /// Abbreviation used in the paper's figures (UD, ND, CD, AN, CW, TR).
    pub fn abbrev(&self) -> &'static str {
        match self {
            Distribution::Uniform => "UD",
            Distribution::Normal => "ND",
            Distribution::Customized => "CD",
            Distribution::AnnSift => "AN",
            Distribution::WebDegrees => "CW",
            Distribution::TwitterFear => "TR",
        }
    }

    /// Long human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "Uniform distribution",
            Distribution::Normal => "Normal distribution",
            Distribution::Customized => "Customized distribution",
            Distribution::AnnSift => "ANN_SIFT1B proxy (k-NN distances)",
            Distribution::WebDegrees => "ClueWeb09 proxy (web degrees)",
            Distribution::TwitterFear => "TwitterCOVID-19 proxy (fear scores)",
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Generate `n` elements of the given distribution from `seed`.
pub fn generate(dist: Distribution, n: usize, seed: u64) -> Vec<u32> {
    match dist {
        Distribution::Uniform => uniform(n, seed),
        Distribution::Normal => normal(n, seed),
        Distribution::Customized => customized(n, seed),
        Distribution::AnnSift => ann_sift_distances(n, seed),
        Distribution::WebDegrees => web_degrees(n, seed),
        Distribution::TwitterFear => twitter_fear_scores(n, seed),
    }
}

/// Minimum number of elements per generation chunk (below this the vector is
/// filled sequentially; chunk boundaries also define the per-chunk RNG
/// streams, so this constant is part of the deterministic output).
const CHUNK_ELEMS: usize = 1 << 18;

/// Fill a vector of `n` elements in parallel. `fill` receives a
/// chunk-specific RNG and the chunk slice; chunk seeds are derived from
/// `seed` and the chunk index, so the output is independent of the number of
/// worker threads. Generic over the element type so the same machinery
/// produces `u32` datasets and the `f32` distance/score datasets.
pub(crate) fn parallel_fill<T, F>(n: usize, seed: u64, fill: F) -> Vec<T>
where
    T: Default + Copy + Send,
    F: Fn(&mut Xoshiro256StarStar, &mut [T]) + Sync,
{
    let mut out = vec![T::default(); n];
    if n == 0 {
        return out;
    }
    let num_chunks = n.div_ceil(CHUNK_ELEMS);
    if num_chunks <= 1 {
        let mut rng = Xoshiro256StarStar::seed_from_u64(realworld::chunk_seed(seed, 0));
        fill(&mut rng, &mut out);
        return out;
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(num_chunks);
    std::thread::scope(|scope| {
        let fill = &fill;
        let chunks: Vec<(usize, &mut [T])> = out.chunks_mut(CHUNK_ELEMS).enumerate().collect();
        // round-robin chunks over workers
        let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in chunks {
            per_worker[i % workers].push((i, chunk));
        }
        for worker_chunks in per_worker {
            scope.spawn(move || {
                for (idx, chunk) in worker_chunks {
                    let mut rng =
                        Xoshiro256StarStar::seed_from_u64(realworld::chunk_seed(seed, idx));
                    fill(&mut rng, chunk);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_dispatches_every_distribution() {
        for dist in Distribution::SYNTHETIC
            .iter()
            .chain(Distribution::REAL_WORLD.iter())
        {
            let v = generate(*dist, 1 << 12, 7);
            assert_eq!(v.len(), 1 << 12, "{dist}");
        }
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(Distribution::Uniform.abbrev(), "UD");
        assert_eq!(Distribution::Normal.abbrev(), "ND");
        assert_eq!(Distribution::Customized.abbrev(), "CD");
        assert_eq!(Distribution::AnnSift.abbrev(), "AN");
        assert_eq!(Distribution::WebDegrees.abbrev(), "CW");
        assert_eq!(Distribution::TwitterFear.abbrev(), "TR");
        assert_eq!(format!("{}", Distribution::Uniform), "UD");
        assert!(!Distribution::AnnSift.name().is_empty());
    }

    #[test]
    fn parallel_fill_is_thread_count_independent() {
        // The chunking scheme must give the same output regardless of the
        // host's parallelism: chunk seeds depend only on (seed, chunk index).
        let big = uniform(3 * CHUNK_ELEMS + 17, 99);
        // Recompute the first chunk sequentially and compare.
        let small = {
            let mut rng = Xoshiro256StarStar::seed_from_u64(realworld::chunk_seed(99, 0));
            let mut out = vec![0u32; CHUNK_ELEMS];
            for v in out.iter_mut() {
                *v = rng.next_u32();
            }
            out
        };
        assert_eq!(&big[..CHUNK_ELEMS], &small[..]);
    }

    #[test]
    fn cross_distribution_outputs_differ() {
        let n = 1 << 12;
        let ud = generate(Distribution::Uniform, n, 7);
        let nd = generate(Distribution::Normal, n, 7);
        let cd = generate(Distribution::Customized, n, 7);
        assert_ne!(ud, nd);
        assert_ne!(nd, cd);
        assert_ne!(ud, cd);
    }
}
