//! The planner and the tuning-plan / delegate caches.
//!
//! Planning turns a heterogeneous [`QueryBatch`] into an
//! [`ExecutionPlan`] of independent units:
//!
//! * **Fused units** — all same-corpus, same-direction, same-mode queries
//!   share one delegate pass (the RTop-K-style batched row: the pass is
//!   sized by the group's `k_max`, then each exact query runs its own
//!   first top-k / concatenation / second top-k against the shared
//!   delegate vector, while each approximate query selects straight from
//!   the shared candidate vector).
//! * **Sharded units** — queries whose corpus exceeds a device's memory
//!   capacity run over the *whole* cluster through the distributed
//!   machinery instead (RadiK-style: many independent selections are
//!   scheduled, but an over-capacity one takes every device).
//!
//! Two memoizations make repeat traffic cheap:
//!
//! * the **tuning-plan cache** maps `(n, k, mode, key type, device)` to
//!   the resolved Rule-4 α (exact) or recall-model `(α, k')` (approximate),
//!   so a repeated query shape skips the derivation;
//! * the **delegate cache** maps `(corpus id, length, α, β, key type)` to
//!   the built [`DelegateVector`], so an unchanged corpus skips delegate
//!   reconstruction altogether.

use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use drtopk_core::{
    optimal_approx_tuning, ChosenPath, DelegateVector, DrTopKConfig, Mode, PathHint, PlannedQuery,
};
use gpu_sim::DeviceSpec;
use topk_baselines::{Desc, TopKKey};

use crate::query::{Direction, QueryBatch};
use crate::report::CacheReport;

/// Key of the tuning-plan cache: one resolved α per problem shape per
/// device model. The mode is part of the shape: an approximate query's
/// bucketing comes from the recall model (per target), not from Rule 4.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    n: usize,
    k: usize,
    key_type: TypeId,
    device: String,
    mode: Mode,
}

/// A memoized tuning decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningPlan {
    /// Resolved subrange exponent.
    pub alpha: u32,
    /// Delegates per subrange the plan assumes. For an approximate plan
    /// this is the recall-model candidate budget `k'`.
    pub beta: usize,
}

/// Key of the delegate cache. The key type distinguishes direction too:
/// a smallest-direction pass is built over `Desc<K>` and gets
/// `TypeId::of::<Desc<K>>()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct DelegateKey {
    corpus_id: u64,
    len: usize,
    alpha: u32,
    beta: usize,
    key_type: TypeId,
}

/// One cached delegate vector with its own usage accounting.
#[derive(Debug)]
struct DelegateSlot {
    value: Arc<dyn Any + Send + Sync>,
    hits: u64,
}

/// Observability snapshot of one delegate-cache entry (see
/// [`PlanCache::delegate_entries`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelegateCacheEntry {
    /// Corpus id the entry was built for.
    pub corpus_id: u64,
    /// Corpus length the entry covers.
    pub len: usize,
    /// Subrange exponent the entry was built with.
    pub alpha: u32,
    /// Delegates per subrange (or the approximate candidate budget).
    pub beta: usize,
    /// How many lookups this entry has answered since it was inserted.
    pub hits: u64,
}

/// The engine's memoization state: tuning plans plus cached delegate
/// vectors, with hit/miss counters for both.
///
/// The delegate cache is an **LRU**: every hit refreshes the entry's
/// recency, so repeat-heavy traffic keeps its hottest corpora resident —
/// the earlier FIFO policy evicted by insertion age and would drop the
/// most-hit corpus as soon as enough one-shot corpora streamed past it.
/// Per-entry hit counts are kept for observability
/// ([`PlanCache::delegate_entries`]).
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<PlanKey, TuningPlan>,
    delegates: HashMap<DelegateKey, DelegateSlot>,
    /// Recency order: least-recently-used at the front, most-recent at the
    /// back. Capacities are small (tens), so the O(len) reorder on hit is
    /// noise next to the |V|-scan a miss costs.
    delegate_order: VecDeque<DelegateKey>,
    delegate_capacity: usize,
    plan_hits: u64,
    plan_misses: u64,
    delegate_hits: u64,
    delegate_misses: u64,
}

impl PlanCache {
    /// A cache that keeps at most `delegate_capacity` delegate vectors
    /// (tuning plans are tiny and unbounded).
    pub fn with_delegate_capacity(delegate_capacity: usize) -> Self {
        PlanCache {
            delegate_capacity,
            ..PlanCache::default()
        }
    }

    /// Resolve the α (and, for approximate shapes, the candidate budget)
    /// for `(n, k, mode)` under `base`, through the memo: a hit skips the
    /// `auto_alpha` / recall-model derivation entirely.
    pub(crate) fn resolve_tuning(
        &mut self,
        n: usize,
        k: usize,
        mode: Mode,
        key_type: TypeId,
        device: &str,
        base: &DrTopKConfig,
    ) -> (TuningPlan, bool) {
        let key = PlanKey {
            n,
            k,
            key_type,
            device: device.to_string(),
            mode,
        };
        if let Some(&plan) = self.plans.get(&key) {
            self.plan_hits += 1;
            return (plan, true);
        }
        self.plan_misses += 1;
        let plan = match mode.strict_target() {
            Some(target) => match optimal_approx_tuning(n, k.max(1), target) {
                Some(t) => TuningPlan {
                    alpha: t.alpha,
                    beta: t.budget,
                },
                // infeasible shape: members will fall back to exact plans,
                // so hold the group on the exact Rule-4 bucketing
                None => TuningPlan {
                    alpha: base.resolve_alpha(n.max(2), k.max(1)),
                    beta: base.beta,
                },
            },
            None => TuningPlan {
                alpha: base.resolve_alpha(n.max(2), k.max(1)),
                beta: base.beta,
            },
        };
        self.plans.insert(key, plan);
        (plan, false)
    }

    /// Move `key` to the most-recently-used end of the recency queue.
    fn touch(&mut self, key: &DelegateKey) {
        if let Some(pos) = self.delegate_order.iter().position(|k| k == key) {
            self.delegate_order.remove(pos);
        }
        self.delegate_order.push_back(*key);
    }

    /// Look up a cached delegate vector; a hit refreshes the entry's LRU
    /// recency and bumps its hit count. Counts a hit/miss only when the
    /// corpus is cacheable (`corpus_id` is `Some`).
    pub(crate) fn get_delegates<K: TopKKey>(
        &mut self,
        corpus_id: Option<u64>,
        len: usize,
        alpha: u32,
        beta: usize,
    ) -> Option<Arc<DelegateVector<K>>> {
        let id = corpus_id?;
        let key = DelegateKey {
            corpus_id: id,
            len,
            alpha,
            beta,
            key_type: TypeId::of::<K>(),
        };
        match self.delegates.get_mut(&key) {
            Some(slot) => {
                self.delegate_hits += 1;
                slot.hits += 1;
                // The TypeId in the key makes the downcast infallible.
                let value = Arc::clone(&slot.value)
                    .downcast::<DelegateVector<K>>()
                    .expect("delegate cache entry type is pinned by its key");
                self.touch(&key);
                Some(value)
            }
            None => {
                self.delegate_misses += 1;
                None
            }
        }
    }

    /// Insert a freshly built delegate vector at the most-recently-used
    /// position, evicting the **least recently used** entries when over
    /// capacity.
    pub(crate) fn put_delegates<K: TopKKey>(
        &mut self,
        corpus_id: u64,
        len: usize,
        alpha: u32,
        beta: usize,
        delegates: Arc<DelegateVector<K>>,
    ) {
        if self.delegate_capacity == 0 {
            return;
        }
        let key = DelegateKey {
            corpus_id,
            len,
            alpha,
            beta,
            key_type: TypeId::of::<K>(),
        };
        self.delegates.insert(
            key,
            DelegateSlot {
                value: delegates,
                hits: 0,
            },
        );
        self.touch(&key);
        while self.delegates.len() > self.delegate_capacity {
            let Some(lru) = self.delegate_order.pop_front() else {
                break;
            };
            self.delegates.remove(&lru);
        }
    }

    /// Snapshot of every cached delegate vector in recency order (least
    /// recently used first), with per-entry hit counts — the engine's
    /// observability hook for answering "which corpora are hot".
    pub fn delegate_entries(&self) -> Vec<DelegateCacheEntry> {
        self.delegate_order
            .iter()
            .filter_map(|key| {
                self.delegates.get(key).map(|slot| DelegateCacheEntry {
                    corpus_id: key.corpus_id,
                    len: key.len,
                    alpha: key.alpha,
                    beta: key.beta,
                    hits: slot.hits,
                })
            })
            .collect()
    }

    /// Cumulative tuning-plan cache counters.
    pub fn plan_report(&self) -> CacheReport {
        CacheReport {
            hits: self.plan_hits,
            misses: self.plan_misses,
        }
    }

    /// Cumulative delegate cache counters.
    pub fn delegate_report(&self) -> CacheReport {
        CacheReport {
            hits: self.delegate_hits,
            misses: self.delegate_misses,
        }
    }

    /// Number of cached delegate vectors currently held.
    pub fn cached_delegate_vectors(&self) -> usize {
        self.delegates.len()
    }

    /// Number of memoized tuning plans.
    pub fn cached_tuning_plans(&self) -> usize {
        self.plans.len()
    }
}

/// The `TypeId` a `(K, direction)` pair executes under: smallest-direction
/// work runs over the order-reversing [`Desc`] adapter.
pub(crate) fn effective_type_id<K: TopKKey>(direction: Direction) -> TypeId {
    match direction {
        Direction::Largest => TypeId::of::<K>(),
        Direction::Smallest => TypeId::of::<Desc<K>>(),
    }
}

/// A group of same-corpus, same-direction, same-mode queries fused behind
/// one delegate (or candidate) pass.
#[derive(Debug, Clone)]
pub struct FusedUnit {
    /// Corpus index within the batch.
    pub corpus: usize,
    /// Direction shared by every query of the unit.
    pub direction: Direction,
    /// Mode shared by every query of the unit. Approximate groups fuse per
    /// distinct recall target — sizing one shared pass by the loosest
    /// target of a mixed group would under-serve the tighter members.
    pub mode: Mode,
    /// Indices (into the batch's query list) of the member queries.
    pub queries: Vec<usize>,
    /// The largest clamped k in the group — the delegate pass is sized
    /// for it.
    pub k_max: usize,
    /// The group's resolved subrange exponent.
    pub alpha: u32,
    /// Delegates per subrange of the shared pass: β for an exact group,
    /// the largest member candidate budget `k'` for an approximate group
    /// (a bigger budget only raises every member's recall).
    pub beta: usize,
    /// Whether the α came from the tuning-plan cache.
    pub tuning_cached: bool,
    /// Per-member execution plans, parallel to `queries`.
    pub planned: Vec<PlannedQuery>,
    /// True when at least one member actually uses the delegate machinery
    /// (otherwise no delegate pass is built at all).
    pub needs_delegates: bool,
    /// The execution path every member of this unit resolved to at plan
    /// time. Queries are fused by resolved path, so a unit is homogeneous:
    /// delegate units share one delegate pass, radix units share a unit
    /// with no pass at all (each member runs the multi-pass radix-select
    /// pipeline on the worker's device).
    pub path: ChosenPath,
}

/// A single over-capacity query that takes the whole cluster through the
/// distributed path.
#[derive(Debug, Clone, Copy)]
pub struct ShardedUnit {
    /// Index (into the batch's query list) of the query.
    pub query: usize,
}

/// A group of same-corpus, same-direction, same-mode **row-matrix**
/// queries scheduled together on one pool device.
///
/// Each member runs as its own row-block stage graph (members may reshape
/// the corpus differently, e.g. `8×1024` vs `4×2048`), planned internally
/// by [`drtopk_core::topk_rows`]'s per-row machinery — the planner's job
/// here is grouping and scheduling, not per-row tuning.
#[derive(Debug, Clone)]
pub struct RowUnit {
    /// Corpus index within the batch.
    pub corpus: usize,
    /// Direction shared by every member of the unit.
    pub direction: Direction,
    /// Mode shared by every member of the unit.
    pub mode: Mode,
    /// Indices (into the batch's row-query list) of the member queries.
    pub members: Vec<usize>,
}

/// One independently schedulable piece of a batch.
#[derive(Debug, Clone)]
pub enum PlanUnit {
    /// Fused same-corpus group: runs on one device of the worker pool.
    Fused(FusedUnit),
    /// Over-capacity query: runs across the whole cluster.
    Sharded(ShardedUnit),
    /// Row-matrix group: runs on one device of the worker pool as
    /// row-block stage graphs.
    Rows(RowUnit),
}

/// The planner's output for one batch.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// All units: fused first, in `(corpus index, direction)` order
    /// (deterministic, independent of query submission order), then
    /// sharded units in query order, then row-matrix units in
    /// `(corpus index, direction)` order.
    pub units: Vec<PlanUnit>,
    /// Tuning-plan cache hits during this planning pass.
    pub plan_hits: u64,
    /// Tuning-plan cache misses during this planning pass.
    pub plan_misses: u64,
}

impl ExecutionPlan {
    /// Number of fused units.
    pub fn fused_units(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, PlanUnit::Fused(_)))
            .count()
    }

    /// Number of sharded queries.
    pub fn sharded_queries(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, PlanUnit::Sharded(_)))
            .count()
    }

    /// Number of row-matrix units.
    pub fn row_units(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u, PlanUnit::Rows(_)))
            .count()
    }
}

/// Plan a batch: group fusible queries, shard over-capacity ones, and
/// resolve every group's α through the tuning-plan cache.
pub(crate) fn plan_batch<K: TopKKey>(
    batch: &QueryBatch<'_, K>,
    base: &DrTopKConfig,
    shard_capacity: usize,
    device: &DeviceSpec,
    cache: &mut PlanCache,
) -> ExecutionPlan {
    let hits_before = cache.plan_hits;
    let misses_before = cache.plan_misses;

    // Group fusible queries by (corpus, direction, mode, resolved path);
    // BTreeMap keeps the plan deterministic. Exact and approximate traffic
    // never share a pass, approximate traffic fuses per distinct recall
    // target, and delegate-path queries never fuse with radix-path ones
    // (a radix member would not touch the shared delegate pass, and a
    // delegate member in a radix unit would have no pass to share).
    let mut groups: BTreeMap<(usize, bool, Mode, ChosenPath), Vec<usize>> = BTreeMap::new();
    let mut sharded: Vec<ShardedUnit> = Vec::new();
    for (idx, q) in batch.queries.iter().enumerate() {
        let n = batch.corpora[q.corpus].data.len();
        if n > shard_capacity {
            sharded.push(ShardedUnit { query: idx });
        } else {
            // Resolve the hint per query against the pool device profile
            // and the actual corpus (the sampled survival probe keeps
            // duplicate-heavy corpora on the delegate side): the crossover
            // depends on this query's own k, not the group's. Approximate
            // queries ignore the hint entirely.
            let path = if q.mode.strict_target().is_some() {
                ChosenPath::Delegate
            } else {
                q.path
                    .resolve_for(batch.corpora[q.corpus].data, q.k.min(n), device)
            };
            groups
                .entry((q.corpus, q.direction == Direction::Smallest, q.mode, path))
                .or_default()
                .push(idx);
        }
    }

    let mut units: Vec<PlanUnit> = Vec::with_capacity(groups.len() + sharded.len());
    for ((corpus, smallest, mode, path), queries) in groups {
        let direction = if smallest {
            Direction::Smallest
        } else {
            Direction::Largest
        };
        let n = batch.corpora[corpus].data.len();
        let k_max = queries
            .iter()
            .map(|&qi| batch.queries[qi].k.min(n))
            .max()
            .unwrap_or(0);
        let (tuning, tuning_cached) = cache.resolve_tuning(
            n,
            k_max,
            mode,
            effective_type_id::<K>(direction),
            &device.name,
            base,
        );
        // Pin every member to the group's resolved path so execution cannot
        // re-resolve differently (the member seam in `dr_topk_planned`
        // honors the pin; degenerate members still take their fallbacks).
        let member_path = match path {
            ChosenPath::Delegate => PathHint::Delegate,
            ChosenPath::Radix => PathHint::Radix,
        };
        let planned: Vec<PlannedQuery> = queries
            .iter()
            .map(|&qi| {
                let q = &batch.queries[qi];
                let member_config = DrTopKConfig {
                    alpha: Some(tuning.alpha),
                    inner: q.inner,
                    mode: q.mode,
                    path: member_path,
                    ..base.clone()
                };
                PlannedQuery::plan(n, q.k, &member_config)
            })
            .collect();
        // Radix units never build a delegate pass: their members select
        // via digit histograms over the raw corpus instead.
        let needs_delegates =
            path == ChosenPath::Delegate && planned.iter().any(|p| p.use_delegates);
        // The shared pass must cover every member: for an approximate
        // group that is the largest member budget (each member's own
        // budget is derived at the group α; a larger shared budget only
        // raises its recall).
        let beta = planned
            .iter()
            .filter(|p| p.use_delegates && p.config.mode.strict_target().is_some())
            .map(|p| p.config.beta)
            .fold(tuning.beta, usize::max);
        units.push(PlanUnit::Fused(FusedUnit {
            corpus,
            direction,
            mode,
            queries,
            k_max,
            alpha: tuning.alpha,
            beta,
            tuning_cached,
            planned,
            needs_delegates,
            path,
        }));
    }
    units.extend(sharded.into_iter().map(PlanUnit::Sharded));

    // Row-matrix queries fuse by the same (corpus, direction, mode) key.
    // Per-row tuning happens inside the row-block machinery at execution
    // (α depends on each member's `cols`, which members of one corpus may
    // reshape differently), so planning only groups and orders them.
    let mut row_groups: BTreeMap<(usize, bool, Mode), Vec<usize>> = BTreeMap::new();
    for (idx, q) in batch.row_queries.iter().enumerate() {
        row_groups
            .entry((q.corpus, q.direction == Direction::Smallest, q.mode))
            .or_default()
            .push(idx);
    }
    units.extend(
        row_groups
            .into_iter()
            .map(|((corpus, smallest, mode), members)| {
                PlanUnit::Rows(RowUnit {
                    corpus,
                    direction: if smallest {
                        Direction::Smallest
                    } else {
                        Direction::Largest
                    },
                    mode,
                    members,
                })
            }),
    );

    ExecutionPlan {
        units,
        plan_hits: cache.plan_hits - hits_before,
        plan_misses: cache.plan_misses - misses_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use drtopk_core::InnerAlgorithm;

    fn base() -> DrTopKConfig {
        DrTopKConfig::default()
    }

    #[test]
    fn same_corpus_same_direction_queries_fuse() {
        let data: Vec<u32> = (0..1 << 14).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(7, &data);
        for k in [4usize, 64, 256] {
            batch.push_topk(c, k);
        }
        batch.push_topk_min(c, 16);
        let mut cache = PlanCache::with_delegate_capacity(8);
        let plan = plan_batch(
            &batch,
            &base(),
            usize::MAX,
            &DeviceSpec::v100s(),
            &mut cache,
        );
        // three largest queries fuse; the smallest query is its own unit
        assert_eq!(plan.fused_units(), 2);
        assert_eq!(plan.sharded_queries(), 0);
        let PlanUnit::Fused(first) = &plan.units[0] else {
            panic!("expected fused unit")
        };
        assert_eq!(first.queries, vec![0, 1, 2]);
        assert_eq!(first.k_max, 256);
        assert_eq!(first.planned.len(), 3);
        assert!(first.needs_delegates);
        // every member shares the group α
        assert!(first.planned.iter().all(|p| p.alpha == first.alpha));
    }

    #[test]
    fn over_capacity_corpora_are_sharded() {
        let data: Vec<u32> = (0..1 << 12).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push_topk(c, 8);
        batch.push_topk(c, 9);
        let mut cache = PlanCache::default();
        let plan = plan_batch(&batch, &base(), 1 << 10, &DeviceSpec::v100s(), &mut cache);
        assert_eq!(plan.fused_units(), 0);
        assert_eq!(plan.sharded_queries(), 2);
    }

    #[test]
    fn tuning_plans_are_memoized_per_shape_and_direction() {
        let data: Vec<u32> = (0..1 << 14).collect();
        let mut cache = PlanCache::default();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push_topk(c, 100);
        let p1 = plan_batch(
            &batch,
            &base(),
            usize::MAX,
            &DeviceSpec::v100s(),
            &mut cache,
        );
        assert_eq!((p1.plan_hits, p1.plan_misses), (0, 1));
        // identical shape: pure hit
        let p2 = plan_batch(
            &batch,
            &base(),
            usize::MAX,
            &DeviceSpec::v100s(),
            &mut cache,
        );
        assert_eq!((p2.plan_hits, p2.plan_misses), (1, 0));
        // the opposite direction is a different plan key
        let mut batch_min = QueryBatch::new();
        let c = batch_min.add_corpus(1, &data);
        batch_min.push_topk_min(c, 100);
        let p3 = plan_batch(
            &batch_min,
            &base(),
            usize::MAX,
            &DeviceSpec::v100s(),
            &mut cache,
        );
        assert_eq!((p3.plan_hits, p3.plan_misses), (0, 1));
        // a different device label is a different plan key
        let p4 = plan_batch(
            &batch,
            &base(),
            usize::MAX,
            &DeviceSpec::titan_xp(),
            &mut cache,
        );
        assert_eq!((p4.plan_hits, p4.plan_misses), (0, 1));
        assert_eq!(cache.cached_tuning_plans(), 3);
    }

    #[test]
    fn degenerate_members_do_not_force_a_delegate_pass() {
        // k = 0 members and k > |V| members plan cleanly; a group of only
        // degenerate queries needs no delegates.
        let data: Vec<u32> = (0..100).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push(Query {
            corpus: c,
            k: 0,
            direction: Direction::Largest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Exact,
            path: PathHint::Auto,
        });
        batch.push_topk(c, 1000); // clamps to |V| = 100 → fallback
        let mut cache = PlanCache::default();
        let plan = plan_batch(
            &batch,
            &base(),
            usize::MAX,
            &DeviceSpec::v100s(),
            &mut cache,
        );
        let PlanUnit::Fused(unit) = &plan.units[0] else {
            panic!("expected fused unit")
        };
        assert!(!unit.needs_delegates);
        assert_eq!(unit.k_max, 100);
    }

    #[test]
    fn row_queries_group_by_corpus_direction_and_mode() {
        let data: Vec<u32> = (0..1 << 12).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(3, &data);
        batch.push_topk(c, 8); // vector traffic coexists
        batch.push_rows(c, 16, 256, drtopk_core::RowK::Uniform(4));
        batch.push_rows(c, 8, 512, drtopk_core::RowK::Uniform(2)); // same key, other shape
        batch.push_rows_min(c, 16, 256, drtopk_core::RowK::Uniform(4));
        let mut cache = PlanCache::default();
        let plan = plan_batch(
            &batch,
            &base(),
            usize::MAX,
            &DeviceSpec::v100s(),
            &mut cache,
        );
        assert_eq!(plan.fused_units(), 1);
        assert_eq!(
            plan.row_units(),
            2,
            "largest pair fuses, smallest is its own unit"
        );
        let PlanUnit::Rows(largest) = &plan.units[1] else {
            panic!("expected the largest-direction row unit after the fused unit")
        };
        assert_eq!(largest.members, vec![0, 1]);
        assert_eq!(largest.direction, Direction::Largest);
        let PlanUnit::Rows(smallest) = &plan.units[2] else {
            panic!("expected the smallest-direction row unit last")
        };
        assert_eq!(smallest.members, vec![2]);
        assert_eq!(smallest.direction, Direction::Smallest);
    }

    fn build_entry(data: &[u32]) -> Arc<drtopk_core::DelegateVector<u32>> {
        let dev = gpu_sim::Device::with_host_threads(gpu_sim::DeviceSpec::v100s(), 2);
        Arc::new(drtopk_core::build_delegate_vector(
            &dev,
            data,
            6,
            2,
            drtopk_core::ConstructionMethod::Auto,
        ))
    }

    #[test]
    fn delegate_cache_evicts_least_recently_used() {
        let data: Vec<u32> = (0..4096).collect();
        let mut cache = PlanCache::with_delegate_capacity(2);
        for id in 0..3u64 {
            cache.put_delegates(id, data.len(), 6, 2, build_entry(&data));
        }
        assert_eq!(cache.cached_delegate_vectors(), 2);
        // no hits in between: recency == insertion, so entry 0 was evicted
        assert!(cache
            .get_delegates::<u32>(Some(0), data.len(), 6, 2)
            .is_none());
        assert!(cache
            .get_delegates::<u32>(Some(1), data.len(), 6, 2)
            .is_some());
        assert!(cache
            .get_delegates::<u32>(Some(2), data.len(), 6, 2)
            .is_some());
        let rep = cache.delegate_report();
        assert_eq!((rep.hits, rep.misses), (2, 1));
        // uncacheable corpora never count
        assert!(cache.get_delegates::<u32>(None, data.len(), 6, 2).is_none());
        let rep = cache.delegate_report();
        assert_eq!((rep.hits, rep.misses), (2, 1));
    }

    #[test]
    fn delegate_cache_keeps_the_hot_entry_under_pressure() {
        // Regression for the FIFO policy: corpus 0 is the hottest entry of
        // repeat-heavy traffic, yet FIFO would evict it first because it is
        // the *oldest*. LRU must keep it and evict the idle corpus 1.
        let data: Vec<u32> = (0..4096).collect();
        let mut cache = PlanCache::with_delegate_capacity(2);
        cache.put_delegates(0, data.len(), 6, 2, build_entry(&data));
        cache.put_delegates(1, data.len(), 6, 2, build_entry(&data));
        // repeat traffic on corpus 0 refreshes its recency
        for _ in 0..3 {
            assert!(cache
                .get_delegates::<u32>(Some(0), data.len(), 6, 2)
                .is_some());
        }
        // a new corpus streams past: the idle corpus 1 is evicted, not 0
        cache.put_delegates(2, data.len(), 6, 2, build_entry(&data));
        assert!(cache
            .get_delegates::<u32>(Some(0), data.len(), 6, 2)
            .is_some());
        assert!(cache
            .get_delegates::<u32>(Some(1), data.len(), 6, 2)
            .is_none());
        // per-entry hit counts survive and report in LRU → MRU order
        let entries = cache.delegate_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].corpus_id, 2, "coldest first");
        assert_eq!(entries[1].corpus_id, 0, "hottest (most recent) last");
        assert_eq!(entries[1].hits, 4);
        assert_eq!(entries[0].hits, 0);
        assert_eq!(entries[1].alpha, 6);
        assert_eq!(entries[1].beta, 2);
        assert_eq!(entries[1].len, data.len());
    }

    #[test]
    fn delegate_cache_reinsert_refreshes_recency_without_growth() {
        let data: Vec<u32> = (0..4096).collect();
        let mut cache = PlanCache::with_delegate_capacity(2);
        cache.put_delegates(0, data.len(), 6, 2, build_entry(&data));
        cache.put_delegates(1, data.len(), 6, 2, build_entry(&data));
        // re-inserting an existing key must not duplicate it in the order
        cache.put_delegates(0, data.len(), 6, 2, build_entry(&data));
        assert_eq!(cache.cached_delegate_vectors(), 2);
        // 0 is now most recent, so inserting a third evicts 1
        cache.put_delegates(2, data.len(), 6, 2, build_entry(&data));
        assert!(cache
            .get_delegates::<u32>(Some(0), data.len(), 6, 2)
            .is_some());
        assert!(cache
            .get_delegates::<u32>(Some(1), data.len(), 6, 2)
            .is_none());
        assert_eq!(cache.delegate_entries().len(), 2);
    }
}
