//! Plan execution: a worker pool with one [`Device`] per worker for fused
//! units, and the whole-cluster distributed path for sharded queries.
//!
//! Fused units are pulled from a shared atomic queue (dynamic load
//! balancing: a worker that drew a cheap unit immediately takes the next
//! one). Each unit executes as a **stage graph** on its worker's device:
//! one shared delegate-pass stage — built, or recalled from the delegate
//! cache — followed by every member query's own pipeline stages (first
//! top-k, concatenation, second top-k — themselves scheduled by the core
//! stage executor inside [`dr_topk_planned`]). The unit's
//! [`StageReport`] is the engine's single instrumentation point: per-phase
//! times, the compute/transfer split and the modeled unit cost are all
//! derived from it instead of being hand-accumulated at three sites.
//! Sharded queries run the distributed stage graph (double-buffered chunk
//! ingestion) and report their breakdown and overlap the same way. Worker
//! failures are surfaced per device through
//! [`GpuCluster::try_run_on_all`] instead of poisoning the batch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drtopk_core::{
    as_desc, build_delegate_vector, capacity_in_keys, distributed_dr_topk, dr_topk_planned,
    topk_rows_on, CalibrationFit, DelegateVector, DrTopKConfig, DrTopKResult, ExecutedStage,
    Executor, PhaseBreakdown, Resource, RowMatrix, RowTopKResult, StageGraph, StageId, StageKind,
    StageOutcome, StageReport,
};
use drtopk_obs::TraceSink;
use gpu_sim::{Device, GpuCluster, KernelStats};
use parking_lot::Mutex;
use topk_baselines::{Desc, TopKKey};

use crate::engine::EngineError;
use crate::plan::{ExecutionPlan, FusedUnit, PlanCache, PlanUnit, RowUnit};
use crate::query::{Direction, QueryBatch, RowQuery};
use crate::report::{CacheReport, ExecPath, QueryResult, RowQueryResult};

/// What executing one fused unit produced.
struct FusedOutcome<K: TopKKey> {
    unit: usize,
    /// `(query index, modeled predicted recall, result)` per member.
    results: Vec<(usize, f64, DrTopKResult<K>)>,
    /// The unit's composed stage schedule: the shared delegate pass (when
    /// one was built) followed by every member's stages, serial on the
    /// worker's device.
    unit_stages: StageReport,
    delegate_pass_run: bool,
    delegate_from_cache: bool,
}

/// What executing one row-matrix unit produced.
struct RowsOutcome<K: TopKKey> {
    unit: usize,
    /// `(row-query index, result)` per member.
    results: Vec<(usize, RowQueryResult<K>)>,
    /// The members' row-block schedules composed serially on the worker's
    /// device.
    unit_stages: StageReport,
    /// Fused per-block delegate passes the unit ran across its members.
    delegate_passes: usize,
}

/// One pool worker's result for one unit drawn from the shared queue.
enum PoolOutcome<K: TopKKey> {
    Fused(FusedOutcome<K>),
    Rows(RowsOutcome<K>),
}

/// Everything `run_batch` needs back from execution; cache counters are
/// snapshotted by the caller around this call.
pub(crate) struct ExecOutput<K: TopKKey> {
    pub results: Vec<QueryResult<K>>,
    /// One result per row-matrix query, in row-query order.
    pub row_results: Vec<RowQueryResult<K>>,
    pub phase_ms: PhaseBreakdown,
    pub stats: KernelStats,
    pub delegate_passes_run: usize,
    pub delegate_passes_saved: usize,
    /// This batch's delegate-cache activity, derived from the unit
    /// outcomes themselves (not from differencing the cache's cumulative
    /// counters, which concurrent batches would pollute).
    pub delegate_cache: CacheReport,
    /// Makespan of the fused worker-pool portion (slowest worker).
    pub pool_ms: f64,
    /// Modeled time of the sharded whole-cluster portion.
    pub sharded_ms: f64,
    /// Sum of the sharded runs' *serialized* stage cost — what they would
    /// have taken with no transfer/compute overlap.
    pub sharded_serial_ms: f64,
    /// Modeled busy time of each pool worker under the deterministic list
    /// schedule (index = device slot). Feeds the worker busy/occupancy
    /// metrics — the ROADMAP's "idle transfer-lane worker" blind spot.
    pub worker_loads: Vec<f64>,
    /// Fused units each pool worker executed under the list schedule.
    pub worker_units: Vec<usize>,
    /// Per-[`StageKind`] modeled-vs-measured drift: the sample-weighted
    /// mean absolute calibration residual across every unit and sharded
    /// stage schedule of the batch.
    pub kind_residual_ms: Vec<(StageKind, f64)>,
}

/// Sample-weighted accumulator for per-kind calibration residuals.
#[derive(Default)]
struct ResidualAccum {
    by_kind: Vec<(StageKind, f64, usize)>,
}

impl ResidualAccum {
    fn absorb(&mut self, fit: &CalibrationFit) {
        for f in &fit.fits {
            if f.samples == 0 {
                continue;
            }
            match self.by_kind.iter_mut().find(|(k, _, _)| *k == f.kind) {
                Some((_, sum, n)) => {
                    *sum += f.mean_abs_residual_ms * f.samples as f64;
                    *n += f.samples;
                }
                None => self.by_kind.push((
                    f.kind,
                    f.mean_abs_residual_ms * f.samples as f64,
                    f.samples,
                )),
            }
        }
    }

    fn weighted_means(self) -> Vec<(StageKind, f64)> {
        self.by_kind
            .into_iter()
            .map(|(k, sum, n)| (k, sum / n as f64))
            .collect()
    }
}

/// Compose the unit-level stage report from the macro graph's schedule.
///
/// The macro graph has one stage per member (plus the shared pass when one
/// ran); each member macro stage is replaced here by that member's own
/// executed pipeline stages, shifted onto the unit's serial timeline and
/// re-tagged with the worker's device. Dependencies are remapped into the
/// composed index space, with the shared pass as the root of every member
/// chain, and the per-kind calibration is refit over the spliced stages.
fn splice_unit_stages<K: TopKKey>(
    macro_report: &StageReport,
    pass_ran: bool,
    device: usize,
    results: &[DrTopKResult<K>],
) -> StageReport {
    let mut stages: Vec<ExecutedStage> = Vec::new();
    let mut pass_idx: Option<usize> = None;
    let mut members = results.iter();
    for (i, macro_stage) in macro_report.stages.iter().enumerate() {
        if pass_ran && i == 0 {
            pass_idx = Some(stages.len());
            stages.push(ExecutedStage {
                resource: Resource::Compute(device),
                ..macro_stage.clone()
            });
            continue;
        }
        let member = members.next().expect("one macro stage per member");
        let base_idx = stages.len();
        for inner in &member.stages.stages {
            let deps = if inner.deps.is_empty() {
                pass_idx.into_iter().collect()
            } else {
                inner.deps.iter().map(|d| d + base_idx).collect()
            };
            stages.push(ExecutedStage {
                kind: inner.kind,
                label: inner.label.clone(),
                resource: Resource::Compute(device),
                deps,
                start_ms: inner.start_ms + macro_stage.start_ms,
                end_ms: inner.end_ms + macro_stage.start_ms,
                measured_start_ms: inner.measured_start_ms + macro_stage.measured_start_ms,
                measured_end_ms: inner.measured_end_ms + macro_stage.measured_start_ms,
                stats: inner.stats,
            });
        }
    }
    let calibration = CalibrationFit::fit(&stages);
    let report = StageReport {
        stages,
        makespan_ms: macro_report.makespan_ms,
        measured_makespan_ms: macro_report.measured_makespan_ms,
        calibration,
    };
    // The macro graph was verified when it executed; splicing re-wires
    // kinds, resources and dependencies, so debug builds re-check the
    // composed schedule too (the index remapping is exactly the kind of
    // arithmetic the verifier exists to catch).
    #[cfg(debug_assertions)]
    {
        let diags = report.verify();
        assert!(
            diags.is_empty(),
            "spliced unit stage report failed verification:\n{}",
            diags
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    report
}

/// Run one fused unit's typed half as a real stage graph: the shared
/// delegate pass (cache miss only) is the root stage, and every member
/// query is a dependent stage on the same worker device. The graph is
/// single-resource, so the executor runs it inline on the calling worker
/// thread; the member macro stages are then spliced into a unit-level
/// report via [`splice_unit_stages`].
fn run_fused_typed<K: TopKKey>(
    device: &Device,
    device_idx: usize,
    data: &[K],
    corpus_id: Option<u64>,
    unit: &FusedUnit,
    base: &DrTopKConfig,
    cache: &Mutex<PlanCache>,
) -> (
    Vec<DrTopKResult<K>>,
    StageReport,
    /* pass_run */ bool,
    /* from_cache */ bool,
) {
    let beta = unit.beta;
    // Resolve the delegate cache up front: a hit means the |V|-scan
    // disappears from the batch entirely (no pass stage in the graph); a
    // miss means the graph's first stage builds and caches it.
    let cached: Option<Arc<DelegateVector<K>>> = if unit.needs_delegates {
        cache
            .lock()
            .get_delegates::<K>(corpus_id, data.len(), unit.alpha, beta)
    } else {
        None
    };
    let from_cache = cached.is_some();
    let needs_build = unit.needs_delegates && !from_cache;

    struct UnitCtx<K: TopKKey> {
        delegates: Mutex<Option<Arc<DelegateVector<K>>>>,
        members: Vec<Mutex<Option<DrTopKResult<K>>>>,
    }
    let ctx = UnitCtx::<K> {
        delegates: Mutex::new(cached),
        members: unit.planned.iter().map(|_| Mutex::new(None)).collect(),
    };

    let mut graph: StageGraph<'_, UnitCtx<K>> = StageGraph::new();
    let mut member_deps: Vec<StageId> = Vec::new();
    if needs_build {
        // The one shared pass is the unit's first stage; its kind mirrors
        // what the pass is (candidate generation for approximate groups,
        // delegate construction otherwise).
        let kind = if unit.mode.strict_target().is_some() {
            StageKind::BucketTopKPrime
        } else {
            StageKind::DelegateConstruction
        };
        member_deps.push(graph.add_labeled(
            kind,
            "shared delegate pass",
            Resource::Compute(device_idx),
            &[],
            move |ctx: &UnitCtx<K>| {
                let built = Arc::new(build_delegate_vector(
                    device,
                    data,
                    unit.alpha,
                    beta,
                    base.construction,
                ));
                if let Some(id) = corpus_id {
                    cache.lock().put_delegates(
                        id,
                        data.len(),
                        unit.alpha,
                        beta,
                        Arc::clone(&built),
                    );
                }
                let outcome = StageOutcome {
                    stats: built.stats,
                    time_ms: built.time_ms,
                };
                *ctx.delegates.lock() = Some(built);
                outcome
            },
        ));
    }
    for (m, planned) in unit.planned.iter().enumerate() {
        graph.add_labeled(
            StageKind::SecondTopK,
            format!("member {m}"),
            Resource::Compute(device_idx),
            &member_deps,
            move |ctx: &UnitCtx<K>| {
                // A member may only run against the shared pass when the
                // pass covers its plan: equal β for exact members, a
                // budget at least the member's own for approximate ones
                // (more candidates only raise recall). The rare member
                // that fell back to an incompatible exact plan builds its
                // own pass.
                let delegates = ctx.delegates.lock().clone();
                let member_shared = delegates.as_deref().filter(|d| {
                    if planned.config.mode.strict_target().is_some() {
                        d.beta >= planned.config.beta
                    } else {
                        d.beta == planned.config.beta
                    }
                });
                let r = dr_topk_planned(device, data, member_shared, planned);
                let outcome = StageOutcome {
                    stats: r.stats,
                    time_ms: r.time_ms,
                };
                *ctx.members[m].lock() = Some(r);
                outcome
            },
        );
    }
    let macro_report = graph.execute(&ctx);
    let results: Vec<DrTopKResult<K>> = ctx
        .members
        .into_iter()
        .map(|slot| slot.into_inner().expect("member stage ran"))
        .collect();
    let unit_stages = splice_unit_stages(&macro_report, needs_build, device_idx, &results);
    (results, unit_stages, needs_build, from_cache)
}

/// Direction dispatch around [`run_fused_typed`].
#[allow(clippy::too_many_arguments)]
fn run_fused_unit<K: TopKKey>(
    device: &Device,
    device_idx: usize,
    data: &[K],
    corpus_id: Option<u64>,
    unit_idx: usize,
    unit: &FusedUnit,
    base: &DrTopKConfig,
    cache: &Mutex<PlanCache>,
) -> FusedOutcome<K> {
    let (results, unit_stages, pass_run, from_cache) = match unit.direction {
        Direction::Largest => {
            run_fused_typed::<K>(device, device_idx, data, corpus_id, unit, base, cache)
        }
        Direction::Smallest => {
            let (res, stages, run, cached) = run_fused_typed::<Desc<K>>(
                device,
                device_idx,
                as_desc(data),
                corpus_id,
                unit,
                base,
                cache,
            );
            (
                res.into_iter()
                    .map(DrTopKResult::into_native)
                    .collect::<Vec<_>>(),
                stages,
                run,
                cached,
            )
        }
    };
    FusedOutcome {
        unit: unit_idx,
        results: unit
            .queries
            .iter()
            .zip(&unit.planned)
            .zip(results)
            .map(|((&qi, planned), r)| (qi, planned.predicted_recall, r))
            .collect(),
        unit_stages,
        delegate_pass_run: pass_run,
        delegate_from_cache: from_cache,
    }
}

/// Compose a row unit's stage report: the members' row-block schedules
/// run back-to-back on the worker's device, so each member's stages are
/// shifted onto the unit's serial timeline, re-tagged with the worker, and
/// the per-kind calibration is refit over the composition. Dependencies
/// stay within each member (row-block graphs are self-contained), only
/// re-indexed into the composed stage list.
fn splice_row_stages(members: &[StageReport], device: usize) -> StageReport {
    let mut stages: Vec<ExecutedStage> = Vec::new();
    let mut offset_ms = 0.0f64;
    let mut measured_offset_ms = 0.0f64;
    for member in members {
        let base_idx = stages.len();
        for inner in &member.stages {
            stages.push(ExecutedStage {
                kind: inner.kind,
                label: inner.label.clone(),
                resource: Resource::Compute(device),
                deps: inner.deps.iter().map(|d| d + base_idx).collect(),
                start_ms: inner.start_ms + offset_ms,
                end_ms: inner.end_ms + offset_ms,
                measured_start_ms: inner.measured_start_ms + measured_offset_ms,
                measured_end_ms: inner.measured_end_ms + measured_offset_ms,
                stats: inner.stats,
            });
        }
        offset_ms += member.makespan_ms;
        measured_offset_ms += member.measured_makespan_ms;
    }
    let calibration = CalibrationFit::fit(&stages);
    let report = StageReport {
        stages,
        makespan_ms: offset_ms,
        measured_makespan_ms: measured_offset_ms,
        calibration,
    };
    #[cfg(debug_assertions)]
    {
        let diags = report.verify();
        assert!(
            diags.is_empty(),
            "spliced row unit stage report failed verification:\n{}",
            diags
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    report
}

/// Run one row-matrix unit on its assigned worker device: each member
/// reinterprets the corpus as its own `rows × cols` matrix and runs the
/// row-block stage graph through [`topk_rows_on`] (direction dispatched
/// through the order-reversing [`Desc`] adapter, like vector queries).
fn run_rows_unit<K: TopKKey>(
    device: &Device,
    device_idx: usize,
    data: &[K],
    unit_idx: usize,
    unit: &RowUnit,
    row_queries: &[RowQuery],
    base: &DrTopKConfig,
) -> RowsOutcome<K> {
    let mut member_reports: Vec<StageReport> = Vec::with_capacity(unit.members.len());
    let mut results: Vec<(usize, RowQueryResult<K>)> = Vec::with_capacity(unit.members.len());
    let mut delegate_passes = 0usize;
    for &qi in &unit.members {
        let q = &row_queries[qi];
        let cfg = DrTopKConfig {
            inner: q.inner,
            mode: q.mode,
            ..base.clone()
        };
        let matrix = RowMatrix::new(data, q.rows, q.cols);
        let devices = [device];
        let r: RowTopKResult<K> = match q.direction {
            Direction::Largest => {
                topk_rows_on(&devices, matrix, &q.ks, &cfg, None, Executor::Threaded)
            }
            Direction::Smallest => topk_rows_on(
                &devices,
                matrix.as_desc(),
                &q.ks,
                &cfg,
                None,
                Executor::Threaded,
            )
            .into_native(),
        };
        delegate_passes += r.delegate_passes;
        results.push((
            qi,
            RowQueryResult {
                rows: r.rows,
                time_ms: r.time_ms,
                stats: r.stats,
                breakdown: r.breakdown,
                delegate_passes: r.delegate_passes,
                num_blocks: r.num_blocks,
                predicted_recall: r.predicted_recall,
                unit: unit_idx,
            },
        ));
        member_reports.push(r.stages);
    }
    RowsOutcome {
        unit: unit_idx,
        results,
        unit_stages: splice_row_stages(&member_reports, device_idx),
        delegate_passes,
    }
}

/// Execute a plan over the cluster.
///
/// When `sink` is present, every unit's composed stage schedule is
/// re-emitted as trace spans on the *modeled* batch timeline: fused units
/// at their deterministic list-schedule offsets (re-tagged with the modeled
/// worker's device so trace tracks match the schedule the report
/// describes), sharded runs after the pool phase. Tracing clones the unit
/// reports; with no sink attached nothing extra is allocated.
pub(crate) fn execute_plan<K: TopKKey>(
    cluster: &GpuCluster,
    batch: &QueryBatch<'_, K>,
    plan: &ExecutionPlan,
    base: &DrTopKConfig,
    cache: &Mutex<PlanCache>,
    sink: Option<&dyn TraceSink>,
) -> Result<ExecOutput<K>, EngineError> {
    let pool_indices: Vec<usize> = plan
        .units
        .iter()
        .enumerate()
        .filter_map(|(i, u)| matches!(u, PlanUnit::Fused(_) | PlanUnit::Rows(_)).then_some(i))
        .collect();

    // Worker pool: one worker per device, pulling fused and row-matrix
    // units from a shared queue (dynamic load balance in host wall-clock).
    // The *modeled* makespan is computed afterwards by deterministic list
    // scheduling, so reports do not vary with host-thread timing.
    let next_unit = AtomicUsize::new(0);
    let per_device = cluster
        .try_run_on_all(|device_idx, device| {
            let mut outcomes: Vec<PoolOutcome<K>> = Vec::new();
            loop {
                let slot = next_unit.fetch_add(1, Ordering::Relaxed);
                let Some(&unit_idx) = pool_indices.get(slot) else {
                    break;
                };
                // Heterogeneous clusters (or an overridden shard
                // threshold) can hand a worker a corpus its device cannot
                // hold; that is a per-device error, not a batch panic.
                // `capacity_elems` is in u32 units, the corpus in keys.
                let check_capacity = |corpus_idx: usize, len: usize| {
                    let device_keys = capacity_in_keys::<K>(device.capacity_elems());
                    if len > device_keys {
                        Err(format!(
                            "corpus {corpus_idx} ({len} keys) exceeds this device's capacity of {device_keys} keys"
                        ))
                    } else {
                        Ok(())
                    }
                };
                match &plan.units[unit_idx] {
                    PlanUnit::Fused(unit) => {
                        let corpus = &batch.corpora()[unit.corpus];
                        check_capacity(unit.corpus, corpus.data.len())?;
                        outcomes.push(PoolOutcome::Fused(run_fused_unit(
                            device,
                            device_idx,
                            corpus.data,
                            corpus.id,
                            unit_idx,
                            unit,
                            base,
                            cache,
                        )));
                    }
                    PlanUnit::Rows(unit) => {
                        let corpus = &batch.corpora()[unit.corpus];
                        check_capacity(unit.corpus, corpus.data.len())?;
                        outcomes.push(PoolOutcome::Rows(run_rows_unit(
                            device,
                            device_idx,
                            corpus.data,
                            unit_idx,
                            unit,
                            batch.row_queries(),
                            base,
                        )));
                    }
                    PlanUnit::Sharded(_) => {
                        unreachable!("pool_indices only holds pool units")
                    }
                }
            }
            Ok(outcomes)
        })
        .map_err(|e| EngineError::Device {
            device: e.device,
            message: e.error,
        })?;

    let num_queries = batch.len();
    let mut results: Vec<Option<QueryResult<K>>> = (0..num_queries).map(|_| None).collect();
    let mut row_results: Vec<Option<RowQueryResult<K>>> =
        (0..batch.row_queries().len()).map(|_| None).collect();
    let mut phase_ms = PhaseBreakdown::default();
    let mut stats = KernelStats::default();
    let mut delegate_passes_run = 0usize;
    let mut delegate_passes_saved = 0usize;
    let mut delegate_cache = CacheReport::default();
    let mut residuals = ResidualAccum::default();
    // Modeled cost of each fused unit, in unit order, for the deterministic
    // makespan computation below; the stage schedule rides along (cloned)
    // only when a trace sink wants spans.
    let mut unit_costs: Vec<(usize, f64, Option<StageReport>)> = Vec::new();

    for outcomes in per_device {
        for pool_outcome in outcomes {
            let outcome = match pool_outcome {
                PoolOutcome::Fused(outcome) => outcome,
                PoolOutcome::Rows(outcome) => {
                    // One instrumentation point for row units too: phases,
                    // counters and the unit's modeled cost come off the
                    // composed member schedules.
                    let unit_phases = outcome.unit_stages.phase_breakdown();
                    phase_ms.delegate_ms += unit_phases.delegate_ms;
                    phase_ms.first_topk_ms += unit_phases.first_topk_ms;
                    phase_ms.concat_ms += unit_phases.concat_ms;
                    phase_ms.second_topk_ms += unit_phases.second_topk_ms;
                    phase_ms.transfer_ms += unit_phases.transfer_ms;
                    stats += outcome.unit_stages.stats();
                    residuals.absorb(&outcome.unit_stages.calibration);
                    delegate_passes_run += outcome.delegate_passes;
                    unit_costs.push((
                        outcome.unit,
                        outcome.unit_stages.makespan_ms,
                        sink.map(|_| outcome.unit_stages.clone()),
                    ));
                    for (query_idx, result) in outcome.results {
                        row_results[query_idx] = Some(result);
                    }
                    continue;
                }
            };
            let PlanUnit::Fused(unit) = &plan.units[outcome.unit] else {
                unreachable!()
            };
            // One instrumentation point: the unit's composed stage
            // schedule carries the shared pass, every member phase (and
            // any member-level pass rebuild), so phases, counters and the
            // unit's modeled cost are all read off it.
            let unit_phases = outcome.unit_stages.phase_breakdown();
            phase_ms.delegate_ms += unit_phases.delegate_ms;
            phase_ms.first_topk_ms += unit_phases.first_topk_ms;
            phase_ms.concat_ms += unit_phases.concat_ms;
            phase_ms.second_topk_ms += unit_phases.second_topk_ms;
            phase_ms.transfer_ms += unit_phases.transfer_ms;
            stats += outcome.unit_stages.stats();
            residuals.absorb(&outcome.unit_stages.calibration);
            unit_costs.push((
                outcome.unit,
                outcome.unit_stages.makespan_ms,
                sink.map(|_| outcome.unit_stages.clone()),
            ));

            let delegate_users = unit.planned.iter().filter(|p| p.use_delegates).count();
            let cacheable = batch.corpora()[unit.corpus].id.is_some();
            if outcome.delegate_pass_run {
                delegate_passes_run += 1;
                delegate_passes_saved += delegate_users.saturating_sub(1);
                if cacheable {
                    delegate_cache.misses += 1;
                }
            } else if outcome.delegate_from_cache {
                delegate_passes_saved += delegate_users;
                delegate_cache.hits += 1;
            }
            for (query_idx, predicted_recall, r) in outcome.results {
                results[query_idx] = Some(QueryResult {
                    values: r.values,
                    kth_value: r.kth_value,
                    time_ms: r.time_ms,
                    stats: r.stats,
                    breakdown: r.breakdown,
                    predicted_recall,
                    path: ExecPath::Fused { unit: outcome.unit },
                });
            }
        }
    }

    // Deterministic modeled makespan of the pool phase: list-schedule the
    // fused units in plan order onto the workers, each unit going to the
    // earliest-available (least-loaded) worker — exactly what the shared
    // queue does in modeled time, but independent of host-thread timing.
    unit_costs.sort_unstable_by_key(|&(unit, _, _)| unit);
    let mut worker_loads = vec![0.0f64; cluster.num_devices()];
    let mut worker_units = vec![0usize; cluster.num_devices()];
    for (_, cost, traced) in &unit_costs {
        let earliest = worker_loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .map(|(i, _)| i)
            .expect("cluster has devices");
        if let (Some(sink), Some(report)) = (sink, traced) {
            // Replay the unit's stages on the modeled timeline: shifted to
            // this worker's start offset and re-tagged with the *modeled*
            // worker (the wall-clock queue may have used a different one).
            let mut replay = report.clone();
            for s in &mut replay.stages {
                s.resource = Resource::Compute(earliest);
            }
            replay.record_shifted(sink, worker_loads[earliest]);
        }
        worker_loads[earliest] += cost;
        worker_units[earliest] += 1;
    }
    let pool_ms = worker_loads.iter().fold(0.0f64, |a, &b| a.max(b));

    // Sharded queries: each takes the whole cluster, so they run after the
    // pool phase, serially, through the distributed stage graph
    // (double-buffered chunked ingestion). Sharded execution cannot yet
    // share a delegate pass between *different* queries (the distributed
    // pipeline has no planned-query seam — see the crate docs), but
    // *identical* queries are answered once and the result is reused;
    // engine-level time and counters charge each distinct selection exactly
    // once. Approximate sharded queries run the approximate pipeline on
    // every sub-vector, so the recall target is met per shard (and
    // therefore overall).
    type ShardKey = (
        usize,
        Direction,
        usize,
        drtopk_core::InnerAlgorithm,
        drtopk_core::Mode,
        drtopk_core::PathHint,
    );
    struct ShardAnswer<K: TopKKey> {
        values: Vec<K>,
        kth_value: K,
        total_ms: f64,
        stats: KernelStats,
        predicted_recall: f64,
        breakdown: PhaseBreakdown,
    }
    let mut answered: std::collections::HashMap<ShardKey, ShardAnswer<K>> =
        std::collections::HashMap::new();
    let mut sharded_ms = 0.0f64;
    let mut sharded_serial_ms = 0.0f64;
    for unit in &plan.units {
        let PlanUnit::Sharded(sharded) = unit else {
            continue;
        };
        let q = batch.queries()[sharded.query];
        let key: ShardKey = (q.corpus, q.direction, q.k, q.inner, q.mode, q.path);
        if let std::collections::hash_map::Entry::Vacant(slot) = answered.entry(key) {
            let corpus = &batch.corpora()[q.corpus];
            // The path hint rides into the distributed run: each device's
            // local pipeline resolves `Auto` against its own profile and
            // shard size, so a heterogeneous cluster may mix paths.
            let cfg = DrTopKConfig {
                inner: q.inner,
                mode: q.mode,
                path: q.path,
                ..base.clone()
            };
            let d = match q.direction {
                Direction::Largest => distributed_dr_topk(cluster, corpus.data, q.k, &cfg),
                Direction::Smallest => {
                    distributed_dr_topk(cluster, as_desc(corpus.data), q.k, &cfg).into_native()
                }
            };
            if let Some(sink) = sink {
                // Sharded runs own the whole cluster after the pool phase;
                // their spans keep the distributed resource tracks
                // (compute / copy lanes / interconnect per device).
                d.stages.record_shifted(sink, pool_ms + sharded_ms);
            }
            residuals.absorb(&d.stages.calibration);
            sharded_ms += d.total_ms;
            sharded_serial_ms += d.stages.serial_ms();
            stats += d.stats;
            // Sharded phases report compute and data movement separately
            // (the distributed breakdown keeps reload/gather time under
            // `transfer_ms` instead of folding it into compute).
            phase_ms.delegate_ms += d.breakdown.delegate_ms;
            phase_ms.first_topk_ms += d.breakdown.first_topk_ms;
            phase_ms.concat_ms += d.breakdown.concat_ms;
            phase_ms.second_topk_ms += d.breakdown.second_topk_ms;
            phase_ms.transfer_ms += d.breakdown.transfer_ms;
            slot.insert(ShardAnswer {
                values: d.values,
                kth_value: d.kth_value,
                total_ms: d.total_ms,
                stats: d.stats,
                predicted_recall: d.predicted_recall,
                breakdown: d.breakdown,
            });
        }
        let answer = answered.get(&key).expect("answered above");
        results[sharded.query] = Some(QueryResult {
            values: answer.values.clone(),
            kth_value: answer.kth_value,
            time_ms: answer.total_ms,
            stats: answer.stats,
            breakdown: answer.breakdown,
            predicted_recall: answer.predicted_recall,
            path: ExecPath::Sharded {
                devices: cluster.num_devices(),
            },
        });
    }

    Ok(ExecOutput {
        results: results
            .into_iter()
            .map(|r| r.expect("every query is covered by exactly one plan unit"))
            .collect(),
        row_results: row_results
            .into_iter()
            .map(|r| r.expect("every row query is covered by exactly one row unit"))
            .collect(),
        phase_ms,
        stats,
        delegate_passes_run,
        delegate_passes_saved,
        delegate_cache,
        pool_ms,
        sharded_ms,
        sharded_serial_ms,
        worker_loads,
        worker_units,
        kind_residual_ms: residuals.weighted_means(),
    })
}
