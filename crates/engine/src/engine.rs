//! The engine facade: configuration, the cluster, and the cache behind a
//! `Mutex`, with `run_batch` tying planner → scheduler → report together.

use std::sync::Arc;

use drtopk_core::{DrTopKConfig, StageKind};
use drtopk_obs::{EventKind, ExecEvent, MetricName, MetricsRegistry, MetricsSnapshot, TraceSink};
use gpu_sim::{DeviceSpec, GpuCluster};
use parking_lot::Mutex;
use topk_baselines::TopKKey;

use crate::exec::execute_plan;
use crate::plan::{plan_batch, PlanCache};
use crate::query::QueryBatch;
use crate::report::{BatchOutput, CacheReport, EngineReport};

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The Dr. Top-k configuration template every query starts from. Its
    /// `alpha` is ignored (the planner resolves α per fused group through
    /// the tuning-plan cache) unless explicitly set, in which case that α
    /// is pinned for all traffic.
    pub base: DrTopKConfig,
    /// Maximum number of delegate vectors the cache retains (FIFO
    /// eviction). `0` disables delegate caching.
    pub delegate_cache_capacity: usize,
    /// Corpora holding more than this many **keys** are routed through the
    /// sharded whole-cluster path. `None` uses the smallest device capacity
    /// of the cluster, converted from its native `u32`-element unit to keys
    /// of the batch's type (8-byte keys fit half as many per device).
    pub shard_capacity: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            base: DrTopKConfig::default(),
            delegate_cache_capacity: 32,
            shard_capacity: None,
        }
    }
}

/// A batch-related failure surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// One device's worker failed; the rest of the pool completed.
    Device {
        /// Index of the failing device in the cluster.
        device: usize,
        /// What went wrong on it.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Device { device, message } => {
                write!(f, "engine worker on device {device} failed: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The multi-query top-k serving engine: a [`GpuCluster`] worker pool plus
/// the memoized planning state.
///
/// The engine is `Sync`: batches may be submitted from multiple host
/// threads; the plan/delegate caches are shared behind a mutex and only
/// locked around lookups/inserts, never across kernel execution.
pub struct TopKEngine {
    cluster: GpuCluster,
    config: EngineConfig,
    cache: Mutex<PlanCache>,
    metrics: MetricsRegistry,
    recorder: Mutex<Option<Arc<dyn TraceSink>>>,
}

impl TopKEngine {
    /// An engine over `cluster` with the default configuration.
    pub fn new(cluster: GpuCluster) -> Self {
        TopKEngine::with_config(cluster, EngineConfig::default())
    }

    /// An engine over `cluster` with an explicit configuration.
    pub fn with_config(cluster: GpuCluster, config: EngineConfig) -> Self {
        let cache = Mutex::new(PlanCache::with_delegate_capacity(
            config.delegate_cache_capacity,
        ));
        let kinds: Vec<&'static str> = StageKind::ALL.iter().map(|k| k.name()).collect();
        let metrics = MetricsRegistry::new(cluster.num_devices(), &kinds);
        TopKEngine {
            cluster,
            config,
            cache,
            metrics,
            recorder: Mutex::new(None),
        }
    }

    /// Convenience: a single-device engine.
    pub fn single_device(spec: DeviceSpec) -> Self {
        TopKEngine::new(GpuCluster::homogeneous(1, spec))
    }

    /// The device cluster backing the worker pool.
    pub fn cluster(&self) -> &GpuCluster {
        &self.cluster
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cumulative tuning-plan cache counters since engine creation.
    pub fn plan_cache_report(&self) -> CacheReport {
        self.cache.lock().plan_report()
    }

    /// Cumulative delegate cache counters since engine creation.
    pub fn delegate_cache_report(&self) -> CacheReport {
        self.cache.lock().delegate_report()
    }

    /// The engine's cumulative metrics registry (caches, latency
    /// percentiles, worker occupancy, calibration drift). Always live —
    /// updates are lock-free atomics and cost a few nanoseconds per batch.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A point-in-time snapshot of [`TopKEngine::metrics`] with percentile
    /// summaries and sustained QPS computed.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Attach a trace sink: every subsequent batch re-emits its composed
    /// stage schedules as spans on the modeled batch timeline, plus
    /// executor events (cache hits and misses). Replaces any previously
    /// attached sink. With no sink attached, tracing costs nothing.
    pub fn attach_recorder(&self, sink: Arc<dyn TraceSink>) {
        *self.recorder.lock() = Some(sink);
    }

    /// Detach the trace sink attached by [`TopKEngine::attach_recorder`],
    /// returning it (so callers can export what it captured).
    pub fn detach_recorder(&self) -> Option<Arc<dyn TraceSink>> {
        self.recorder.lock().take()
    }

    /// Plan and execute one batch, returning per-query results (in query
    /// order) plus the engine-level report.
    ///
    /// ```
    /// use drtopk_engine::{QueryBatch, TopKEngine};
    /// use gpu_sim::{DeviceSpec, GpuCluster};
    ///
    /// let engine = TopKEngine::new(GpuCluster::homogeneous(2, DeviceSpec::v100s()));
    /// let corpus: Vec<u32> = (0..80_000u32).map(|x| x.wrapping_mul(2654435761)).collect();
    ///
    /// let mut batch = QueryBatch::new();
    /// let c = batch.add_corpus(1, &corpus);
    /// batch.push_topk(c, 8);                  // exact top-8
    /// batch.push_topk_approx(c, 512, 0.95);   // recall-targeted top-512
    ///
    /// let out = engine.run_batch(&batch).unwrap();
    /// assert_eq!(out.results[0].values, topk_baselines::reference_topk(&corpus, 8));
    /// assert_eq!(out.results[0].predicted_recall, 1.0);
    /// assert_eq!(out.results[1].values.len(), 512);
    /// assert!(out.results[1].predicted_recall >= 0.95);
    /// assert_eq!(out.report.approx_queries, 1);
    /// ```
    pub fn run_batch<K: TopKKey>(
        &self,
        batch: &QueryBatch<'_, K>,
    ) -> Result<BatchOutput<K>, EngineError> {
        if batch.is_empty() {
            return Ok(BatchOutput {
                results: Vec::new(),
                row_results: Vec::new(),
                report: EngineReport::default(),
            });
        }
        let shard_capacity = self.config.shard_capacity.unwrap_or_else(|| {
            drtopk_core::capacity_in_keys::<K>(
                self.cluster
                    .devices()
                    .iter()
                    .map(|d| d.capacity_elems())
                    .min()
                    .expect("cluster has devices"),
            )
        });
        // Fused units run on pool workers; the path crossover and the
        // tuning memo both key off the pool device profile (homogeneous
        // pools — device 0 stands for all of them).
        let device_spec = self.cluster.device(0).spec().clone();

        let plan = plan_batch(
            batch,
            &self.config.base,
            shard_capacity,
            &device_spec,
            &mut self.cache.lock(),
        );

        // Hold the sink Arc across execution so a concurrent detach cannot
        // drop it mid-batch; the mutex itself is only held for the clone.
        let recorder: Option<Arc<dyn TraceSink>> = self.recorder.lock().clone();
        let sink: Option<&dyn TraceSink> = recorder.as_deref();
        let emit_cache_events = |label: &str, hits: u64, misses: u64| {
            let Some(sink) = sink.filter(|s| s.wants_events()) else {
                return;
            };
            for _ in 0..hits {
                sink.event(ExecEvent {
                    kind: EventKind::CacheHit,
                    label: label.to_string(),
                    at_ms: 0.0,
                });
            }
            for _ in 0..misses {
                sink.event(ExecEvent {
                    kind: EventKind::CacheMiss,
                    label: label.to_string(),
                    at_ms: 0.0,
                });
            }
        };
        emit_cache_events("plan", plan.plan_hits, plan.plan_misses);

        let exec = execute_plan(
            &self.cluster,
            batch,
            &plan,
            &self.config.base,
            &self.cache,
            sink,
        )?;
        emit_cache_events(
            "delegate",
            exec.delegate_cache.hits,
            exec.delegate_cache.misses,
        );

        let num_queries = batch.len();
        let num_units = plan.units.len();
        let row_queries = batch.row_queries().len();
        let (delegate_path_units, radix_path_units) =
            plan.units
                .iter()
                .fold((0usize, 0usize), |(d, r), u| match u {
                    crate::plan::PlanUnit::Fused(f) => match f.path {
                        drtopk_core::ChosenPath::Delegate => (d + 1, r),
                        drtopk_core::ChosenPath::Radix => (d, r + 1),
                    },
                    _ => (d, r),
                });
        // Rows count as queries: the metric catalog stays its closed
        // 16-variant self, row throughput rides the existing counters.
        let rows_served: usize = exec.row_results.iter().map(|r| r.rows.len()).sum();
        let total_selections = num_queries + rows_served;
        let total_ms = exec.pool_ms + exec.sharded_ms;

        // Fold the batch into the cumulative registry (lock-free atomics).
        let m = &self.metrics;
        m.counter(MetricName::QueriesServed)
            .add(total_selections as u64);
        m.counter(MetricName::BatchesServed).inc();
        m.counter(MetricName::ShardedQueries)
            .add(plan.sharded_queries() as u64);
        m.counter(MetricName::PlanCacheHits).add(plan.plan_hits);
        m.counter(MetricName::PlanCacheMisses).add(plan.plan_misses);
        m.counter(MetricName::DelegateCacheHits)
            .add(exec.delegate_cache.hits);
        m.counter(MetricName::DelegateCacheMisses)
            .add(exec.delegate_cache.misses);
        m.counter(MetricName::DelegatePassesRun)
            .add(exec.delegate_passes_run as u64);
        m.counter(MetricName::DelegatePassesSaved)
            .add(exec.delegate_passes_saved as u64);
        m.add_engine_busy_ms(total_ms);
        m.histogram(MetricName::BatchMakespanMs).record(total_ms);
        for r in &exec.results {
            m.histogram(MetricName::QueryLatencyMs).record(r.time_ms);
        }
        for r in &exec.row_results {
            m.histogram(MetricName::QueryLatencyMs).record(r.time_ms);
        }
        for (slot, &busy) in exec.worker_loads.iter().enumerate() {
            m.add_worker_busy_ms(slot, busy);
            m.set_worker_occupancy(
                slot,
                if exec.pool_ms > 0.0 {
                    busy / exec.pool_ms
                } else {
                    0.0
                },
            );
            m.set_worker_queue_depth(slot, exec.worker_units[slot] as f64);
        }
        for &(kind, residual) in &exec.kind_residual_ms {
            m.set_stage_residual_ms(kind.name(), residual);
        }

        let report = EngineReport {
            num_queries,
            num_units,
            fused_units: plan.fused_units(),
            sharded_queries: plan.sharded_queries(),
            row_queries,
            rows_served,
            approx_queries: batch
                .queries()
                .iter()
                .filter(|q| q.mode.strict_target().is_some())
                .count()
                + batch
                    .row_queries()
                    .iter()
                    .filter(|q| q.mode.strict_target().is_some())
                    .count(),
            delegate_path_units,
            radix_path_units,
            batch_occupancy: if num_units == 0 {
                0.0
            } else {
                (num_queries + row_queries) as f64 / num_units as f64
            },
            plan_cache: CacheReport {
                hits: plan.plan_hits,
                misses: plan.plan_misses,
            },
            delegate_cache: exec.delegate_cache,
            delegate_passes_run: exec.delegate_passes_run,
            delegate_passes_saved: exec.delegate_passes_saved,
            phase_ms: exec.phase_ms,
            sharded_ms: exec.sharded_ms,
            overlap_efficiency: if exec.sharded_serial_ms > 0.0 {
                (1.0 - exec.sharded_ms / exec.sharded_serial_ms).max(0.0)
            } else {
                0.0
            },
            total_ms,
            throughput_qps: if total_ms > 0.0 {
                total_selections as f64 / (total_ms / 1e3)
            } else {
                0.0
            },
            stats: exec.stats,
            metrics: self.metrics.snapshot(),
        };
        Ok(BatchOutput {
            results: exec.results,
            row_results: exec.row_results,
            report,
        })
    }
}

impl std::fmt::Debug for TopKEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKEngine")
            .field("cluster", &self.cluster)
            .field(
                "delegate_cache_capacity",
                &self.config.delegate_cache_capacity,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ExecPath;
    use topk_baselines::{reference_topk, reference_topk_min};

    fn engine(devices: usize) -> TopKEngine {
        TopKEngine::new(GpuCluster::homogeneous(devices, DeviceSpec::v100s()))
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let eng = engine(2);
        let out = eng.run_batch(&QueryBatch::<u32>::new()).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.report.num_queries, 0);
        assert_eq!(out.report.total_ms, 0.0);
        assert_eq!(out.report.throughput_qps, 0.0);
    }

    #[test]
    fn shared_corpus_batch_fuses_and_matches_reference() {
        let eng = engine(2);
        let data = topk_datagen::uniform(1 << 15, 11);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(42, &data);
        let ks = [5usize, 100, 1000, 100]; // duplicate query on purpose
        for &k in &ks {
            batch.push_topk(c, k);
        }
        batch.push_topk_min(c, 17);
        let out = eng.run_batch(&batch).unwrap();
        for (i, &k) in ks.iter().enumerate() {
            assert_eq!(out.results[i].values, reference_topk(&data, k), "query {i}");
            assert_eq!(
                out.results[i].kth_value,
                *out.results[i].values.last().unwrap()
            );
            assert!(matches!(out.results[i].path, ExecPath::Fused { .. }));
        }
        assert_eq!(out.results[4].values, reference_topk_min(&data, 17));
        // 4 largest fuse into one unit, the smallest query is its own unit
        assert_eq!(out.report.num_units, 2);
        assert_eq!(out.report.fused_units, 2);
        assert!((out.report.batch_occupancy - 2.5).abs() < 1e-12);
        // one delegate pass per unit; 3 of the 4+1 delegate-using queries
        // were served without their own pass
        assert_eq!(out.report.delegate_passes_run, 2);
        assert!(out.report.delegate_passes_saved >= 3);
        assert!(out.report.total_ms > 0.0);
        assert!(out.report.throughput_qps > 0.0);
        assert!(out.report.stats.global_load_transactions > 0);
        assert!(out.report.phase_ms.delegate_ms > 0.0);
        assert!(out.report.phase_ms.second_topk_ms > 0.0);
    }

    #[test]
    fn repeat_traffic_hits_both_caches() {
        let eng = engine(1);
        let data = topk_datagen::uniform(1 << 14, 5);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(7, &data);
        batch.push_topk(c, 64);
        let cold = eng.run_batch(&batch).unwrap();
        assert_eq!(cold.report.plan_cache.hits, 0);
        assert_eq!(cold.report.delegate_cache.hits, 0);
        assert_eq!(cold.report.delegate_passes_run, 1);
        let warm = eng.run_batch(&batch).unwrap();
        assert_eq!(warm.report.plan_cache.hits, 1);
        assert_eq!(warm.report.plan_cache.misses, 0);
        assert_eq!(warm.report.delegate_cache.hits, 1);
        assert_eq!(warm.report.delegate_passes_run, 0);
        assert_eq!(warm.report.delegate_passes_saved, 1);
        assert_eq!(warm.results[0].values, cold.results[0].values);
        // the warm run never re-read the corpus at full length
        assert!(
            warm.report.stats.global_loaded_bytes < cold.report.stats.global_loaded_bytes,
            "warm {} vs cold {}",
            warm.report.stats.global_loaded_bytes,
            cold.report.stats.global_loaded_bytes
        );
        // cumulative reports agree
        assert_eq!(eng.plan_cache_report().hits, 1);
        assert_eq!(eng.delegate_cache_report().hits, 1);
    }

    #[test]
    fn uncached_corpora_rebuild_every_time() {
        let eng = engine(1);
        let data = topk_datagen::uniform(1 << 13, 9);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus_uncached(&data);
        batch.push_topk(c, 32);
        let a = eng.run_batch(&batch).unwrap();
        let b = eng.run_batch(&batch).unwrap();
        assert_eq!(a.report.delegate_passes_run, 1);
        assert_eq!(b.report.delegate_passes_run, 1);
        assert_eq!(b.report.delegate_cache.hits, 0);
        // the tuning plan is shape-keyed, so it still hits
        assert_eq!(b.report.plan_cache.hits, 1);
    }

    #[test]
    fn over_capacity_corpus_takes_the_sharded_path() {
        let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
        for d in cluster.devices() {
            d.set_capacity_elems(1 << 12);
        }
        let eng = TopKEngine::new(cluster);
        let data = topk_datagen::uniform(1 << 14, 13);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push_topk(c, 50);
        batch.push_topk_min(c, 20);
        let out = eng.run_batch(&batch).unwrap();
        assert_eq!(out.report.sharded_queries, 2);
        assert_eq!(out.report.fused_units, 0);
        assert!(out.report.sharded_ms > 0.0);
        assert_eq!(out.results[0].values, reference_topk(&data, 50));
        assert_eq!(out.results[1].values, reference_topk_min(&data, 20));
        assert!(matches!(
            out.results[0].path,
            ExecPath::Sharded { devices: 2 }
        ));
    }

    #[test]
    fn eight_byte_keys_shard_at_half_the_element_count() {
        // capacity_elems is u32-denominated: a u64 corpus of exactly that
        // element count occupies twice the memory and must shard, while the
        // same-length u32 corpus fuses.
        let make = || {
            let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
            for d in cluster.devices() {
                d.set_capacity_elems(1 << 13);
            }
            TopKEngine::new(cluster)
        };
        let narrow = topk_datagen::uniform(1 << 13, 7);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &narrow);
        batch.push_topk(c, 32);
        let out = make().run_batch(&batch).unwrap();
        assert_eq!(out.report.sharded_queries, 0, "u32 corpus fits resident");

        let wide: Vec<u64> = narrow.iter().map(|&x| (x as u64) << 4).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(2, &wide);
        batch.push_topk(c, 32);
        let out = make().run_batch(&batch).unwrap();
        assert_eq!(
            out.report.sharded_queries, 1,
            "u64 corpus at u32 capacity must shard"
        );
        assert_eq!(out.results[0].values, reference_topk(&wide, 32));
    }

    #[test]
    fn duplicate_sharded_queries_are_answered_once() {
        let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
        for d in cluster.devices() {
            d.set_capacity_elems(1 << 11);
        }
        let eng = TopKEngine::new(cluster);
        let data = topk_datagen::uniform(1 << 13, 21);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push_topk(c, 40);
        batch.push_topk(c, 40); // identical → deduplicated
        batch.push_topk(c, 41); // distinct → its own run
        let out = eng.run_batch(&batch).unwrap();
        assert_eq!(out.results[0].values, out.results[1].values);
        assert_eq!(out.results[2].values, reference_topk(&data, 41));
        // engine totals charge the duplicate nothing: the batch's sharded
        // time equals two distinct runs, not three query attributions
        let attributed: f64 = out.results.iter().map(|r| r.time_ms).sum();
        assert!(out.report.sharded_ms < attributed);
        assert_eq!(
            out.report.sharded_ms,
            out.results[0].time_ms + out.results[2].time_ms
        );
    }

    #[test]
    fn worker_capacity_violation_surfaces_the_device_id() {
        // Overriding the shard threshold above the device capacity forces a
        // fused unit onto a device that cannot hold the corpus: the worker
        // reports the failure instead of poisoning the batch.
        let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
        for d in cluster.devices() {
            d.set_capacity_elems(1 << 10);
        }
        let eng = TopKEngine::with_config(
            cluster,
            EngineConfig {
                shard_capacity: Some(usize::MAX),
                ..EngineConfig::default()
            },
        );
        let data = topk_datagen::uniform(1 << 13, 3);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push_topk(c, 16);
        let err = eng.run_batch(&batch).expect_err("capacity violation");
        let EngineError::Device { device, message } = err;
        assert!(device < 2);
        assert!(message.contains("exceeds"), "got: {message}");
    }

    #[test]
    fn metrics_accumulate_across_batches_and_report_percentiles() {
        let eng = engine(2);
        let data = topk_datagen::uniform(1 << 14, 31);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(3, &data);
        batch.push_topk(c, 16);
        batch.push_topk(c, 64);
        let out1 = eng.run_batch(&batch).unwrap();
        let out2 = eng.run_batch(&batch).unwrap();

        use drtopk_obs::MetricName as M;
        // the report snapshot is cumulative: batch 2 sees both batches
        assert_eq!(out1.report.metrics.counter(M::QueriesServed), 2);
        assert_eq!(out2.report.metrics.counter(M::QueriesServed), 4);
        assert_eq!(out2.report.metrics.counter(M::BatchesServed), 2);
        assert_eq!(out2.report.metrics.counter(M::PlanCacheHits), 1);
        assert_eq!(out2.report.metrics.counter(M::DelegateCacheHits), 1);

        let snap = eng.metrics_snapshot();
        assert_eq!(snap, out2.report.metrics);
        assert_eq!(snap.query_latency_ms.count, 4);
        assert!(snap.query_latency_ms.p50_ms > 0.0);
        assert!(snap.query_latency_ms.p99_ms >= snap.query_latency_ms.p50_ms);
        assert!(snap.sustained_qps > 0.0);
        // one worker ran the single fused unit, the other stayed idle —
        // the ROADMAP item-5 blind spot is now visible per slot
        assert_eq!(snap.workers.len(), 2);
        let busy: Vec<f64> = snap.workers.iter().map(|w| w.busy_ms).collect();
        assert!(busy.iter().any(|&b| b > 0.0));
        assert!(busy.contains(&0.0));
        let occupied = snap.workers.iter().find(|w| w.busy_ms > 0.0).unwrap();
        assert!((occupied.occupancy - 1.0).abs() < 1e-12);
        // spot-check the JSON export round-trips under the shared schema
        let json = snap.to_json().to_pretty_string();
        let parsed = drtopk_obs::Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(drtopk_obs::SCHEMA_VERSION)
        );
    }

    #[test]
    fn attached_recorder_captures_batch_spans_and_cache_events() {
        use drtopk_obs::{validate_chrome_trace, EventKind, TraceRecorder};
        let eng = engine(2);
        let data = topk_datagen::uniform(1 << 14, 17);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(9, &data);
        batch.push_topk(c, 32);
        eng.run_batch(&batch).unwrap(); // untraced warm-up

        let rec = std::sync::Arc::new(TraceRecorder::new());
        eng.attach_recorder(rec.clone());
        let out = eng.run_batch(&batch).unwrap();
        assert!(eng.detach_recorder().is_some());

        let spans = rec.spans();
        assert!(!spans.is_empty(), "traced batch produced no spans");
        // warm batch: plan + delegate caches both hit
        let hits = rec
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::CacheHit)
            .count();
        assert!(hits >= 2, "expected plan + delegate cache hits, got {hits}");
        // modeled span timeline ends exactly at the batch makespan
        let end = spans.iter().map(|s| s.end_ms).fold(0.0f64, f64::max);
        assert!((end - out.report.total_ms).abs() < 1e-9);
        // and the exported trace is well-formed Chrome JSON
        validate_chrome_trace(&rec.chrome_trace_json()).unwrap();

        // detached: the next batch is silent
        eng.run_batch(&batch).unwrap();
        assert_eq!(rec.spans().len(), spans.len());
    }

    #[test]
    fn row_queries_run_alongside_vector_queries() {
        use drtopk_core::RowK;
        let eng = engine(2);
        let rows = 8;
        let cols = 1 << 11;
        let data = topk_datagen::uniform(rows * cols, 41);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(5, &data);
        batch.push_topk(c, 32); // whole-corpus vector query coexists
        let rq = batch.push_rows(c, rows, cols, RowK::Uniform(6));
        let rq_min = batch.push_rows_min(c, rows, cols, RowK::Uniform(3));
        let out = eng.run_batch(&batch).unwrap();

        assert_eq!(out.results[0].values, reference_topk(&data, 32));
        assert_eq!(out.row_results.len(), 2);
        let largest = &out.row_results[rq];
        let smallest = &out.row_results[rq_min];
        assert_eq!(largest.rows.len(), rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            assert_eq!(largest.rows[r].values, reference_topk(row, 6), "row {r}");
            assert_eq!(
                smallest.rows[r].values,
                reference_topk_min(row, 3),
                "row {r} min"
            );
        }
        // one fused pass per row-block, not one per row
        assert!(largest.delegate_passes <= largest.num_blocks);
        assert!(largest.delegate_passes < rows);
        assert_eq!(largest.predicted_recall, 1.0);

        // report: rows count as queries without widening the metric set
        assert_eq!(out.report.num_queries, 1);
        assert_eq!(out.report.row_queries, 2);
        assert_eq!(out.report.rows_served, 2 * rows);
        assert_eq!(out.report.fused_units, 1);
        // largest and smallest row directions are separate units
        assert_eq!(out.report.num_units, 3);
        use drtopk_obs::MetricName as M;
        assert_eq!(
            out.report.metrics.counter(M::QueriesServed),
            (1 + 2 * rows) as u64
        );
        assert_eq!(out.report.metrics.query_latency_ms.count, 3);
        assert!(out.report.delegate_passes_run > largest.delegate_passes);
        assert!(out.report.throughput_qps > 0.0);
        assert!(out.report.total_ms > 0.0);
    }

    #[test]
    fn row_query_spans_appear_in_traces() {
        use drtopk_core::RowK;
        use drtopk_obs::TraceRecorder;
        let eng = engine(2);
        let rows = 4;
        let cols = 1 << 10;
        let data = topk_datagen::uniform(rows * cols, 43);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(6, &data);
        batch.push_rows(c, rows, cols, RowK::Uniform(4));
        let rec = std::sync::Arc::new(TraceRecorder::new());
        eng.attach_recorder(rec.clone());
        let out = eng.run_batch(&batch).unwrap();
        eng.detach_recorder();
        let spans = rec.spans();
        assert!(
            spans
                .iter()
                .any(|s| s.label.contains("rows ") && s.label.contains("fused pass")),
            "row-span labels must appear in traces"
        );
        let end = spans.iter().map(|s| s.end_ms).fold(0.0f64, f64::max);
        assert!((end - out.report.total_ms).abs() < 1e-9);
    }

    #[test]
    fn path_hints_route_and_count_per_path_units() {
        use drtopk_core::PathHint;
        let eng = engine(2);
        let data = topk_datagen::uniform(1 << 15, 77);
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(11, &data);
        // Pinned hints force each pipeline; both must agree bit-for-bit
        // with the reference (and therefore with each other).
        let q_delegate = batch.push_topk_path(c, 96, PathHint::Delegate);
        let q_radix = batch.push_topk_path(c, 96, PathHint::Radix);
        // A small-k Auto query resolves to the delegate path and fuses
        // with the pinned delegate query (same resolved path).
        let q_auto = batch.push_topk(c, 8);
        let out = eng.run_batch(&batch).unwrap();
        for &qi in &[q_delegate, q_radix] {
            assert_eq!(out.results[qi].values, reference_topk(&data, 96));
        }
        assert_eq!(out.results[q_auto].values, reference_topk(&data, 8));
        assert_eq!(out.report.delegate_path_units, 1);
        assert_eq!(out.report.radix_path_units, 1);
        assert_eq!(out.report.num_units, 2);
        // The radix unit builds no delegate pass: only the delegate unit's
        // shared pass ran.
        assert_eq!(out.report.delegate_passes_run, 1);
        let ExecPath::Fused { unit: u_del } = out.results[q_delegate].path else {
            panic!("expected fused")
        };
        let ExecPath::Fused { unit: u_auto } = out.results[q_auto].path else {
            panic!("expected fused")
        };
        let ExecPath::Fused { unit: u_radix } = out.results[q_radix].path else {
            panic!("expected fused")
        };
        assert_eq!(u_del, u_auto, "same resolved path fuses");
        assert_ne!(u_del, u_radix, "paths never share a unit");
        // The radix member's workload statistics show the radix shape:
        // no delegate vector, one effective subrange.
        assert!(out.results[q_radix].breakdown.second_topk_ms > 0.0);
    }

    #[test]
    fn results_keep_query_order_across_many_units_and_devices() {
        let eng = engine(4);
        let corpora: Vec<Vec<u32>> = (0..6u64)
            .map(|i| topk_datagen::uniform(1 << 12, 100 + i))
            .collect();
        let mut batch = QueryBatch::new();
        let ids: Vec<usize> = corpora
            .iter()
            .enumerate()
            .map(|(i, d)| batch.add_corpus(i as u64, d))
            .collect();
        // interleave queries over corpora so unit order ≠ query order
        let mut expected = Vec::new();
        for round in 0..3usize {
            for (ci, &c) in ids.iter().enumerate() {
                let k = 10 + round * 7 + ci;
                batch.push_topk(c, k);
                expected.push(reference_topk(&corpora[ci], k));
            }
        }
        let out = eng.run_batch(&batch).unwrap();
        assert_eq!(out.results.len(), expected.len());
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(&out.results[i].values, exp, "query {i}");
        }
        // 6 corpora → 6 fused units, 3 queries each
        assert_eq!(out.report.fused_units, 6);
        assert!((out.report.batch_occupancy - 3.0).abs() < 1e-12);
    }
}
