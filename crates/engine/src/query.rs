//! Query and batch types: the engine's input surface.
//!
//! A [`QueryBatch`] is a set of *corpora* (the vectors to select over) plus
//! a set of *queries*, each naming a corpus by index and carrying its own
//! `k`, [`Direction`] and inner algorithm. Heterogeneity is the point: one
//! batch may mix top-k-largest and top-k-smallest queries, tiny and huge
//! `k`, and different second-phase algorithms — the planner sorts out what
//! can be fused and what cannot.

use drtopk_core::{InnerAlgorithm, Mode, PathHint, RecallTarget, RowK};
use topk_baselines::TopKKey;

/// Which end of the key order a query selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Top-k **largest**, descending (the classic Dr. Top-k query).
    Largest,
    /// Top-k **smallest**, ascending (k-NN distances and friends).
    Smallest,
}

/// One top-k query of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Index of the corpus this query selects over (see
    /// [`QueryBatch::add_corpus`]).
    pub corpus: usize,
    /// Number of winners requested. `0` yields an empty result; values
    /// larger than the corpus are clamped, exactly like [`drtopk_core::dr_topk`].
    pub k: usize,
    /// Largest or smallest.
    pub direction: Direction,
    /// The algorithm that runs the second top-k for this query.
    pub inner: InnerAlgorithm,
    /// Exact selection or a recall target. Approximate queries are fused
    /// separately from exact ones (and per distinct target): a shared
    /// candidate pass sized for the *loosest* recall of a mixed group would
    /// silently under-serve the tighter members, so the planner never
    /// builds one.
    pub mode: Mode,
    /// Which execution path the query runs: the delegate pipeline, the
    /// large-k multi-pass radix path, or (the default) the planner's
    /// modeled crossover. The planner resolves the hint per query at plan
    /// time and fuses queries by the *resolved* path — delegate-path
    /// queries share a delegate pass, radix-path queries share a unit
    /// without one. Approximate queries ignore the hint (the bucket
    /// machinery has no radix twin).
    pub path: PathHint,
}

/// One row-matrix top-k query: the corpus reinterpreted as a row-major
/// `rows × cols` matrix, selecting every row's top-k in one planned unit
/// (see [`drtopk_core::topk_rows`]).
///
/// Row queries are fused by `(corpus, direction, mode)` exactly like
/// vector queries and run on one pool device as a single row-block stage
/// graph — one fused delegate pass per row-block, never one per row. They
/// always run corpus-resident: a corpus larger than the worker device's
/// memory surfaces a per-device [`crate::EngineError`] (there is no
/// sharded row path yet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowQuery {
    /// Index of the corpus this query selects over.
    pub corpus: usize,
    /// Number of matrix rows; `rows * cols` must equal the corpus length.
    pub rows: usize,
    /// Number of matrix columns (elements per row).
    pub cols: usize,
    /// Uniform or per-row k (clamped per row, exactly like vector queries).
    pub ks: RowK,
    /// Largest or smallest, applied to every row.
    pub direction: Direction,
    /// The algorithm that runs each row's second top-k.
    pub inner: InnerAlgorithm,
    /// Exact selection or a recall target, applied to every row.
    pub mode: Mode,
}

/// A corpus registered with a batch: a borrowed key slice plus a
/// caller-provided stable identity used by the engine's delegate cache.
///
/// The `id` is the cache key for reusing work across batches: two batches
/// presenting the same `(id, len)` are assumed to present the **same
/// data** — bump the id whenever the underlying vector changes, or use
/// [`QueryBatch::add_corpus_uncached`] for one-shot data.
#[derive(Debug, Clone, Copy)]
pub struct Corpus<'a, K: TopKKey> {
    /// Caller-assigned stable identity (`None` opts out of delegate
    /// caching).
    pub id: Option<u64>,
    /// The keys to select over.
    pub data: &'a [K],
}

/// A batch of heterogeneous top-k queries over a set of corpora.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch<'a, K: TopKKey> {
    pub(crate) corpora: Vec<Corpus<'a, K>>,
    pub(crate) queries: Vec<Query>,
    pub(crate) row_queries: Vec<RowQuery>,
}

impl<'a, K: TopKKey> QueryBatch<'a, K> {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch {
            corpora: Vec::new(),
            queries: Vec::new(),
            row_queries: Vec::new(),
        }
    }

    /// Register a corpus with a stable identity and return its index.
    /// Presenting the same `id` with the same length in a later batch lets
    /// the engine reuse the cached delegate vector instead of rebuilding it.
    pub fn add_corpus(&mut self, id: u64, data: &'a [K]) -> usize {
        self.corpora.push(Corpus { id: Some(id), data });
        self.corpora.len() - 1
    }

    /// Register a one-shot corpus that must never be delegate-cached.
    pub fn add_corpus_uncached(&mut self, data: &'a [K]) -> usize {
        self.corpora.push(Corpus { id: None, data });
        self.corpora.len() - 1
    }

    /// Append a query; returns its index, which is also the index of its
    /// result in [`crate::BatchOutput::results`].
    pub fn push(&mut self, query: Query) -> usize {
        assert!(
            query.corpus < self.corpora.len(),
            "query references corpus {} but only {} corpora are registered",
            query.corpus,
            self.corpora.len()
        );
        self.queries.push(query);
        self.queries.len() - 1
    }

    /// Convenience: append a top-k-largest query with the default
    /// flag-radix inner algorithm.
    pub fn push_topk(&mut self, corpus: usize, k: usize) -> usize {
        self.push(Query {
            corpus,
            k,
            direction: Direction::Largest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Exact,
            path: PathHint::Auto,
        })
    }

    /// Convenience: append a top-k-largest query pinned (or auto-routed)
    /// to a specific execution path — the test/bench seam for forcing the
    /// delegate or radix pipeline.
    pub fn push_topk_path(&mut self, corpus: usize, k: usize, path: PathHint) -> usize {
        self.push(Query {
            corpus,
            k,
            direction: Direction::Largest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Exact,
            path,
        })
    }

    /// Convenience: append a top-k-smallest query with the default
    /// flag-radix inner algorithm.
    pub fn push_topk_min(&mut self, corpus: usize, k: usize) -> usize {
        self.push(Query {
            corpus,
            k,
            direction: Direction::Smallest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Exact,
            path: PathHint::Auto,
        })
    }

    /// Convenience: append a recall-targeted approximate top-k-largest
    /// query (`target_recall` is a fraction in `(0, 1]`; 1.0 is exact).
    pub fn push_topk_approx(&mut self, corpus: usize, k: usize, target_recall: f64) -> usize {
        self.push(Query {
            corpus,
            k,
            direction: Direction::Largest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Approx {
                target_recall: RecallTarget::from_fraction(target_recall),
            },
            path: PathHint::Auto,
        })
    }

    /// Convenience: append a recall-targeted approximate top-k-smallest
    /// query.
    pub fn push_topk_min_approx(&mut self, corpus: usize, k: usize, target_recall: f64) -> usize {
        self.push(Query {
            corpus,
            k,
            direction: Direction::Smallest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Approx {
                target_recall: RecallTarget::from_fraction(target_recall),
            },
            path: PathHint::Auto,
        })
    }

    /// Append a row-matrix query; returns its index, which is also the
    /// index of its result in [`crate::BatchOutput::row_results`].
    ///
    /// # Panics
    ///
    /// Panics when the corpus index is out of range, when `rows * cols`
    /// does not equal the corpus length, or when a
    /// [`RowK::PerRow`] vector's length differs from `rows`.
    pub fn push_row_query(&mut self, query: RowQuery) -> usize {
        assert!(
            query.corpus < self.corpora.len(),
            "row query references corpus {} but only {} corpora are registered",
            query.corpus,
            self.corpora.len()
        );
        let len = self.corpora[query.corpus].data.len();
        assert_eq!(
            query.rows * query.cols,
            len,
            "row query shape {}x{} must cover corpus {} exactly ({} keys)",
            query.rows,
            query.cols,
            query.corpus,
            len
        );
        query.ks.validate(query.rows);
        self.row_queries.push(query);
        self.row_queries.len() - 1
    }

    /// Convenience: append a row-wise top-k-**largest** query over the
    /// corpus viewed as a row-major `rows × cols` matrix, with the default
    /// flag-radix inner algorithm.
    pub fn push_rows(&mut self, corpus: usize, rows: usize, cols: usize, ks: RowK) -> usize {
        self.push_row_query(RowQuery {
            corpus,
            rows,
            cols,
            ks,
            direction: Direction::Largest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Exact,
        })
    }

    /// Convenience: append a row-wise top-k-**smallest** query (each row's
    /// k minimum elements, ascending) with the default flag-radix inner
    /// algorithm.
    pub fn push_rows_min(&mut self, corpus: usize, rows: usize, cols: usize, ks: RowK) -> usize {
        self.push_row_query(RowQuery {
            corpus,
            rows,
            cols,
            ks,
            direction: Direction::Smallest,
            inner: InnerAlgorithm::FlagRadix,
            mode: Mode::Exact,
        })
    }

    /// The registered corpora.
    pub fn corpora(&self) -> &[Corpus<'a, K>] {
        &self.corpora
    }

    /// The queued queries.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The queued row-matrix queries.
    pub fn row_queries(&self) -> &[RowQuery] {
        &self.row_queries
    }

    /// Number of single-vector queries in the batch (row-matrix queries
    /// are counted separately by [`QueryBatch::row_queries`]).
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch holds no queries of either kind.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty() && self.row_queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_assigns_indices() {
        let data: Vec<u32> = (0..128).collect();
        let other: Vec<u32> = (0..64).collect();
        let mut batch = QueryBatch::new();
        let c0 = batch.add_corpus(1, &data);
        let c1 = batch.add_corpus_uncached(&other);
        assert_eq!((c0, c1), (0, 1));
        assert_eq!(batch.push_topk(c0, 10), 0);
        assert_eq!(batch.push_topk_min(c1, 5), 1);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.queries()[0].direction, Direction::Largest);
        assert_eq!(batch.queries()[1].direction, Direction::Smallest);
        assert_eq!(batch.corpora()[0].id, Some(1));
        assert_eq!(batch.corpora()[1].id, None);
    }

    #[test]
    #[should_panic(expected = "references corpus")]
    fn out_of_range_corpus_panics_at_push() {
        let mut batch = QueryBatch::<u32>::new();
        batch.push_topk(0, 10);
    }

    #[test]
    fn row_queries_validate_and_index() {
        let data: Vec<u32> = (0..128).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        assert_eq!(batch.push_rows(c, 8, 16, RowK::Uniform(4)), 0);
        assert_eq!(
            batch.push_rows_min(c, 4, 32, RowK::PerRow(vec![1, 2, 3, 4])),
            1
        );
        assert_eq!(batch.row_queries().len(), 2);
        assert_eq!(batch.len(), 0, "row queries are counted separately");
        assert!(!batch.is_empty());
        assert_eq!(batch.row_queries()[1].direction, Direction::Smallest);
    }

    #[test]
    #[should_panic(expected = "must cover corpus")]
    fn row_query_shape_mismatch_panics() {
        let data: Vec<u32> = (0..100).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push_rows(c, 8, 16, RowK::Uniform(4));
    }

    #[test]
    #[should_panic(expected = "per-row k vector length")]
    fn row_query_bad_per_row_k_panics() {
        let data: Vec<u32> = (0..128).collect();
        let mut batch = QueryBatch::new();
        let c = batch.add_corpus(1, &data);
        batch.push_rows(c, 8, 16, RowK::PerRow(vec![1, 2]));
    }
}
