//! # drtopk-engine — batched multi-query top-k serving over the device cluster
//!
//! The Dr. Top-k pipeline answers *one* query on *one* vector. This crate
//! turns the reproduction into a server-shaped system: a [`TopKEngine`]
//! accepts a [`QueryBatch`] of heterogeneous queries — each with its own
//! corpus, `k`, [`Direction`] and inner algorithm — plans them, executes
//! the plan over a [`gpu_sim::GpuCluster`] worker pool, and returns
//! per-query results plus an engine-level [`EngineReport`] (throughput,
//! batch occupancy, cache hit rates, per-phase times).
//!
//! ## Architecture
//!
//! ```text
//!   QueryBatch ──▶ planner ──▶ ExecutionPlan ──▶ scheduler ──▶ results
//!                    │  ▲                          │
//!                    ▼  │ memoized α (+ k')        │ one Device per worker
//!              tuning-plan cache             delegate cache
//!              (n, k, mode, key type,        (corpus id, α, β, key type)
//!               device)
//! ```
//!
//! * **Planner** ([`plan`]) — groups same-corpus, same-direction,
//!   same-mode queries into *fused units* that share one delegate pass
//!   sized by the group's `k_max`. This is the batched row-wise idea
//!   behind **RTop-K**: the dominant cost of GPU top-k at serving scale is
//!   launching and scanning per query, so amortize the full-vector scan
//!   across every query that can legally share it (here: the `|V|`-read
//!   delegate construction, after which each query runs only the cheap
//!   delegate-sized phases). Recall-targeted approximate queries
//!   ([`drtopk_core::Mode::Approx`]) fuse separately from exact traffic
//!   and per distinct target — one pass sized by the loosest target of a
//!   mixed group would under-serve its tighter members — with the shared
//!   candidate pass sized by the largest member budget (a larger budget
//!   only raises recall). Corpora that exceed a device's memory are
//!   routed to *sharded units* instead, which take the whole cluster
//!   through [`drtopk_core::distributed_dr_topk`] (approximate sharded
//!   queries run the approximate pipeline per sub-vector, so the target
//!   is met shard-wise and therefore overall). Sharded queries are
//!   deduplicated (identical queries are answered once) but distinct
//!   sharded queries do not yet share a delegate pass — the distributed
//!   pipeline has no planned-query seam; that is the natural next
//!   extension. **Row-matrix queries** ([`QueryBatch::push_rows`]) fuse by
//!   the same `(corpus, direction, mode)` key into [`RowUnit`]s: each runs
//!   on one pool device as a row-block stage graph
//!   ([`drtopk_core::topk_rows`]) — one fused delegate pass per row-block,
//!   never one per row — and its result carries one per-row selection
//!   ([`RowQueryResult`]). Rows count as queries in the metrics and
//!   throughput, without widening the metric catalog.
//! * **Scheduler** ([`TopKEngine::run_batch`]) — a worker pool with one
//!   simulated [`gpu_sim::Device`] per worker; fused units are pulled from
//!   a shared queue for dynamic load balance. This is the scheduling idea
//!   behind **RadiK**: many independent selections of wildly different
//!   cost coexist on a device pool, so assign work greedily rather than
//!   statically. Worker failures surface per device
//!   ([`gpu_sim::GpuCluster::try_run_on_all`]) instead of poisoning the
//!   batch.
//! * **Plan cache** ([`PlanCache`]) — two memoizations keyed for repeat
//!   traffic: `(n, k, key type, device) → α` skips `auto_alpha`
//!   re-derivation, and `(corpus id, length, α, β, key type) →`
//!   [`drtopk_core::DelegateVector`] skips delegate reconstruction for
//!   unchanged corpora entirely, so a warm engine answers a repeated query
//!   without ever re-reading the corpus at full length.
//!
//! Correctness is anchored by construction: fused members run the ordinary
//! planned pipeline ([`drtopk_core::dr_topk_planned`]) against the shared
//! delegate vector, so every result is bit-identical to an independent
//! [`drtopk_core::dr_topk`] / [`drtopk_core::dr_topk_min`] call — the
//! workspace property tests pin this for all six key types, mixed
//! directions, duplicate queries and degenerate `k`.
//!
//! ## Quickstart
//!
//! ```
//! use drtopk_engine::{QueryBatch, TopKEngine};
//! use gpu_sim::{DeviceSpec, GpuCluster};
//!
//! let engine = TopKEngine::new(GpuCluster::homogeneous(2, DeviceSpec::v100s()));
//! let corpus: Vec<u32> = (0..100_000u32).map(|x| x.wrapping_mul(2654435761)).collect();
//!
//! let mut batch = QueryBatch::new();
//! let c = batch.add_corpus(1, &corpus); // stable id → delegate cache works
//! batch.push_topk(c, 10);
//! batch.push_topk(c, 500);
//! batch.push_topk_min(c, 3);
//!
//! let out = engine.run_batch(&batch).unwrap();
//! assert_eq!(out.results[0].values, topk_baselines::reference_topk(&corpus, 10));
//! assert_eq!(out.results[2].values, topk_baselines::reference_topk_min(&corpus, 3));
//! // the two largest-direction queries shared one delegate pass
//! assert!(out.report.batch_occupancy > 1.0);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod exec;
pub mod plan;
pub mod query;
pub mod report;

pub use drtopk_core::PathHint;
pub use engine::{EngineConfig, EngineError, TopKEngine};
pub use plan::{
    DelegateCacheEntry, ExecutionPlan, FusedUnit, PlanCache, PlanUnit, RowUnit, ShardedUnit,
    TuningPlan,
};
pub use query::{Corpus, Direction, Query, QueryBatch, RowQuery};
pub use report::{BatchOutput, CacheReport, EngineReport, ExecPath, QueryResult, RowQueryResult};
