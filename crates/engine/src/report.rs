//! Per-query results and the engine-level statistics report.

use drtopk_core::PhaseBreakdown;
use drtopk_obs::MetricsSnapshot;
use gpu_sim::KernelStats;
use topk_baselines::{TopKKey, TopKResult};

/// Hit/miss counters of one cache (or one batch's slice of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populate the cache).
    pub misses: u64,
}

impl CacheReport {
    /// `hits / (hits + misses)`, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How one query was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// Member of a fused same-corpus group, run on one pool device.
    Fused {
        /// Index of the unit in the batch's execution plan.
        unit: usize,
    },
    /// Over-capacity corpus, run across the whole cluster.
    Sharded {
        /// Number of devices the query was sharded over.
        devices: usize,
    },
}

/// Result of one query of a batch.
#[derive(Debug, Clone)]
pub struct QueryResult<K: TopKKey> {
    /// The selected values: descending for largest-direction queries,
    /// ascending for smallest-direction ones (matching
    /// [`drtopk_core::dr_topk`] / [`drtopk_core::dr_topk_min`]).
    pub values: Vec<K>,
    /// The k-th selected value (`K::default()` for empty results).
    pub kth_value: K,
    /// Modeled time attributed to this query (shared delegate passes are
    /// accounted at the engine level, not per query).
    pub time_ms: f64,
    /// Kernel counters attributed to this query.
    pub stats: KernelStats,
    /// Per-phase modeled times, derived from the query's executed stage
    /// schedule. Sharded queries report the summed per-chunk phases with
    /// data movement (chunk reloads, the gather) kept separately under
    /// [`PhaseBreakdown::transfer_ms`] rather than folded into compute.
    pub breakdown: PhaseBreakdown,
    /// What the recall model predicts this result contains: 1.0 for exact
    /// queries (and approximate queries that fell back to an exact plan),
    /// the modeled expected recall for bucket-based approximate execution.
    pub predicted_recall: f64,
    /// How the query was executed.
    pub path: ExecPath,
}

/// Result of one row-matrix query of a batch (see
/// [`crate::QueryBatch::push_rows`]).
#[derive(Debug, Clone)]
pub struct RowQueryResult<K: TopKKey> {
    /// Per-row selections, in row order — bit-identical to running the
    /// single-vector pipeline on each row (per-row `stats`/`time_ms` are
    /// zero; kernel counters are accounted at block granularity in
    /// [`stats`](RowQueryResult::stats)).
    pub rows: Vec<TopKResult<K>>,
    /// Modeled time of this query's row-block stage graph.
    pub time_ms: f64,
    /// Kernel counters accumulated across the query's stages.
    pub stats: KernelStats,
    /// Per-phase modeled times, derived from the executed schedule.
    pub breakdown: PhaseBreakdown,
    /// Fused delegate passes the query ran — one per row-block with work,
    /// never one per row.
    pub delegate_passes: usize,
    /// Row-blocks the matrix was split into.
    pub num_blocks: usize,
    /// Minimum plan-time expected recall across the rows (1.0 when every
    /// row ran an exact plan).
    pub predicted_recall: f64,
    /// Index of the row unit in the batch's execution plan.
    pub unit: usize,
}

/// Engine-level statistics for one batch.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Queries in the batch.
    pub num_queries: usize,
    /// Schedulable units the planner produced.
    pub num_units: usize,
    /// Fused same-corpus groups among the units.
    pub fused_units: usize,
    /// Queries routed through the sharded (whole-cluster) path.
    pub sharded_queries: usize,
    /// Row-matrix queries in the batch (counted separately from
    /// `num_queries`; each result carries one [`TopKResult`] per row).
    pub row_queries: usize,
    /// Total matrix rows selected across every row-matrix query — rows
    /// count as queries in the cumulative metrics and the batch
    /// throughput, without widening the metric catalog.
    pub rows_served: usize,
    /// Queries that requested a recall target below 1.0 (they fuse into
    /// their own units, separately from exact traffic).
    pub approx_queries: usize,
    /// Fused units whose members resolved to the delegate pipeline. Queries
    /// fuse by resolved path, so every fused unit counts under exactly one
    /// of these two fields; sharded queries resolve per device inside the
    /// distributed run and are counted by neither. Per-path visibility
    /// rides the existing metric catalog: radix stage kinds already appear
    /// in the per-kind residual gauges and the stage-level counters, so no
    /// new [`drtopk_obs::MetricName`] variant is needed.
    pub delegate_path_units: usize,
    /// Fused units whose members resolved to the large-k multi-pass
    /// radix-select pipeline (see [`drtopk_core::choose_path`]).
    pub radix_path_units: usize,
    /// Average queries per unit — how much fusion the batch admitted
    /// (a 32-query shared-corpus batch scores 32.0; fully disjoint
    /// traffic scores 1.0).
    pub batch_occupancy: f64,
    /// Tuning-plan cache activity during this batch.
    pub plan_cache: CacheReport,
    /// Delegate cache activity during this batch.
    pub delegate_cache: CacheReport,
    /// Delegate construction passes actually executed, including the
    /// fused per-row-block passes of row-matrix queries.
    pub delegate_passes_run: usize,
    /// Delegate passes that fusion + caching avoided (delegate-using
    /// queries served without their own construction pass).
    pub delegate_passes_saved: usize,
    /// Summed per-phase modeled times across every query, with shared
    /// delegate passes counted once under `delegate_ms` and all data
    /// movement (out-of-core chunk reloads, distributed gathers) reported
    /// separately under [`PhaseBreakdown::transfer_ms`] — transfer time is
    /// never folded into a compute phase.
    pub phase_ms: PhaseBreakdown,
    /// Modeled time of the sharded (whole-cluster) portion of the batch.
    pub sharded_ms: f64,
    /// Fraction of the sharded portion's serialized stage cost hidden by
    /// **concurrency** (`1 − makespan / Σ stage durations` over the
    /// sharded stage schedules). Two mechanisms contribute: double-buffered
    /// chunk ingestion overlapping chunk `i + 1`'s host→device transfer
    /// with chunk `i`'s compute, and the devices' chunk chains running in
    /// parallel with each other — so a multi-device sharded run reports a
    /// nonzero value even when nothing streamed. To isolate the
    /// transfer-hiding effect alone, compare
    /// [`distributed_dr_topk_scheduled`](drtopk_core::distributed_dr_topk_scheduled)
    /// makespans under the two [`drtopk_core::ReloadSchedule`]s (what the
    /// `streamed_oversize` bench does). 0.0 when the batch had no sharded
    /// queries or their schedules were fully serial.
    pub overlap_efficiency: f64,
    /// Modeled batch makespan: the slowest pool worker under deterministic
    /// list scheduling of the fused units (each unit to the
    /// earliest-available worker, in plan order), plus the sharded portion
    /// (which uses every device). Independent of host-thread timing.
    pub total_ms: f64,
    /// Modeled throughput in selections per second: vector queries plus
    /// every matrix row served, over the batch makespan.
    pub throughput_qps: f64,
    /// Kernel counters summed across the whole batch (shared passes
    /// included once).
    pub stats: KernelStats,
    /// Snapshot of the engine's cumulative metrics registry taken right
    /// after this batch was folded in: latency percentiles (p50/p95/p99),
    /// sustained QPS over engine-busy time, per-worker occupancy and
    /// per-kind calibration residuals. Cumulative across the engine's
    /// lifetime, unlike the batch-scoped fields above.
    pub metrics: MetricsSnapshot,
}

/// Per-query results (indexed like the batch's queries) plus the
/// engine-level report.
#[derive(Debug, Clone)]
pub struct BatchOutput<K: TopKKey> {
    /// One result per query, in query order.
    pub results: Vec<QueryResult<K>>,
    /// One result per row-matrix query, in row-query order.
    pub row_results: Vec<RowQueryResult<K>>,
    /// Engine-level statistics for the batch.
    pub report: EngineReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_is_safe_and_correct() {
        assert_eq!(CacheReport::default().hit_rate(), 0.0);
        let r = CacheReport { hits: 3, misses: 1 };
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
    }
}
