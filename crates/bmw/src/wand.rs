//! WAND and Block-Max WAND query evaluation with workload accounting.
//!
//! For the single-term case used in the Figure 24 comparison, the query's
//! top-k answer is simply the k highest-scoring documents of the posting
//! list. WAND/BMW maintain a size-k heap whose minimum is the threshold λ;
//! a document is *fully evaluated* (its exact score inspected and the heap
//! possibly updated) only if its upper bound beats λ:
//!
//! * plain WAND uses the list-wide maximum as the upper bound, so it fully
//!   evaluates almost every document until λ rises;
//! * BMW uses the block maximum, allowing it to skip to the next block when
//!   the current block's maximum cannot beat λ — but within a promising
//!   block it still proceeds document by document.
//!
//! [`BmwStats::fully_evaluated`] is the workload Figure 24 compares against
//! Dr. Top-k's (delegate vector + concatenated vector) workload.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use topk_baselines::TopKKey;

use crate::index::BmwIndex;

/// Workload counters of a WAND/BMW evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BmwStats<S: TopKKey = u32> {
    /// Documents whose exact score was inspected ("fully evaluated" in the
    /// paper's terminology).
    pub fully_evaluated: u64,
    /// Documents skipped by block-level pruning without being inspected.
    pub skipped: u64,
    /// Number of block-max comparisons performed.
    pub block_checks: u64,
    /// Final threshold λ (the k-th best score found).
    pub final_threshold: S,
}

/// Result of a WAND/BMW top-k evaluation.
#[derive(Debug, Clone)]
pub struct BmwResult<S: TopKKey = u32> {
    /// The k best (score, doc id) pairs, sorted by descending score.
    pub top: Vec<(S, u32)>,
    /// Workload counters.
    pub stats: BmwStats<S>,
}

fn heap_topk<S: TopKKey>(
    index: &BmwIndex<S>,
    k: usize,
    mut upper_bound_of: impl FnMut(usize, &mut BmwStats<S>) -> S,
    allow_block_skip: bool,
) -> BmwResult<S> {
    let mut stats = BmwStats::default();
    // the heap orders (score bits, doc id): bits order == score total order
    let mut heap: BinaryHeap<Reverse<(S::Bits, u32)>> = BinaryHeap::with_capacity(k + 1);
    let postings = index.postings();
    let k = k.min(postings.len());
    if k == 0 {
        return BmwResult {
            top: Vec::new(),
            stats,
        };
    }

    let mut pos = 0usize;
    while pos < postings.len() {
        // λ is only consulted once the heap is full, so the placeholder for
        // a partially filled heap is never compared against.
        let lambda = heap
            .peek()
            .map(|Reverse((s, _))| *s)
            .unwrap_or(S::default().to_bits());
        let ub = upper_bound_of(pos, &mut stats);
        if heap.len() >= k && ub.to_bits() <= lambda {
            // the upper bound cannot improve the heap
            if allow_block_skip {
                // BMW: skip the rest of the block in one jump
                let next = index.next_block_start(pos);
                stats.skipped += (next.min(postings.len()) - pos) as u64;
                pos = next;
            } else {
                // WAND with a list-wide bound: nothing can be skipped
                // structurally, the document is simply not evaluated
                stats.skipped += 1;
                pos += 1;
            }
            continue;
        }
        // full evaluation of this document
        stats.fully_evaluated += 1;
        let p = postings[pos];
        if heap.len() < k {
            heap.push(Reverse((p.score.to_bits(), p.doc_id)));
        } else if p.score.to_bits() > lambda {
            heap.pop();
            heap.push(Reverse((p.score.to_bits(), p.doc_id)));
        }
        pos += 1;
    }

    let mut top: Vec<(S, u32)> = heap
        .into_iter()
        .map(|Reverse((s, d))| (S::from_bits(s), d))
        .collect();
    top.sort_unstable_by_key(|&(s, d)| Reverse((s.to_bits(), d)));
    stats.final_threshold = top.last().map(|&(s, _)| s).unwrap_or_default();
    BmwResult { top, stats }
}

/// Plain WAND: the upper bound of every document is the list-wide maximum.
pub fn wand_topk<S: TopKKey>(index: &BmwIndex<S>, k: usize) -> BmwResult<S> {
    let list_max = index
        .postings()
        .iter()
        .map(|p| p.score)
        .max_by_key(|s| s.to_bits())
        .unwrap_or_default();
    heap_topk(
        index,
        k,
        |_pos, stats| {
            stats.block_checks += 1;
            list_max
        },
        false,
    )
}

/// Block-Max WAND: the upper bound of a document is its block's maximum and
/// failing blocks are skipped wholesale.
pub fn bmw_topk<S: TopKKey>(index: &BmwIndex<S>, k: usize) -> BmwResult<S> {
    heap_topk(
        index,
        k,
        |pos, stats| {
            stats.block_checks += 1;
            index.block_max(index.block_of(pos))
        },
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores_topk(scores: &[u32], k: usize) -> Vec<u32> {
        let mut s = scores.to_vec();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s.truncate(k);
        s
    }

    #[test]
    fn bmw_and_wand_return_the_true_topk() {
        let scores = topk_datagen::uniform(1 << 12, 7);
        let index = BmwIndex::from_scores(&scores, 64);
        for &k in &[1usize, 10, 100] {
            let bmw = bmw_topk(&index, k);
            let wand = wand_topk(&index, k);
            let expected = scores_topk(&scores, k);
            let got_bmw: Vec<u32> = bmw.top.iter().map(|&(s, _)| s).collect();
            let got_wand: Vec<u32> = wand.top.iter().map(|&(s, _)| s).collect();
            assert_eq!(got_bmw, expected, "bmw k={k}");
            assert_eq!(got_wand, expected, "wand k={k}");
            assert_eq!(bmw.stats.final_threshold, *expected.last().unwrap());
        }
    }

    #[test]
    fn float_bm25_scores_rank_identically_to_reference() {
        // the ported score path: native f32 BM25-like scores, no integer
        // quantization anywhere
        let scores = topk_datagen::bm25_scores(1 << 12, 17);
        let index = BmwIndex::from_scores(&scores, 64);
        for &k in &[1usize, 16, 100] {
            let bmw = bmw_topk(&index, k);
            let mut expected = scores.clone();
            expected.sort_unstable_by(|a, b| b.total_cmp(a));
            expected.truncate(k);
            let got: Vec<f32> = bmw.top.iter().map(|&(s, _)| s).collect();
            assert_eq!(got, expected, "k={k}");
            assert_eq!(bmw.stats.final_threshold, *expected.last().unwrap());
        }
        let with_skips = bmw_topk(&index, 8);
        assert!(with_skips.stats.skipped > 0, "block maxima must prune");
    }

    #[test]
    fn bmw_skips_blocks_and_wand_does_not() {
        let scores = topk_datagen::uniform(1 << 14, 3);
        let index = BmwIndex::from_scores(&scores, 128);
        let k = 16;
        let bmw = bmw_topk(&index, k);
        let wand = wand_topk(&index, k);
        assert!(bmw.stats.skipped > 0, "BMW must skip whole blocks");
        assert!(
            bmw.stats.fully_evaluated < wand.stats.fully_evaluated,
            "block maxima must reduce the evaluated workload: {} vs {}",
            bmw.stats.fully_evaluated,
            wand.stats.fully_evaluated
        );
        // both inspect every document at most once
        assert!(bmw.stats.fully_evaluated + bmw.stats.skipped >= index.len() as u64);
    }

    #[test]
    fn bmw_still_evaluates_more_than_dr_topk_style_subrange_skipping() {
        // The crux of Figure 24: even with block maxima, BMW walks documents
        // one by one inside promising blocks, so its evaluated workload stays
        // a significant fraction of |V| for uniform data, far above the
        // delegate + concatenated workload.
        let n = 1 << 14;
        let scores = topk_datagen::uniform(n, 11);
        let index = BmwIndex::from_scores(&scores, 64);
        let k = 64;
        let bmw = bmw_topk(&index, k);
        // Dr. Top-k workload at α per Rule 4 would be ~|V|/2^α + O(k·2^α),
        // i.e. a few percent of |V|; BMW stays above 10% on uniform data.
        assert!(
            bmw.stats.fully_evaluated > (n as u64) / 10,
            "evaluated only {} of {n}",
            bmw.stats.fully_evaluated
        );
    }

    #[test]
    fn edge_cases() {
        let index = BmwIndex::<u32>::from_scores(&[], 8);
        assert!(bmw_topk(&index, 4).top.is_empty());
        let index = BmwIndex::from_scores(&[5, 5, 5, 5], 2);
        let r = bmw_topk(&index, 10);
        assert_eq!(r.top.len(), 4);
        assert!(r.top.iter().all(|&(s, _)| s == 5));
        assert_eq!(bmw_topk(&index, 0).top.len(), 0);
    }

    #[test]
    fn descending_input_is_the_worst_case_for_bmw() {
        // With descending scores the heap threshold is already maximal after
        // the first block, letting BMW skip almost everything.
        let scores: Vec<u32> = (0..4096u32).rev().collect();
        let index = BmwIndex::from_scores(&scores, 64);
        let r = bmw_topk(&index, 32);
        assert!(r.stats.skipped > 3500);
        // Ascending scores are the opposite: λ trails the data, every block
        // looks promising and almost everything is evaluated.
        let ascending: Vec<u32> = (0..4096u32).collect();
        let index = BmwIndex::from_scores(&ascending, 64);
        let r = bmw_topk(&index, 32);
        assert!(r.stats.fully_evaluated > 3500);
    }
}
