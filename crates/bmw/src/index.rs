//! Block-max posting-list index.
//!
//! A posting list is a docID-ordered sequence of (docID, score) pairs,
//! partitioned into fixed-size blocks; each block stores its maximum score.
//! For the Figure 24 comparison the "documents" are simply the positions of
//! the Dr. Top-k input vector and the scores are its values, mirroring the
//! paper's setting where both approaches answer the same top-k query.
//!
//! The score type is any [`TopKKey`], so the index ranks native `f32` BM25
//! scores exactly as it ranks the integer proxies (block maxima and the
//! heap threshold compare in the key's total order).

use topk_baselines::TopKKey;

/// One (document id, score) posting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting<S: TopKKey = u32> {
    /// Document identifier (monotonically increasing within a list).
    pub doc_id: u32,
    /// Score of the term in this document.
    pub score: S,
}

/// A block-max indexed posting list.
#[derive(Debug, Clone)]
pub struct BmwIndex<S: TopKKey = u32> {
    postings: Vec<Posting<S>>,
    block_size: usize,
    block_max: Vec<S>,
}

fn max_score<S: TopKKey>(block: &[Posting<S>]) -> S {
    block
        .iter()
        .map(|p| p.score)
        .max_by_key(|s| s.to_bits())
        .unwrap_or_default()
}

impl<S: TopKKey> BmwIndex<S> {
    /// Build an index over the scores of a value vector: document `i` gets
    /// score `scores[i]`.
    pub fn from_scores(scores: &[S], block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let postings: Vec<Posting<S>> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Posting {
                doc_id: i as u32,
                score: s,
            })
            .collect();
        let block_max = postings.chunks(block_size).map(max_score).collect();
        BmwIndex {
            postings,
            block_size,
            block_max,
        }
    }

    /// Build an index from explicit postings (doc ids must be increasing).
    pub fn from_postings(postings: Vec<Posting<S>>, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(
            postings.windows(2).all(|w| w[0].doc_id < w[1].doc_id),
            "postings must be sorted by strictly increasing doc id"
        );
        let block_max = postings.chunks(block_size).map(max_score).collect();
        BmwIndex {
            postings,
            block_size,
            block_max,
        }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Block size used by the index.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_max.len()
    }

    /// All postings, in doc-id order.
    pub fn postings(&self) -> &[Posting<S>] {
        &self.postings
    }

    /// Maximum score of block `b`.
    pub fn block_max(&self, b: usize) -> S {
        self.block_max[b]
    }

    /// Block index containing posting position `pos`.
    pub fn block_of(&self, pos: usize) -> usize {
        pos / self.block_size
    }

    /// Position (within the postings) of the first posting of the block
    /// *after* the one containing `pos` — i.e. where a block-level skip
    /// lands.
    pub fn next_block_start(&self, pos: usize) -> usize {
        (self.block_of(pos) + 1) * self.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_block_maxima_from_scores() {
        let scores = vec![5, 1, 9, 3, 7, 2, 8];
        let idx = BmwIndex::from_scores(&scores, 3);
        assert_eq!(idx.len(), 7);
        assert_eq!(idx.num_blocks(), 3);
        assert_eq!(idx.block_max(0), 9);
        assert_eq!(idx.block_max(1), 7);
        assert_eq!(idx.block_max(2), 8);
        assert_eq!(idx.block_of(4), 1);
        assert_eq!(idx.next_block_start(4), 6);
        assert_eq!(idx.block_size(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn builds_from_postings() {
        let postings = vec![
            Posting {
                doc_id: 2,
                score: 4,
            },
            Posting {
                doc_id: 7,
                score: 6,
            },
            Posting {
                doc_id: 9,
                score: 1,
            },
        ];
        let idx = BmwIndex::from_postings(postings, 2);
        assert_eq!(idx.num_blocks(), 2);
        assert_eq!(idx.block_max(0), 6);
        assert_eq!(idx.block_max(1), 1);
    }

    #[test]
    #[should_panic(expected = "sorted by strictly increasing doc id")]
    fn rejects_unsorted_postings() {
        BmwIndex::from_postings(
            vec![
                Posting {
                    doc_id: 5,
                    score: 1,
                },
                Posting {
                    doc_id: 2,
                    score: 2,
                },
            ],
            2,
        );
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn rejects_zero_block_size() {
        BmwIndex::from_scores(&[1, 2, 3], 0);
    }

    #[test]
    fn empty_scores() {
        let idx = BmwIndex::<u32>::from_scores(&[], 4);
        assert!(idx.is_empty());
        assert_eq!(idx.num_blocks(), 0);
    }

    #[test]
    fn float_scores_build_total_order_block_maxima() {
        let scores = vec![0.5f32, -1.0, 2.25, f32::NEG_INFINITY, 0.0, 1.5];
        let idx = BmwIndex::from_scores(&scores, 2);
        assert_eq!(idx.num_blocks(), 3);
        assert_eq!(idx.block_max(0), 0.5);
        assert_eq!(idx.block_max(1), 2.25);
        assert_eq!(idx.block_max(2), 1.5);
    }
}
