//! # bmw-baseline — Block-Max WAND for the Figure 24 workload comparison
//!
//! Section 4.4 of the paper contrasts Dr. Top-k with BMW (Ding & Suel,
//! SIGIR'11), the classic information-retrieval algorithm that also exploits
//! per-block maxima: BMW partitions each posting list into blocks, stores
//! the maximum score of every block, and skips a *document* when the sum of
//! the block maxima covering it cannot beat the current top-k threshold λ.
//!
//! The key distinction the paper demonstrates (Figure 24) is that BMW is
//! *element-centric*: even when a block's maximum is promising, BMW still
//! evaluates the documents of that block one at a time, whereas Dr. Top-k
//! uses one delegate comparison to admit or skip an entire subrange. The
//! comparison metric is therefore the **fully evaluated workload** — how many
//! elements each approach actually has to look at after its pruning — which
//! this crate measures for BMW over the same score vectors Dr. Top-k is
//! evaluated on (the single-term query case, where the score vector *is* the
//! posting list).

pub mod index;
pub mod wand;

pub use index::{BmwIndex, Posting};
pub use wand::{bmw_topk, wand_topk, BmwStats};
