//! Delegate vector construction (Sections 4.1, 4.3 and 5.3 of the paper).
//!
//! The input vector is partitioned into subranges of `2^α` elements. From
//! each subrange the construction extracts its top `β` elements — the
//! *delegates* — together with the subrange id, producing the delegate
//! vector the first top-k runs on.
//!
//! Two construction kernels are implemented:
//!
//! * **warp-centric** ([`ConstructionMethod::WarpShuffle`]) — one warp scans
//!   one subrange; each lane keeps a running maximum and the warp combines
//!   lanes with `__shfl_sync` butterfly reductions (31 shuffles per reduction,
//!   β reductions per subrange). This is the paper's baseline construction
//!   and achieves near-peak bandwidth for large subranges.
//! * **coalesced-load-to-shared + strided-compute**
//!   ([`ConstructionMethod::CoalescedShared`]) — for small subranges
//!   (α ≤ 5, which Rule 4 produces when k is large) a warp first stages 32
//!   subranges in shared memory with fully coalesced loads (padded to avoid
//!   bank conflicts) and then each *thread* extracts the delegates of one
//!   subrange privately, eliminating the shuffle traffic entirely
//!   (Section 5.3, Figure 15).

use gpu_sim::{Device, KernelStats, WARP_SIZE};
use topk_baselines::TopKKey;

/// How the delegate vector is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructionMethod {
    /// One warp per subrange, shuffle-based reduction (baseline).
    WarpShuffle,
    /// Coalesced staging of 32 subranges into shared memory, one thread per
    /// subrange (the Section 5.3 optimization).
    CoalescedShared,
    /// Pick automatically: [`CoalescedShared`](ConstructionMethod::CoalescedShared)
    /// when the subrange is too small to keep a warp busy (α ≤ 5), otherwise
    /// [`WarpShuffle`](ConstructionMethod::WarpShuffle).
    Auto,
}

impl ConstructionMethod {
    /// Resolve [`ConstructionMethod::Auto`] for a given subrange exponent.
    pub fn resolve(self, alpha: u32) -> ConstructionMethod {
        match self {
            ConstructionMethod::Auto => {
                if alpha <= 5 {
                    ConstructionMethod::CoalescedShared
                } else {
                    ConstructionMethod::WarpShuffle
                }
            }
            other => other,
        }
    }
}

/// The delegate vector: `β` (value, subrange id) entries per subrange,
/// stored as two parallel columns (structure of arrays).
#[derive(Debug, Clone)]
pub struct DelegateVector<K: TopKKey = u32> {
    /// Delegate values, `β` consecutive entries per subrange, each subrange's
    /// entries in descending order.
    pub values: Vec<K>,
    /// Subrange id of each delegate entry (parallel to `values`).
    pub subrange_ids: Vec<u32>,
    /// Number of delegates extracted per subrange.
    pub beta: usize,
    /// Subrange size `2^α`.
    pub subrange_size: usize,
    /// Number of subranges (`⌈|V| / 2^α⌉`).
    pub num_subranges: usize,
    /// Which construction kernel actually ran.
    pub method: ConstructionMethod,
    /// Counters accumulated by the construction kernel.
    pub stats: KernelStats,
    /// Modeled construction time in milliseconds.
    pub time_ms: f64,
}

impl<K: TopKKey> DelegateVector<K> {
    /// Total number of delegate entries (`num_subranges × β`, minus the
    /// entries that short final subranges could not fill).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the delegate vector is empty (empty input).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Extract the top `beta` values of `slice` in descending key order (β is
/// tiny — 1 to 4 — so a simple insertion pass beats sorting). Comparisons
/// run in the key's order-preserving radix space. Shared with the row-block
/// fused pass ([`crate::rows`]), which extracts per-row delegates inside a
/// single kernel launch.
#[inline]
pub(crate) fn top_beta_of<K: TopKKey>(slice: &[K], beta: usize, out: &mut Vec<K>) {
    out.clear();
    for &x in slice {
        let xb = x.to_bits();
        if out.len() < beta {
            let pos = out.partition_point(|y| y.to_bits() >= xb);
            out.insert(pos, x);
        } else if xb > out.last().unwrap().to_bits() {
            out.pop();
            let pos = out.partition_point(|y| y.to_bits() >= xb);
            out.insert(pos, x);
        }
    }
}

/// Build the delegate vector of `data` for subrange size `2^alpha` and `beta`
/// delegates per subrange.
pub fn build_delegate_vector<K: TopKKey>(
    device: &Device,
    data: &[K],
    alpha: u32,
    beta: usize,
    method: ConstructionMethod,
) -> DelegateVector<K> {
    assert!(beta >= 1, "beta must be at least 1");
    assert!((1..32).contains(&alpha), "alpha must be in 1..32");
    let subrange_size = 1usize << alpha;
    let num_subranges = data.len().div_ceil(subrange_size);
    let method = method.resolve(alpha);

    if data.is_empty() {
        return DelegateVector {
            values: Vec::new(),
            subrange_ids: Vec::new(),
            beta,
            subrange_size,
            num_subranges: 0,
            method,
            stats: KernelStats::default(),
            time_ms: 0.0,
        };
    }

    // Each simulated warp handles a contiguous run of subranges; cap the
    // warp count so tiny subranges do not explode the simulation overhead.
    let num_warps = num_subranges.clamp(1, 1 << 14);

    let kernel_name = match method {
        ConstructionMethod::WarpShuffle => "drtopk_delegate_construction_warp",
        ConstructionMethod::CoalescedShared => "drtopk_delegate_construction_coalesced",
        ConstructionMethod::Auto => unreachable!("resolved above"),
    };

    // One (key, subrange id) pair per delegate entry, expressed in u32-sized
    // words so the charged store bytes stay exact for 8-byte keys.
    let kv_words = 1 + std::mem::size_of::<K>() / std::mem::size_of::<u32>();

    let launch = device.launch(kernel_name, num_warps, |ctx| {
        let subranges = ctx.chunk_of(num_subranges);
        let mut values: Vec<K> = Vec::with_capacity(subranges.len() * beta);
        let mut ids: Vec<u32> = Vec::with_capacity(subranges.len() * beta);
        let mut scratch: Vec<K> = Vec::with_capacity(beta);
        match method {
            ConstructionMethod::WarpShuffle => {
                for s in subranges {
                    let start = s * subrange_size;
                    let end = ((s + 1) * subrange_size).min(data.len());
                    let slice = ctx.read_coalesced(&data[start..end]);
                    ctx.record_alu(slice.len() as u64);
                    top_beta_of(slice, beta, &mut scratch);
                    // β warp reductions to agree on the top-β of the subrange
                    for &v in &scratch {
                        ctx.warp_reduce_max(v.to_bits());
                        values.push(v);
                        ids.push(s as u32);
                    }
                    // delegate (value, id) pair written to global memory
                    ctx.record_store_coalesced::<u32>(kv_words * scratch.len());
                }
            }
            ConstructionMethod::CoalescedShared => {
                // Stage WARP_SIZE subranges at a time: the warp loads them
                // coalesced into (padded) shared memory, then each thread
                // extracts the delegates of one subrange without any shuffle.
                let mut iter = subranges.clone().peekable();
                while iter.peek().is_some() {
                    let group: Vec<usize> = iter.by_ref().take(WARP_SIZE).collect();
                    let group_start = group[0] * subrange_size;
                    let group_end = ((group[group.len() - 1] + 1) * subrange_size).min(data.len());
                    let staged = ctx.read_coalesced(&data[group_start..group_end]);
                    // shared-memory staging: one store per element (padded →
                    // conflict free), then each thread reads its subrange
                    // back (strided by the padded pitch → conflict free).
                    ctx.record_shared(2 * staged.len() as u64);
                    ctx.record_alu(staged.len() as u64);
                    ctx.syncthreads();
                    for &s in &group {
                        let start = s * subrange_size;
                        let end = ((s + 1) * subrange_size).min(data.len());
                        top_beta_of(&data[start..end], beta, &mut scratch);
                        for &v in &scratch {
                            values.push(v);
                            ids.push(s as u32);
                        }
                        ctx.record_store_coalesced::<u32>(kv_words * scratch.len());
                    }
                }
            }
            ConstructionMethod::Auto => unreachable!(),
        }
        (values, ids)
    });

    let mut values = Vec::with_capacity(num_subranges * beta);
    let mut subrange_ids = Vec::with_capacity(num_subranges * beta);
    for (v, i) in launch.output {
        values.extend(v);
        subrange_ids.extend(i);
    }

    DelegateVector {
        values,
        subrange_ids,
        beta,
        subrange_size,
        num_subranges,
        method,
        stats: launch.stats,
        time_ms: launch.time_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    fn reference_delegates(data: &[u32], alpha: u32, beta: usize) -> (Vec<u32>, Vec<u32>) {
        let size = 1usize << alpha;
        let mut values = Vec::new();
        let mut ids = Vec::new();
        for (s, chunk) in data.chunks(size).enumerate() {
            let mut sorted: Vec<u32> = chunk.to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.truncate(beta);
            for v in sorted {
                values.push(v);
                ids.push(s as u32);
            }
        }
        (values, ids)
    }

    #[test]
    fn max_delegate_matches_reference() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 3);
        for alpha in [4u32, 8, 10] {
            let dv = build_delegate_vector(&dev, &data, alpha, 1, ConstructionMethod::WarpShuffle);
            let (vals, ids) = reference_delegates(&data, alpha, 1);
            assert_eq!(dv.values, vals, "alpha={alpha}");
            assert_eq!(dv.subrange_ids, ids);
            assert_eq!(dv.num_subranges, data.len().div_ceil(1 << alpha));
        }
    }

    #[test]
    fn beta_delegates_match_reference_for_both_methods() {
        let dev = device();
        let data = topk_datagen::customized(10_000, 5);
        for beta in [2usize, 3] {
            for method in [
                ConstructionMethod::WarpShuffle,
                ConstructionMethod::CoalescedShared,
            ] {
                let dv = build_delegate_vector(&dev, &data, 6, beta, method);
                let (vals, ids) = reference_delegates(&data, 6, beta);
                assert_eq!(dv.values, vals, "beta={beta} {method:?}");
                assert_eq!(dv.subrange_ids, ids);
            }
        }
    }

    #[test]
    fn short_final_subrange_is_handled() {
        let dev = device();
        let data: Vec<u32> = (0..1000u32).collect(); // not a multiple of 2^α
        let dv = build_delegate_vector(&dev, &data, 8, 2, ConstructionMethod::Auto);
        assert_eq!(dv.num_subranges, 4);
        // last subrange has 1000 - 768 = 232 elements, still 2 delegates
        assert_eq!(dv.len(), 8);
        assert_eq!(dv.values[6], 999);
        assert_eq!(dv.values[7], 998);
        assert_eq!(dv.subrange_ids[6], 3);
    }

    #[test]
    fn subrange_smaller_than_beta_yields_fewer_entries() {
        let dev = device();
        let data: Vec<u32> = vec![10, 20, 30, 40, 50];
        let dv = build_delegate_vector(&dev, &data, 2, 3, ConstructionMethod::WarpShuffle);
        // subrange 0 = [10,20,30,40] -> 3 delegates; subrange 1 = [50] -> 1
        assert_eq!(dv.values, vec![40, 30, 20, 50]);
        assert_eq!(dv.subrange_ids, vec![0, 0, 0, 1]);
    }

    #[test]
    fn auto_switches_method_on_alpha() {
        assert_eq!(
            ConstructionMethod::Auto.resolve(4),
            ConstructionMethod::CoalescedShared
        );
        assert_eq!(
            ConstructionMethod::Auto.resolve(12),
            ConstructionMethod::WarpShuffle
        );
        assert_eq!(
            ConstructionMethod::WarpShuffle.resolve(4),
            ConstructionMethod::WarpShuffle
        );
    }

    #[test]
    fn coalesced_method_eliminates_shuffles() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 16, 1);
        let warp = build_delegate_vector(&dev, &data, 4, 2, ConstructionMethod::WarpShuffle);
        let coal = build_delegate_vector(&dev, &data, 4, 2, ConstructionMethod::CoalescedShared);
        assert_eq!(warp.values, coal.values);
        assert!(warp.stats.shuffle_instructions > 0);
        assert_eq!(coal.stats.shuffle_instructions, 0);
        assert!(coal.stats.shared_ops > 0);
        // the optimization is what Figure 15 shows: less modeled time for
        // small subranges / β delegates
        assert!(coal.time_ms < warp.time_ms);
    }

    #[test]
    fn construction_reads_whole_vector_once() {
        let dev = device();
        let n = 1 << 16;
        let data = topk_datagen::uniform(n, 1);
        let dv = build_delegate_vector(&dev, &data, 8, 1, ConstructionMethod::WarpShuffle);
        let loaded = dv.stats.global_loaded_bytes;
        assert!(
            loaded >= (n * 4) as u64 && loaded < (n * 4) as u64 * 11 / 10,
            "expected ~|V| loads, got {loaded}"
        );
        // stores are only the delegate entries
        assert!(dv.stats.global_stored_bytes <= (dv.len() * 8 + 64) as u64);
    }

    #[test]
    fn empty_input() {
        let dev = device();
        let dv = build_delegate_vector::<u32>(&dev, &[], 8, 2, ConstructionMethod::Auto);
        assert!(dv.is_empty());
        assert_eq!(dv.num_subranges, 0);
    }

    #[test]
    #[should_panic(expected = "beta must be at least 1")]
    fn zero_beta_panics() {
        let dev = device();
        build_delegate_vector(&dev, &[1, 2, 3], 2, 0, ConstructionMethod::Auto);
    }
}
