//! Row-wise matrix top-k: the whole `rows × cols` matrix planned as **one
//! stage graph** (going beyond the paper; see RTop-K / RadiK in
//! `PAPERS.md`).
//!
//! The paper's pipeline answers top-k over one vector. The dominant
//! consumers of GPU top-k in 2026 — MoE gating, beam search, sparse
//! attention — need the top-k of *every row* of an activation matrix, with
//! tiny per-row k and huge row counts. Running the single-vector pipeline
//! once per row would launch a delegate pass per row; [`topk_rows`] instead
//! packs rows into per-device **row-blocks** and runs **one fused pass per
//! block**: a single kernel launch that reads each block's row slab once
//! (coalesced) and extracts, per row, either the row's per-subrange
//! delegates (the exact and approximate paths) or the row's sorted top-k
//! directly (rows whose shape makes the single-vector pipeline fall back to
//! its inner algorithm). The remaining phases — first top-k, concatenation,
//! second top-k — run once per block over the rows that need them, so an
//! `R`-row matrix on `D` devices runs at most `⌈R / rows_per_block⌉`
//! delegate passes instead of `R`.
//!
//! Per-row results are **bit-identical** to running [`dr_topk`] (or
//! [`dr_topk_min`] through [`RowTopKResult::into_native`]) on each row
//! independently: every row is planned with the same [`PlannedQuery`]
//! machinery and executed with the same delegate extraction
//! (`top_beta_of` per subrange), the same `first_topk` / `concatenate`
//! phases and the same second-top-k skip rule.
//!
//! [`dr_topk`]: crate::pipeline::dr_topk
//! [`dr_topk_min`]: crate::pipeline::dr_topk_min

// Approved `std::sync` lock holder (see clippy.toml + ARCHITECTURE.md):
// the row-block stage-graph context keeps its per-block phase buffers in
// mutex slots, as the executor's `&C` sharing rule requires.
#![allow(clippy::disallowed_types)]

use gpu_sim::{Device, GpuCluster, KernelStats};
use std::cmp::Reverse;
use std::sync::Mutex;
use topk_baselines::{Desc, TopKKey, TopKResult};

use crate::concat::{concatenate, Concatenated};
use crate::delegate::{top_beta_of, DelegateVector};
use crate::explore::{explore_schedules, Divergence, ExploreBudget, ExploreOutcome};
use crate::first_topk::{first_topk, FirstTopK};
use crate::pipeline::{as_desc, DrTopKConfig, PhaseBreakdown, PlannedQuery};
use crate::stages::{Executor, Resource, StageGraph, StageKind, StageOutcome, StageReport};

/// A borrowed row-major `rows × cols` matrix.
///
/// Invariant (checked by [`RowMatrix::new`]): `data.len() == rows * cols`;
/// row `r` is `data[r * cols .. (r + 1) * cols]`.
#[derive(Debug, Clone, Copy)]
pub struct RowMatrix<'a, K: TopKKey = u32> {
    /// The backing storage, row-major.
    pub data: &'a [K],
    /// Number of rows.
    pub rows: usize,
    /// Number of columns (elements per row).
    pub cols: usize,
}

impl<'a, K: TopKKey> RowMatrix<'a, K> {
    /// Wrap a row-major slice as a matrix.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn new(data: &'a [K], rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "row-major matrix: data length must be rows * cols"
        );
        RowMatrix { data, rows, cols }
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &'a [K] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reinterpret the matrix through the order-reversing [`Desc`] adapter
    /// (no copy): max-machinery over the result answers per-row *min*
    /// queries. See [`as_desc`].
    pub fn as_desc(&self) -> RowMatrix<'a, Desc<K>> {
        RowMatrix {
            data: as_desc(self.data),
            rows: self.rows,
            cols: self.cols,
        }
    }
}

/// Per-row k specification: one k for every row, or an explicit k per row.
///
/// Ks larger than `cols` are clamped per row (exactly as
/// [`PlannedQuery::plan`] clamps `k` to the input length); `k = 0` rows
/// return empty selections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowK {
    /// The same k for every row.
    Uniform(usize),
    /// `ks[r]` is row `r`'s k; the vector length must equal the row count.
    PerRow(Vec<usize>),
}

impl RowK {
    /// Row `r`'s requested k (before clamping to `cols`).
    pub fn get(&self, row: usize) -> usize {
        match self {
            RowK::Uniform(k) => *k,
            RowK::PerRow(ks) => ks[row],
        }
    }

    /// Assert the specification covers exactly `rows` rows.
    pub fn validate(&self, rows: usize) {
        if let RowK::PerRow(ks) = self {
            assert_eq!(
                ks.len(),
                rows,
                "per-row k vector length must equal the row count"
            );
        }
    }
}

/// Result of a [`topk_rows`] run.
#[derive(Debug, Clone)]
pub struct RowTopKResult<K: TopKKey = u32> {
    /// Per-row selections, in row order. Values and `kth_value` are
    /// bit-identical to running the single-vector pipeline on each row;
    /// per-row `stats`/`time_ms` are zero — kernel counters are accounted
    /// at block granularity in [`stats`](RowTopKResult::stats) and
    /// [`stages`](RowTopKResult::stages), because a fused pass's cost has
    /// no meaningful per-row attribution.
    pub rows: Vec<TopKResult<K>>,
    /// Number of row-blocks the matrix was split into.
    pub num_blocks: usize,
    /// Rows per block the run was planned with.
    pub rows_per_block: usize,
    /// Number of fused delegate passes that ran — one per block that had
    /// any work, never one per row (≤ `⌈rows / rows_per_block⌉`).
    pub delegate_passes: usize,
    /// Per-phase modeled times, derived from the executed schedule.
    pub breakdown: PhaseBreakdown,
    /// Kernel counters accumulated across every stage of the run.
    pub stats: KernelStats,
    /// Modeled makespan of the whole matrix in milliseconds.
    pub time_ms: f64,
    /// The executed stage schedule (row-span labels identify each block's
    /// stages in traces).
    pub stages: StageReport,
    /// Minimum plan-time expected recall across rows: 1.0 when every row
    /// ran an exact plan, the weakest row's modeled recall otherwise.
    pub predicted_recall: f64,
}

impl<K: TopKKey> RowTopKResult<Desc<K>> {
    /// Unwrap a result computed in [`Desc`] space back to native keys
    /// (each row ascending, for smallest-direction queries).
    pub fn into_native(self) -> RowTopKResult<K> {
        RowTopKResult {
            rows: self
                .rows
                .into_iter()
                .map(|r| TopKResult {
                    values: r.values.into_iter().map(|d| d.0).collect(),
                    kth_value: r.kth_value.0,
                    stats: r.stats,
                    time_ms: r.time_ms,
                })
                .collect(),
            num_blocks: self.num_blocks,
            rows_per_block: self.rows_per_block,
            delegate_passes: self.delegate_passes,
            breakdown: self.breakdown,
            stats: self.stats,
            time_ms: self.time_ms,
            stages: self.stages,
            predicted_recall: self.predicted_recall,
        }
    }
}

/// Which execution path a row's plan resolved to — the row-block mirror of
/// the single-vector pipeline's routing in
/// [`dr_topk_planned`](crate::pipeline::dr_topk_planned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowPath {
    /// `k = 0` or an empty row: the selection is empty, no kernel touches it.
    Skip,
    /// The plan fell back to the inner algorithm (tiny row, k ≥ row, k not
    /// smaller than the delegate vector). The fused pass answers it from
    /// the slab read directly.
    Direct,
    /// The exact delegate pipeline: delegates → first top-k →
    /// concatenation → second top-k.
    Exact,
    /// The recall-targeted approximate path: per-bucket candidates →
    /// second top-k.
    Approx,
}

/// The planned layout of a matrix run: per-row plans and paths plus the
/// block geometry. Computed once; borrowed by every stage closure (and
/// rebuilt-from by the schedule explorer).
struct RowLayout {
    /// Per-row resolved plan (k clamped, α pinned, mode normalised).
    plans: Vec<PlannedQuery>,
    /// Per-row execution path derived from the plan.
    paths: Vec<RowPath>,
    /// Rows per block.
    rows_per_block: usize,
    /// Total blocks (`⌈rows / rows_per_block⌉`).
    num_blocks: usize,
    /// Minimum plan-time recall across non-skip rows (1.0 when none).
    predicted_recall: f64,
}

impl RowLayout {
    fn block_span(&self, b: usize, rows: usize) -> (usize, usize) {
        let start = b * self.rows_per_block;
        let end = ((b + 1) * self.rows_per_block).min(rows);
        (start, end)
    }
}

fn layout_rows<K: TopKKey>(
    matrix: &RowMatrix<'_, K>,
    ks: &RowK,
    config: &DrTopKConfig,
    rows_per_block: usize,
) -> RowLayout {
    ks.validate(matrix.rows);
    let rows_per_block = rows_per_block.max(1);
    // Plans depend only on (cols, k, config); memoise by k so a uniform-k
    // matrix plans once, not once per row.
    let mut memo: std::collections::BTreeMap<usize, PlannedQuery> =
        std::collections::BTreeMap::new();
    let mut plans = Vec::with_capacity(matrix.rows);
    let mut paths = Vec::with_capacity(matrix.rows);
    let mut predicted_recall = 1.0f64;
    for r in 0..matrix.rows {
        let k = ks.get(r);
        let planned = memo
            .entry(k)
            .or_insert_with(|| PlannedQuery::plan(matrix.cols, k, config))
            .clone();
        let path = if planned.k == 0 || matrix.cols == 0 {
            RowPath::Skip
        } else if !planned.use_delegates {
            RowPath::Direct
        } else if planned.config.mode.strict_target().is_some() {
            RowPath::Approx
        } else {
            RowPath::Exact
        };
        if path != RowPath::Skip {
            predicted_recall = predicted_recall.min(planned.predicted_recall);
        }
        plans.push(planned);
        paths.push(path);
    }
    RowLayout {
        plans,
        paths,
        rows_per_block,
        num_blocks: matrix.rows.div_ceil(rows_per_block),
        predicted_recall,
    }
}

/// What the fused pass produced for one row.
enum RowPass<K: TopKKey> {
    /// The row's delegate (or per-bucket candidate) vector, extracted
    /// inside the fused kernel — identical values/ids to
    /// [`build_delegate_vector`](crate::delegate::build_delegate_vector)
    /// on the row alone.
    Delegates(DelegateVector<K>),
    /// A fallback row's answer, sorted descending in radix space and
    /// truncated to k — bit-identical to the values an exact inner
    /// algorithm returns for the row.
    Sorted(Vec<K>),
}

/// Per-block phase buffers, one slot per local row.
struct BlockState<K: TopKKey> {
    pass: Vec<Option<RowPass<K>>>,
    first: Vec<Option<FirstTopK<K>>>,
    concat: Vec<Option<Concatenated<K>>>,
    out: Vec<Option<(Vec<K>, K)>>,
}

/// The row-block stage-graph context: one mutex per block, so blocks on
/// different devices never contend.
struct RowsCtx<K: TopKKey> {
    blocks: Vec<Mutex<BlockState<K>>>,
}

/// Build the matrix's stage graph: per block with any work, a fused pass
/// stage, then (when the block has exact-path rows) first-top-k and
/// concatenation stages, then always a terminal second-top-k stage.
/// Returns the graph, its context and the number of fused pass stages.
fn build_rows_graph<'a, K: TopKKey>(
    devices: &'a [&'a Device],
    matrix: RowMatrix<'a, K>,
    layout: &'a RowLayout,
) -> (StageGraph<'a, RowsCtx<K>>, RowsCtx<K>, usize) {
    let mut graph: StageGraph<'a, RowsCtx<K>> = StageGraph::new();
    let mut blocks = Vec::with_capacity(layout.num_blocks);
    let mut passes = 0usize;

    for b in 0..layout.num_blocks {
        let (start, end) = layout.block_span(b, matrix.rows);
        let block_len = end - start;
        blocks.push(Mutex::new(BlockState {
            pass: (0..block_len).map(|_| None).collect(),
            first: (0..block_len).map(|_| None).collect(),
            concat: (0..block_len).map(|_| None).collect(),
            out: (0..block_len).map(|_| None).collect(),
        }));

        let paths = &layout.paths[start..end];
        if paths.iter().all(|p| *p == RowPath::Skip) {
            continue; // nothing to compute; the gather fills defaults
        }
        let has_exact = paths.contains(&RowPath::Exact);
        let has_approx = paths.contains(&RowPath::Approx);
        let device_idx = b % devices.len();
        let device = devices[device_idx];
        let resource = Resource::Compute(device_idx);

        // Phase 1: the fused pass — one kernel launch for the whole block.
        // Kind mirrors the single-vector pipeline's phase-1 stage: a
        // delegate construction when any row runs the exact pipeline, the
        // approximate candidate pass when the block is purely approximate
        // (pure-fallback blocks keep the construction kind: the pass still
        // *is* the block's one slab-reading pass).
        let pass_kind = if !has_exact && has_approx {
            StageKind::BucketTopKPrime
        } else {
            StageKind::DelegateConstruction
        };
        passes += 1;
        let pass_id = graph.add_labeled(
            pass_kind,
            format!("rows {start}..{end} fused pass"),
            resource,
            &[],
            move |ctx: &RowsCtx<K>| {
                let kv_words = 1 + std::mem::size_of::<K>() / std::mem::size_of::<u32>();
                let num_warps = block_len.clamp(1, 1 << 14);
                let launch = device.launch("drtopk_rows_fused_pass", num_warps, |kctx| {
                    let local = kctx.chunk_of(block_len);
                    let mut out: Vec<(usize, RowPass<K>)> = Vec::new();
                    let mut scratch: Vec<K> = Vec::new();
                    let mut i = local.start;
                    while i < local.end {
                        if layout.paths[start + i] == RowPath::Skip {
                            i += 1;
                            continue;
                        }
                        // Extend to the contiguous run of active rows: the
                        // warp reads the whole slab with ONE coalesced
                        // access — this is the fused pass's transaction
                        // saving over per-row pipeline runs.
                        let mut j = i + 1;
                        while j < local.end && layout.paths[start + j] != RowPath::Skip {
                            j += 1;
                        }
                        let slab_start = (start + i) * matrix.cols;
                        let slab_end = (start + j) * matrix.cols;
                        let slab = kctx.read_coalesced(&matrix.data[slab_start..slab_end]);
                        kctx.record_alu(slab.len() as u64);
                        for l in i..j {
                            let r = start + l;
                            let row = &slab[(l - i) * matrix.cols..(l - i + 1) * matrix.cols];
                            let planned = &layout.plans[r];
                            match layout.paths[r] {
                                RowPath::Skip => unreachable!("runs exclude skip rows"),
                                RowPath::Direct => {
                                    // The inner algorithm's exact answer is
                                    // the unique descending top-k sequence
                                    // in radix space; produce it straight
                                    // from the slab.
                                    let mut vals = row.to_vec();
                                    vals.sort_unstable_by_key(|v| Reverse(v.to_bits()));
                                    vals.truncate(planned.k);
                                    kctx.record_store_coalesced::<u32>(kv_words * vals.len());
                                    out.push((l, RowPass::Sorted(vals)));
                                }
                                RowPath::Exact | RowPath::Approx => {
                                    let alpha = planned.alpha;
                                    let subrange_size = 1usize << alpha;
                                    let beta = planned.config.beta;
                                    let num_subranges = matrix.cols.div_ceil(subrange_size);
                                    let mut values = Vec::with_capacity(num_subranges * beta);
                                    let mut ids = Vec::with_capacity(num_subranges * beta);
                                    for s in 0..num_subranges {
                                        let sub_end = ((s + 1) * subrange_size).min(matrix.cols);
                                        top_beta_of(
                                            &row[s * subrange_size..sub_end],
                                            beta,
                                            &mut scratch,
                                        );
                                        for &v in &scratch {
                                            values.push(v);
                                            ids.push(s as u32);
                                        }
                                    }
                                    kctx.record_store_coalesced::<u32>(kv_words * values.len());
                                    out.push((
                                        l,
                                        RowPass::Delegates(DelegateVector {
                                            values,
                                            subrange_ids: ids,
                                            beta,
                                            subrange_size,
                                            num_subranges,
                                            method: planned.config.construction.resolve(alpha),
                                            stats: KernelStats::default(),
                                            time_ms: 0.0,
                                        }),
                                    ));
                                }
                            }
                        }
                        i = j;
                    }
                    out
                });
                let mut block = ctx.blocks[b].lock().unwrap();
                for (l, pass) in launch.output.into_iter().flatten() {
                    block.pass[l] = Some(pass);
                }
                StageOutcome {
                    stats: launch.stats,
                    time_ms: launch.time_ms,
                }
            },
        );

        // Phases 2 and 3 exist only when the block has exact-path rows.
        let mut second_dep = pass_id;
        if has_exact {
            let first_id = graph.add_labeled(
                StageKind::FirstTopK,
                format!("rows {start}..{end} first top-k"),
                resource,
                &[pass_id],
                move |ctx: &RowsCtx<K>| {
                    let mut stats = KernelStats::default();
                    let mut time_ms = 0.0;
                    let mut block = ctx.blocks[b].lock().unwrap();
                    let BlockState { pass, first, .. } = &mut *block;
                    for l in 0..block_len {
                        let r = start + l;
                        if layout.paths[r] != RowPath::Exact {
                            continue;
                        }
                        let planned = &layout.plans[r];
                        let Some(RowPass::Delegates(dv)) = pass[l].as_ref() else {
                            unreachable!("the fused pass built this row's delegates")
                        };
                        let f =
                            first_topk(device, dv, planned.k, planned.config.resolve_skip_last());
                        stats.merge(&f.stats);
                        time_ms += f.time_ms;
                        first[l] = Some(f);
                    }
                    StageOutcome { stats, time_ms }
                },
            );
            let concat_id = graph.add_labeled(
                StageKind::Concatenate,
                format!("rows {start}..{end} concatenate"),
                resource,
                &[first_id],
                move |ctx: &RowsCtx<K>| {
                    let mut stats = KernelStats::default();
                    let mut time_ms = 0.0;
                    let mut block = ctx.blocks[b].lock().unwrap();
                    let BlockState {
                        pass,
                        first,
                        concat,
                        ..
                    } = &mut *block;
                    for l in 0..block_len {
                        let r = start + l;
                        if layout.paths[r] != RowPath::Exact {
                            continue;
                        }
                        let planned = &layout.plans[r];
                        let Some(RowPass::Delegates(dv)) = pass[l].as_ref() else {
                            unreachable!("the fused pass built this row's delegates")
                        };
                        let f = first[l].as_ref().expect("first top-k ran for this row");
                        let c = concatenate(
                            device,
                            matrix.row(r),
                            dv.subrange_size,
                            &f.fully_taken_subranges,
                            &f.partial_delegate_values,
                            f.threshold,
                            planned.config.filtering,
                        );
                        stats.merge(&c.stats);
                        time_ms += c.time_ms;
                        concat[l] = Some(c);
                    }
                    StageOutcome { stats, time_ms }
                },
            );
            second_dep = concat_id;
        }

        // Phase 4: the terminal second top-k settles every row of the block.
        graph.add_labeled(
            StageKind::SecondTopK,
            format!("rows {start}..{end} second top-k"),
            resource,
            &[second_dep],
            move |ctx: &RowsCtx<K>| {
                let mut stats = KernelStats::default();
                let mut time_ms = 0.0;
                let mut block = ctx.blocks[b].lock().unwrap();
                let BlockState {
                    pass,
                    first,
                    concat,
                    out,
                } = &mut *block;
                for l in 0..block_len {
                    let r = start + l;
                    let planned = &layout.plans[r];
                    match layout.paths[r] {
                        RowPath::Skip => {
                            out[l] = Some((Vec::new(), K::default()));
                        }
                        RowPath::Direct => {
                            let Some(RowPass::Sorted(vals)) = pass[l].take() else {
                                unreachable!("the fused pass answered this row")
                            };
                            let kth = vals.last().copied().unwrap_or_default();
                            out[l] = Some((vals, kth));
                        }
                        RowPath::Approx => {
                            let Some(RowPass::Delegates(dv)) = pass[l].as_ref() else {
                                unreachable!("the fused pass built this row's candidates")
                            };
                            let inner = planned.config.inner.run(device, &dv.values, planned.k);
                            stats.merge(&inner.stats);
                            time_ms += inner.time_ms;
                            out[l] = Some((inner.values, inner.kth_value));
                        }
                        RowPath::Exact => {
                            let f = first[l].as_ref().expect("first top-k ran for this row");
                            let c = concat[l].as_ref().expect("concatenation ran for this row");
                            // Same skip rule as the single-vector pipeline
                            // (Figure 8b): the taken delegates alone answer
                            // the query exactly.
                            let skipped = f.fully_taken_subranges.is_empty()
                                && f.exact_threshold
                                && c.elements.len() == planned.k;
                            if skipped {
                                let mut vals = c.elements.clone();
                                vals.sort_unstable_by_key(|v| Reverse(v.to_bits()));
                                let kth = vals.last().copied().unwrap_or_default();
                                out[l] = Some((vals, kth));
                            } else {
                                let inner =
                                    planned.config.inner.run(device, &c.elements, planned.k);
                                stats.merge(&inner.stats);
                                time_ms += inner.time_ms;
                                out[l] = Some((inner.values, inner.kth_value));
                            }
                        }
                    }
                }
                StageOutcome { stats, time_ms }
            },
        );
    }

    (graph, RowsCtx { blocks }, passes)
}

/// Assemble the per-row results and schedule-derived aggregates.
fn gather_result<K: TopKKey>(
    layout: &RowLayout,
    rows: usize,
    ctx: RowsCtx<K>,
    report: StageReport,
    passes: usize,
) -> RowTopKResult<K> {
    let mut out_rows = Vec::with_capacity(rows);
    for (b, block) in ctx.blocks.into_iter().enumerate() {
        let block = block.into_inner().unwrap();
        let (start, end) = layout.block_span(b, rows);
        debug_assert_eq!(block.out.len(), end - start);
        for slot in block.out {
            let (values, kth_value) = slot.unwrap_or_else(|| (Vec::new(), K::default()));
            out_rows.push(TopKResult {
                values,
                kth_value,
                stats: KernelStats::default(),
                time_ms: 0.0,
            });
        }
    }
    RowTopKResult {
        rows: out_rows,
        num_blocks: layout.num_blocks,
        rows_per_block: layout.rows_per_block,
        delegate_passes: passes,
        breakdown: report.phase_breakdown(),
        stats: report.stats(),
        time_ms: report.makespan_ms,
        predicted_recall: layout.predicted_recall,
        stages: report,
    }
}

/// Row-wise top-k-largest over every row of `matrix`, planned as one stage
/// graph with `⌈rows / num_devices⌉` rows per block (one block per device).
///
/// Each row's values are bit-identical to
/// [`dr_topk`](crate::pipeline::dr_topk) on that row with the same
/// `config`; see the module docs for how the fused per-block pass achieves
/// that with one delegate pass per block instead of one per row.
///
/// ```
/// use drtopk_core::{topk_rows, DrTopKConfig, RowK, RowMatrix};
/// use gpu_sim::{DeviceSpec, GpuCluster};
///
/// let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
/// let data: Vec<u32> = (0..8 * 1024u32).map(|x| x.wrapping_mul(2654435761)).collect();
/// let matrix = RowMatrix::new(&data, 8, 1024);
/// let result = topk_rows(&cluster, matrix, &RowK::Uniform(4), &DrTopKConfig::default());
/// assert_eq!(result.rows.len(), 8);
/// for (r, row) in result.rows.iter().enumerate() {
///     assert_eq!(row.values, topk_baselines::reference_topk(matrix.row(r), 4));
/// }
/// assert!(result.delegate_passes <= 2, "one fused pass per device, not per row");
/// ```
pub fn topk_rows<K: TopKKey>(
    cluster: &GpuCluster,
    matrix: RowMatrix<'_, K>,
    ks: &RowK,
    config: &DrTopKConfig,
) -> RowTopKResult<K> {
    let devices: Vec<&Device> = cluster.devices().iter().collect();
    topk_rows_on(&devices, matrix, ks, config, None, Executor::Threaded)
}

/// Row-wise top-k-**smallest**: each row's k minimum elements, ascending —
/// the row-matrix analogue of [`dr_topk_min`](crate::pipeline::dr_topk_min)
/// (batched k-NN shortlists, distance matrices). Runs [`topk_rows`] through
/// the zero-copy [`Desc`] reinterpretation.
pub fn topk_rows_min<K: TopKKey>(
    cluster: &GpuCluster,
    matrix: RowMatrix<'_, K>,
    ks: &RowK,
    config: &DrTopKConfig,
) -> RowTopKResult<K> {
    topk_rows(cluster, matrix.as_desc(), ks, config).into_native()
}

/// The fully parameterised entry point: explicit device set, block size and
/// executor. `rows_per_block = None` defaults to `⌈rows / devices⌉` (one
/// block per device); block `b` runs on `devices[b % devices.len()]`.
///
/// This is the seam the batching engine uses to run a row-matrix unit on
/// one assigned worker device, and what the executor-matrix tests use to
/// pin serial/threaded equivalence.
pub fn topk_rows_on<K: TopKKey>(
    devices: &[&Device],
    matrix: RowMatrix<'_, K>,
    ks: &RowK,
    config: &DrTopKConfig,
    rows_per_block: Option<usize>,
    executor: Executor,
) -> RowTopKResult<K> {
    assert!(!devices.is_empty(), "need at least one device");
    let rpb = rows_per_block.unwrap_or_else(|| matrix.rows.div_ceil(devices.len()).max(1));
    let layout = layout_rows(&matrix, ks, config, rpb);
    if layout.paths.iter().all(|p| *p == RowPath::Skip) {
        // Nothing to compute (no rows, empty rows, or every k = 0).
        return RowTopKResult {
            rows: vec![
                TopKResult {
                    values: Vec::new(),
                    kth_value: K::default(),
                    stats: KernelStats::default(),
                    time_ms: 0.0,
                };
                matrix.rows
            ],
            num_blocks: layout.num_blocks,
            rows_per_block: layout.rows_per_block,
            delegate_passes: 0,
            breakdown: PhaseBreakdown::default(),
            stats: KernelStats::default(),
            time_ms: 0.0,
            stages: StageReport::default(),
            predicted_recall: 1.0,
        };
    }
    let (graph, ctx, passes) = build_rows_graph(devices, matrix, &layout);
    let report = graph.execute_with(&ctx, executor);
    gather_result(&layout, matrix.rows, ctx, report, passes)
}

/// Model-check a row-matrix graph's schedule space, then run it.
///
/// Enumerate (or sample, per `budget`) the dispatch orders the per-resource
/// workers could take for this matrix's stage graph and require byte-equal
/// [`deterministic_summary`](StageReport::deterministic_summary) strings
/// and bit-equal per-row winners across all of them (see [`crate::explore`]).
/// On success the run's result and the coverage summary are returned; the
/// first diverging interleaving aborts with a [`Divergence`].
pub fn topk_rows_explore<K: TopKKey>(
    devices: &[&Device],
    matrix: RowMatrix<'_, K>,
    ks: &RowK,
    config: &DrTopKConfig,
    rows_per_block: Option<usize>,
    budget: ExploreBudget,
) -> Result<(RowTopKResult<K>, ExploreOutcome), Box<Divergence>> {
    assert!(!devices.is_empty(), "need at least one device");
    let rpb = rows_per_block.unwrap_or_else(|| matrix.rows.div_ceil(devices.len()).max(1));
    let layout = layout_rows(&matrix, ks, config, rpb);
    if layout.paths.iter().all(|p| *p == RowPath::Skip) {
        let outcome = ExploreOutcome {
            schedules_run: 0,
            exhaustive: true,
            stages: 0,
            reference: StageReport::default(),
        };
        let result = topk_rows_on(devices, matrix, ks, config, Some(rpb), Executor::Threaded);
        return Ok((result, outcome));
    }
    let outcome = explore_schedules(
        || {
            let (graph, ctx, _) = build_rows_graph(devices, matrix, &layout);
            (graph, ctx)
        },
        |ctx: &RowsCtx<K>, _| {
            // Bit patterns of every row's winners + threshold: the
            // schedule-invariance witness.
            ctx.blocks
                .iter()
                .map(|block| {
                    let block = block.lock().unwrap();
                    block
                        .out
                        .iter()
                        .map(|slot| {
                            slot.as_ref().map(|(vals, kth)| {
                                (
                                    vals.iter().map(|v| v.to_bits()).collect::<Vec<K::Bits>>(),
                                    kth.to_bits(),
                                )
                            })
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        },
        budget,
    )?;
    let result = topk_rows_on(devices, matrix, ks, config, Some(rpb), Executor::Threaded);
    Ok((result, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{dr_topk, dr_topk_min};
    use gpu_sim::DeviceSpec;
    use topk_baselines::{reference_topk, reference_topk_min};

    fn cluster(n: usize) -> GpuCluster {
        GpuCluster::homogeneous(n, DeviceSpec::v100s())
    }

    #[test]
    fn rows_match_per_row_pipeline_bitwise() {
        let c = cluster(2);
        let cols = 1 << 12;
        let rows = 6;
        let data = topk_datagen::uniform(rows * cols, 7);
        let matrix = RowMatrix::new(&data, rows, cols);
        let cfg = DrTopKConfig::default();
        let got = topk_rows(&c, matrix, &RowK::Uniform(64), &cfg);
        assert_eq!(got.rows.len(), rows);
        for r in 0..rows {
            let single = dr_topk(c.device(0), matrix.row(r), 64, &cfg);
            assert_eq!(got.rows[r].values, single.values, "row {r}");
            assert_eq!(got.rows[r].kth_value, single.kth_value, "row {r}");
        }
        assert!(got.delegate_passes <= 2);
        assert_eq!(got.num_blocks, 2);
    }

    #[test]
    fn per_row_k_mixes_paths_in_one_matrix() {
        let c = cluster(2);
        let cols = 2048;
        let rows = 5;
        let data = topk_datagen::customized(rows * cols, 3);
        let matrix = RowMatrix::new(&data, rows, cols);
        let cfg = DrTopKConfig::default();
        // k = 0 (skip), tiny k (delegates), k = cols (fallback sort),
        // k > cols (clamped), half (fallback)
        let ks = RowK::PerRow(vec![0, 16, cols, cols + 100, cols / 2]);
        let got = topk_rows(&c, matrix, &ks, &cfg);
        for r in 0..rows {
            let k = ks.get(r);
            let single = dr_topk(c.device(0), matrix.row(r), k, &cfg);
            assert_eq!(got.rows[r].values, single.values, "row {r} k={k}");
            assert_eq!(got.rows[r].kth_value, single.kth_value, "row {r} k={k}");
        }
        assert!(got.rows[0].values.is_empty());
        assert_eq!(got.rows[2].values.len(), cols);
        assert_eq!(got.rows[3].values.len(), cols);
    }

    #[test]
    fn min_direction_matches_reference() {
        let c = cluster(1);
        let cols = 1 << 11;
        let rows = 4;
        let data: Vec<f32> = topk_datagen::uniform(rows * cols, 11)
            .into_iter()
            .map(|x| (x % 100_000) as f32 * 0.25)
            .collect();
        let matrix = RowMatrix::new(&data, rows, cols);
        let got = topk_rows_min(&c, matrix, &RowK::Uniform(10), &DrTopKConfig::default());
        for r in 0..rows {
            assert_eq!(got.rows[r].values, reference_topk_min(matrix.row(r), 10));
            let single = dr_topk_min(c.device(0), matrix.row(r), 10, &DrTopKConfig::default());
            assert_eq!(got.rows[r].values, single.values);
        }
    }

    #[test]
    fn approx_mode_matches_per_row_approx() {
        let c = cluster(2);
        let cols = 1 << 14;
        let rows = 4;
        let data = topk_datagen::uniform(rows * cols, 19);
        let matrix = RowMatrix::new(&data, rows, cols);
        let cfg = DrTopKConfig::approx(0.9);
        let got = topk_rows(&c, matrix, &RowK::Uniform(32), &cfg);
        assert!(got.predicted_recall >= 0.9);
        for r in 0..rows {
            let single = dr_topk(c.device(0), matrix.row(r), 32, &cfg);
            assert_eq!(got.rows[r].values, single.values, "row {r}");
        }
    }

    #[test]
    fn graph_passes_static_verification() {
        let c = cluster(2);
        let cols = 1 << 10;
        let rows = 7;
        let data = topk_datagen::uniform(rows * cols, 23);
        let matrix = RowMatrix::new(&data, rows, cols);
        // mixed paths in one graph: approx rows and fallback rows together
        let ks = RowK::PerRow(vec![8, 0, cols / 2, 8, 8, cols, 8]);
        let layout = layout_rows(&matrix, &ks, &DrTopKConfig::default(), 2);
        let devices: Vec<&Device> = c.devices().iter().collect();
        let (graph, _ctx, passes) = build_rows_graph(&devices, matrix, &layout);
        let diags = crate::verify::verify_specs(&graph.specs(), &Default::default());
        assert!(diags.is_empty(), "row-block graph must verify: {diags:?}");
        assert!(passes <= 4, "4 blocks of 2 rows; {passes} passes");
    }

    #[test]
    fn empty_and_degenerate_matrices() {
        let c = cluster(1);
        let got = topk_rows::<u32>(
            &c,
            RowMatrix::new(&[], 0, 128),
            &RowK::Uniform(4),
            &DrTopKConfig::default(),
        );
        assert!(got.rows.is_empty());
        assert_eq!(got.delegate_passes, 0);

        let got = topk_rows::<u32>(
            &c,
            RowMatrix::new(&[], 4, 0),
            &RowK::Uniform(4),
            &DrTopKConfig::default(),
        );
        assert_eq!(got.rows.len(), 4);
        assert!(got.rows.iter().all(|r| r.values.is_empty()));

        let data = topk_datagen::uniform(4 * 256, 1);
        let got = topk_rows(
            &c,
            RowMatrix::new(&data, 4, 256),
            &RowK::Uniform(0),
            &DrTopKConfig::default(),
        );
        assert!(got.rows.iter().all(|r| r.values.is_empty()));
        assert_eq!(got.delegate_passes, 0);
    }

    #[test]
    fn explore_validates_a_small_row_graph() {
        let c = cluster(2);
        let cols = 1 << 10;
        let rows = 4;
        let data = topk_datagen::uniform(rows * cols, 31);
        let matrix = RowMatrix::new(&data, rows, cols);
        let devices: Vec<&Device> = c.devices().iter().collect();
        let (result, outcome) = topk_rows_explore(
            &devices,
            matrix,
            &RowK::Uniform(16),
            &DrTopKConfig::default(),
            Some(2),
            ExploreBudget::default(),
        )
        .expect("row graphs are schedule-invariant");
        assert!(outcome.exhaustive);
        assert!(outcome.schedules_run >= 2, "two blocks must interleave");
        for r in 0..rows {
            assert_eq!(result.rows[r].values, reference_topk(matrix.row(r), 16));
        }
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn shape_mismatch_panics() {
        let data = vec![1u32; 10];
        RowMatrix::new(&data, 3, 4);
    }

    #[test]
    #[should_panic(expected = "per-row k vector length")]
    fn per_row_k_length_mismatch_panics() {
        let c = cluster(1);
        let data = vec![1u32; 12];
        topk_rows(
            &c,
            RowMatrix::new(&data, 3, 4),
            &RowK::PerRow(vec![1, 2]),
            &DrTopKConfig::default(),
        );
    }
}
