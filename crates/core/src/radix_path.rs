//! The multi-pass radix-select execution path, as a verified stage graph.
//!
//! This is the planner's large-k escape hatch (see
//! [`choose_path`](crate::tuning::choose_path)): where the delegate
//! pipeline's concatenation and second top-k grow like `√(n·k)` at the
//! Rule 4 subrange size, hierarchical radix select costs one input scan
//! plus `O(k)` — so it keeps scaling as k grows into the 10⁴–10⁵ range
//! where delegate/bucket approaches degrade (RadiK's observation).
//!
//! The pipeline promotes the out-of-place radix baseline
//! ([`topk_baselines::radix_topk`]) into first-class stages so the
//! executor, verifier, calibrator and observability layers see it like any
//! other schedule:
//!
//! * [`StageKind::RadixHistogram`] — one per digit pass: histogram the
//!   surviving candidates by their current 8-bit digit (global atomics,
//!   warp-local pre-aggregation). The first pass fuses RadiK's *sampled
//!   filter* into the same scan: a deterministic strided sample picks a
//!   conservative top-digit cutoff, and every element at or above the
//!   cutoff is compacted out while the full histogram is built — so later
//!   stages touch the (≈ `max(4k, n/256)`-element) filtered set instead of
//!   re-reading the input. The filter is *speculative but safe*: the exact
//!   histogram proves at refine time whether the cutoff kept the k-th
//!   value, and a miss (or an unfavourable distribution, where the sample
//!   predicts the filter would keep most of the input) simply falls back
//!   to scanning the full candidate set.
//! * [`StageKind::RadixRefine`] — one per digit pass: locate the digit
//!   holding the k-th value, collect the elements *above* that digit
//!   (they are in the final top-k for certain), and compact the matching
//!   candidates out-of-place.
//! * [`StageKind::CandidateGather`] — assemble the final k candidates
//!   from the collected above-threshold elements, refilled with copies of
//!   the k-th value for its ties. `O(k)`: the refine passes already
//!   collected everything, so no input re-scan happens here.
//! * [`StageKind::RadixSelect`] — final ordering of the gathered
//!   candidates via the configured inner algorithm.
//!
//! The stage *structure* is fixed by the key width alone
//! (`key_bits / 8` histogram/refine pairs, then gather and select), so
//! same-shaped runs produce byte-identical schedules under every executor.
//! When the k-th value is pinned down early (a compaction leaves a single
//! candidate), the remaining histogram/refine stages still exist but
//! execute as zero-cost no-ops — determinism costs nothing because a no-op
//! stage launches no kernels.
//!
//! All selection arithmetic happens in the key's radix space
//! ([`TopKKey::Bits`]), so signed integers and IEEE-754 floats (including
//! NaN) follow the same total order as every other path — the results are
//! bit-identical to the delegate pipeline and to
//! [`topk_baselines::reference_topk`].

// Approved `std::sync` lock holder (see clippy.toml + ARCHITECTURE.md):
// like the exact pipeline, the radix path's stage-graph context keeps its
// pass state in a mutex slot, as the executor's `&C` sharing rule requires.
#![allow(clippy::disallowed_types)]

use std::cmp::Reverse;
use std::sync::Mutex;

use gpu_sim::{AtomicBuffer, AtomicCounter, Device};
use topk_baselines::{KeyBits, TopKKey};

use crate::pipeline::{DrTopKConfig, DrTopKResult, PhaseBreakdown, WorkloadStats};
use crate::stages::{Resource, StageGraph, StageKind, StageOutcome};

/// Bits consumed per digit pass (8 matches the paper's radix baselines:
/// "8-bit per digit yields the optimal performance").
const BITS_PER_PASS: u32 = 8;

/// Elements assigned to each warp in the scan kernels (the baseline's
/// default).
const ELEMS_PER_WARP: usize = 8192;

/// Elements of the deterministic strided sample that seeds the first-pass
/// filter cutoff (RadiK sizes its filter from a sample the same way).
pub(crate) const SAMPLE_SIZE: usize = 1024;

/// The filter keeps, in expectation, at least this multiple of `k`
/// elements above the cutoff — headroom that makes a speculation miss
/// (cutoff above the k-th value's digit) a tail event rather than a coin
/// flip.
pub(crate) const FILTER_HEADROOM: usize = 2;

/// Minimum number of sample hits the cutoff digit must have. Bounds the
/// miss probability for tiny `k`, where `2 · sample · k / n` rounds to
/// almost nothing.
pub(crate) const MIN_SAMPLE_TARGET: usize = 8;

/// The filter is disabled when the sample predicts it would keep more
/// than `1/FILTER_BAILOUT_DIV` of the input: compacting most of the
/// input out-of-place costs more than the re-read it saves (the
/// duplicate-heavy adversarial case).
pub(crate) const FILTER_BAILOUT_DIV: usize = 4;

/// Per-run selection state threaded through the stage closures.
struct RadixCtx<K: TopKKey> {
    /// Surviving candidates in radix space (starts as the full input).
    candidates: Vec<K::Bits>,
    /// The first pass's speculative filter output: every element whose top
    /// digit is at or above [`RadixCtx::filter_cutoff`]. `None` when the
    /// filter was disabled (sample predicted poor selectivity) or already
    /// consumed.
    filtered: Option<Vec<K::Bits>>,
    /// Top-digit cutoff of the speculative filter (meaningful only while
    /// `filtered` is `Some`).
    filter_cutoff: usize,
    /// Histogram of the current pass (filled by the histogram stage, read
    /// by the refine stage).
    histogram: Vec<u32>,
    /// Accumulated digit prefix of the k-th value.
    prefix_value: K::Bits,
    /// Mask covering the digits fixed so far.
    prefix_mask: K::Bits,
    /// How many of the k largest still lie inside the candidate set.
    k_remaining: usize,
    /// Set once a compaction pins the k-th value down to a single
    /// candidate; the remaining passes become no-ops.
    pinned: bool,
    /// Elements strictly above the k-th value, collected by the refine
    /// passes (digit above the chosen one ⇒ in the top-k for certain).
    above: Vec<K::Bits>,
    /// The final k candidates assembled by the gather stage.
    assembled: Vec<K>,
    /// The selected values, descending.
    values: Vec<K>,
    /// The k-th value (the selection threshold).
    kth_value: K,
}

impl<K: TopKKey> RadixCtx<K> {
    /// The k-th value once every pass ran: all survivors share the full
    /// prefix, so any of them (or the prefix itself) is the threshold.
    fn threshold(&self) -> K {
        match self.candidates.first() {
            Some(&bits) => K::from_bits(bits),
            None => K::from_bits(self.prefix_value),
        }
    }
}

/// Run the staged radix-select pipeline: the exact top-k of `data`, with
/// the same result shape as the delegate pipeline.
///
/// Requires `1 ≤ k` and a non-empty input (the caller's `k = 0` /
/// empty-input early return, shared with the delegate path, handles the
/// degenerate shapes); `k` is clamped to the input length. The reported
/// `alpha` is 0 — the radix path has no subrange parameter — and the
/// workload statistics report the gathered candidate count as the
/// second-stage workload.
pub(crate) fn radix_dr_topk<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
) -> DrTopKResult<K> {
    let k = k.min(data.len());
    assert!(
        k >= 1 && !data.is_empty(),
        "degenerate shapes handled upstream"
    );

    let digits = 1usize << BITS_PER_PASS;
    let digit_mask = K::Bits::from_u64(digits as u64 - 1);
    let passes = K::Bits::BITS.div_ceil(BITS_PER_PASS);

    let mut graph: StageGraph<'_, Mutex<RadixCtx<K>>> = StageGraph::new();
    let mut prev_refine = None;
    for pass in 0..passes {
        let shift = K::Bits::BITS - BITS_PER_PASS * (pass + 1);
        let deps: Vec<_> = prev_refine.into_iter().collect();
        let hist_id = graph.add_labeled(
            StageKind::RadixHistogram,
            format!("radix_histogram_pass{pass}"),
            Resource::Compute(0),
            &deps,
            move |ctx: &Mutex<RadixCtx<K>>| {
                let mut guard = ctx.lock().unwrap();
                if guard.pinned {
                    return StageOutcome::default();
                }
                let scan = std::mem::take(&mut guard.candidates);
                let prefix_value = guard.prefix_value;
                let prefix_mask = guard.prefix_mask;
                drop(guard);

                // First pass only: a deterministic strided sample picks the
                // speculative filter cutoff that the main scan fuses in.
                let mut probe_stats = gpu_sim::KernelStats::default();
                let mut probe_ms = 0.0;
                let mut cutoff: Option<usize> = None;
                // The filter needs a sample big enough for the cutoff
                // target to be meaningful; tiny inputs skip it outright.
                if pass == 0 && scan.len() >= 2 * MIN_SAMPLE_TARGET {
                    let sample_n = scan.len().min(SAMPLE_SIZE);
                    let stride = scan.len() / sample_n;
                    let probe = device.launch("radix_sample_probe", 1, |kctx| {
                        let mut hist = vec![0u32; digits];
                        for i in 0..sample_n {
                            let x = kctx.read_random(&scan, i * stride);
                            hist[((x >> shift) & digit_mask).as_digit()] += 1;
                            kctx.record_alu(2);
                        }
                        hist
                    });
                    let sample_hist = &probe.output[0];
                    probe_stats = probe.stats;
                    probe_ms = probe.time_ms;
                    // Smallest digit whose above-or-equal sample mass covers
                    // the target: `FILTER_HEADROOM ×` the sample's expected
                    // share of the top k, floored for tiny k.
                    let target = (FILTER_HEADROOM * sample_n * k / scan.len())
                        .clamp(MIN_SAMPLE_TARGET, sample_n / 2);
                    let mut cum = 0usize;
                    let mut cut = 0usize;
                    for d in (0..digits).rev() {
                        cum += sample_hist[d] as usize;
                        if cum >= target {
                            cut = d;
                            break;
                        }
                    }
                    // Predicted kept fraction; bail out when the filter
                    // would keep most of the input (duplicate-heavy data).
                    let predicted = scan.len() * cum / sample_n;
                    if predicted <= scan.len() / FILTER_BAILOUT_DIV {
                        cutoff = Some(cut);
                    }
                }

                let num_warps = scan.len().div_ceil(ELEMS_PER_WARP);
                let hist_buf = AtomicBuffer::zeroed(digits);
                let cursor = AtomicCounter::new(0);
                let launch =
                    device.launch(&format!("radix_histogram_pass{pass}"), num_warps, |kctx| {
                        let chunk = kctx.chunk_of(scan.len());
                        let slice = kctx.read_coalesced(&scan[chunk]);
                        let mut local = vec![0u32; digits];
                        let mut kept: Vec<K::Bits> = Vec::new();
                        for &x in slice {
                            if x & prefix_mask == prefix_value {
                                let d = ((x >> shift) & digit_mask).as_digit();
                                local[d] += 1;
                                if cutoff.is_some_and(|c| d >= c) {
                                    kept.push(x);
                                }
                            }
                            kctx.record_alu(2);
                        }
                        // flush the warp-local histogram with one atomicAdd
                        // per non-empty bucket (block-level flush)
                        for (d, &c) in local.iter().enumerate() {
                            if c > 0 {
                                hist_buf.fetch_add(kctx, d, c);
                            }
                        }
                        if !kept.is_empty() {
                            // warp-aggregated position allocation followed
                            // by a coalesced store of the filtered elements
                            cursor.fetch_add(kctx, kept.len() as u64);
                            kctx.record_store_coalesced::<K::Bits>(kept.len());
                        }
                        kept
                    });
                let mut guard = ctx.lock().unwrap();
                guard.candidates = scan;
                guard.histogram = hist_buf.to_vec();
                if let Some(cut) = cutoff {
                    guard.filter_cutoff = cut;
                    guard.filtered = Some(launch.output.into_iter().flatten().collect());
                }
                StageOutcome {
                    stats: probe_stats + launch.stats,
                    time_ms: probe_ms + launch.time_ms,
                }
            },
        );
        let refine_id = graph.add_labeled(
            StageKind::RadixRefine,
            format!("radix_refine_pass{pass}"),
            Resource::Compute(0),
            &[hist_id],
            move |ctx: &Mutex<RadixCtx<K>>| {
                let mut guard = ctx.lock().unwrap();
                if guard.pinned {
                    return StageOutcome::default();
                }
                // locate the digit that holds the k-th largest
                let mut chosen = 0usize;
                let mut above_count = 0usize;
                for d in (0..digits).rev() {
                    let count = guard.histogram[d] as usize;
                    if above_count + count >= guard.k_remaining {
                        chosen = d;
                        break;
                    }
                    above_count += count;
                }
                guard.k_remaining -= above_count;
                // The digit prefix *before* this pass: the kernel keys off
                // the raw digit, so elements above the chosen one can be
                // collected (they are in the final top-k for certain).
                let prev_value = guard.prefix_value;
                let prev_mask = guard.prefix_mask;
                guard.prefix_value |= K::Bits::from_u64(chosen as u64) << shift;
                guard.prefix_mask |= digit_mask << shift;
                // Scan the speculative filter output when it provably kept
                // the chosen digit (cutoff ≤ chosen); otherwise fall back
                // to the full candidate set.
                let scan = match guard.filtered.take() {
                    Some(f) if guard.filter_cutoff <= chosen => {
                        guard.candidates = Vec::new();
                        f
                    }
                    _ => std::mem::take(&mut guard.candidates),
                };
                drop(guard);
                let num_warps = scan.len().div_ceil(ELEMS_PER_WARP);
                let cursor = AtomicCounter::new(0);
                let launch =
                    device.launch(&format!("radix_refine_pass{pass}"), num_warps, |kctx| {
                        let chunk = kctx.chunk_of(scan.len());
                        let slice = kctx.read_coalesced(&scan[chunk]);
                        let mut survivors: Vec<K::Bits> = Vec::new();
                        let mut above: Vec<K::Bits> = Vec::new();
                        for &x in slice {
                            if x & prev_mask == prev_value {
                                let d = ((x >> shift) & digit_mask).as_digit();
                                if d > chosen {
                                    above.push(x);
                                } else if d == chosen {
                                    survivors.push(x);
                                }
                            }
                            kctx.record_alu(2);
                        }
                        let stored = survivors.len() + above.len();
                        if stored > 0 {
                            // warp-aggregated position allocation followed
                            // by a coalesced store of both partitions
                            cursor.fetch_add(kctx, stored as u64);
                            kctx.record_store_coalesced::<K::Bits>(stored);
                        }
                        (survivors, above)
                    });
                let mut guard = ctx.lock().unwrap();
                let mut collected_above = 0usize;
                let mut survivors = Vec::new();
                for (s, a) in launch.output {
                    collected_above += a.len();
                    guard.above.extend(a);
                    survivors.extend(s);
                }
                debug_assert_eq!(
                    collected_above, above_count,
                    "refine pass {pass}: collected above-set disagrees with \
                     the exact histogram"
                );
                guard.candidates = survivors;
                if guard.candidates.len() <= 1 {
                    // the k-th value is pinned down early: the remaining
                    // passes have nothing left to narrow
                    guard.pinned = true;
                }
                StageOutcome {
                    stats: launch.stats,
                    time_ms: launch.time_ms,
                }
            },
        );
        prev_refine = Some(refine_id);
    }

    // Candidate assembly: the refine passes already collected every
    // element above the k-th value, so the final candidate set is that
    // above-set refilled with copies of the k-th value for its ties —
    // `O(k)` data movement, no input re-scan.
    let gather_id = graph.add(
        StageKind::CandidateGather,
        Resource::Compute(0),
        &[prev_refine.expect("at least one digit pass")],
        move |ctx: &Mutex<RadixCtx<K>>| {
            let mut guard = ctx.lock().unwrap();
            let threshold = guard.threshold();
            let above = std::mem::take(&mut guard.above);
            drop(guard);
            debug_assert!(above.len() <= k.saturating_sub(1) || above.is_empty());
            let num_warps = k.div_ceil(ELEMS_PER_WARP).max(1);
            let launch = device.launch("candidate_gather", num_warps, |kctx| {
                let chunk = kctx.chunk_of(k);
                let reads = chunk.start.min(above.len())..chunk.end.min(above.len());
                kctx.record_load_coalesced::<K::Bits>(reads.len());
                let mut out: Vec<K> = Vec::with_capacity(chunk.len());
                for i in chunk.clone() {
                    out.push(if i < above.len() {
                        K::from_bits(above[i])
                    } else {
                        threshold
                    });
                    kctx.record_alu(1);
                }
                kctx.record_store_coalesced::<K>(out.len());
                out
            });
            let mut guard = ctx.lock().unwrap();
            guard.assembled = launch.output.into_iter().flatten().collect();
            debug_assert_eq!(guard.assembled.len(), k);
            StageOutcome {
                stats: launch.stats,
                time_ms: launch.time_ms,
            }
        },
    );

    // Final ordering: let the configured inner algorithm order the
    // assembled candidates (a small top-k over exactly k elements).
    graph.add(
        StageKind::RadixSelect,
        Resource::Compute(0),
        &[gather_id],
        move |ctx: &Mutex<RadixCtx<K>>| {
            let mut guard = ctx.lock().unwrap();
            let threshold = guard.threshold();
            let candidates = std::mem::take(&mut guard.assembled);
            drop(guard);
            let inner = config.inner.run(device, &candidates, k);
            let outcome = StageOutcome {
                stats: inner.stats,
                time_ms: inner.time_ms,
            };
            let mut guard = ctx.lock().unwrap();
            let mut values = inner.values;
            values.sort_unstable_by_key(|v| Reverse(v.to_bits()));
            guard.kth_value = values.last().copied().unwrap_or(threshold);
            guard.values = values;
            outcome
        },
    );

    let ctx = Mutex::new(RadixCtx::<K> {
        candidates: data.iter().map(|x| x.to_bits()).collect(),
        filtered: None,
        filter_cutoff: 0,
        histogram: Vec::new(),
        prefix_value: K::Bits::ZERO,
        prefix_mask: K::Bits::ZERO,
        k_remaining: k,
        pinned: false,
        above: Vec::new(),
        assembled: Vec::new(),
        values: Vec::new(),
        kth_value: K::default(),
    });
    let report = graph.execute(&ctx);
    let ctx = ctx.into_inner().unwrap();

    let breakdown: PhaseBreakdown = report.phase_breakdown();
    DrTopKResult {
        values: ctx.values,
        kth_value: ctx.kth_value,
        alpha: 0,
        breakdown,
        workload: WorkloadStats {
            input_len: data.len(),
            delegate_vector_len: 0,
            concatenated_len: k,
            num_subranges: 1,
            fully_taken_subranges: 0,
            second_topk_skipped: false,
            fell_back: false,
        },
        stats: report.stats(),
        time_ms: report.makespan_ms,
        stages: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use topk_baselines::reference_topk;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn radix_path_matches_reference_across_distributions_and_k() {
        let dev = device();
        for dist in topk_datagen::Distribution::SYNTHETIC {
            let data = topk_datagen::generate(dist, 1 << 14, 19);
            for &k in &[1usize, 2, 64, 1000, 1 << 13, 1 << 14] {
                let got = radix_dr_topk(&dev, &data, k, &DrTopKConfig::default());
                assert_eq!(got.values, reference_topk(&data, k), "{dist} k={k}");
                assert_eq!(got.kth_value, *got.values.last().unwrap());
            }
        }
    }

    #[test]
    fn radix_path_schedule_shape_is_fixed_by_the_key_width() {
        let dev = device();
        let narrow = topk_datagen::uniform(1 << 12, 7);
        let got = radix_dr_topk(&dev, &narrow, 100, &DrTopKConfig::default());
        // u32: 4 histogram/refine pairs + gather + select = 10 stages
        assert_eq!(got.stages.stages.len(), 10);
        let wide: Vec<u64> = narrow.iter().map(|&x| (x as u64) << 20).collect();
        let got = radix_dr_topk(&dev, &wide, 100, &DrTopKConfig::default());
        // u64: 8 pairs + gather + select = 18 stages
        assert_eq!(got.stages.stages.len(), 18);
        let kinds: Vec<StageKind> = got.stages.stages.iter().map(|s| s.kind).collect();
        assert_eq!(kinds[0], StageKind::RadixHistogram);
        assert_eq!(kinds[1], StageKind::RadixRefine);
        assert_eq!(kinds[16], StageKind::CandidateGather);
        assert_eq!(kinds[17], StageKind::RadixSelect);
    }

    #[test]
    fn early_pinning_turns_tail_passes_into_noops() {
        let dev = device();
        // one extreme value: pass 0 compacts the candidates down to a
        // single element, so passes 1..4 must charge nothing
        let mut data = vec![5u32; 1 << 12];
        data[123] = u32::MAX;
        let got = radix_dr_topk(&dev, &data, 1, &DrTopKConfig::default());
        assert_eq!(got.values, vec![u32::MAX]);
        let pass1_on = got
            .stages
            .stages
            .iter()
            .filter(|s| s.label.contains("pass1") || s.label.contains("pass2"))
            .collect::<Vec<_>>();
        assert!(!pass1_on.is_empty());
        assert!(pass1_on
            .iter()
            .all(|s| s.stats.global_load_transactions == 0));
    }

    #[test]
    fn duplicate_heavy_inputs_stay_exact() {
        // the radix worst case: candidates barely shrink per pass
        let dev = device();
        let data: Vec<u32> = (0..1u32 << 13).map(|i| i % 7).collect();
        for &k in &[1usize, 100, 5000] {
            let got = radix_dr_topk(&dev, &data, k, &DrTopKConfig::default());
            assert_eq!(got.values, reference_topk(&data, k), "k={k}");
        }
    }

    #[test]
    fn floats_with_nan_follow_the_total_order() {
        let dev = device();
        let mut data: Vec<f32> = (0..4096).map(|i| (i % 977) as f32 - 500.0).collect();
        data[7] = f32::NAN;
        data[999] = f32::NEG_INFINITY;
        let got = radix_dr_topk(&dev, &data, 64, &DrTopKConfig::default());
        let expected = reference_topk(&data, 64);
        assert_eq!(got.values.len(), expected.len());
        for (g, e) in got.values.iter().zip(&expected) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn workload_stats_report_the_gather_honestly() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 3);
        let got = radix_dr_topk(&dev, &data, 256, &DrTopKConfig::default());
        let w = got.workload;
        assert_eq!(w.input_len, data.len());
        assert_eq!(w.delegate_vector_len, 0, "no delegate vector exists");
        assert_eq!(w.concatenated_len, 256, "the select ran over k candidates");
        assert_eq!(w.num_subranges, 1);
        assert!(!w.fell_back);
        assert_eq!(got.alpha, 0, "the radix path has no subrange parameter");
        assert!(got.time_ms > 0.0);
        assert!(got.stats.global_load_transactions > 0);
    }
}
