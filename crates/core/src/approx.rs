//! Recall-targeted approximate top-k: bucket-based two-stage selection with
//! an analytic recall model.
//!
//! Dr. Top-k's delegate phase is already a two-stage filter; recent work
//! ("A Faster Generalized Two-Stage Approximate Top-K", "Approximate Top-k
//! for Increased Parallelism") shows that relaxing exactness to a *recall
//! target* unlocks further savings by shrinking the second stage. The
//! approximate mode reuses the delegate machinery as a bucketed candidate
//! generator and then stops:
//!
//! 1. **Bucketing** — the input is partitioned into `2^α`-element buckets
//!    (the exact pipeline's subranges), and the top `k'` elements of each
//!    bucket — the candidate *budget* — are extracted with the ordinary
//!    delegate-construction kernels (β = `k'`).
//! 2. **Candidate top-k** — the inner algorithm selects the top-k of the
//!    `⌈|V|/2^α⌉ · k'` candidates directly. The exact pipeline's first
//!    top-k, Rule 1–3 concatenation and refill passes are **skipped
//!    entirely** — nothing after the construction scan ever touches the
//!    input again.
//!
//! The only elements that can be missed are true top-k elements that were
//! crowded out of their bucket by more than `k' − 1` larger bucket-mates.
//! Under the standard exchangeability assumption (the top-k are spread over
//! buckets uniformly at random — true for the shuffled/seeded corpora the
//! evaluation uses, and for any hash-partitioned input), the number of
//! top-k elements in one bucket is `X ~ Binomial(k, 1/b)` and the expected
//! recall is closed-form:
//!
//! ```text
//! E[recall] = (b / k) · E[min(X, k')]        b = number of buckets
//! ```
//!
//! [`expected_recall`] evaluates that model, [`required_budget`] inverts it
//! (the smallest `k'` meeting a target), and
//! [`optimal_approx_tuning`](crate::tuning::optimal_approx_tuning) picks the
//! `(α, k')` pair that minimises the candidate count subject to the target.
//! A target of 1.0 ([`RecallTarget::EXACT`]) short-circuits to the exact
//! pipeline, so `Mode::Approx { target_recall: 1.0 }` is bit-identical to
//! [`Mode::Exact`] (pinned by property tests over every key type).
//!
//! **Departure from the paper**: the paper's pipeline is exact — Rules 1–3
//! guarantee no qualified element is dropped. The approximate mode trades
//! that guarantee for a *modeled* one, and inherits the contiguous-bucket
//! layout of the delegate phase: on adversarially ordered inputs (e.g. a
//! sorted vector, where the whole top-k sits in one bucket) the
//! exchangeability assumption breaks and measured recall can fall below the
//! model's prediction. Shuffle or hash-partition such inputs first, or use
//! the exact mode.

// Approved `std::sync` lock holder (see clippy.toml + ARCHITECTURE.md):
// the approximate pipeline's stage-graph context keeps its candidate
// buffers in mutex slots, as the executor's `&C` sharing rule requires.
#![allow(clippy::disallowed_types)]

use std::sync::Mutex;

use gpu_sim::Device;

use crate::delegate::{build_delegate_vector, DelegateVector};
use crate::pipeline::{DrTopKResult, PlannedQuery, WorkloadStats};
use crate::stages::{Resource, StageGraph, StageKind, StageOutcome};
use topk_baselines::{TopKKey, TopKResult};

/// A recall target in `(0, 1]`, stored in basis points (1/100th of a
/// percent) so targets stay `Eq`/`Ord`/`Hash` — the engine fuses approximate
/// queries by `(corpus, direction, recall target)` and caches tuning plans
/// per target, which `f64` keys would not allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecallTarget(u16);

impl RecallTarget {
    /// The exact target: recall 1.0. `Mode::Approx` with this target runs
    /// the exact pipeline and is bit-identical to [`Mode::Exact`].
    pub const EXACT: RecallTarget = RecallTarget(10_000);

    /// Build a target from a fraction in `(0, 1]` (e.g. `0.95`), rounded to
    /// the nearest basis point (minimum 1).
    ///
    /// # Panics
    /// Panics when `fraction` is not within `(0, 1]`.
    pub fn from_fraction(fraction: f64) -> RecallTarget {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "recall target must be within (0, 1], got {fraction}"
        );
        RecallTarget(((fraction * 10_000.0).round() as u16).clamp(1, 10_000))
    }

    /// Build a target from basis points in `1..=10_000` (`9500` = 0.95) —
    /// the representation workload generators emit.
    ///
    /// # Panics
    /// Panics when `bp` is 0 or above 10 000.
    pub fn from_basis_points(bp: u16) -> RecallTarget {
        assert!(
            (1..=10_000).contains(&bp),
            "recall basis points must be within 1..=10000, got {bp}"
        );
        RecallTarget(bp)
    }

    /// The target as a fraction in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0 as f64 / 10_000.0
    }

    /// The target in basis points (`9500` = 0.95).
    pub fn basis_points(self) -> u16 {
        self.0
    }

    /// True when the target demands recall 1.0 (the exact pipeline runs).
    pub fn is_exact(self) -> bool {
        self.0 == 10_000
    }

    /// The inflated *internal* target the planner sizes budgets for: the
    /// recall model predicts the **expected** recall, so a budget sized
    /// exactly at the target would land below it on roughly half of all
    /// inputs. Planning instead spends only a quarter of the miss
    /// allowance — `1 − (1 − target)/4` — leaving the rest as headroom for
    /// sampling variance around the mean (a target of 0.95 plans for
    /// 0.9875). The cost impact is small: the required budget grows by at
    /// most one or two candidates per bucket at serving shapes.
    pub fn with_planning_headroom(self) -> RecallTarget {
        if self.is_exact() {
            return self;
        }
        let inflated = 1.0 - (1.0 - self.fraction()) / 4.0;
        // never round up into the exact target: a strict approximate
        // request stays an approximate plan
        RecallTarget(((inflated * 10_000.0).round() as u16).clamp(self.0, 9_999))
    }
}

impl std::fmt::Display for RecallTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.fraction())
    }
}

/// Whether a query demands the exact answer or only a recall target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Mode {
    /// The paper's exact pipeline: every returned element is truly among
    /// the top-k.
    #[default]
    Exact,
    /// Bucket-based approximate selection sized so the *expected* recall
    /// (fraction of the true top-k returned) meets the target. A target of
    /// 1.0 runs the exact pipeline.
    Approx {
        /// The expected-recall floor the candidate budget is sized for.
        target_recall: RecallTarget,
    },
}

impl Mode {
    /// The recall target of a strictly approximate mode: `Some(target)` for
    /// `Approx` with target < 1.0, `None` for `Exact` and for
    /// `Approx { target_recall: 1.0 }` (which runs the exact pipeline).
    pub fn strict_target(self) -> Option<RecallTarget> {
        match self {
            Mode::Approx { target_recall } if !target_recall.is_exact() => Some(target_recall),
            _ => None,
        }
    }
}

/// Expected recall of bucket-based selection: the expected fraction of the
/// true top-k returned when the input is split into `num_buckets` buckets
/// and the top `budget` elements of each bucket become candidates.
///
/// Under the exchangeability assumption (see the module docs) the number of
/// true top-k elements in one bucket is `X ~ Binomial(k, 1/num_buckets)`
/// and the expected recall is `(num_buckets / k) · E[min(X, budget)]`.
/// Degenerate inputs are total: `k = 0` and `budget ≥ k` both return 1.0.
///
/// ```
/// use drtopk_core::expected_recall;
///
/// // k = 256 over 4096 buckets: a budget of 1 already catches ~97%.
/// let r = expected_recall(256, 4096, 1);
/// assert!(r > 0.96 && r < 1.0);
/// // a budget of k can never miss
/// assert_eq!(expected_recall(256, 4096, 256), 1.0);
/// ```
pub fn expected_recall(k: usize, num_buckets: usize, budget: usize) -> f64 {
    assert!(num_buckets >= 1, "need at least one bucket");
    if k == 0 || budget >= k {
        return 1.0;
    }
    if budget == 0 {
        return 0.0;
    }
    if num_buckets == 1 {
        // everything lands in the single bucket; only `budget` survive
        return budget as f64 / k as f64;
    }
    let p = 1.0 / num_buckets as f64;
    let q = 1.0 - p;
    // E[min(X, budget)] via the binomial pmf recurrence
    // pmf(x+1) = pmf(x) · (k − x)/(x + 1) · p/q, truncated once x > budget
    // (the remaining tail contributes `budget · P(X > budget)`).
    let mut pmf = q.powi(k as i32); // P(X = 0)
    let mut cdf = pmf;
    let mut e_min = 0.0;
    for x in 0..budget.min(k) {
        // move to P(X = x + 1)
        pmf *= (k - x) as f64 / (x + 1) as f64 * (p / q);
        let next = x + 1;
        if next <= budget {
            e_min += next as f64 * pmf;
            cdf += pmf;
        }
    }
    // tail: every bucket holding more than `budget` still yields `budget`
    e_min += budget as f64 * (1.0 - cdf).max(0.0);
    (num_buckets as f64 / k as f64 * e_min).clamp(0.0, 1.0)
}

/// The smallest per-bucket candidate budget whose [`expected_recall`] meets
/// `target` for `k` winners over `num_buckets` buckets. Always at most `k`
/// (a budget of `k` is exact: no bucket can crowd out more than it holds).
pub fn required_budget(k: usize, num_buckets: usize, target: RecallTarget) -> usize {
    assert!(num_buckets >= 1, "need at least one bucket");
    if k == 0 {
        return 1;
    }
    let goal = target.fraction();
    // expected_recall is monotone in the budget: binary search the smallest
    // budget meeting the goal.
    let (mut lo, mut hi) = (1usize, k);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if expected_recall(k, num_buckets, mid) >= goal {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Measured recall of an approximate result against the exact one: the
/// multiset-intersection size over the exact result's length (1.0 for empty
/// exact results). Both slices are compared in the key's total order, so
/// duplicate and NaN keys are counted faithfully.
pub fn measured_recall<K: TopKKey>(approx: &[K], exact: &[K]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let mut got: Vec<K::Bits> = approx.iter().map(|v| v.to_bits()).collect();
    let mut want: Vec<K::Bits> = exact.iter().map(|v| v.to_bits()).collect();
    got.sort_unstable();
    want.sort_unstable();
    let (mut i, mut j, mut hits) = (0usize, 0usize, 0usize);
    while i < got.len() && j < want.len() {
        match got[i].cmp(&want[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                hits += 1;
                i += 1;
                j += 1;
            }
        }
    }
    hits as f64 / exact.len() as f64
}

/// Execute the approximate half of a [`PlannedQuery`] (the plan's config
/// must carry a strict `Mode::Approx` target; `beta` is the per-bucket
/// candidate budget the plan resolved).
///
/// When `shared_delegates` is `Some`, the candidate-construction scan is
/// skipped and charged to the provider, exactly like the exact pipeline's
/// shared-delegate seam — this is how the engine amortizes one bucket scan
/// over a fused approximate group and how a warm delegate cache serves
/// repeat approximate traffic without re-reading the corpus. A shared
/// vector with a *larger* budget than planned is accepted (more candidates
/// only raises recall); a smaller one is rejected.
pub(crate) fn dr_topk_approx_planned<K: TopKKey>(
    device: &Device,
    data: &[K],
    shared_delegates: Option<&DelegateVector<K>>,
    planned: &PlannedQuery,
) -> DrTopKResult<K> {
    let config = &planned.config;
    debug_assert!(
        config.mode.strict_target().is_some(),
        "approx execution requires a strict approximate mode"
    );
    let k = planned.k.min(data.len());
    let alpha = planned.alpha;
    let budget = config.beta;

    if let Some(shared) = shared_delegates {
        assert_eq!(
            shared.subrange_size,
            1usize << alpha,
            "shared candidate vector was built with a different alpha"
        );
        assert!(
            shared.beta >= budget,
            "shared candidate vector budget {} is below the plan's {}",
            shared.beta,
            budget
        );
        assert_eq!(
            shared.num_subranges,
            data.len().div_ceil(shared.subrange_size),
            "shared candidate vector does not cover this input"
        );
    }

    // The approximate pipeline as a two-stage graph: the bucket-top-k′
    // candidate pass (absent when a shared, already-built vector is
    // supplied — its cost belongs to the provider), then the inner top-k
    // straight over the candidates. No first top-k, no concatenation, no
    // refill — the input is never touched again after the first stage.
    struct ApproxCtx<K: TopKKey> {
        built: Option<DelegateVector<K>>,
        inner: Option<TopKResult<K>>,
    }
    let mut graph: StageGraph<'_, Mutex<ApproxCtx<K>>> = StageGraph::new();
    let mut deps = Vec::new();
    if shared_delegates.is_none() {
        let built_id = graph.add(
            StageKind::BucketTopKPrime,
            Resource::Compute(0),
            &[],
            move |ctx: &Mutex<ApproxCtx<K>>| {
                let built = build_delegate_vector(device, data, alpha, budget, config.construction);
                let outcome = StageOutcome {
                    stats: built.stats,
                    time_ms: built.time_ms,
                };
                ctx.lock().unwrap().built = Some(built);
                outcome
            },
        );
        deps.push(built_id);
    }
    graph.add(
        StageKind::SecondTopK,
        Resource::Compute(0),
        &deps,
        move |ctx: &Mutex<ApproxCtx<K>>| {
            let mut guard = ctx.lock().unwrap();
            let candidates = shared_delegates
                .or(guard.built.as_ref())
                .expect("candidate vector available once stage 1 ran");
            let inner = config.inner.run(device, &candidates.values, k);
            let outcome = StageOutcome {
                stats: inner.stats,
                time_ms: inner.time_ms,
            };
            guard.inner = Some(inner);
            outcome
        },
    );

    let ctx = Mutex::new(ApproxCtx {
        built: None,
        inner: None,
    });
    let report = graph.execute(&ctx);
    let mut ctx = ctx.into_inner().unwrap();
    let candidates = shared_delegates
        .or(ctx.built.as_ref())
        .expect("candidate vector available");
    let workload = WorkloadStats {
        input_len: data.len(),
        delegate_vector_len: candidates.len(),
        concatenated_len: 0,
        num_subranges: candidates.num_subranges,
        fully_taken_subranges: 0,
        second_topk_skipped: false,
        fell_back: false,
    };
    let inner = ctx.inner.take().expect("the candidate top-k ran");

    DrTopKResult {
        values: inner.values,
        kth_value: inner.kth_value,
        alpha,
        time_ms: report.makespan_ms,
        breakdown: report.phase_breakdown(),
        workload,
        stats: report.stats(),
        stages: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{dr_topk, dr_topk_approx, dr_topk_min, DrTopKConfig};
    use gpu_sim::DeviceSpec;
    use topk_baselines::{reference_topk, reference_topk_min};

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn recall_target_roundtrips_and_orders() {
        let t = RecallTarget::from_fraction(0.95);
        assert_eq!(t.basis_points(), 9500);
        assert!((t.fraction() - 0.95).abs() < 1e-12);
        assert!(!t.is_exact());
        assert!(RecallTarget::EXACT.is_exact());
        assert!(t < RecallTarget::EXACT);
        assert_eq!(RecallTarget::from_fraction(1.0), RecallTarget::EXACT);
        assert_eq!(format!("{}", t), "0.9500");
        // tiny fractions clamp to one basis point rather than zero
        assert_eq!(RecallTarget::from_fraction(1e-9).basis_points(), 1);
    }

    #[test]
    #[should_panic(expected = "recall target must be within")]
    fn zero_recall_target_panics() {
        RecallTarget::from_fraction(0.0);
    }

    #[test]
    fn planning_headroom_spends_a_quarter_of_the_allowance() {
        let t = RecallTarget::from_fraction(0.95).with_planning_headroom();
        assert_eq!(t.basis_points(), 9875);
        let t = RecallTarget::from_fraction(0.9).with_planning_headroom();
        assert_eq!(t.basis_points(), 9750);
        // never inflates into exactness
        let t = RecallTarget::from_basis_points(9999).with_planning_headroom();
        assert_eq!(t.basis_points(), 9999);
        assert!(!t.is_exact());
        assert!(RecallTarget::EXACT.with_planning_headroom().is_exact());
    }

    #[test]
    fn basis_point_constructor_roundtrips() {
        let t = RecallTarget::from_basis_points(9500);
        assert_eq!(t, RecallTarget::from_fraction(0.95));
    }

    #[test]
    #[should_panic(expected = "recall basis points")]
    fn zero_basis_points_panic() {
        RecallTarget::from_basis_points(0);
    }

    #[test]
    fn mode_strictness() {
        assert_eq!(Mode::Exact.strict_target(), None);
        assert_eq!(
            Mode::Approx {
                target_recall: RecallTarget::EXACT
            }
            .strict_target(),
            None
        );
        let t = RecallTarget::from_fraction(0.9);
        assert_eq!(Mode::Approx { target_recall: t }.strict_target(), Some(t));
        assert_eq!(Mode::default(), Mode::Exact);
    }

    #[test]
    fn expected_recall_matches_hand_computation() {
        // k = 1: always found regardless of budget
        assert_eq!(expected_recall(1, 16, 1), 1.0);
        // budget ≥ k is exact
        assert_eq!(expected_recall(10, 4, 10), 1.0);
        // one bucket: only `budget` of the k survive
        assert!((expected_recall(10, 1, 3) - 0.3).abs() < 1e-12);
        // k = 2, b = 2, budget = 1: miss exactly when both land together
        // (probability 1/2), and then one of the two is still returned:
        // E[recall] = 1 − 1/2 · 1/2 = 0.75
        assert!((expected_recall(2, 2, 1) - 0.75).abs() < 1e-12);
        // zero budget finds nothing
        assert_eq!(expected_recall(10, 4, 0), 0.0);
        // k = 0 is trivially complete
        assert_eq!(expected_recall(0, 4, 1), 1.0);
    }

    #[test]
    fn expected_recall_matches_monte_carlo() {
        // Cross-check the closed form against simulation for a few shapes.
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for (k, b, budget) in [(16usize, 8usize, 2usize), (64, 32, 3), (256, 512, 1)] {
            let trials = 4000;
            let mut total = 0.0;
            for _ in 0..trials {
                let mut counts = vec![0usize; b];
                for _ in 0..k {
                    counts[(next() % b as u64) as usize] += 1;
                }
                let found: usize = counts.iter().map(|&c| c.min(budget)).sum();
                total += found as f64 / k as f64;
            }
            let simulated = total / trials as f64;
            let model = expected_recall(k, b, budget);
            assert!(
                (simulated - model).abs() < 0.02,
                "k={k} b={b} k'={budget}: model {model} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn expected_recall_is_monotone_in_budget_and_buckets() {
        let k = 128;
        let mut last = 0.0;
        for budget in 1..=k {
            let r = expected_recall(k, 64, budget);
            assert!(r >= last - 1e-12, "budget {budget}");
            last = r;
        }
        let mut last = 0.0;
        for bexp in 1..=14u32 {
            let r = expected_recall(k, 1 << bexp, 1);
            assert!(r >= last - 1e-12, "buckets 2^{bexp}");
            last = r;
        }
    }

    #[test]
    fn required_budget_is_minimal() {
        for (k, b) in [(32usize, 64usize), (256, 1024), (100, 7)] {
            for bp in [9000u16, 9500, 9900, 10_000] {
                let target = RecallTarget(bp);
                let budget = required_budget(k, b, target);
                assert!(budget >= 1 && budget <= k);
                assert!(
                    expected_recall(k, b, budget) >= target.fraction(),
                    "k={k} b={b} target={target}: budget {budget} misses"
                );
                if budget > 1 {
                    assert!(
                        expected_recall(k, b, budget - 1) < target.fraction(),
                        "k={k} b={b} target={target}: budget {budget} not minimal"
                    );
                }
            }
        }
        // exact target forces budget = k on a single bucket
        assert_eq!(required_budget(10, 1, RecallTarget::EXACT), 10);
    }

    #[test]
    fn measured_recall_counts_multisets() {
        assert_eq!(measured_recall::<u32>(&[], &[]), 1.0);
        assert_eq!(measured_recall(&[5u32, 5, 3], &[5, 5, 3]), 1.0);
        assert!((measured_recall(&[5u32, 5, 1], &[5, 5, 3]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(measured_recall(&[9u32], &[5, 5, 3]), 0.0);
        // duplicates are not double counted
        assert!((measured_recall(&[5u32, 5, 5], &[5, 4, 3]) - 1.0 / 3.0).abs() < 1e-12);
        // float keys compare in the total order (NaN equals NaN)
        let a = [f32::NAN, 1.0];
        assert_eq!(measured_recall(&a, &a), 1.0);
    }

    #[test]
    fn approx_meets_target_on_uniform_data() {
        let dev = device();
        let n = 1 << 18;
        let data = topk_datagen::uniform(n, 0xAB);
        for &k in &[32usize, 256] {
            for &target in &[0.9f64, 0.95, 0.99] {
                let exact = reference_topk(&data, k);
                let got = dr_topk_approx(&dev, &data, k, target, &DrTopKConfig::default());
                assert_eq!(got.values.len(), k);
                let recall = measured_recall(&got.values, &exact);
                assert!(
                    recall >= target - 0.03,
                    "k={k} target={target}: measured {recall}"
                );
                // the candidate set really is the whole workload: nothing
                // was concatenated, nothing fell back
                assert_eq!(got.workload.concatenated_len, 0);
                assert!(!got.workload.fell_back);
                assert!(got.workload.delegate_vector_len > 0);
                assert!(got.workload.delegate_vector_len < n);
            }
        }
    }

    #[test]
    fn approx_values_are_sorted_and_bounded_by_exact() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 16, 3);
        let k = 100;
        let got = dr_topk_approx(&dev, &data, k, 0.9, &DrTopKConfig::default());
        // descending, and each value no larger than the exact counterpart
        assert!(got.values.windows(2).all(|w| w[0] >= w[1]));
        let exact = reference_topk(&data, k);
        for (g, e) in got.values.iter().zip(&exact) {
            assert!(g <= e, "approx value {g} exceeds exact {e}");
        }
        assert_eq!(got.kth_value, *got.values.last().unwrap());
    }

    #[test]
    fn approx_min_direction_works_through_the_mode_knob() {
        let dev = device();
        let distances: Vec<f32> = topk_datagen::uniform(1 << 16, 17)
            .into_iter()
            .map(|x| (x % 1_000_000) as f32 * 0.5)
            .collect();
        let cfg = DrTopKConfig::approx(0.95);
        let got = dr_topk_min(&dev, &distances, 64, &cfg);
        assert_eq!(got.values.len(), 64);
        assert!(got.values.windows(2).all(|w| w[0] <= w[1]));
        let recall = measured_recall(&got.values, &reference_topk_min(&distances, 64));
        assert!(recall >= 0.9, "min-direction recall {recall}");
    }

    #[test]
    fn exact_target_is_bit_identical_to_exact_mode() {
        let dev = device();
        let data = topk_datagen::normal(1 << 15, 9);
        let k = 200;
        let exact = dr_topk(&dev, &data, k, &DrTopKConfig::default());
        let via_approx = dr_topk_approx(&dev, &data, k, 1.0, &DrTopKConfig::default());
        assert_eq!(exact.values, via_approx.values);
        assert_eq!(exact.stats, via_approx.stats);
        assert_eq!(exact.workload, via_approx.workload);
    }

    #[test]
    fn infeasible_shapes_fall_back_to_the_exact_answer() {
        let dev = device();
        let data: Vec<u32> = (0..100u32).collect();
        // k so close to n that no recall-meeting candidate set is smaller
        // than the input: the plan falls back and the answer is exact.
        let got = dr_topk_approx(&dev, &data, 90, 0.9, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, 90));
        assert!(got.workload.fell_back);
        // k = n, k = 0 and empty inputs degrade exactly like the exact mode
        let got = dr_topk_approx(&dev, &data, 100, 0.9, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, 100));
        assert!(
            dr_topk_approx(&dev, &data, 0, 0.9, &DrTopKConfig::default())
                .values
                .is_empty()
        );
        assert!(
            dr_topk_approx::<u32>(&dev, &[], 5, 0.9, &DrTopKConfig::default())
                .values
                .is_empty()
        );
    }

    #[test]
    fn small_feasible_shapes_still_return_k_values() {
        // n = 512, k = 16 is small but plannable (≥ 2k buckets exist); the
        // result must still be k values drawn from the input.
        let dev = device();
        let data = topk_datagen::uniform(512, 31);
        let got = dr_topk_approx(&dev, &data, 16, 0.9, &DrTopKConfig::default());
        assert_eq!(got.values.len(), 16);
        assert!(!got.workload.fell_back);
        assert!(got.workload.num_subranges >= 32, "≥ 2k buckets");
        assert!(got.values.iter().all(|v| data.contains(v)));
        // k too large for a 2k-bucket split → the plan normalises to the
        // exact machinery (delegate pipeline or inner-direct) and the
        // answer is exact
        let got = dr_topk_approx(&dev, &data, 200, 0.9, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, 200));
        assert!(got.workload.concatenated_len > 0 || got.workload.fell_back);
    }

    #[test]
    fn approx_moves_fewer_transactions_than_exact_second_phase() {
        // The one-shot savings are the exact pipeline's first top-k +
        // concatenation + second top-k; the construction scan is common.
        let dev = device();
        let data = topk_datagen::uniform(1 << 18, 5);
        let k = 256;
        let exact = dr_topk(&dev, &data, k, &DrTopKConfig::default());
        let approx = dr_topk_approx(&dev, &data, k, 0.95, &DrTopKConfig::default());
        let t = |r: &DrTopKResult<u32>| {
            r.stats.global_load_transactions + r.stats.global_store_transactions
        };
        assert!(
            t(&approx) < t(&exact),
            "approx {} vs exact {}",
            t(&approx),
            t(&exact)
        );
    }
}
