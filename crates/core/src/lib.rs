//! # drtopk-core — Dr. Top-k: delegate-centric top-k workload reduction
//!
//! This crate implements the primary contribution of *"Dr. Top-k:
//! Delegate-Centric Top-k on GPUs"* (SC '21) on the [`gpu_sim`] substrate:
//!
//! * **Delegate-centric workload reduction** — the input vector is split
//!   into `2^α`-element subranges; the top-β *delegates* of each subrange
//!   form a small delegate vector; a first top-k on the delegates decides
//!   which subranges can contribute at all (Rules 1 and 3), a filtering
//!   threshold prunes their elements (Rule 2), and a second top-k on the tiny
//!   concatenated vector produces the answer ([`pipeline`], [`delegate`],
//!   [`first_topk()`], [`mod@concat`]).
//! * **α tuning** — the convex cost model of Section 5.2 and the closed-form
//!   Rule 4 optimum ([`tuning`]).
//! * **Optimized in-place radix top-k** — flag-based candidate tracking with
//!   zero selection-phase stores ([`radix_flags`], Figure 12).
//! * **Construction optimizations** — warp-centric shuffle reduction and the
//!   coalesced-shared/strided-compute kernel for small subranges
//!   ([`delegate`], Section 5.3).
//! * **Distributed Dr. Top-k** — multi-device execution with asynchronous
//!   gathering and reload-overhead modeling ([`distributed`], Section 5.4).
//! * **Large-k path crossover** — a staged multi-pass radix-select
//!   pipeline as a second execution path, chosen per `(n, k, key_bits,
//!   device)` by a modeled crossover ([`choose_path`], [`PathHint`];
//!   going beyond the paper, following RadiK's large-k observation).
//! * **Generic keys** — every entry point is generic over
//!   [`TopKKey`] (`u32`/`u64`/`i32`/`i64`/`f32`/`f64`), and [`dr_topk_min`]
//!   answers top-k-*smallest* queries (k-NN distances) on native keys with
//!   no caller-side bit tricks.
//! * **Recall-targeted approximate selection** — [`dr_topk_approx`] (and
//!   the [`Mode`] knob on [`DrTopKConfig`]) trades exactness for speed:
//!   per-bucket candidates sized by an analytic recall model replace the
//!   concatenation/refill passes entirely ([`approx`], going beyond the
//!   paper).
//!
//! ## Quickstart
//!
//! ```
//! use drtopk_core::{dr_topk, DrTopKConfig};
//! use gpu_sim::{Device, DeviceSpec};
//!
//! let device = Device::new(DeviceSpec::v100s());
//! let data: Vec<u32> = (0..100_000u32).map(|x| x.wrapping_mul(2654435761)).collect();
//!
//! let result = dr_topk(&device, &data, 10, &DrTopKConfig::default());
//! assert_eq!(result.values.len(), 10);
//! assert_eq!(result.values, topk_baselines::reference_topk(&data, 10));
//! // the delegate + concatenated workload is a small fraction of |V|
//! assert!(result.workload.workload_fraction() < 0.2);
//! ```

#![deny(missing_docs)]

pub mod approx;
pub mod calibrate;
pub mod concat;
pub mod delegate;
pub mod distributed;
pub mod explore;
pub mod first_topk;
pub mod pipeline;
pub mod radix_flags;
mod radix_path;
pub mod rows;
pub mod stages;
pub mod tuning;
pub mod verify;

pub use approx::{expected_recall, measured_recall, required_budget, Mode, RecallTarget};
pub use calibrate::{CalibrationFit, KindFit};
pub use concat::{concatenate, Concatenated};
pub use delegate::{build_delegate_vector, ConstructionMethod, DelegateVector};
pub use distributed::{
    capacity_in_keys, distributed_dr_topk, distributed_dr_topk_executor,
    distributed_dr_topk_explore, distributed_dr_topk_observed, distributed_dr_topk_scheduled,
    partition_subvectors, place_shards, DistributedResult, ReloadSchedule,
};
pub use explore::{explore_schedules, Divergence, ExploreBudget, ExploreOutcome};
pub use first_topk::{first_topk, FirstTopK};
pub use pipeline::{
    as_desc, dr_topk, dr_topk_approx, dr_topk_min, dr_topk_planned, dr_topk_with_stats,
    DrTopKConfig, DrTopKResult, InnerAlgorithm, PhaseBreakdown, PlannedQuery, WorkloadStats,
};
pub use radix_flags::{
    flag_radix_select_by_key, flag_radix_select_kth, flag_radix_topk, FlagSelectConfig,
    FlagSelectOutcome,
};
pub use rows::{
    topk_rows, topk_rows_explore, topk_rows_min, topk_rows_on, RowK, RowMatrix, RowTopKResult,
};
pub use stages::{
    ExecutedStage, Executor, Resource, StageGraph, StageId, StageKind, StageOutcome, StageReport,
    TransferLane,
};
pub use topk_baselines::{Desc, KeyBits, TopKKey};
pub use tuning::{
    auto_alpha, choose_path, choose_path_sampled, choose_path_with_survival,
    estimate_radix_survival, is_convex_in_alpha, model_optimal_alpha, optimal_approx_tuning,
    predicted_approx_cost, predicted_cost, radix_predicted_cost,
    radix_predicted_cost_with_survival, rule4_alpha, ApproxTuning, ChosenPath, PathHint,
    PredictedCost, RadixPredictedCost, PAPER_RULE4_CONST, RADIX_DIGIT_SURVIVAL,
    RADIX_MODEL_CALIBRATION,
};
pub use verify::{verify_specs, Diagnostic, DiagnosticCode, StageSpec, VerifyOptions};
