//! Distributed (multi-GPU, out-of-core) Dr. Top-k — Section 5.4, Figure 16,
//! Table 2, extended with stream-overlapped chunked ingestion.
//!
//! The input vector is partitioned into equal sub-vectors no longer than a
//! device's memory capacity and dealt over the devices by capability
//! ([`place_shards`]): round-robin on a homogeneous cluster, exactly as the
//! paper prescribes, while a heterogeneous cluster hands faster devices
//! proportionally more sub-vectors so no slow device bounds the makespan.
//! Each device runs the single-GPU Dr. Top-k on every sub-vector assigned
//! to it — including the large-k radix path when the per-device
//! [`PathHint`](crate::tuning::PathHint) resolution picks it —
//! streaming additional sub-vectors from the host when it owns more than one
//! (the *reload overhead* column of Table 2) — which also makes this the
//! runner for **out-of-core** corpora: a host-resident vector larger than the
//! aggregate device memory simply produces more chunks per device. The
//! secondary devices then send their k winners to the primary device with
//! asynchronous messages, and the primary computes the final top-k over the
//! `#devices × k` candidates.
//!
//! The whole run is one [`StageGraph`] whose closures do the *real* work:
//! per-chunk [`ChunkLoad`](crate::stages::StageKind::ChunkLoad) transfer
//! stages on each device's host→device lane,
//! [`LocalTopK`](crate::stages::StageKind::LocalTopK) compute stages (each
//! runs the full local pipeline on its device) on its compute queue,
//! per-device merges, one per-source
//! [`Gather`](crate::stages::StageKind::Gather) per secondary device on its
//! own interconnect lane, and the primary's final selection. The threaded
//! executor dispatches one host worker per resource, so each device's chunk
//! pipelines run concurrently for real — host wall-clock tracks the modeled
//! makespan — while the deterministic modeled replay keeps every report
//! bit-identical run to run. The context is partitioned per device: each
//! device's candidate buffer and per-chunk breakdowns live in their own
//! mutex slot, written only by that device's stages.
//!
//! Under the default [`ReloadSchedule::DoubleBuffered`] schedule chunk
//! *i + 1* transfers while chunk *i* computes (two staging buffers: chunk
//! *i + 2*'s load additionally waits for chunk *i*'s compute to free its
//! buffer), hiding reload time behind compute; [`ReloadSchedule::Serial`]
//! reproduces the historical transfer-then-compute interleaving for
//! comparison. The two schedules are bit-identical in their results — only
//! the modeled timeline differs.
//!
//! Everything here is generic over [`TopKKey`], like the rest of the
//! pipeline; the `u32` monomorphization is the historical behaviour.

// Approved `std::sync` lock holder (see clippy.toml + ARCHITECTURE.md):
// the distributed context partitions per-device state into mutex slots, as
// the executor's `&C` sharing rule requires.
#![allow(clippy::disallowed_types)]

use std::sync::Mutex;

use drtopk_obs::TraceSink;
use gpu_sim::{GpuCluster, KernelStats, TransferDirection};
use topk_baselines::{reference_topk, Desc, TopKKey};

use crate::explore::{explore_schedules, Divergence, ExploreBudget, ExploreOutcome};
use crate::pipeline::{dr_topk_with_stats, DrTopKConfig, PhaseBreakdown};
use crate::radix_flags::flag_radix_topk;
use crate::stages::{
    Executor, Resource, StageGraph, StageId, StageKind, StageOutcome, StageReport, TransferLane,
};

/// How out-of-core sub-vector reloads are scheduled against compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReloadSchedule {
    /// The historical schedule: chunk *i + 1*'s host→device transfer starts
    /// only after chunk *i* has finished computing — no overlap; the
    /// device's modeled time is the plain sum of its compute and reload
    /// times.
    Serial,
    /// Double-buffered ingestion (default): chunk *i + 1* transfers while
    /// chunk *i* computes. Two staging buffers per device: chunk *i + 2*'s
    /// transfer additionally waits for chunk *i*'s compute to release its
    /// buffer. Transfers on the same device's lane serialize among
    /// themselves.
    #[default]
    DoubleBuffered,
}

impl ReloadSchedule {
    /// Display name used by benches and examples.
    pub fn name(self) -> &'static str {
        match self {
            ReloadSchedule::Serial => "serial",
            ReloadSchedule::DoubleBuffered => "double-buffered",
        }
    }

    /// How many host→device staging buffers the schedule cycles through on
    /// each device — the input of the verifier's `V010` double-buffer
    /// hazard analysis ([`crate::verify::VerifyOptions::staging_buffers`]).
    /// Serial reloading reuses one buffer; double-buffering alternates two.
    pub fn staging_buffers(self) -> usize {
        match self {
            ReloadSchedule::Serial => 1,
            ReloadSchedule::DoubleBuffered => 2,
        }
    }
}

impl std::fmt::Display for ReloadSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a distributed Dr. Top-k run, generic over the key type (the
/// `u32` default keeps the historical monomorphization spelled
/// `DistributedResult`).
#[derive(Debug, Clone)]
pub struct DistributedResult<K: TopKKey = u32> {
    /// The k largest values across the whole input, descending.
    pub values: Vec<K>,
    /// The k-th largest value.
    pub kth_value: K,
    /// Per-device local compute time (Dr. Top-k over its sub-vectors), ms.
    pub per_device_compute_ms: Vec<f64>,
    /// Per-device host→device reload time for sub-vectors beyond the first
    /// resident one, ms.
    pub per_device_reload_ms: Vec<f64>,
    /// Modeled communication time of the asynchronous gather: the summed
    /// duration of every per-source gather stage (the stages themselves
    /// overlap on their own interconnect lanes, so the makespan charge is
    /// smaller).
    ///
    /// A gather stage exists only for a secondary device that actually
    /// *owns data* — a multi-device cluster whose input fits one
    /// sub-vector places everything on the primary, emits no gather
    /// stages or lanes at all, and reports `0.0` here by design (the
    /// verifier's `V007` diagnostic rejects the phantom alternative, a
    /// gather with no source).
    pub communication_ms: f64,
    /// Final top-k on the primary device, ms.
    pub final_topk_ms: f64,
    /// End-to-end modeled time: slowest device (compute + reload) + gather +
    /// final top-k.
    pub total_ms: f64,
    /// Total reload overhead across all devices (Table 2's "Reload Overhead"
    /// column reports the per-run total), ms.
    pub reload_overhead_ms: f64,
    /// Aggregated kernel counters across all devices.
    pub stats: KernelStats,
    /// What the recall model predicts the run returns: 1.0 for an exact
    /// config; for a recall-targeted approximate config, the smallest
    /// per-sub-vector predicted recall (a true top-k element lives in
    /// exactly one sub-vector and survives with that sub-vector's
    /// probability, so the minimum bounds the whole run from below).
    pub predicted_recall: f64,
    /// Per-phase breakdown across every chunk's local pipeline, with the
    /// distributed machinery's own selection stages (per-device merges, the
    /// final top-k) under `second_topk_ms` and all data movement (chunk
    /// reloads, the gathers) under `transfer_ms` — transfer time is **not**
    /// folded into compute.
    pub breakdown: PhaseBreakdown,
    /// The executed stage schedule: every chunk load, chunk top-k, merge,
    /// gather and final-selection stage with its modeled interval. The
    /// overlap efficiency of the ingestion is
    /// [`StageReport::overlap_efficiency`].
    pub stages: StageReport,
    /// The reload schedule the run was executed under.
    pub schedule: ReloadSchedule,
}

impl<K: TopKKey> DistributedResult<Desc<K>> {
    /// Unwrap a result computed in [`Desc`] space back to native keys
    /// (ascending order for the caller's smallest-direction query).
    pub fn into_native(self) -> DistributedResult<K> {
        DistributedResult {
            values: self.values.into_iter().map(|d| d.0).collect(),
            kth_value: self.kth_value.0,
            per_device_compute_ms: self.per_device_compute_ms,
            per_device_reload_ms: self.per_device_reload_ms,
            communication_ms: self.communication_ms,
            final_topk_ms: self.final_topk_ms,
            total_ms: self.total_ms,
            reload_overhead_ms: self.reload_overhead_ms,
            stats: self.stats,
            predicted_recall: self.predicted_recall,
            breakdown: self.breakdown,
            stages: self.stages,
            schedule: self.schedule,
        }
    }
}

/// Convert a device capacity expressed in `u32` elements (the unit of
/// [`gpu_sim::Device::capacity_elems`]) into a capacity in `K`-typed keys:
/// an 8-byte key occupies two `u32` words, so half as many fit.
pub fn capacity_in_keys<K>(capacity_u32_elems: usize) -> usize {
    let words = (std::mem::size_of::<K>() / std::mem::size_of::<u32>()).max(1);
    capacity_u32_elems / words
}

/// Partition `n` elements into sub-vectors of at most `capacity` elements,
/// returned as index ranges. Sub-vectors are equally sized (within one
/// element) as the paper prescribes.
pub fn partition_subvectors(n: usize, capacity: usize) -> Vec<std::ops::Range<usize>> {
    assert!(capacity > 0, "device capacity must be positive");
    if n == 0 {
        return Vec::new();
    }
    let pieces = n.div_ceil(capacity).max(1);
    (0..pieces)
        .map(|p| gpu_sim::chunk_range(n, pieces, p))
        .collect()
}

/// Deal sub-vectors onto devices by capability: a deterministic greedy that
/// sends each sub-vector, in index order, to the device with the smallest
/// projected finish estimate `(assigned elements + len) / capability`, with
/// ties going to the lowest device index.
///
/// `capabilities` is one positive throughput figure per device — the
/// cluster runner uses each device profile's
/// [`effective_bandwidth_bytes_per_s`](gpu_sim::DeviceSpec::effective_bandwidth_bytes_per_s),
/// since every local pipeline is bandwidth-bound. On a homogeneous cluster
/// with equally sized sub-vectors the greedy degenerates to the paper's
/// round-robin dealing (sub-vector *i* → device *i* mod #devices); in a
/// heterogeneous cluster, faster devices own proportionally more elements,
/// which shortens the slowest-device tail that bounds the makespan.
///
/// Returns the owning device index for every sub-vector.
pub fn place_shards(lens: &[usize], capabilities: &[f64]) -> Vec<usize> {
    assert!(!capabilities.is_empty(), "need at least one device");
    assert!(
        capabilities.iter().all(|&c| c > 0.0 && c.is_finite()),
        "device capabilities must be positive and finite"
    );
    let mut assigned = vec![0.0f64; capabilities.len()];
    lens.iter()
        .map(|&len| {
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (d, &cap) in capabilities.iter().enumerate() {
                let cost = (assigned[d] + len as f64) / cap;
                if cost < best_cost {
                    best = d;
                    best_cost = cost;
                }
            }
            assigned[best] += len as f64;
            best
        })
        .collect()
}

/// Run Dr. Top-k on `data` distributed over the devices of `cluster`,
/// under the default [`ReloadSchedule::DoubleBuffered`] chunked ingestion.
pub fn distributed_dr_topk<K: TopKKey>(
    cluster: &GpuCluster,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
) -> DistributedResult<K> {
    distributed_dr_topk_scheduled(cluster, data, k, config, ReloadSchedule::default())
}

/// Run distributed Dr. Top-k under an explicit [`ReloadSchedule`].
///
/// Both schedules execute the identical stage graph and return bit-identical
/// values; only the modeled timeline differs (the bench target
/// `streamed_oversize` and the pinned out-of-core tests compare the two).
pub fn distributed_dr_topk_scheduled<K: TopKKey>(
    cluster: &GpuCluster,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
    schedule: ReloadSchedule,
) -> DistributedResult<K> {
    distributed_dr_topk_executor(cluster, data, k, config, schedule, Executor::Threaded)
}

/// The mutable state one device's stages write: its local candidate buffer
/// and the per-chunk phase breakdowns, in chunk order. Only stages of that
/// device touch the slot, and they are chained on its compute queue, so the
/// mutex is uncontended — it exists to satisfy the `&C` sharing rule.
struct DeviceSlot<K> {
    local: Vec<K>,
    breakdowns: Vec<PhaseBreakdown>,
}

/// Context of the distributed stage graph: one slot per device plus the
/// final winners, written once by the `FinalTopK` stage.
struct DistCtx<K> {
    slots: Vec<Mutex<DeviceSlot<K>>>,
    winners: Mutex<Option<Vec<K>>>,
}

/// Run distributed Dr. Top-k under an explicit [`ReloadSchedule`] *and* an
/// explicit host [`Executor`].
///
/// Results and every modeled report field are bit-identical across
/// executors; [`Executor::Threaded`] (the default of every other entry
/// point) additionally makes host wall-clock track the modeled makespan,
/// which the calibration acceptance test pins against [`Executor::Serial`].
pub fn distributed_dr_topk_executor<K: TopKKey>(
    cluster: &GpuCluster,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
    schedule: ReloadSchedule,
    executor: Executor,
) -> DistributedResult<K> {
    run_distributed(cluster, data, k, config, schedule, executor, None)
}

/// [`distributed_dr_topk_executor`] with a [`TraceSink`] attached to the
/// stage graph: the run's stages stream into `sink` as spans whose modeled
/// intervals match the returned report's `stages` **bit-for-bit**, plus
/// live executor events (dispatches, dependency-gate wakes, debug-build
/// verifier passes). A deterministic
/// [`TraceRecorder`](drtopk_obs::TraceRecorder) fed from this entry point
/// exports byte-identical Chrome traces across runs and executors.
pub fn distributed_dr_topk_observed<'a, K: TopKKey>(
    cluster: &'a GpuCluster,
    data: &'a [K],
    k: usize,
    config: &'a DrTopKConfig,
    schedule: ReloadSchedule,
    executor: Executor,
    sink: &'a dyn TraceSink,
) -> DistributedResult<K> {
    run_distributed(cluster, data, k, config, schedule, executor, Some(sink))
}

/// Shared body of the executor-selecting entry points.
fn run_distributed<'a, K: TopKKey>(
    cluster: &'a GpuCluster,
    data: &'a [K],
    k: usize,
    config: &'a DrTopKConfig,
    schedule: ReloadSchedule,
    executor: Executor,
    sink: Option<&'a dyn TraceSink>,
) -> DistributedResult<K> {
    let k = k.min(data.len());
    let num_devices = cluster.num_devices();
    if k == 0 || data.is_empty() {
        return empty_result(num_devices, schedule);
    }
    let mut plan = build_distributed_graph(cluster, data, k, config, schedule);
    if let Some(sink) = sink {
        plan.graph.set_trace_sink(sink);
    }
    #[cfg(debug_assertions)]
    {
        // The generic execute-time check runs with default options; the
        // planner knows its staging-buffer count, so it additionally arms
        // the V010 double-buffer hazard analysis.
        let diags = plan.graph.verify_with(&crate::verify::VerifyOptions {
            staging_buffers: Some(schedule.staging_buffers()),
        });
        assert!(
            diags.is_empty(),
            "distributed stage graph failed verification:\n{}",
            diags
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    let DistPlan {
        graph,
        ctx,
        predicted_recall,
    } = plan;
    let report = graph.execute_with(&ctx, executor);
    finish_distributed_run(ctx, report, num_devices, predicted_recall, schedule)
}

/// Model-check the schedule space of one distributed run, then execute it.
///
/// Enumerates (or samples, per `budget`) the dispatch orders the threaded
/// executor's per-resource FIFO workers could take for this exact run's
/// stage graph, runs every order for real on a freshly built graph, and
/// requires byte-identical deterministic summaries plus bit-identical
/// winners across all of them (see [`crate::explore`]). On success the run
/// executes once more under [`Executor::Threaded`] and its result is
/// returned alongside the coverage summary; the first disagreement (or a
/// deadlocked interleaving) returns the [`Divergence`] instead.
pub fn distributed_dr_topk_explore<K: TopKKey>(
    cluster: &GpuCluster,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
    schedule: ReloadSchedule,
    budget: ExploreBudget,
) -> Result<(DistributedResult<K>, ExploreOutcome), Box<Divergence>> {
    let k = k.min(data.len());
    if k == 0 || data.is_empty() {
        let outcome = ExploreOutcome {
            schedules_run: 0,
            exhaustive: true,
            stages: 0,
            reference: StageReport::default(),
        };
        return Ok((empty_result(cluster.num_devices(), schedule), outcome));
    }
    let outcome = explore_schedules(
        || {
            let plan = build_distributed_graph(cluster, data, k, config, schedule);
            (plan.graph, plan.ctx)
        },
        |ctx: &DistCtx<K>, _| {
            ctx.winners
                .lock()
                .unwrap()
                .as_ref()
                .map(|vs| vs.iter().map(|v| v.to_bits()).collect::<Vec<K::Bits>>())
        },
        budget,
    )?;
    let result =
        distributed_dr_topk_executor(cluster, data, k, config, schedule, Executor::Threaded);
    Ok((result, outcome))
}

/// The zero-work result for empty inputs or `k == 0`, shared by every
/// entry point.
fn empty_result<K: TopKKey>(num_devices: usize, schedule: ReloadSchedule) -> DistributedResult<K> {
    DistributedResult {
        values: Vec::new(),
        kth_value: K::default(),
        per_device_compute_ms: vec![0.0; num_devices],
        per_device_reload_ms: vec![0.0; num_devices],
        communication_ms: 0.0,
        final_topk_ms: 0.0,
        total_ms: 0.0,
        reload_overhead_ms: 0.0,
        stats: KernelStats::default(),
        predicted_recall: 1.0,
        breakdown: PhaseBreakdown::default(),
        stages: StageReport::default(),
        schedule,
    }
}

/// A built-but-unexecuted distributed run: the stage graph, the context its
/// closures write through, and the plan-time recall bound. Splitting the
/// build from the execute is what lets [`distributed_dr_topk_explore`]
/// rebuild the identical graph once per enumerated schedule.
struct DistPlan<'a, K: TopKKey> {
    graph: StageGraph<'a, DistCtx<K>>,
    ctx: DistCtx<K>,
    predicted_recall: f64,
}

/// Build the distributed stage graph for a non-trivial run (callers have
/// already handled `k == 0` / empty data). Building is deterministic given
/// the same inputs — rebuilding yields a graph of identical shape, which
/// the schedule explorer relies on. (Reload transfers are logged on the
/// cluster's transfer log at build time, as the historical runner did, so
/// rebuilding grows that log; the modeled times it returns are
/// deterministic, so results are unaffected.)
fn build_distributed_graph<'a, K: TopKKey>(
    cluster: &'a GpuCluster,
    data: &'a [K],
    k: usize,
    config: &'a DrTopKConfig,
    schedule: ReloadSchedule,
) -> DistPlan<'a, K> {
    let num_devices = cluster.num_devices();
    // Partition into sub-vectors that fit device memory, then deal them
    // over devices by capability (see `place_shards`): on a homogeneous
    // cluster this is the paper's round-robin dealing, on a heterogeneous
    // one faster devices own proportionally more elements.
    // `capacity_elems` is expressed in u32 elements; 8-byte keys fit half
    // as many per device.
    let capacity = capacity_in_keys::<K>(
        cluster
            .devices()
            .iter()
            .map(|d| d.capacity_elems())
            .min()
            .expect("cluster has devices"),
    )
    .max(1);
    let subvectors = partition_subvectors(data.len(), capacity);

    // Each sub-vector runs the whole (exact or approximate) pipeline
    // locally, so the run's predicted recall is bounded below by the worst
    // sub-vector plan (1.0 throughout for exact configs).
    let predicted_recall = subvectors
        .iter()
        .map(|r| crate::pipeline::PlannedQuery::plan(r.len(), k, config).predicted_recall)
        .fold(1.0f64, f64::min);

    // Build the stage graph whose closures do the real work. Per device: a
    // chain of chunk loads on its host→device lane interleaved with
    // per-chunk local top-k's on its compute queue, then the local merge;
    // per-source gathers and the final selection close the graph. The
    // threaded executor runs one host worker per resource, so the devices'
    // chunk pipelines execute concurrently for real.
    let ctx: DistCtx<K> = DistCtx {
        slots: (0..num_devices)
            .map(|_| {
                Mutex::new(DeviceSlot {
                    local: Vec::new(),
                    breakdowns: Vec::new(),
                })
            })
            .collect(),
        winners: Mutex::new(None),
    };
    let mut graph: StageGraph<'_, DistCtx<K>> = StageGraph::new();
    let mut device_tails: Vec<(usize, StageId)> = Vec::new();
    let capabilities: Vec<f64> = cluster
        .devices()
        .iter()
        .map(|dev| dev.spec().effective_bandwidth_bytes_per_s())
        .collect();
    let lens: Vec<usize> = subvectors.iter().map(std::ops::Range::len).collect();
    let owners = place_shards(&lens, &capabilities);
    for d in 0..num_devices {
        let device = cluster.device(d);
        let owned: Vec<(usize, std::ops::Range<usize>)> = subvectors
            .iter()
            .enumerate()
            .filter(|(i, _)| owners[*i] == d)
            .map(|(i, r)| (i, r.clone()))
            .collect();
        let mut computes: Vec<StageId> = Vec::new();
        for (j, (i, range)) in owned.iter().enumerate() {
            // Sub-vectors beyond the first resident one stream in from the
            // host: that is the reload overhead of Table 2. The transfer is
            // recorded on the device's log here at build time (as the
            // historical runner did); the stage closure only reports it.
            let load = (j > 0).then(|| {
                let bytes = (range.len() * std::mem::size_of::<K>()) as u64;
                let t = cluster.record_transfer(
                    "reload_subvector",
                    TransferDirection::HostToDevice { dst: d },
                    bytes,
                );
                // Serial: the load waits for the previous chunk's compute.
                // Double-buffered: the load only waits for the chunk whose
                // staging buffer it reuses (two buffers → chunk j − 2), so
                // it overlaps chunk j − 1's compute.
                let deps: Vec<StageId> = match schedule {
                    ReloadSchedule::Serial => vec![computes[j - 1]],
                    ReloadSchedule::DoubleBuffered => {
                        if j >= 2 {
                            vec![computes[j - 2]]
                        } else {
                            Vec::new()
                        }
                    }
                };
                graph.add_labeled(
                    StageKind::ChunkLoad,
                    format!("chunk {i} load"),
                    Resource::Transfer(TransferLane::HostToDevice(d)),
                    &deps,
                    move |_: &DistCtx<K>| StageOutcome {
                        stats: KernelStats::default(),
                        time_ms: t,
                    },
                )
            });
            let deps: Vec<StageId> = load.into_iter().collect();
            let range = range.clone();
            computes.push(graph.add_labeled(
                StageKind::LocalTopK,
                format!("chunk {i} top-k"),
                Resource::Compute(d),
                &deps,
                move |ctx: &DistCtx<K>| {
                    let r = dr_topk_with_stats(device, &data[range], k, config);
                    let outcome = StageOutcome {
                        stats: r.stats,
                        time_ms: r.time_ms,
                    };
                    let mut slot = ctx.slots[d].lock().unwrap();
                    slot.local.extend_from_slice(&r.values);
                    slot.breakdowns.push(r.breakdown);
                    outcome
                },
            ));
        }
        // A device that owns several sub-vectors merges their top-k's into
        // a single local top-k before communicating (tiny, done on-device).
        if owned.len() > 1 {
            // The merge reads every chunk's winners from the device slot,
            // so it depends on *all* of the chunk top-k's — the same-queue
            // FIFO order already guarantees they ran, but the declared
            // edges must match the real data flow (the verifier's V003
            // would otherwise see all but the last chunk as discarded).
            device_tails.push((
                d,
                graph.add(
                    StageKind::LocalMerge,
                    Resource::Compute(d),
                    &computes,
                    move |ctx: &DistCtx<K>| {
                        let mut slot = ctx.slots[d].lock().unwrap();
                        let merged = flag_radix_topk(device, &slot.local, k);
                        let outcome = StageOutcome {
                            stats: merged.stats,
                            time_ms: merged.time_ms,
                        };
                        slot.local = merged.values;
                        outcome
                    },
                ),
            ));
        } else if let Some(&only) = computes.last() {
            device_tails.push((d, only));
        }
    }

    // Asynchronous gather: each secondary device pushes its k winners to
    // the primary on its *own* interconnect lane (one stage per source), so
    // per-device gathers overlap instead of serializing on a shared queue;
    // each message pays the per-message launch overhead. The final
    // selection waits for every gather (and the primary's own tail).
    let mut final_deps: Vec<StageId> = Vec::new();
    if num_devices > 1 {
        let bytes = (k * std::mem::size_of::<K>()) as u64;
        for &(d, tail) in &device_tails {
            if d == 0 {
                final_deps.push(tail);
                continue;
            }
            let t = cluster
                .transfer_time_ms(TransferDirection::DeviceToDevice { src: d, dst: 0 }, bytes)
                + GpuCluster::MESSAGE_OVERHEAD_MS;
            final_deps.push(graph.add_labeled(
                StageKind::Gather,
                format!("gather from device {d}"),
                Resource::Transfer(TransferLane::Interconnect(d)),
                &[tail],
                move |_: &DistCtx<K>| StageOutcome {
                    stats: KernelStats::default(),
                    time_ms: t,
                },
            ));
        }
    } else {
        final_deps = device_tails.iter().map(|&(_, id)| id).collect();
    }
    graph.add(
        StageKind::FinalTopK,
        Resource::Compute(0),
        &final_deps,
        move |ctx: &DistCtx<K>| {
            // Candidates in device order — deterministic regardless of how
            // the host workers interleaved.
            let mut candidates: Vec<K> = Vec::new();
            for slot in &ctx.slots {
                candidates.extend_from_slice(&slot.lock().unwrap().local);
            }
            let (values, time_ms, stats) = if candidates.len() > k && num_devices > 1 {
                let final_topk = flag_radix_topk(cluster.device(0), &candidates, k);
                (final_topk.values, final_topk.time_ms, final_topk.stats)
            } else {
                (reference_topk(&candidates, k), 0.0, KernelStats::default())
            };
            *ctx.winners.lock().unwrap() = Some(values);
            StageOutcome { stats, time_ms }
        },
    );

    DistPlan {
        graph,
        ctx,
        predicted_recall,
    }
}

/// Derive every reported quantity of a [`DistributedResult`] from the one
/// executed stage schedule and the context its stages wrote.
fn finish_distributed_run<K: TopKKey>(
    ctx: DistCtx<K>,
    report: StageReport,
    num_devices: usize,
    predicted_recall: f64,
    schedule: ReloadSchedule,
) -> DistributedResult<K> {
    let DistCtx { slots, winners } = ctx;
    let values = winners
        .into_inner()
        .unwrap()
        .expect("the final selection stage always runs");
    let mut chunk_phases = PhaseBreakdown::default();
    for slot in &slots {
        for b in &slot.lock().unwrap().breakdowns {
            chunk_phases.delegate_ms += b.delegate_ms;
            chunk_phases.first_topk_ms += b.first_topk_ms;
            chunk_phases.concat_ms += b.concat_ms;
            chunk_phases.second_topk_ms += b.second_topk_ms;
        }
    }

    // Derive every reported quantity from the one stage schedule.
    let mut per_device_compute_ms = vec![0.0f64; num_devices];
    let mut per_device_reload_ms = vec![0.0f64; num_devices];
    let mut communication_ms = 0.0;
    let mut final_topk_ms = 0.0;
    let mut selection_overhead_ms = 0.0;
    for stage in &report.stages {
        match (stage.kind, stage.resource) {
            (StageKind::ChunkLoad, Resource::Transfer(TransferLane::HostToDevice(d))) => {
                per_device_reload_ms[d] += stage.duration_ms();
            }
            (StageKind::LocalTopK | StageKind::LocalMerge, Resource::Compute(d)) => {
                per_device_compute_ms[d] += stage.duration_ms();
                if stage.kind == StageKind::LocalMerge {
                    selection_overhead_ms += stage.duration_ms();
                }
            }
            (StageKind::Gather, _) => communication_ms += stage.duration_ms(),
            (StageKind::FinalTopK, _) => {
                final_topk_ms += stage.duration_ms();
                selection_overhead_ms += stage.duration_ms();
            }
            _ => {}
        }
    }
    let reload_overhead_ms: f64 = per_device_reload_ms.iter().sum();
    let breakdown = PhaseBreakdown {
        second_topk_ms: chunk_phases.second_topk_ms + selection_overhead_ms,
        transfer_ms: report.transfer_ms(),
        ..chunk_phases
    };
    let kth_value = values.last().copied().unwrap_or_default();

    DistributedResult {
        kth_value,
        total_ms: report.makespan_ms,
        per_device_compute_ms,
        per_device_reload_ms,
        communication_ms,
        final_topk_ms,
        reload_overhead_ms,
        stats: report.stats(),
        values,
        predicted_recall,
        breakdown,
        stages: report,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, GpuCluster};
    use topk_baselines::reference_topk;

    fn cluster(n: usize, capacity: usize) -> GpuCluster {
        let c = GpuCluster::homogeneous(n, DeviceSpec::v100s());
        for d in c.devices() {
            d.set_capacity_elems(capacity);
        }
        c
    }

    #[test]
    fn partitioning_covers_everything_equally() {
        let parts = partition_subvectors(1000, 300);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), 1000);
        assert!(parts.iter().all(|r| r.len() == 250));
        assert!(partition_subvectors(0, 100).is_empty());
        assert_eq!(partition_subvectors(10, 100).len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        partition_subvectors(10, 0);
    }

    #[test]
    fn distributed_matches_reference_when_data_fits() {
        let data = topk_datagen::uniform(1 << 16, 4);
        let k = 128;
        for devices in [1usize, 2, 4] {
            let c = cluster(devices, 1 << 20);
            let got = distributed_dr_topk(&c, &data, k, &DrTopKConfig::default());
            assert_eq!(got.values, reference_topk(&data, k), "{devices} devices");
            assert_eq!(got.reload_overhead_ms, 0.0, "no reload when data fits");
        }
    }

    #[test]
    fn distributed_matches_reference_with_reload() {
        // capacity forces 8 sub-vectors over 2 devices: 3 reloads per device
        let data = topk_datagen::customized(1 << 16, 9);
        let k = 64;
        let c = cluster(2, 1 << 13);
        let got = distributed_dr_topk(&c, &data, k, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, k));
        assert!(got.reload_overhead_ms > 0.0);
    }

    #[test]
    fn more_devices_reduce_total_time_and_reload() {
        let data = topk_datagen::uniform(1 << 18, 7);
        let k = 128;
        let capacity = 1 << 15; // 8 sub-vectors
        let t1 = distributed_dr_topk(&cluster(1, capacity), &data, k, &DrTopKConfig::default());
        let t4 = distributed_dr_topk(&cluster(4, capacity), &data, k, &DrTopKConfig::default());
        let t8 = distributed_dr_topk(&cluster(8, capacity), &data, k, &DrTopKConfig::default());
        assert_eq!(t1.values, t8.values);
        assert!(
            t4.total_ms < t1.total_ms,
            "{} vs {}",
            t4.total_ms,
            t1.total_ms
        );
        assert!(t8.total_ms < t1.total_ms);
        // once every sub-vector has its own device, reload disappears —
        // the source of the super-linear speedups in Table 2
        assert!(t1.reload_overhead_ms > 0.0);
        assert_eq!(t8.reload_overhead_ms, 0.0);
        // communication exists but stays small (asynchronous gather)
        assert!(t8.communication_ms > 0.0);
        assert!(t8.communication_ms < 2.0);
    }

    #[test]
    fn per_source_gathers_overlap_in_modeled_time() {
        // The Section 5.4 gather is asynchronous: with every secondary
        // device on its own interconnect lane, the gathers' makespan
        // charge is the slowest single gather, not the serialized sum.
        // Pin it at the unit level: four gathers of 4 ms each, one per
        // source lane, each gated only on its own device's tail.
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let mut gathers = Vec::new();
        for d in 1..=4usize {
            let tail = g.add_labeled(
                StageKind::LocalTopK,
                format!("device {d} tail"),
                Resource::Compute(d),
                &[],
                |_| StageOutcome {
                    stats: KernelStats::default(),
                    time_ms: 2.0,
                },
            );
            gathers.push(g.add_labeled(
                StageKind::Gather,
                format!("gather from device {d}"),
                Resource::Transfer(TransferLane::Interconnect(d)),
                &[tail],
                |_| StageOutcome {
                    stats: KernelStats::default(),
                    time_ms: 4.0,
                },
            ));
        }
        g.add(StageKind::FinalTopK, Resource::Compute(0), &gathers, |_| {
            StageOutcome::default()
        });
        let report = g.execute(&());
        let serialized_gather_sum = 4.0 * 4.0;
        // tails overlap (2 ms), gathers overlap (4 ms): makespan 6 ms —
        // far below the 16 ms a single shared gather lane would charge.
        assert_eq!(report.makespan_ms, 6.0);
        assert!(report.makespan_ms < serialized_gather_sum);
    }

    #[test]
    fn serial_and_threaded_executors_are_bit_identical() {
        let data = topk_datagen::uniform(1 << 16, 21);
        let k = 96;
        let c = cluster(4, 1 << 13); // 8 sub-vectors, 2 per device
        let threaded = distributed_dr_topk_executor(
            &c,
            &data,
            k,
            &DrTopKConfig::default(),
            ReloadSchedule::DoubleBuffered,
            Executor::Threaded,
        );
        let serial = distributed_dr_topk_executor(
            &c,
            &data,
            k,
            &DrTopKConfig::default(),
            ReloadSchedule::DoubleBuffered,
            Executor::Serial,
        );
        assert_eq!(threaded.values, serial.values);
        assert_eq!(threaded.values, reference_topk(&data, k));
        assert_eq!(threaded.total_ms.to_bits(), serial.total_ms.to_bits());
        assert_eq!(
            threaded.stages.deterministic_summary(),
            serial.stages.deterministic_summary()
        );
        assert_eq!(threaded.stats, serial.stats);
    }

    #[test]
    fn absent_sources_emit_no_gather_stages() {
        // A 4-device cluster whose whole input fits one sub-vector: every
        // element lands on the primary, the secondaries own nothing, and —
        // by the documented `communication_ms` semantics — no gather stage
        // or interconnect lane may exist for them (a phantom gather with
        // no source is exactly the verifier's V007 diagnostic).
        let data = topk_datagen::uniform(1 << 12, 5);
        let c = cluster(4, 1 << 20);
        let got = distributed_dr_topk(&c, &data, 32, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, 32));
        assert_eq!(got.communication_ms, 0.0, "no sources → no gathers");
        assert!(got
            .stages
            .stages
            .iter()
            .all(|s| s.kind != StageKind::Gather));
        assert!(got.stages.verify().is_empty());
    }

    #[test]
    fn explore_validates_a_small_out_of_core_run() {
        // 2 devices × 2 chunks each (double-buffered) is a ~9-stage graph
        // whose full schedule space is small enough to enumerate: every
        // dispatch order must agree bit-for-bit.
        let data = topk_datagen::uniform(1 << 10, 11);
        let k = 16;
        let c = cluster(2, 1 << 8);
        let (result, outcome) = distributed_dr_topk_explore(
            &c,
            &data,
            k,
            &DrTopKConfig::default(),
            ReloadSchedule::DoubleBuffered,
            ExploreBudget::default(),
        )
        .expect("the distributed graph is schedule-invariant");
        assert_eq!(result.values, reference_topk(&data, k));
        assert!(outcome.exhaustive, "budget covers the whole space");
        assert!(outcome.schedules_run > 1, "multiple interleavings exist");
        assert_eq!(outcome.stages, outcome.reference.stages.len());
    }

    #[test]
    fn single_device_has_no_communication() {
        let data = topk_datagen::uniform(1 << 14, 3);
        let c = cluster(1, 1 << 20);
        let got = distributed_dr_topk(&c, &data, 32, &DrTopKConfig::default());
        assert_eq!(got.communication_ms, 0.0);
        assert_eq!(got.final_topk_ms, 0.0);
        assert_eq!(got.values, reference_topk(&data, 32));
    }

    #[test]
    fn empty_and_zero_k_inputs() {
        let c = cluster(2, 1 << 20);
        assert!(
            distributed_dr_topk::<u32>(&c, &[], 5, &DrTopKConfig::default())
                .values
                .is_empty()
        );
        let data = topk_datagen::uniform(1 << 12, 1);
        assert!(distributed_dr_topk(&c, &data, 0, &DrTopKConfig::default())
            .values
            .is_empty());
    }

    #[test]
    fn eight_byte_keys_halve_the_per_device_capacity() {
        // capacity_elems is in u32 units: 2^13 u32 elements hold only 2^12
        // u64 keys, so the same-length u64 input must split into twice the
        // sub-vectors and show reload overhead where the u32 run shows none.
        assert_eq!(capacity_in_keys::<u32>(1 << 13), 1 << 13);
        assert_eq!(capacity_in_keys::<u64>(1 << 13), 1 << 12);
        assert_eq!(capacity_in_keys::<f64>(10), 5);
        let n = 1 << 13;
        let base = topk_datagen::uniform(n, 3);
        let wide: Vec<u64> = base.iter().map(|&x| (x as u64) << 8).collect();
        let k = 32;
        let c = cluster(1, n); // exactly |V| u32 elements of memory
        let narrow_run = distributed_dr_topk(&c, &base, k, &DrTopKConfig::default());
        assert_eq!(narrow_run.reload_overhead_ms, 0.0, "u32 input fits");
        let wide_run = distributed_dr_topk(&c, &wide, k, &DrTopKConfig::default());
        assert_eq!(wide_run.values, reference_topk(&wide, k));
        assert!(
            wide_run.reload_overhead_ms > 0.0,
            "u64 input at u32 capacity must stream a second sub-vector"
        );
    }

    #[test]
    fn generic_keys_distribute_correctly() {
        // f32 and i64 keys through the sharded path, including the reload
        // regime — the last non-generic surface of PR 2 is now generic.
        let base = topk_datagen::uniform(1 << 14, 77);
        let floats: Vec<f32> = base
            .iter()
            .map(|&x| (x as f32 / u32::MAX as f32) * 2.0e4 - 1.0e4)
            .collect();
        let signed: Vec<i64> = base.iter().map(|&x| x as i64 - (1 << 31)).collect();
        let k = 73;
        let c = cluster(3, 1 << 12); // forces reloads on every device
        let got = distributed_dr_topk(&c, &floats, k, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&floats, k));
        assert_eq!(got.kth_value, *got.values.last().unwrap());
        assert!(got.reload_overhead_ms > 0.0);
        let got = distributed_dr_topk(&c, &signed, k, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&signed, k));
    }

    #[test]
    fn place_shards_degenerates_to_round_robin_when_homogeneous() {
        // Equal capabilities + equal sub-vectors is the paper's dealing.
        let lens = vec![250usize; 8];
        let caps = vec![1134.0f64; 3];
        let owners = place_shards(&lens, &caps);
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0, 1]);
        // Deterministic: same inputs, same dealing.
        assert_eq!(owners, place_shards(&lens, &caps));
    }

    #[test]
    fn place_shards_weights_by_capability() {
        // A 3:1 capability split over ten equal shards: the fast device
        // must own the large majority of the elements.
        let lens = vec![100usize; 10];
        let caps = vec![3.0f64, 1.0];
        let owners = place_shards(&lens, &caps);
        let fast_elems: usize = owners.iter().filter(|&&d| d == 0).count() * 100;
        let slow_elems: usize = owners.iter().filter(|&&d| d == 1).count() * 100;
        assert_eq!(fast_elems + slow_elems, 1000);
        assert!(
            fast_elems >= 3 * slow_elems,
            "fast device owns {fast_elems}, slow owns {slow_elems}"
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn place_shards_rejects_non_positive_capability() {
        place_shards(&[10], &[1.0, 0.0]);
    }

    #[test]
    fn heterogeneous_cluster_places_more_shards_on_faster_devices() {
        // V100S + A100 (slow device listed first): the A100's higher
        // effective bandwidth must attract more sub-vectors, and the run
        // must stay exact. The per-device LocalTopK stage counts in the
        // report are the ground truth for what actually ran where.
        use gpu_sim::{Device, InterconnectSpec};
        let c = GpuCluster::new(
            vec![
                Device::new(DeviceSpec::v100s()),
                Device::new(DeviceSpec::a100()),
            ],
            InterconnectSpec::default(),
        );
        for d in c.devices() {
            d.set_capacity_elems(1 << 13);
        }
        let data = topk_datagen::uniform(1 << 16, 42); // 8 sub-vectors
        let k = 64;
        let got = distributed_dr_topk(&c, &data, k, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, k));
        let count_on = |dev: usize| {
            got.stages
                .stages
                .iter()
                .filter(|s| s.kind == StageKind::LocalTopK && s.resource == Resource::Compute(dev))
                .count()
        };
        let (slow, fast) = (count_on(0), count_on(1));
        assert_eq!(slow + fast, 8, "every sub-vector runs exactly once");
        assert!(fast > slow, "A100 owns {fast}, V100S owns {slow}");
        // The dealing the report shows is exactly what `place_shards` says.
        let caps: Vec<f64> = c
            .devices()
            .iter()
            .map(|d| d.spec().effective_bandwidth_bytes_per_s())
            .collect();
        let owners = place_shards(&[1 << 13; 8], &caps);
        assert_eq!(owners.iter().filter(|&&d| d == 1).count(), fast);
        assert!(got.stages.verify().is_empty());
    }
}
