//! Optimized in-place radix top-k with flag-based qualification.
//!
//! Section 5.1 of the paper: the existing in-place radix top-k (GGKS) must
//! overwrite every ineligible element with a value outside the range of
//! interest (e.g. zero), causing excessive random memory accesses. Dr. Top-k
//! instead keeps a single *flag* describing the radixes of interest; when an
//! element is loaded, a simple `flag == (flag & element)`-style check decides
//! whether the element is still a candidate — no stores at all during the
//! selection passes. Figure 12 reports this optimization is on average 10.7×
//! faster than the GGKS in-place radix top-k.
//!
//! Every entry point is generic over [`TopKKey`]: the flag arithmetic runs
//! in the key's order-preserving radix space ([`TopKKey::Bits`]), so signed
//! and float keys work unchanged. A 32-bit key runs 4 selection passes at
//! the default 8 bits per digit; a 64-bit key runs 8.
//!
//! Two entry points are provided:
//!
//! * [`flag_radix_select_kth`] / [`flag_radix_topk`] over plain key values
//!   (used as the second top-k and as the standalone optimized algorithm of
//!   Figure 12), and
//! * [`flag_radix_select_by_key`] over a *key array* that is paired with a
//!   payload array (used by the first top-k, where the key is the delegate
//!   value and the payload is the subrange id).

use gpu_sim::{AtomicBuffer, Device, KernelStats};
use topk_baselines::{gather_topk, KeyBits, TopKKey, TopKResult};

/// Elements assigned to each simulated warp in scan kernels.
pub const ELEMS_PER_WARP: usize = 8192;

/// Number of bits consumed per selection pass (8, as tuned in the paper).
pub const BITS_PER_PASS: u32 = 8;

/// Result of a flag-based radix selection.
#[derive(Debug, Clone)]
pub struct FlagSelectOutcome<K: TopKKey = u32> {
    /// Lower bound for qualification: with all passes executed this is the
    /// exact k-th largest key; with [`skip_last_pass`](FlagSelectConfig::skip_last_pass)
    /// it is the lower edge of the final radix bucket (≤ the exact value in
    /// the key's total order), which is still a safe filter threshold
    /// (Rule 2). For float keys a relaxed threshold is the bucket edge
    /// mapped back through the bijection and need not be a value present in
    /// the input; comparisons against it must use the key order (it may
    /// even be a NaN, which the key order handles).
    pub threshold: K,
    /// True when the threshold is exact (no pass was skipped).
    pub exact: bool,
    /// Number of selection passes executed.
    pub passes: u32,
    /// Counters accumulated by the selection kernels.
    pub stats: KernelStats,
    /// Modeled selection time in milliseconds.
    pub time_ms: f64,
}

/// Configuration of the flag-based selection.
#[derive(Debug, Clone, Copy)]
pub struct FlagSelectConfig {
    /// Skip the last radix pass. The paper enables this for the *first*
    /// top-k when β delegates and delegate filtering are active: the first
    /// top-k only needs a good-enough threshold, and the skipped precision is
    /// recovered by the second top-k at negligible cost.
    pub skip_last_pass: bool,
    /// Elements per simulated warp.
    pub elems_per_warp: usize,
}

impl Default for FlagSelectConfig {
    fn default() -> Self {
        FlagSelectConfig {
            skip_last_pass: false,
            elems_per_warp: ELEMS_PER_WARP,
        }
    }
}

/// Flag-based radix k-selection over `keys[i] = key_of(data[i])`.
///
/// Generic over a key extractor so the same kernel serves plain key vectors
/// (`|&x| x`) and the delegate vector's value column. `name_prefix` labels
/// the kernels in the device log (`<prefix>_pass<i>`), which the figure
/// harnesses use to attribute time to pipeline phases.
pub fn flag_radix_select_by_key<T, K, F>(
    device: &Device,
    data: &[T],
    key_of: F,
    k: usize,
    config: &FlagSelectConfig,
    name_prefix: &str,
) -> FlagSelectOutcome<K>
where
    T: Sync + Copy,
    K: TopKKey,
    F: Fn(&T) -> K + Sync,
{
    assert!(k >= 1 && k <= data.len(), "k must be in 1..=|V|");
    let mut stats = KernelStats::default();
    let mut time_ms = 0.0;

    let digits = 1usize << BITS_PER_PASS;
    let digit_mask = K::Bits::from_u64(digits as u64 - 1);
    let total_passes = K::Bits::BITS / BITS_PER_PASS;
    let run_passes = if config.skip_last_pass {
        total_passes - 1
    } else {
        total_passes
    };

    let mut flag_value = K::Bits::ZERO; // radix prefix of the k-th largest element
    let mut flag_mask = K::Bits::ZERO; // which bits of the prefix are pinned
    let mut k_remaining = k;
    let num_warps = data.len().div_ceil(config.elems_per_warp).max(1);

    for pass in 0..run_passes {
        let shift = K::Bits::BITS - BITS_PER_PASS * (pass + 1);
        let hist_buf = AtomicBuffer::zeroed(digits);
        let key_of = &key_of;
        let launch = device.launch(&format!("{name_prefix}_pass{pass}"), num_warps, |ctx| {
            let chunk = ctx.chunk_of(data.len());
            let slice = ctx.read_coalesced(&data[chunk]);
            let mut local = vec![0u32; digits];
            for item in slice {
                let key = key_of(item).to_bits();
                // the flag check: only elements whose pinned radixes match
                // remain candidates — no element is ever modified.
                if key & flag_mask == flag_value {
                    local[((key >> shift) & digit_mask).as_digit()] += 1;
                }
                ctx.record_alu(2);
            }
            for (d, &c) in local.iter().enumerate() {
                if c > 0 {
                    hist_buf.fetch_add(ctx, d, c);
                }
            }
        });
        stats += launch.stats;
        time_ms += launch.time_ms;

        let histogram = hist_buf.to_vec();
        let mut chosen = 0usize;
        let mut above = 0usize;
        for d in (0..digits).rev() {
            let count = histogram[d] as usize;
            if above + count >= k_remaining {
                chosen = d;
                break;
            }
            above += count;
        }
        k_remaining -= above;
        flag_value |= K::Bits::from_u64(chosen as u64) << shift;
        flag_mask |= digit_mask << shift;
    }

    FlagSelectOutcome {
        threshold: K::from_bits(flag_value),
        exact: !config.skip_last_pass,
        passes: run_passes,
        stats,
        time_ms,
    }
}

/// Flag-based radix k-selection over plain key values.
pub fn flag_radix_select_kth<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &FlagSelectConfig,
) -> FlagSelectOutcome<K> {
    flag_radix_select_by_key(device, data, |&x| x, k, config, "flag_radix_select")
}

/// Full flag-based radix **top-k** over plain key values: selection (all
/// passes, exact threshold) followed by the shared gather pass.
pub fn flag_radix_topk<K: TopKKey>(device: &Device, data: &[K], k: usize) -> TopKResult<K> {
    let k = k.min(data.len());
    if k == 0 {
        return TopKResult::from_values(Vec::new(), KernelStats::default(), 0.0);
    }
    let config = FlagSelectConfig::default();
    let outcome = flag_radix_select_kth(device, data, k, &config);
    gather_topk(
        device,
        data,
        k,
        outcome.threshold,
        config.elems_per_warp,
        outcome.stats,
        outcome.time_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use topk_baselines::{radix_topk, reference_kth, reference_topk, RadixConfig};

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn select_matches_reference() {
        let dev = device();
        for dist in topk_datagen::Distribution::SYNTHETIC {
            let data = topk_datagen::generate(dist, 1 << 14, 9);
            for &k in &[1usize, 13, 700, 1 << 12] {
                let got = flag_radix_select_kth(&dev, &data, k, &FlagSelectConfig::default());
                assert_eq!(got.threshold, reference_kth(&data, k), "{dist} k={k}");
                assert!(got.exact);
                assert_eq!(got.passes, 4);
            }
        }
    }

    #[test]
    fn topk_matches_reference() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 4);
        for &k in &[1usize, 100, 3000] {
            assert_eq!(
                flag_radix_topk(&dev, &data, k).values,
                reference_topk(&data, k)
            );
        }
        assert!(flag_radix_topk(&dev, &data, 0).is_empty());
        assert_eq!(flag_radix_topk(&dev, &[5u32, 5, 5], 2).values, vec![5, 5]);
    }

    #[test]
    fn generic_keys_run_the_right_pass_count() {
        let dev = device();
        let wide: Vec<u64> = (0..4096u64)
            .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let got = flag_radix_select_kth(&dev, &wide, 33, &FlagSelectConfig::default());
        assert_eq!(got.passes, 8, "64-bit keys take 8 digit passes");
        assert_eq!(got.threshold, reference_kth(&wide, 33));
        let signed: Vec<i64> = wide.iter().map(|&x| x as i64).collect();
        assert_eq!(
            flag_radix_topk(&dev, &signed, 12).values,
            reference_topk(&signed, 12)
        );
        let floats: Vec<f32> = (0..2048).map(|i| (i as f32 - 1024.0) * 0.5).collect();
        assert_eq!(
            flag_radix_topk(&dev, &floats, 9).values,
            reference_topk(&floats, 9)
        );
    }

    #[test]
    fn skip_last_pass_gives_safe_lower_bound() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 6);
        let k = 257;
        let exact = reference_kth(&data, k);
        let got = flag_radix_select_kth(
            &dev,
            &data,
            k,
            &FlagSelectConfig {
                skip_last_pass: true,
                ..FlagSelectConfig::default()
            },
        );
        assert!(!got.exact);
        assert_eq!(got.passes, 3);
        assert!(
            got.threshold <= exact,
            "skipped threshold must not exceed exact"
        );
        // it must still be within one last-pass bucket (256 values) of exact
        assert!(exact - got.threshold < 256, "threshold too loose");
    }

    #[test]
    fn select_by_key_ignores_payload() {
        let dev = device();
        let pairs: Vec<(u32, u32)> = topk_datagen::uniform(1 << 12, 5)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect();
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let got = flag_radix_select_by_key(
            &dev,
            &pairs,
            |p| p.0,
            33,
            &FlagSelectConfig::default(),
            "kv_select",
        );
        assert_eq!(got.threshold, reference_kth(&keys, 33));
    }

    #[test]
    fn never_stores_during_selection() {
        let dev = device();
        let data = topk_datagen::normal(1 << 14, 2);
        let got = flag_radix_select_kth(&dev, &data, 512, &FlagSelectConfig::default());
        assert_eq!(
            got.stats.global_store_transactions, 0,
            "flag-based selection must not write global memory"
        );
    }

    #[test]
    fn faster_than_ggks_in_place_for_small_k() {
        // The headline of Figure 12: the flag-based in-place radix top-k
        // avoids the zero-out stores of the GGKS in-place variant.
        let dev = device();
        let data = topk_datagen::uniform(1 << 16, 12);
        let k = 64;
        let flag = flag_radix_topk(&dev, &data, k);
        let ggks = radix_topk(&dev, &data, k, &RadixConfig::in_place());
        assert_eq!(flag.values, ggks.values);
        assert!(
            flag.time_ms < ggks.time_ms,
            "flag-based ({} ms) should beat GGKS in-place ({} ms)",
            flag.time_ms,
            ggks.time_ms
        );
        assert!(flag.stats.global_store_transactions < ggks.stats.global_store_transactions);
    }
}
