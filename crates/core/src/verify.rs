//! Static verification of stage graphs — machine-checked structural
//! invariants with stable diagnostic codes.
//!
//! Every execution path in this workspace (exact, approximate, distributed,
//! engine-fused units) *generates* a [`StageGraph`](crate::stages::StageGraph)
//! programmatically, so a planner bug no longer looks like "wrong stages" —
//! it looks like a silent deadlock, a phantom transfer on the wrong lane, or
//! a write-after-read on a staging buffer. This module checks a graph
//! *before* it runs and reports every violation as a [`Diagnostic`] with a
//! stable [`DiagnosticCode`] (`V001`, `V002`, …) so tests can pin the exact
//! failure class:
//!
//! * **Shape** — dependency indices in range (`V001`), no dependency cycle
//!   (`V002`), no orphan stage whose output nothing consumes (`V003`).
//! * **Resource tags** — transfer kinds on transfer lanes and compute kinds
//!   on compute queues (`V004`), the *right* lane per kind (`V005`), chunk
//!   loads consumed on the device their lane feeds (`V006`).
//! * **Gather wiring** — a gather must have a source (`V007`, the PR-6
//!   "absent source" semantics) and its interconnect lane must match the
//!   device that produced its input (`V008`).
//! * **Deadlock freedom** — the per-resource FIFO worker model adds implicit
//!   insertion-order edges within every resource; a cycle through those
//!   queue edges (with an acyclic dependency graph) is a real executor
//!   deadlock (`V009`).
//! * **Double-buffer hazards** — under a bounded staging-buffer count, a
//!   chunk load that reuses a buffer must be ordered after every consumer
//!   of the load it evicts (`V010`).
//! * **Paper-phase ordering** — delegate → first top-k → concatenate →
//!   second top-k chains must be well-formed, and the distributed kinds
//!   must chain load → local → merge → gather → final (`V011`).
//! * **Radix-chain integrity** — every radix narrowing stage (histogram,
//!   refine, candidate gather) must eventually feed a radix select
//!   (`V012`): narrowing work whose result never reaches a final selection
//!   is a broken large-k pipeline.
//!
//! [`StageGraph::verify`](crate::stages::StageGraph::verify) and
//! [`StageReport::verify`](crate::stages::StageReport::verify) adapt their
//! stage lists into [`StageSpec`]s and call [`verify_specs`]; in debug
//! builds every `execute*` entry point runs the verifier first and panics
//! on any diagnostic, so the whole test suite doubles as a verification
//! corpus. `docs/DIAGNOSTICS.md` tabulates every code; the companion
//! dynamic checker lives in [`crate::explore`].

use crate::stages::{Resource, StageKind, TransferLane};

/// The scheduling-relevant description of one stage: everything the
/// verifier (and the schedule explorer) needs, with the work closure
/// stripped. Obtainable from a built graph via
/// [`StageGraph::specs`](crate::stages::StageGraph::specs), or constructed
/// by hand to verify raw (possibly deliberately broken) graph shapes that
/// [`StageGraph::add`](crate::stages::StageGraph::add) would reject at
/// build time.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Which paper phase (or infrastructure step) the stage implements.
    pub kind: StageKind,
    /// Display label, used in diagnostic messages.
    pub label: String,
    /// The queue the stage occupies.
    pub resource: Resource,
    /// Indices (into the same spec list) of the stages this stage waits
    /// for.
    pub deps: Vec<usize>,
}

/// Stable, machine-readable class of one verifier finding. The `V…` code
/// string ([`DiagnosticCode::code`]) is part of the crate's API: tests and
/// tooling match on it, and `docs/DIAGNOSTICS.md` documents every code
/// (a drift test keeps the table honest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// `V001` — a dependency index does not name a stage of the graph.
    DanglingDep,
    /// `V002` — the dependency edges contain a cycle (includes
    /// self-dependencies); no schedule can satisfy it.
    DepCycle,
    /// `V003` — a non-terminal stage has no dependents: its output is
    /// computed and then thrown away. Only [`StageKind::SecondTopK`],
    /// [`StageKind::FinalTopK`] and [`StageKind::RadixSelect`] may be
    /// sinks — they produce the answer.
    OrphanStage,
    /// `V004` — a transfer kind sits on a compute queue, or a compute kind
    /// on a transfer lane.
    ResourceKindMismatch,
    /// `V005` — a transfer kind sits on the wrong lane *class*: chunk
    /// loads belong on host→device lanes, gathers on interconnect lanes.
    WrongLane,
    /// `V006` — a chunk load on device `d`'s host→device lane feeds a
    /// compute stage on a *different* device's queue.
    CrossDeviceChunk,
    /// `V007` — a gather stage with no dependencies: there is no source
    /// whose winners it could move. Absent sources must emit no gather
    /// stage at all (the distributed planner's contract since PR 7).
    GatherWithoutSource,
    /// `V008` — a gather on `Interconnect(s)` whose input was produced on
    /// a device other than `s`: the modeled lane does not match the real
    /// data flow.
    GatherSourceMismatch,
    /// `V009` — the dependency edges are acyclic, but combined with the
    /// per-resource FIFO dispatch order they form a cycle: the threaded
    /// executor's workers would block forever.
    QueueDeadlock,
    /// `V010` — under the declared staging-buffer count, a chunk load
    /// reuses a buffer before every consumer of the evicted load is
    /// ordered ahead of it: a write-after-read hazard.
    DoubleBufferHazard,
    /// `V011` — a paper-phase ordering violation: a stage depends on a
    /// kind that cannot legally precede it (e.g. a second top-k fed
    /// directly by a first top-k with no concatenation).
    PhaseOrder,
    /// `V012` — a radix-path stage ([`StageKind::RadixHistogram`],
    /// [`StageKind::RadixRefine`] or [`StageKind::CandidateGather`]) from
    /// which no [`StageKind::RadixSelect`] is reachable through dependent
    /// edges: the narrowing work never feeds a final selection, so the
    /// radix chain is broken.
    RadixChainBroken,
}

impl DiagnosticCode {
    /// Every diagnostic code, in `V001…` order. Kept exhaustive by a
    /// compile-time match in the drift tests: adding a variant without
    /// extending this list (and `docs/DIAGNOSTICS.md`) fails the build or
    /// the suite.
    pub const ALL: [DiagnosticCode; 12] = [
        DiagnosticCode::DanglingDep,
        DiagnosticCode::DepCycle,
        DiagnosticCode::OrphanStage,
        DiagnosticCode::ResourceKindMismatch,
        DiagnosticCode::WrongLane,
        DiagnosticCode::CrossDeviceChunk,
        DiagnosticCode::GatherWithoutSource,
        DiagnosticCode::GatherSourceMismatch,
        DiagnosticCode::QueueDeadlock,
        DiagnosticCode::DoubleBufferHazard,
        DiagnosticCode::PhaseOrder,
        DiagnosticCode::RadixChainBroken,
    ];

    /// The stable `V…` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticCode::DanglingDep => "V001",
            DiagnosticCode::DepCycle => "V002",
            DiagnosticCode::OrphanStage => "V003",
            DiagnosticCode::ResourceKindMismatch => "V004",
            DiagnosticCode::WrongLane => "V005",
            DiagnosticCode::CrossDeviceChunk => "V006",
            DiagnosticCode::GatherWithoutSource => "V007",
            DiagnosticCode::GatherSourceMismatch => "V008",
            DiagnosticCode::QueueDeadlock => "V009",
            DiagnosticCode::DoubleBufferHazard => "V010",
            DiagnosticCode::PhaseOrder => "V011",
            DiagnosticCode::RadixChainBroken => "V012",
        }
    }

    /// Short kebab-case name, used alongside the code in rendered
    /// diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticCode::DanglingDep => "dangling-dep",
            DiagnosticCode::DepCycle => "dep-cycle",
            DiagnosticCode::OrphanStage => "orphan-stage",
            DiagnosticCode::ResourceKindMismatch => "resource-kind-mismatch",
            DiagnosticCode::WrongLane => "wrong-lane",
            DiagnosticCode::CrossDeviceChunk => "cross-device-chunk",
            DiagnosticCode::GatherWithoutSource => "gather-without-source",
            DiagnosticCode::GatherSourceMismatch => "gather-source-mismatch",
            DiagnosticCode::QueueDeadlock => "queue-deadlock",
            DiagnosticCode::DoubleBufferHazard => "double-buffer-hazard",
            DiagnosticCode::PhaseOrder => "phase-order",
            DiagnosticCode::RadixChainBroken => "radix-chain-broken",
        }
    }
}

impl std::fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One verifier finding: a stable code, the offending stage (when the
/// finding is attributable to one), and a human-readable message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable failure class.
    pub code: DiagnosticCode,
    /// Index of the offending stage within the verified list, when the
    /// finding is attributable to a single stage.
    pub stage: Option<usize>,
    /// Human-readable description, with stage labels interpolated.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.stage {
            Some(i) => write!(f, "{} @ stage {}: {}", self.code, i, self.message),
            None => write!(f, "{}: {}", self.code, self.message),
        }
    }
}

/// Knobs for context the graph alone does not carry.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Number of staging buffers each host→device lane cycles through
    /// (`Some(1)` for [`ReloadSchedule::Serial`], `Some(2)` for
    /// [`ReloadSchedule::DoubleBuffered`] — see
    /// [`ReloadSchedule::staging_buffers`]). `None` (the default for
    /// graphs with no reload schedule) skips the `V010` hazard analysis.
    ///
    /// [`ReloadSchedule::Serial`]: crate::distributed::ReloadSchedule::Serial
    /// [`ReloadSchedule::DoubleBuffered`]: crate::distributed::ReloadSchedule::DoubleBuffered
    /// [`ReloadSchedule::staging_buffers`]: crate::distributed::ReloadSchedule::staging_buffers
    pub staging_buffers: Option<usize>,
}

/// Which stage kinds a stage of `kind` may legally depend on — the
/// dependency-side encoding of the paper's phase order (`V011`). The rules
/// admit every graph the planners and the engine build, including the
/// engine's spliced unit graphs where a member's own delegate pass chains
/// behind the unit's shared pass.
fn allowed_dep_kinds(kind: StageKind) -> &'static [StageKind] {
    use StageKind::*;
    match kind {
        // A rebuild pass may chain behind a shared pass (engine splicing).
        DelegateConstruction | BucketTopKPrime => &[DelegateConstruction, BucketTopKPrime],
        // Normally fed by the β-delegate pass; in a spliced engine unit an
        // exact-fallback member's first top-k can chain behind the unit's
        // shared k′ candidate pass instead.
        FirstTopK => &[DelegateConstruction, BucketTopKPrime],
        Concatenate => &[FirstTopK],
        // Fed by the concatenation (exact), the candidate pass (approx), or
        // a shared delegate pass (engine macro stage); no deps on the
        // fallback path.
        SecondTopK => &[Concatenate, BucketTopKPrime, DelegateConstruction],
        // A load waits (at most) for the compute that frees its staging
        // buffer.
        ChunkLoad => &[LocalTopK],
        LocalTopK => &[ChunkLoad],
        LocalMerge => &[LocalTopK, LocalMerge],
        Gather => &[LocalTopK, LocalMerge],
        FinalTopK => &[LocalTopK, LocalMerge, Gather],
        // The radix-select chain: the first histogram pass has no deps (or
        // waits on the chunk load that staged its input); each later pass
        // follows the previous refine; the gather follows the last refine;
        // the final select follows the gather.
        RadixHistogram => &[RadixRefine, ChunkLoad],
        RadixRefine => &[RadixHistogram],
        CandidateGather => &[RadixRefine],
        RadixSelect => &[CandidateGather],
    }
}

/// Kinds that may legally be sinks (no dependents): they produce the
/// query's answer. Everything else computes an intermediate someone must
/// consume.
fn is_terminal_kind(kind: StageKind) -> bool {
    matches!(
        kind,
        StageKind::SecondTopK | StageKind::FinalTopK | StageKind::RadixSelect
    )
}

/// Kahn's algorithm over `adj` (edge `u → v` means *u before v*): returns
/// the set of nodes on (or downstream-locked into) cycles, empty when the
/// graph is acyclic.
fn cyclic_nodes(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    let mut indeg = vec![0usize; n];
    for edges in adj {
        for &t in edges {
            indeg[t] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = ready.pop() {
        seen += 1;
        for &t in &adj[u] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                ready.push(t);
            }
        }
    }
    if seen == n {
        Vec::new()
    } else {
        (0..n).filter(|&i| indeg[i] > 0).collect()
    }
}

/// True when `to` is reachable from `from` over `adj` (reflexively).
fn reaches(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; adj.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(u) = stack.pop() {
        for &t in &adj[u] {
            if t == to {
                return true;
            }
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    false
}

/// Verify a stage list, returning every finding (empty = clean).
///
/// Checks run in dependency order: if dependency indices are out of range
/// (`V001`) nothing else is checkable and the function returns early;
/// a dependency cycle (`V002`) suppresses the queue-deadlock and
/// staging-buffer analyses it would subsume; a queue deadlock (`V009`)
/// suppresses the staging-buffer analysis (which needs a schedulable
/// graph). All per-stage checks (`V003`–`V008`, `V011`, `V012`) always
/// run.
pub fn verify_specs(specs: &[StageSpec], opts: &VerifyOptions) -> Vec<Diagnostic> {
    let n = specs.len();
    let mut diags: Vec<Diagnostic> = Vec::new();

    // V001 — indices must be usable before anything else is.
    for (i, s) in specs.iter().enumerate() {
        for &d in &s.deps {
            if d >= n {
                diags.push(Diagnostic {
                    code: DiagnosticCode::DanglingDep,
                    stage: Some(i),
                    message: format!(
                        "'{}' depends on stage index {d}, but the graph has only {n} stage(s)",
                        s.label
                    ),
                });
            }
        }
    }
    if !diags.is_empty() {
        return diags;
    }

    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, s) in specs.iter().enumerate() {
        for &d in &s.deps {
            dependents[d].push(i);
        }
    }

    // V004 / V005 — resource-tag consistency.
    for (i, s) in specs.iter().enumerate() {
        match (s.kind.is_transfer(), s.resource) {
            (true, Resource::Compute(d)) => diags.push(Diagnostic {
                code: DiagnosticCode::ResourceKindMismatch,
                stage: Some(i),
                message: format!(
                    "transfer stage '{}' ({}) sits on compute queue {d}, not a transfer lane",
                    s.label, s.kind
                ),
            }),
            (false, Resource::Transfer(lane)) => diags.push(Diagnostic {
                code: DiagnosticCode::ResourceKindMismatch,
                stage: Some(i),
                message: format!(
                    "compute stage '{}' ({}) sits on transfer lane {lane:?}",
                    s.label, s.kind
                ),
            }),
            (true, Resource::Transfer(lane)) => {
                let lane_ok = match s.kind {
                    StageKind::ChunkLoad => matches!(lane, TransferLane::HostToDevice(_)),
                    StageKind::Gather => matches!(lane, TransferLane::Interconnect(_)),
                    _ => true,
                };
                if !lane_ok {
                    diags.push(Diagnostic {
                        code: DiagnosticCode::WrongLane,
                        stage: Some(i),
                        message: format!(
                            "'{}' ({}) sits on lane {lane:?}; chunk loads belong on \
                             HostToDevice lanes and gathers on Interconnect lanes",
                            s.label, s.kind
                        ),
                    });
                }
            }
            (false, Resource::Compute(_)) => {}
        }
    }

    // V006 — a chunk load must feed compute on the device its lane targets.
    for (i, s) in specs.iter().enumerate() {
        let Resource::Transfer(TransferLane::HostToDevice(dst)) = s.resource else {
            continue;
        };
        if s.kind != StageKind::ChunkLoad {
            continue;
        }
        for &c in &dependents[i] {
            if let Resource::Compute(dev) = specs[c].resource {
                if dev != dst {
                    diags.push(Diagnostic {
                        code: DiagnosticCode::CrossDeviceChunk,
                        stage: Some(i),
                        message: format!(
                            "'{}' loads onto device {dst}'s lane but is consumed by '{}' \
                             on device {dev}'s compute queue",
                            s.label, specs[c].label
                        ),
                    });
                }
            }
        }
    }

    // V007 / V008 — gather wiring.
    for (i, s) in specs.iter().enumerate() {
        if s.kind != StageKind::Gather {
            continue;
        }
        if s.deps.is_empty() {
            diags.push(Diagnostic {
                code: DiagnosticCode::GatherWithoutSource,
                stage: Some(i),
                message: format!(
                    "'{}' gathers from no source; devices without data must emit no \
                     gather stage at all",
                    s.label
                ),
            });
        }
        if let Resource::Transfer(TransferLane::Interconnect(src)) = s.resource {
            for &d in &s.deps {
                if let Resource::Compute(dev) = specs[d].resource {
                    if dev != src {
                        diags.push(Diagnostic {
                            code: DiagnosticCode::GatherSourceMismatch,
                            stage: Some(i),
                            message: format!(
                                "'{}' occupies device {src}'s interconnect lane but its \
                                 input '{}' was produced on device {dev}",
                                s.label, specs[d].label
                            ),
                        });
                    }
                }
            }
        }
    }

    // V011 — paper-phase ordering (dependency-side rules).
    for (i, s) in specs.iter().enumerate() {
        for &d in &s.deps {
            if !allowed_dep_kinds(s.kind).contains(&specs[d].kind) {
                diags.push(Diagnostic {
                    code: DiagnosticCode::PhaseOrder,
                    stage: Some(i),
                    message: format!(
                        "{} stage '{}' may not depend on {} stage '{}'",
                        s.kind, s.label, specs[d].kind, specs[d].label
                    ),
                });
            }
        }
        if s.kind == StageKind::Concatenate && s.deps.is_empty() {
            diags.push(Diagnostic {
                code: DiagnosticCode::PhaseOrder,
                stage: Some(i),
                message: format!(
                    "concatenation stage '{}' has no first-top-k input to concatenate from",
                    s.label
                ),
            });
        }
    }

    // V012 — radix-chain integrity: every narrowing stage must reach a
    // radix select through dependent edges. Reachability (not exactly-one)
    // keeps spliced/merged schedules legal.
    let selects: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == StageKind::RadixSelect)
        .map(|(i, _)| i)
        .collect();
    for (i, s) in specs.iter().enumerate() {
        if !matches!(
            s.kind,
            StageKind::RadixHistogram | StageKind::RadixRefine | StageKind::CandidateGather
        ) {
            continue;
        }
        if !selects.iter().any(|&t| reaches(&dependents, i, t)) {
            diags.push(Diagnostic {
                code: DiagnosticCode::RadixChainBroken,
                stage: Some(i),
                message: format!(
                    "{} stage '{}' never feeds a radix select; its narrowing work is lost",
                    s.kind, s.label
                ),
            });
        }
    }

    // V003 — orphans: non-terminal stages nothing consumes.
    for (i, s) in specs.iter().enumerate() {
        if dependents[i].is_empty() && !is_terminal_kind(s.kind) {
            diags.push(Diagnostic {
                code: DiagnosticCode::OrphanStage,
                stage: Some(i),
                message: format!(
                    "{} stage '{}' has no dependents; its output is discarded",
                    s.kind, s.label
                ),
            });
        }
    }

    // V002 — dependency cycles make the remaining analyses meaningless.
    let mut dep_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, s) in specs.iter().enumerate() {
        for &d in &s.deps {
            dep_adj[d].push(i);
        }
    }
    let cyc = cyclic_nodes(n, &dep_adj);
    if !cyc.is_empty() {
        diags.push(Diagnostic {
            code: DiagnosticCode::DepCycle,
            stage: cyc.first().copied(),
            message: format!("dependency edges form a cycle through stages {cyc:?}"),
        });
        return diags;
    }

    // V009 — deps ∪ per-resource FIFO order must stay acyclic: each worker
    // runs its resource's stages in insertion order, so insertion order
    // within a resource is an implicit edge.
    let mut combined = dep_adj;
    let mut last_on_resource: Vec<(Resource, usize)> = Vec::new();
    for (i, s) in specs.iter().enumerate() {
        match last_on_resource.iter_mut().find(|(r, _)| *r == s.resource) {
            Some((_, prev)) => {
                combined[*prev].push(i);
                *prev = i;
            }
            None => last_on_resource.push((s.resource, i)),
        }
    }
    let qcyc = cyclic_nodes(n, &combined);
    if !qcyc.is_empty() {
        diags.push(Diagnostic {
            code: DiagnosticCode::QueueDeadlock,
            stage: qcyc.first().copied(),
            message: format!(
                "dependencies are acyclic, but combined with per-resource FIFO dispatch \
                 stages {qcyc:?} wait on each other forever"
            ),
        });
        return diags;
    }

    // V010 — write-after-read on the staging buffers: with B buffers per
    // host→device lane, the lane's load #l evicts load #(l − B)'s buffer
    // and must therefore be ordered after every consumer of that load.
    if let Some(buffers) = opts.staging_buffers {
        let buffers = buffers.max(1);
        let mut lanes: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            if s.kind != StageKind::ChunkLoad {
                continue;
            }
            if let Resource::Transfer(TransferLane::HostToDevice(d)) = s.resource {
                match lanes.iter_mut().find(|(dev, _)| *dev == d) {
                    Some((_, loads)) => loads.push(i),
                    None => lanes.push((d, vec![i])),
                }
            }
        }
        for (dev, loads) in lanes {
            for l in buffers..loads.len() {
                let evicted = loads[l - buffers];
                for &consumer in &dependents[evicted] {
                    if !reaches(&combined, consumer, loads[l]) {
                        diags.push(Diagnostic {
                            code: DiagnosticCode::DoubleBufferHazard,
                            stage: Some(loads[l]),
                            message: format!(
                                "'{}' reuses one of device {dev}'s {buffers} staging \
                                 buffer(s), overwriting '{}' before its consumer '{}' is \
                                 guaranteed to have read it",
                                specs[loads[l]].label, specs[evicted].label, specs[consumer].label
                            ),
                        });
                    }
                }
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: StageKind, resource: Resource, deps: &[usize]) -> StageSpec {
        StageSpec {
            kind,
            label: kind.name().to_string(),
            resource,
            deps: deps.to_vec(),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<DiagnosticCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn the_exact_pipeline_shape_is_clean() {
        let c = Resource::Compute(0);
        let specs = vec![
            spec(StageKind::DelegateConstruction, c, &[]),
            spec(StageKind::FirstTopK, c, &[0]),
            spec(StageKind::Concatenate, c, &[1]),
            spec(StageKind::SecondTopK, c, &[2]),
        ];
        assert!(verify_specs(&specs, &VerifyOptions::default()).is_empty());
    }

    #[test]
    fn dangling_deps_short_circuit() {
        let specs = vec![spec(StageKind::SecondTopK, Resource::Compute(0), &[7])];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert_eq!(codes(&diags), vec![DiagnosticCode::DanglingDep]);
        assert_eq!(diags[0].stage, Some(0));
        assert_eq!(diags[0].code.code(), "V001");
    }

    #[test]
    fn dependency_cycles_are_v002() {
        let c = Resource::Compute(0);
        let specs = vec![
            spec(StageKind::LocalMerge, c, &[1]),
            spec(StageKind::LocalMerge, c, &[0]),
            spec(StageKind::FinalTopK, c, &[0, 1]),
        ];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert!(codes(&diags).contains(&DiagnosticCode::DepCycle));
    }

    #[test]
    fn fifo_order_deadlocks_are_v009_not_v002() {
        // Deps alone are acyclic (one edge 1 → 0), but stage 0 precedes
        // stage 1 in their shared queue's FIFO order: a real deadlock.
        let c = Resource::Compute(0);
        let specs = vec![
            spec(StageKind::LocalMerge, c, &[1]),
            spec(StageKind::LocalTopK, c, &[]),
            spec(StageKind::FinalTopK, c, &[0]),
        ];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert!(codes(&diags).contains(&DiagnosticCode::QueueDeadlock));
        assert!(!codes(&diags).contains(&DiagnosticCode::DepCycle));
    }

    #[test]
    fn orphans_mismatches_and_lanes_each_get_their_code() {
        let h2d = Resource::Transfer(TransferLane::HostToDevice(0));
        let diags = verify_specs(
            &[spec(StageKind::ChunkLoad, h2d, &[])],
            &VerifyOptions::default(),
        );
        assert_eq!(codes(&diags), vec![DiagnosticCode::OrphanStage]);

        let diags = verify_specs(
            &[spec(StageKind::SecondTopK, h2d, &[])],
            &VerifyOptions::default(),
        );
        assert_eq!(codes(&diags), vec![DiagnosticCode::ResourceKindMismatch]);

        let diags = verify_specs(
            &[spec(StageKind::ChunkLoad, Resource::Compute(0), &[])],
            &VerifyOptions::default(),
        );
        assert!(codes(&diags).contains(&DiagnosticCode::ResourceKindMismatch));

        let ic = Resource::Transfer(TransferLane::Interconnect(1));
        let mut load = spec(StageKind::ChunkLoad, ic, &[]);
        load.label = "misplaced load".into();
        let ltk = spec(StageKind::LocalTopK, Resource::Compute(1), &[0]);
        let fin = spec(StageKind::FinalTopK, Resource::Compute(1), &[1]);
        let diags = verify_specs(&[load, ltk, fin], &VerifyOptions::default());
        assert!(codes(&diags).contains(&DiagnosticCode::WrongLane));
    }

    #[test]
    fn cross_device_chunk_consumption_is_v006() {
        let specs = vec![
            spec(
                StageKind::ChunkLoad,
                Resource::Transfer(TransferLane::HostToDevice(1)),
                &[],
            ),
            spec(StageKind::LocalTopK, Resource::Compute(0), &[0]),
            spec(StageKind::FinalTopK, Resource::Compute(0), &[1]),
        ];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert_eq!(codes(&diags), vec![DiagnosticCode::CrossDeviceChunk]);
    }

    #[test]
    fn gather_wiring_violations_are_v007_and_v008() {
        let diags = verify_specs(
            &[
                spec(
                    StageKind::Gather,
                    Resource::Transfer(TransferLane::Interconnect(1)),
                    &[],
                ),
                spec(StageKind::FinalTopK, Resource::Compute(0), &[0]),
            ],
            &VerifyOptions::default(),
        );
        assert_eq!(codes(&diags), vec![DiagnosticCode::GatherWithoutSource]);

        let diags = verify_specs(
            &[
                spec(StageKind::LocalTopK, Resource::Compute(2), &[]),
                spec(
                    StageKind::Gather,
                    Resource::Transfer(TransferLane::Interconnect(1)),
                    &[0],
                ),
                spec(StageKind::FinalTopK, Resource::Compute(0), &[1]),
            ],
            &VerifyOptions::default(),
        );
        assert_eq!(codes(&diags), vec![DiagnosticCode::GatherSourceMismatch]);
    }

    #[test]
    fn phase_order_violations_are_v011() {
        let c = Resource::Compute(0);
        // Second top-k fed directly by the first top-k: the concatenation
        // phase was skipped outright.
        let specs = vec![
            spec(StageKind::DelegateConstruction, c, &[]),
            spec(StageKind::FirstTopK, c, &[0]),
            spec(StageKind::SecondTopK, c, &[1]),
        ];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert_eq!(codes(&diags), vec![DiagnosticCode::PhaseOrder]);

        // A concatenation with nothing to concatenate from.
        let specs = vec![
            spec(StageKind::Concatenate, c, &[]),
            spec(StageKind::SecondTopK, c, &[0]),
        ];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert_eq!(codes(&diags), vec![DiagnosticCode::PhaseOrder]);
    }

    /// The double-buffered distributed shape on one device: resident chunk
    /// 0, streamed chunks 1–3, loads waiting on the compute that frees
    /// their staging buffer.
    fn double_buffered_lane() -> Vec<StageSpec> {
        let lane = Resource::Transfer(TransferLane::HostToDevice(0));
        let c = Resource::Compute(0);
        vec![
            spec(StageKind::LocalTopK, c, &[]),     // 0: chunk 0 compute
            spec(StageKind::ChunkLoad, lane, &[]),  // 1: chunk 1 load
            spec(StageKind::LocalTopK, c, &[1]),    // 2: chunk 1 compute
            spec(StageKind::ChunkLoad, lane, &[0]), // 3: chunk 2 load
            spec(StageKind::LocalTopK, c, &[3]),    // 4: chunk 2 compute
            spec(StageKind::ChunkLoad, lane, &[2]), // 5: chunk 3 load
            spec(StageKind::LocalTopK, c, &[5]),    // 6: chunk 3 compute
            spec(StageKind::LocalMerge, c, &[0, 2, 4, 6]), // 7
            spec(StageKind::FinalTopK, c, &[7]),    // 8
        ]
    }

    #[test]
    fn staging_buffer_hazards_are_v010() {
        let specs = double_buffered_lane();
        let two = VerifyOptions {
            staging_buffers: Some(2),
        };
        assert!(verify_specs(&specs, &two).is_empty());

        // The same graph declared to own a single staging buffer: chunk 2's
        // load overwrites chunk 1 while chunk 1 may still be computing.
        let one = VerifyOptions {
            staging_buffers: Some(1),
        };
        let diags = verify_specs(&specs, &one);
        assert!(codes(&diags).contains(&DiagnosticCode::DoubleBufferHazard));

        // Dropping the buffer-release edge is caught even with 2 buffers.
        let mut missing = double_buffered_lane();
        missing[5].deps.clear();
        let diags = verify_specs(&missing, &two);
        assert!(codes(&diags).contains(&DiagnosticCode::DoubleBufferHazard));
    }

    #[test]
    fn the_radix_pipeline_shape_is_clean() {
        let c = Resource::Compute(0);
        // Two narrowing passes, then gather + select — the single-device
        // radix graph shape the large-k path builds.
        let specs = vec![
            spec(StageKind::RadixHistogram, c, &[]),
            spec(StageKind::RadixRefine, c, &[0]),
            spec(StageKind::RadixHistogram, c, &[1]),
            spec(StageKind::RadixRefine, c, &[2]),
            spec(StageKind::CandidateGather, c, &[3]),
            spec(StageKind::RadixSelect, c, &[4]),
        ];
        assert!(verify_specs(&specs, &VerifyOptions::default()).is_empty());
    }

    #[test]
    fn broken_radix_chains_are_v012() {
        let c = Resource::Compute(0);
        // The gather feeds a second top-k instead of a radix select: every
        // narrowing stage upstream loses its select.
        let specs = vec![
            spec(StageKind::RadixHistogram, c, &[]),
            spec(StageKind::RadixRefine, c, &[0]),
            spec(StageKind::CandidateGather, c, &[1]),
            spec(StageKind::SecondTopK, c, &[]),
        ];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert!(codes(&diags).contains(&DiagnosticCode::RadixChainBroken));
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == DiagnosticCode::RadixChainBroken)
                .count(),
            3,
            "every narrowing stage of the broken chain is reported"
        );
        assert_eq!(DiagnosticCode::RadixChainBroken.code(), "V012");
        assert_eq!(
            DiagnosticCode::RadixChainBroken.name(),
            "radix-chain-broken"
        );
    }

    #[test]
    fn radix_select_may_be_a_sink_but_its_feeders_may_not() {
        let c = Resource::Compute(0);
        // A lone select is a legal terminal (degenerate one-stage graph)...
        let specs = vec![spec(StageKind::RadixSelect, c, &[])];
        assert!(verify_specs(&specs, &VerifyOptions::default()).is_empty());
        // ...but a refine nothing consumes is both an orphan and a broken
        // chain.
        let specs = vec![
            spec(StageKind::RadixHistogram, c, &[]),
            spec(StageKind::RadixRefine, c, &[0]),
        ];
        let diags = verify_specs(&specs, &VerifyOptions::default());
        assert!(codes(&diags).contains(&DiagnosticCode::OrphanStage));
        assert!(codes(&diags).contains(&DiagnosticCode::RadixChainBroken));
    }

    #[test]
    fn diagnostics_render_with_their_code() {
        let diags = verify_specs(
            &[spec(StageKind::SecondTopK, Resource::Compute(0), &[9])],
            &VerifyOptions::default(),
        );
        let rendered = format!("{}", diags[0]);
        assert!(
            rendered.starts_with("V001 dangling-dep @ stage 0"),
            "{rendered}"
        );
    }
}
