//! Schedule-space exploration — a loom-style model checker for the
//! threaded stage-graph executor.
//!
//! The threaded executor ([`Executor::Threaded`]) dispatches stages onto
//! one host worker per resource; which *global* interleaving actually runs
//! depends on OS scheduling. Correctness therefore rests on a claim the
//! test suite cannot check by running the executor a few times: **every**
//! dispatch order the workers could take yields the same result. This
//! module checks exactly that claim, the way [loom] checks atomics — by
//! enumerating the schedule space and running each schedule for real:
//!
//! 1. Build the graph once and extract its [`StageSpec`]s.
//! 2. Depth-first enumerate the distinct dispatch orders the per-resource
//!    FIFO workers could take: at every step the *ready set* is the stages
//!    whose dependencies are complete and whose resource has no earlier
//!    pending stage; each choice forks a branch. A state with pending
//!    stages and an empty ready set is a deadlock and fails exploration
//!    immediately.
//! 3. Run every enumerated order serially through
//!    [`StageGraph::execute_in_order`] on a freshly built graph + context,
//!    and require (a) byte-identical
//!    [`deterministic_summary`](crate::stages::StageReport::deterministic_summary)
//!    strings and (b) equal caller-defined result fingerprints (bit
//!    patterns of the winners, say) across **all** interleavings.
//!
//! The first divergence aborts exploration with a [`Divergence`] naming
//! the schedule and what differed — a seeded missing-dependency bug
//! surfaces here as two interleavings disagreeing on the result. Graphs
//! whose schedule count exceeds the budget fall back to seeded random
//! sampling ([`ExploreBudget::Sampled`]) so exploration stays bounded.
//!
//! [loom]: https://github.com/tokio-rs/loom
//! [`Executor::Threaded`]: crate::stages::Executor::Threaded

use crate::stages::{StageGraph, StageReport};
use crate::verify::StageSpec;

/// How much of the schedule space to cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreBudget {
    /// Enumerate every distinct dispatch order, up to `max_schedules`;
    /// beyond the cap, exploration stops early and reports
    /// [`ExploreOutcome::exhaustive`] `= false`.
    Exhaustive {
        /// Hard cap on enumerated schedules.
        max_schedules: usize,
    },
    /// Run `schedules` uniformly sampled dispatch orders from a seeded
    /// xorshift generator — bounded and reproducible, for graphs whose
    /// full schedule space is astronomical.
    Sampled {
        /// Number of sampled schedules to run.
        schedules: usize,
        /// RNG seed (0 is remapped to a fixed nonzero constant; xorshift
        /// has an absorbing all-zero state).
        seed: u64,
    },
}

impl Default for ExploreBudget {
    fn default() -> Self {
        ExploreBudget::Exhaustive {
            max_schedules: 4096,
        }
    }
}

/// What a successful exploration covered.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Number of distinct dispatch orders actually run.
    pub schedules_run: usize,
    /// Whether the run covered the *entire* schedule space (always `false`
    /// for [`ExploreBudget::Sampled`]; `false` for
    /// [`ExploreBudget::Exhaustive`] when the cap was hit).
    pub exhaustive: bool,
    /// Number of stages in the explored graph.
    pub stages: usize,
    /// The reference report (from the first schedule) every other schedule
    /// was compared against.
    pub reference: StageReport,
}

/// Two interleavings disagreed — the executor's determinism claim is
/// falsified for this graph.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index (in enumeration order) of the diverging schedule; schedule 0
    /// is the reference.
    pub schedule_index: usize,
    /// The diverging dispatch order (stage indices in dispatch sequence).
    pub order: Vec<usize>,
    /// What differed: `"deterministic summary"`, `"result fingerprint"`,
    /// or `"deadlock"`.
    pub what: String,
    /// The reference schedule's value (or a description, for deadlocks).
    pub expected: String,
    /// The diverging schedule's value.
    pub found: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule #{} (dispatch order {:?}) diverged on {}: expected {}, found {}",
            self.schedule_index, self.order, self.what, self.expected, self.found
        )
    }
}

impl std::error::Error for Divergence {}

/// The dispatch frontier: stages whose dependencies are all complete and
/// whose resource has no earlier pending stage (workers drain their
/// worklists in insertion order).
fn ready_set(specs: &[StageSpec], done: &[bool]) -> Vec<usize> {
    (0..specs.len())
        .filter(|&i| {
            !done[i]
                && specs[i].deps.iter().all(|&d| done[d])
                && (0..i).all(|j| done[j] || specs[j].resource != specs[i].resource)
        })
        .collect()
}

/// Depth-first enumeration of distinct dispatch orders, capped at
/// `max_schedules`. Returns `(orders, exhaustive)`; an order shorter than
/// the stage count marks a deadlocked branch (empty ready set with pending
/// stages).
fn enumerate_orders(specs: &[StageSpec], max_schedules: usize) -> (Vec<Vec<usize>>, bool) {
    let n = specs.len();
    let mut orders: Vec<Vec<usize>> = Vec::new();
    let mut exhaustive = true;
    let mut done = vec![false; n];
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    fn dfs(
        specs: &[StageSpec],
        done: &mut Vec<bool>,
        prefix: &mut Vec<usize>,
        orders: &mut Vec<Vec<usize>>,
        exhaustive: &mut bool,
        max_schedules: usize,
    ) {
        if orders.len() >= max_schedules {
            *exhaustive = false;
            return;
        }
        if prefix.len() == specs.len() {
            orders.push(prefix.clone());
            return;
        }
        let ready = ready_set(specs, done);
        if ready.is_empty() {
            // Deadlocked branch: record the stuck prefix as-is; the caller
            // turns it into a Divergence.
            orders.push(prefix.clone());
            return;
        }
        for i in ready {
            done[i] = true;
            prefix.push(i);
            dfs(specs, done, prefix, orders, exhaustive, max_schedules);
            prefix.pop();
            done[i] = false;
        }
    }
    dfs(
        specs,
        &mut done,
        &mut prefix,
        &mut orders,
        &mut exhaustive,
        max_schedules,
    );
    (orders, exhaustive)
}

/// One seeded random dispatch order (uniform choice from the ready set at
/// every step). Returns the order plus the advanced RNG state; a deadlock
/// shows up as a short order exactly like in the DFS.
fn sample_order(specs: &[StageSpec], state: &mut u64) -> Vec<usize> {
    let n = specs.len();
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let ready = ready_set(specs, &done);
        if ready.is_empty() {
            break;
        }
        // xorshift64 — no external RNG crates in this workspace.
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        let pick = ready[(*state % ready.len() as u64) as usize];
        done[pick] = true;
        order.push(pick);
    }
    order
}

/// Explore the schedule space of the graph `build` constructs.
///
/// `build` must construct a fresh, identical `(graph, context)` pair on
/// every call — one per schedule. `fingerprint` maps the post-execution
/// context and report to a caller-defined equality witness (e.g. the bit
/// patterns of the winners); it must itself be deterministic.
///
/// Returns the coverage summary on success, or the first [`Divergence`]
/// (boxed — it carries the full diverging order) when any interleaving
/// deadlocks, produces a different deterministic summary, or produces a
/// different fingerprint than schedule 0.
///
/// # Panics
///
/// Panics when `build` returns graphs of different shapes across calls
/// (the dispatch orders of one shape are invalid for another) and in debug
/// builds when the graph fails [`StageGraph::verify`].
pub fn explore_schedules<'g, C, R, B, F>(
    mut build: B,
    mut fingerprint: F,
    budget: ExploreBudget,
) -> Result<ExploreOutcome, Box<Divergence>>
where
    B: FnMut() -> (StageGraph<'g, C>, C),
    F: FnMut(&C, &StageReport) -> R,
    R: PartialEq + std::fmt::Debug,
{
    let (probe_graph, probe_ctx) = build();
    let specs = probe_graph.specs();
    let n = specs.len();
    // The probe pair runs the first schedule; later schedules rebuild.
    let mut probe = Some((probe_graph, probe_ctx));
    let (orders, exhaustive) = match budget {
        ExploreBudget::Exhaustive { max_schedules } => {
            enumerate_orders(&specs, max_schedules.max(1))
        }
        ExploreBudget::Sampled { schedules, seed } => {
            let mut state = if seed == 0 { 0x9e3779b97f4a7c15 } else { seed };
            let orders = (0..schedules.max(1))
                .map(|_| sample_order(&specs, &mut state))
                .collect();
            (orders, false)
        }
    };

    let mut reference: Option<(String, R, StageReport)> = None;
    let mut schedules_run = 0usize;
    for (schedule_index, order) in orders.iter().enumerate() {
        if order.len() < n {
            return Err(Box::new(Divergence {
                schedule_index,
                order: order.clone(),
                what: "deadlock".into(),
                expected: format!("all {n} stage(s) dispatched"),
                found: format!(
                    "stuck after {} stage(s): dependencies and FIFO order leave no \
                     dispatchable stage",
                    order.len()
                ),
            }));
        }
        let (graph, ctx) = match probe.take() {
            Some(pair) => pair,
            None => build(),
        };
        let report = graph.execute_in_order(&ctx, order);
        let summary = report.deterministic_summary();
        let print = fingerprint(&ctx, &report);
        schedules_run += 1;
        match &reference {
            None => reference = Some((summary, print, report)),
            Some((ref_summary, ref_print, _)) => {
                if summary != *ref_summary {
                    return Err(Box::new(Divergence {
                        schedule_index,
                        order: order.clone(),
                        what: "deterministic summary".into(),
                        expected: ref_summary.clone(),
                        found: summary,
                    }));
                }
                if print != *ref_print {
                    return Err(Box::new(Divergence {
                        schedule_index,
                        order: order.clone(),
                        what: "result fingerprint".into(),
                        expected: format!("{ref_print:?}"),
                        found: format!("{print:?}"),
                    }));
                }
            }
        }
    }
    let reference = reference.map(|(_, _, report)| report).unwrap_or_default();
    Ok(ExploreOutcome {
        schedules_run,
        exhaustive,
        stages: n,
        reference,
    })
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test contexts are stage-graph contexts
mod tests {
    use super::*;
    use crate::stages::{Resource, StageKind, StageOutcome};
    use std::sync::Mutex;

    fn outcome(ms: f64) -> StageOutcome {
        StageOutcome {
            stats: Default::default(),
            time_ms: ms,
        }
    }

    /// Two independent 2-stage chains on two compute queues plus a final
    /// join: the ready set always holds one stage per unfinished chain, so
    /// the dispatch orders are the interleavings of two length-2 sequences
    /// — C(4,2) = 6 of them.
    fn two_chain_build() -> (StageGraph<'static, Mutex<Vec<u64>>>, Mutex<Vec<u64>>) {
        let mut g: StageGraph<'static, Mutex<Vec<u64>>> = StageGraph::new();
        let a0 = g.add(StageKind::LocalTopK, Resource::Compute(0), &[], |log| {
            log.lock().unwrap().push(1);
            outcome(1.0)
        });
        let a1 = g.add(StageKind::LocalMerge, Resource::Compute(0), &[a0], |log| {
            log.lock().unwrap().push(2);
            outcome(1.0)
        });
        let b0 = g.add(StageKind::LocalTopK, Resource::Compute(1), &[], |log| {
            log.lock().unwrap().push(10);
            outcome(1.0)
        });
        let b1 = g.add(StageKind::LocalMerge, Resource::Compute(1), &[b0], |log| {
            log.lock().unwrap().push(20);
            outcome(1.0)
        });
        g.add(
            StageKind::FinalTopK,
            Resource::Compute(0),
            &[a1, b1],
            |log| {
                let sum: u64 = log.lock().unwrap().iter().sum();
                log.lock().unwrap().push(sum);
                outcome(1.0)
            },
        );
        (g, Mutex::new(Vec::new()))
    }

    #[test]
    fn enumerates_exactly_the_interleavings_of_two_chains() {
        let outcome = explore_schedules(
            two_chain_build,
            |ctx, _| *ctx.lock().unwrap().last().unwrap(),
            ExploreBudget::default(),
        )
        .expect("independent chains are schedule-invariant");
        assert_eq!(outcome.schedules_run, 6, "C(4,2) interleavings");
        assert!(outcome.exhaustive);
        assert_eq!(outcome.stages, 5);
        assert_eq!(outcome.reference.stages.len(), 5);
    }

    #[test]
    fn a_tight_cap_reports_non_exhaustive_coverage() {
        let outcome = explore_schedules(
            two_chain_build,
            |_, report| report.makespan_ms.to_bits(),
            ExploreBudget::Exhaustive { max_schedules: 3 },
        )
        .expect("the first three interleavings agree");
        assert_eq!(outcome.schedules_run, 3);
        assert!(!outcome.exhaustive);
    }

    #[test]
    fn sampling_is_seeded_and_bounded() {
        let run = |seed| {
            explore_schedules(
                two_chain_build,
                // The final stage's sum is order-invariant (unlike the raw
                // log, which the divergence test below exploits).
                |ctx, _| *ctx.lock().unwrap().last().unwrap(),
                ExploreBudget::Sampled { schedules: 8, seed },
            )
            .expect("schedule-invariant graph")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.schedules_run, 8);
        assert!(!a.exhaustive);
        assert_eq!(
            a.reference.deterministic_summary(),
            b.reference.deterministic_summary()
        );
        // Seed 0 must not wedge the xorshift state.
        let z = run(0);
        assert_eq!(z.schedules_run, 8);
    }

    #[test]
    fn order_dependent_side_effects_surface_as_a_fingerprint_divergence() {
        // The two chain heads race on a shared Vec with *no* dependency
        // between them; the final stage sums the log, which is
        // order-invariant, but the fingerprint reads the raw log order.
        let err = explore_schedules(
            two_chain_build,
            |ctx, _| ctx.lock().unwrap().clone(),
            ExploreBudget::default(),
        )
        .expect_err("the raw interleaving log differs across schedules");
        assert_eq!(err.what, "result fingerprint");
        assert!(err.schedule_index > 0);
        let rendered = format!("{err}");
        assert!(rendered.contains("result fingerprint"), "{rendered}");
    }
}
