//! Modeled-vs-measured calibration — regressing host wall-clock against
//! the simulator's analytic timing model, per [`StageKind`].
//!
//! The stage-graph executor records two clocks for every stage: the
//! *modeled* duration from the timing model (deterministic) and the
//! *measured* host wall-clock around the stage closure (jittery). This
//! module fits, for each [`StageKind`], an ordinary least-squares line
//!
//! ```text
//! measured_ms ≈ slope · modeled_ms + intercept_ms
//! ```
//!
//! and exposes the fit on every [`StageReport`] as
//! [`CalibrationFit`]. The fit answers two questions benches and tests
//! keep asking:
//!
//! * **How fast is the host relative to the model?** The slope is the
//!   wall-clock cost of one modeled millisecond for that kind of work;
//!   the intercept absorbs per-stage fixed overhead (dispatch, locking).
//! * **Does the threaded executor actually realize the modeled overlap?**
//!   [`CalibrationFit::predicted_makespan_ms`] *replays* a report's
//!   schedule — same resources, same dependencies — with every duration
//!   mapped through the fit, yielding the wall-clock makespan the modeled
//!   schedule predicts. Comparing it against the report's
//!   `measured_makespan_ms` is how the acceptance criterion "measured
//!   within 25% of modeled" is phrased in commensurable units: modeled
//!   milliseconds are simulated-GPU time and host milliseconds are
//!   host time, so the raw numbers are never comparable directly.
//!
//! Everything here is descriptive instrumentation: fits never feed back
//! into scheduling decisions, so results and modeled reports stay
//! bit-identical whether or not anyone looks at the calibration.

use gpu_sim::StreamSet;

use crate::stages::{ExecutedStage, Resource, StageKind, StageReport};

/// Near-zero variance guard for the degenerate-fit fallbacks.
const EPS: f64 = 1e-12;

/// The least-squares fit for one [`StageKind`]: `measured ≈ slope · modeled
/// + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindFit {
    /// The stage kind this fit describes.
    pub kind: StageKind,
    /// Number of stages the fit was computed over.
    pub samples: usize,
    /// Measured milliseconds per modeled millisecond.
    pub slope: f64,
    /// Fixed per-stage overhead in measured milliseconds.
    pub intercept_ms: f64,
    /// Coefficient of determination in `[0, 1]` (clamped at 0; 1.0 when
    /// the measured durations have no variance to explain, e.g. a single
    /// sample).
    pub r2: f64,
    /// Mean absolute residual `|measured − predict(modeled)|` over the
    /// fitted samples, in measured milliseconds — the continuously-tracked
    /// modeled-vs-calibrated drift signal behind the engine's
    /// `stage_residual_ms` metric.
    pub mean_abs_residual_ms: f64,
}

impl KindFit {
    /// Predicted measured duration for a stage of `modeled_ms` modeled
    /// milliseconds, clamped at 0 (a fitted line can dip negative near the
    /// origin; durations cannot).
    pub fn predict(&self, modeled_ms: f64) -> f64 {
        (self.slope * modeled_ms + self.intercept_ms).max(0.0)
    }
}

/// Per-[`StageKind`] calibration fits over one report's stages.
///
/// Kinds appear in first-occurrence order of the fitted stage list, so the
/// structure itself is deterministic given the (nondeterministic) measured
/// inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationFit {
    /// One fit per stage kind that occurred, in first-occurrence order.
    pub fits: Vec<KindFit>,
}

impl CalibrationFit {
    /// Fit measured against modeled durations, grouped by stage kind.
    ///
    /// Degenerate groups fall back gracefully: with no modeled-duration
    /// variance (every stage of the kind has the same modeled cost — one
    /// sample is the common case) the slope becomes the mean measured /
    /// mean modeled ratio through the origin, or a pure intercept when the
    /// modeled durations are all zero.
    pub fn fit(stages: &[ExecutedStage]) -> CalibrationFit {
        let mut kinds: Vec<StageKind> = Vec::new();
        for s in stages {
            if !kinds.contains(&s.kind) {
                kinds.push(s.kind);
            }
        }
        let fits = kinds
            .into_iter()
            .map(|kind| {
                let xs: Vec<f64> = stages
                    .iter()
                    .filter(|s| s.kind == kind)
                    .map(ExecutedStage::duration_ms)
                    .collect();
                let ys: Vec<f64> = stages
                    .iter()
                    .filter(|s| s.kind == kind)
                    .map(ExecutedStage::measured_ms)
                    .collect();
                let n = xs.len() as f64;
                let mean_x = xs.iter().sum::<f64>() / n;
                let mean_y = ys.iter().sum::<f64>() / n;
                let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
                let sxy: f64 = xs
                    .iter()
                    .zip(&ys)
                    .map(|(x, y)| (x - mean_x) * (y - mean_y))
                    .sum();
                let (slope, intercept_ms) = if sxx > EPS {
                    let slope = sxy / sxx;
                    (slope, mean_y - slope * mean_x)
                } else if mean_x > EPS {
                    // All modeled durations equal and nonzero: a ratio
                    // through the origin is the only defensible line.
                    (mean_y / mean_x, 0.0)
                } else {
                    // Zero modeled cost (e.g. a skipped phase): pure
                    // per-stage overhead.
                    (0.0, mean_y)
                };
                let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
                let ss_res: f64 = xs
                    .iter()
                    .zip(&ys)
                    .map(|(x, y)| (y - (slope * x + intercept_ms)).powi(2))
                    .sum();
                let r2 = if ss_tot > EPS {
                    (1.0 - ss_res / ss_tot).max(0.0)
                } else {
                    1.0
                };
                let mean_abs_residual_ms = xs
                    .iter()
                    .zip(&ys)
                    .map(|(x, y)| (y - (slope * x + intercept_ms).max(0.0)).abs())
                    .sum::<f64>()
                    / n;
                KindFit {
                    kind,
                    samples: xs.len(),
                    slope,
                    intercept_ms,
                    r2,
                    mean_abs_residual_ms,
                }
            })
            .collect();
        CalibrationFit { fits }
    }

    /// The fit for `kind`, if any stage of that kind was fitted.
    pub fn for_kind(&self, kind: StageKind) -> Option<&KindFit> {
        self.fits.iter().find(|f| f.kind == kind)
    }

    /// Predicted measured duration of one stage: its kind's fit applied to
    /// its modeled duration. Stages of a kind the fit has never seen pass
    /// their modeled duration through unchanged (identity fallback).
    pub fn predict_stage_ms(&self, stage: &ExecutedStage) -> f64 {
        match self.for_kind(stage.kind) {
            Some(fit) => fit.predict(stage.duration_ms()),
            None => stage.duration_ms(),
        }
    }

    /// Replay `report`'s schedule — same resources, same declared
    /// dependencies, same per-resource in-order queues — with every stage
    /// duration mapped through the calibration, returning the host
    /// wall-clock makespan the modeled schedule *predicts*.
    ///
    /// This is the bridge between the two clocks: `report.makespan_ms` is
    /// simulated-GPU time, `report.measured_makespan_ms` is host time, and
    /// this prediction is host time derived from the modeled schedule. A
    /// threaded executor that realizes the modeled overlap lands its
    /// measured makespan close to this number.
    ///
    /// The replay trusts the report's dependency wiring; reports produced
    /// by the executor were verified before execution (see
    /// [`crate::verify`]), and hand-built ones can be re-checked with
    /// [`StageReport::verify`]. Here only the replayability precondition —
    /// dependencies point at earlier stages — is debug-asserted.
    pub fn predicted_makespan_ms(&self, report: &StageReport) -> f64 {
        let mut streams: StreamSet<Resource> = StreamSet::new();
        let mut finished: Vec<gpu_sim::Event> = Vec::with_capacity(report.stages.len());
        for (i, stage) in report.stages.iter().enumerate() {
            let stream = streams.stream_mut(stage.resource);
            for &dep in &stage.deps {
                debug_assert!(
                    dep < i,
                    "stage {i} depends on stage {dep}, which has not been replayed yet; \
                     the schedule is not in insertion order (StageReport::verify would \
                     flag this as V001/V002)"
                );
                stream.wait_event(&finished[dep]);
            }
            let done = stream.launch(self.predict_stage_ms(stage));
            finished.push(done);
        }
        streams.makespan_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::KernelStats;

    fn stage(kind: StageKind, modeled: (f64, f64), measured: (f64, f64)) -> ExecutedStage {
        ExecutedStage {
            kind,
            label: kind.name().into(),
            resource: Resource::Compute(0),
            deps: vec![],
            start_ms: modeled.0,
            end_ms: modeled.1,
            measured_start_ms: measured.0,
            measured_end_ms: measured.1,
            stats: KernelStats::default(),
        }
    }

    #[test]
    fn recovers_an_exact_linear_relationship() {
        // measured = 2·modeled + 1, over three distinct modeled durations.
        let stages = vec![
            stage(StageKind::LocalTopK, (0.0, 1.0), (0.0, 3.0)),
            stage(StageKind::LocalTopK, (0.0, 2.0), (0.0, 5.0)),
            stage(StageKind::LocalTopK, (0.0, 4.0), (0.0, 9.0)),
        ];
        let fit = CalibrationFit::fit(&stages);
        let f = fit.for_kind(StageKind::LocalTopK).unwrap();
        assert_eq!(f.samples, 3);
        assert!((f.slope - 2.0).abs() < 1e-9);
        assert!((f.intercept_ms - 1.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
        assert!((f.predict(3.0) - 7.0).abs() < 1e-9);
        assert!(
            f.mean_abs_residual_ms < 1e-9,
            "an exact fit has no residual"
        );
    }

    #[test]
    fn residuals_measure_scatter_around_the_fit() {
        // Equal modeled durations with measured 6 and 8: the ratio fit
        // predicts 7 for both, so each sample is 1 ms off.
        let stages = vec![
            stage(StageKind::LocalMerge, (0.0, 2.0), (0.0, 6.0)),
            stage(StageKind::LocalMerge, (2.0, 4.0), (6.0, 14.0)),
        ];
        let fit = CalibrationFit::fit(&stages);
        let f = fit.for_kind(StageKind::LocalMerge).unwrap();
        assert!((f.mean_abs_residual_ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_equal_modeled_durations_fall_back_to_a_ratio() {
        let stages = vec![
            stage(StageKind::ChunkLoad, (0.0, 2.0), (0.0, 6.0)),
            stage(StageKind::ChunkLoad, (2.0, 4.0), (6.0, 14.0)),
        ];
        let fit = CalibrationFit::fit(&stages);
        let f = fit.for_kind(StageKind::ChunkLoad).unwrap();
        // mean measured 7, mean modeled 2 → ratio 3.5 through the origin.
        assert!((f.slope - 3.5).abs() < 1e-9);
        assert_eq!(f.intercept_ms, 0.0);
    }

    #[test]
    fn zero_modeled_cost_becomes_pure_overhead() {
        let stages = vec![stage(StageKind::FinalTopK, (1.0, 1.0), (0.0, 0.25))];
        let fit = CalibrationFit::fit(&stages);
        let f = fit.for_kind(StageKind::FinalTopK).unwrap();
        assert_eq!(f.slope, 0.0);
        assert!((f.intercept_ms - 0.25).abs() < 1e-12);
        assert_eq!(f.r2, 1.0, "no variance to explain");
        assert!(f.predict(0.0) >= 0.0);
    }

    #[test]
    fn predictions_never_go_negative() {
        // A fitted line with a negative intercept dips below zero for
        // small modeled durations; predict() clamps.
        let f = KindFit {
            kind: StageKind::Gather,
            samples: 2,
            slope: 1.0,
            intercept_ms: -5.0,
            r2: 1.0,
            mean_abs_residual_ms: 0.0,
        };
        assert_eq!(f.predict(1.0), 0.0);
        assert_eq!(f.predict(10.0), 5.0);
    }

    #[test]
    fn predicted_makespan_replays_overlap() {
        use crate::stages::TransferLane;
        // Two chained compute stages (modeled 1 ms each) and one transfer
        // (modeled 2 ms) that overlaps them. Calibration: compute runs at
        // 2× wall-clock, transfer at 1×.
        let mut compute0 = stage(StageKind::LocalTopK, (0.0, 1.0), (0.0, 2.0));
        let mut compute1 = stage(StageKind::LocalTopK, (1.0, 2.0), (2.0, 4.0));
        compute1.deps = vec![0];
        let mut load = stage(StageKind::ChunkLoad, (0.0, 2.0), (0.0, 2.0));
        load.resource = Resource::Transfer(TransferLane::HostToDevice(0));
        let report = StageReport {
            stages: vec![compute0.clone(), compute1, load],
            makespan_ms: 2.0,
            measured_makespan_ms: 4.0,
            calibration: CalibrationFit::default(),
        };
        compute0.end_ms = 1.0;
        let fit = CalibrationFit::fit(&report.stages);
        // Predicted: compute lane 2+2 = 4 ms, transfer lane 2 ms → 4 ms.
        let predicted = fit.predicted_makespan_ms(&report);
        assert!((predicted - 4.0).abs() < 1e-9, "got {predicted}");
    }

    #[test]
    fn unknown_kinds_pass_modeled_time_through() {
        let fit = CalibrationFit::default();
        let s = stage(StageKind::Concatenate, (0.0, 3.0), (0.0, 99.0));
        assert_eq!(fit.predict_stage_ms(&s), 3.0);
        assert!(fit.for_kind(StageKind::Concatenate).is_none());
    }
}
