//! The Dr. Top-k pipeline: delegate construction → first top-k →
//! concatenation → second top-k (Figure 3b), with per-phase breakdowns and
//! workload statistics.
//!
//! Every entry point is generic over [`TopKKey`], so the same pipeline
//! serves `u32`/`u64`/`i32`/`i64`/`f32`/`f64` workloads; the `u32`
//! monomorphization is byte-for-byte the historical one. [`dr_topk`] answers
//! top-k-*largest*; [`dr_topk_min`] answers top-k-*smallest* (e.g. k-NN
//! distances) by running the same machinery through the order-reversing
//! [`Desc`] key adapter with zero per-element cost.

// Approved `std::sync` lock holder (see clippy.toml + ARCHITECTURE.md):
// the exact pipeline's stage-graph context keeps its phase buffers in
// mutex slots, as the executor's `&C` sharing rule requires.
#![allow(clippy::disallowed_types)]

use gpu_sim::{Device, KernelStats};
use std::cmp::Reverse;
use std::sync::Mutex;
use topk_baselines::{
    bitonic_topk, bucket_topk, radix_topk, BitonicConfig, BucketConfig, Desc, RadixConfig, TopKKey,
    TopKResult,
};

use crate::approx::{dr_topk_approx_planned, expected_recall, required_budget, Mode, RecallTarget};
use crate::concat::{concatenate, Concatenated};
use crate::delegate::{build_delegate_vector, ConstructionMethod, DelegateVector};
use crate::first_topk::{first_topk, FirstTopK};
use crate::radix_flags::flag_radix_topk;
use crate::radix_path::radix_dr_topk;
use crate::stages::{Resource, StageGraph, StageKind, StageOutcome, StageReport};
use crate::tuning::{auto_alpha, optimal_approx_tuning, ChosenPath, PathHint, PAPER_RULE4_CONST};

/// Which algorithm runs the second top-k (and, for the baselines-assisted
/// variants of Figures 17–19, represents the algorithm family Dr. Top-k is
/// assisting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerAlgorithm {
    /// The paper's optimized flag-based in-place radix top-k (default).
    FlagRadix,
    /// GGKS radix top-k.
    Radix,
    /// GGKS bucket top-k.
    Bucket,
    /// Bitonic top-k.
    Bitonic,
}

impl InnerAlgorithm {
    /// All inner algorithms evaluated by the paper's figures.
    pub const ALL: [InnerAlgorithm; 4] = [
        InnerAlgorithm::FlagRadix,
        InnerAlgorithm::Radix,
        InnerAlgorithm::Bucket,
        InnerAlgorithm::Bitonic,
    ];

    /// Display name used by the harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            InnerAlgorithm::FlagRadix => "flag-radix",
            InnerAlgorithm::Radix => "radix",
            InnerAlgorithm::Bucket => "bucket",
            InnerAlgorithm::Bitonic => "bitonic",
        }
    }

    pub(crate) fn run<K: TopKKey>(&self, device: &Device, data: &[K], k: usize) -> TopKResult<K> {
        match self {
            InnerAlgorithm::FlagRadix => flag_radix_topk(device, data, k),
            InnerAlgorithm::Radix => radix_topk(device, data, k, &RadixConfig::default()),
            InnerAlgorithm::Bucket => bucket_topk(device, data, k, &BucketConfig::default()),
            InnerAlgorithm::Bitonic => bitonic_topk(device, data, k, &BitonicConfig::default()),
        }
    }
}

impl std::fmt::Display for InnerAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a Dr. Top-k run.
#[derive(Debug, Clone)]
pub struct DrTopKConfig {
    /// Subrange exponent α (subrange size `2^α`). `None` applies Rule 4 with
    /// [`rule4_const`](DrTopKConfig::rule4_const).
    pub alpha: Option<u32>,
    /// Number of delegates per subrange (β). The paper's sweep (Figure 9)
    /// finds β = 2 the best overall configuration.
    pub beta: usize,
    /// Delegate-top-k-enabled filtering (Rule 2). On by default.
    pub filtering: bool,
    /// Delegate construction kernel selection.
    pub construction: ConstructionMethod,
    /// Algorithm used for the second top-k.
    pub inner: InnerAlgorithm,
    /// Skip the last radix pass of the first top-k (the paper enables this
    /// once β delegates + filtering absorb the lost precision on uniform-like
    /// data). `None` defaults to off, because on highly concentrated value
    /// distributions (e.g. ND) the relaxed threshold admits far too many
    /// subranges; the breakdown harnesses enable it explicitly where the
    /// paper does.
    pub skip_last_first_pass: Option<bool>,
    /// Rule 4 constant used when `alpha` is `None`.
    pub rule4_const: f64,
    /// Which execution path to run: the delegate pipeline, the multi-pass
    /// radix-select pipeline, or (the default) whichever
    /// [`choose_path`](crate::tuning::choose_path) predicts cheaper for
    /// the query's `(n, k, key_bits)` on the executing device. Exact mode
    /// only: approximate plans and shared-delegate callers always use the
    /// delegate machinery.
    pub path: PathHint,
    /// Exact selection (the paper's pipeline, default) or recall-targeted
    /// approximate selection (see [`crate::approx`]). In the approximate
    /// mode the planner derives `alpha` and `beta` from the recall model
    /// (unless `alpha` is pinned, in which case only the per-bucket budget
    /// is derived), and the concatenation/refill phases are skipped.
    pub mode: Mode,
}

impl Default for DrTopKConfig {
    fn default() -> Self {
        DrTopKConfig {
            alpha: None,
            beta: 2,
            filtering: true,
            construction: ConstructionMethod::Auto,
            inner: InnerAlgorithm::FlagRadix,
            skip_last_first_pass: None,
            rule4_const: PAPER_RULE4_CONST,
            path: PathHint::Auto,
            mode: Mode::Exact,
        }
    }
}

impl DrTopKConfig {
    /// The recommended configuration for a given problem size: Rule 4 α
    /// **eagerly resolved** from `n` and `k` (with the paper's tuned
    /// constant and the default β = 2), filtering on, automatic
    /// construction-kernel choice.
    ///
    /// The eagerly resolved α is identical to what the lazy
    /// [`Default`] configuration would resolve for the same `(n, k)`, but
    /// it is pinned in [`alpha`](DrTopKConfig::alpha), so the configuration
    /// can be logged, compared, or reused on same-shaped inputs without
    /// re-deriving it. Degenerate sizes are clamped the same way
    /// [`resolve_alpha`](DrTopKConfig::resolve_alpha) clamps them.
    pub fn auto(n: usize, k: usize) -> Self {
        let base = DrTopKConfig::default();
        let alpha = base.resolve_alpha(n, k);
        DrTopKConfig {
            alpha: Some(alpha),
            ..base
        }
    }

    /// The recommended recall-targeted approximate configuration: like
    /// [`Default`], but with [`mode`](DrTopKConfig::mode) set to
    /// `Mode::Approx` at the given expected-recall floor (a fraction in
    /// `(0, 1]`; 1.0 runs the exact pipeline). The planner derives the
    /// bucketing and per-bucket candidate budget from the recall model per
    /// query shape.
    pub fn approx(target_recall: f64) -> Self {
        DrTopKConfig {
            mode: Mode::Approx {
                target_recall: RecallTarget::from_fraction(target_recall),
            },
            ..DrTopKConfig::default()
        }
    }

    /// The initial maximum-delegate design of Section 4.1 (β = 1, no
    /// filtering) — the configuration behind Figure 6.
    pub fn max_delegate_only() -> Self {
        DrTopKConfig {
            beta: 1,
            filtering: false,
            ..DrTopKConfig::default()
        }
    }

    /// Maximum delegate with delegate-top-k-enabled filtering (Figure 7).
    pub fn with_filtering_only() -> Self {
        DrTopKConfig {
            beta: 1,
            filtering: true,
            ..DrTopKConfig::default()
        }
    }

    /// β delegate without filtering (one of the Figure 22 configurations).
    pub fn beta_only(beta: usize) -> Self {
        DrTopKConfig {
            beta,
            filtering: false,
            ..DrTopKConfig::default()
        }
    }

    /// Resolve the subrange exponent for an input of `n` elements.
    pub fn resolve_alpha(&self, n: usize, k: usize) -> u32 {
        match self.alpha {
            Some(a) => a,
            None => auto_alpha(n.max(2), k.max(1), self.beta, self.rule4_const),
        }
    }

    pub(crate) fn resolve_skip_last(&self) -> bool {
        self.skip_last_first_pass.unwrap_or(false)
    }
}

/// Modeled time of each pipeline phase, in milliseconds.
///
/// Since the stage-graph refactor this is a *derived view* of a
/// [`StageReport`] (see
/// [`StageReport::phase_breakdown`](crate::stages::StageReport::phase_breakdown)):
/// compute phases and data movement are reported separately rather than
/// transfer time being folded into whichever phase happened to wait on it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Delegate vector construction (also the approximate mode's
    /// bucket-top-k′ candidate pass).
    pub delegate_ms: f64,
    /// First top-k (on the delegate vector).
    pub first_topk_ms: f64,
    /// Concatenation of the qualified subranges.
    pub concat_ms: f64,
    /// Second top-k (on the concatenated vector; includes the distributed
    /// runner's local/merge/final selection stages).
    pub second_topk_ms: f64,
    /// Host↔device and inter-device data movement (out-of-core chunk
    /// loads, the distributed gather). Zero for fully device-resident
    /// single-device runs.
    pub transfer_ms: f64,
}

impl PhaseBreakdown {
    /// Sum of all phases, *as if executed serially*. When transfers
    /// overlap compute (double-buffered ingestion) the run's real modeled
    /// makespan is lower; see
    /// [`StageReport::makespan_ms`](crate::stages::StageReport).
    pub fn total_ms(&self) -> f64 {
        self.delegate_ms
            + self.first_topk_ms
            + self.concat_ms
            + self.second_topk_ms
            + self.transfer_ms
    }

    /// `(phase name, ms)` pairs in pipeline order — the one place the
    /// field list is enumerated, so JSON snapshot exporters (benches, the
    /// engine report) cannot drift from the struct.
    pub fn entries(&self) -> [(&'static str, f64); 5] {
        [
            ("delegate_ms", self.delegate_ms),
            ("first_topk_ms", self.first_topk_ms),
            ("concat_ms", self.concat_ms),
            ("second_topk_ms", self.second_topk_ms),
            ("transfer_ms", self.transfer_ms),
        ]
    }
}

/// Workload statistics: the vector sizes each phase operated on (the
/// quantities plotted in Figures 20 and 21).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Input vector size |V|.
    pub input_len: usize,
    /// Delegate vector size (first top-k workload).
    pub delegate_vector_len: usize,
    /// Concatenated vector size (second top-k workload).
    pub concatenated_len: usize,
    /// Number of subranges the input was split into.
    pub num_subranges: usize,
    /// Number of subranges that fully qualified for concatenation.
    pub fully_taken_subranges: usize,
    /// Whether the Rule 3 special case fired (no fully-taken subranges: the
    /// concatenation scan and the second top-k were skipped entirely).
    pub second_topk_skipped: bool,
    /// Whether the delegate machinery was bypassed entirely and the inner
    /// algorithm ran directly on the input (tiny input, or `k` too large
    /// for delegate pruning to help). When set, `delegate_vector_len` and
    /// `concatenated_len` are both 0 — no delegate vector was built and no
    /// concatenation happened — so
    /// [`workload_fraction`](WorkloadStats::workload_fraction) honestly
    /// reports 0: the pipeline added no workload beyond the inner
    /// algorithm's own scan.
    pub fell_back: bool,
}

impl WorkloadStats {
    /// (delegate + concatenated) / |V| — the workload ratio the paper tracks.
    /// Always ≤ 1.0 on the fallback path (it is 0.0 there: nothing beyond
    /// the inner algorithm's own scan was touched).
    pub fn workload_fraction(&self) -> f64 {
        if self.input_len == 0 {
            return 0.0;
        }
        (self.delegate_vector_len + self.concatenated_len) as f64 / self.input_len as f64
    }
}

/// Result of a Dr. Top-k run.
#[derive(Debug, Clone)]
pub struct DrTopKResult<K: TopKKey = u32> {
    /// The selected values: the k largest in descending order for
    /// [`dr_topk`], the k smallest in ascending order for [`dr_topk_min`].
    pub values: Vec<K>,
    /// The k-th selected value (the selection threshold).
    pub kth_value: K,
    /// Subrange exponent α that was actually used.
    pub alpha: u32,
    /// Per-phase modeled times.
    pub breakdown: PhaseBreakdown,
    /// Vector-size statistics.
    pub workload: WorkloadStats,
    /// Counters accumulated across every kernel of the run.
    pub stats: KernelStats,
    /// Total modeled time in milliseconds (the stage schedule's makespan;
    /// equal to [`PhaseBreakdown::total_ms`] for fully serial
    /// single-device runs).
    pub time_ms: f64,
    /// The executed stage schedule this result was derived from — one
    /// entry per paper phase, with modeled start/end times and counters.
    pub stages: StageReport,
}

/// A query bound to a fully resolved execution plan: `k` clamped to the
/// input length, α pinned, and the delegate-vs-fallback decision already
/// made.
///
/// [`dr_topk_with_stats`] is exactly [`PlannedQuery::plan`] followed by
/// [`dr_topk_planned`]; the two halves are public so a batching engine can
/// plan many queries against the same corpus up front and then execute them
/// against **one shared delegate vector** (built once with
/// [`build_delegate_vector`], or recalled from a cache) instead of paying a
/// full `|V|`-scan delegate construction per query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The query's k, clamped to the input length the plan was made for.
    pub k: usize,
    /// Resolved subrange exponent (Rule 4 or the caller's explicit α).
    pub alpha: u32,
    /// Whether the delegate machinery applies. `false` means the inner
    /// algorithm runs directly on the input: the input is tiny, `k` is not
    /// smaller than the input, or `k` is not smaller than the delegate
    /// vector itself (Rule 2's threshold would not exist).
    pub use_delegates: bool,
    /// What the recall model predicts this plan returns: 1.0 for every
    /// exact plan (including approximate queries that fell back to the
    /// exact machinery), the modeled expected recall for a bucket-based
    /// approximate plan.
    pub predicted_recall: f64,
    /// The configuration the plan was resolved from, with α pinned so
    /// re-planning the same query is free. For approximate plans `beta`
    /// holds the derived per-bucket candidate budget, and `mode` is
    /// normalised to [`Mode::Exact`] when the approximate machinery could
    /// not apply (so execution routing can trust it).
    pub config: DrTopKConfig,
}

impl PlannedQuery {
    /// Resolve the execution plan of one query (`k` over an `n`-element
    /// input) under `config`. This performs the α resolution and the
    /// degenerate-split analysis of [`dr_topk_with_stats`] without touching
    /// any data.
    pub fn plan(n: usize, k: usize, config: &DrTopKConfig) -> PlannedQuery {
        assert!(config.beta >= 1, "beta must be at least 1");
        let k = k.min(n);
        if let Some(target) = config.mode.strict_target() {
            if let Some(planned) = PlannedQuery::plan_approx(n, k, target, config) {
                return planned;
            }
            // The approximate machinery cannot apply (tiny input, k too
            // close to n, or no candidate set smaller than the input):
            // fall back to the exact path, whose recall trivially meets
            // any target. The mode is normalised so execution follows the
            // plan, not the original request.
            let exact_config = DrTopKConfig {
                mode: Mode::Exact,
                ..config.clone()
            };
            return PlannedQuery::plan(n, k, &exact_config);
        }
        let alpha = config.resolve_alpha(n, k);
        // Degenerate split: if the subrange count would be 1, the input is
        // tiny, or k is not smaller than the delegate vector itself (in
        // which case Rule 2's threshold — the k-th delegate — does not
        // exist and pruning is impossible anyway), the delegate machinery
        // cannot help — fall back to the inner algorithm directly, which is
        // what a production library should do.
        let subrange_size = 1usize << alpha;
        let num_subranges = n.div_ceil(subrange_size);
        let delegate_capacity =
            num_subranges.saturating_sub(1) * config.beta.min(subrange_size) + 1;
        let use_delegates = k > 0 && n > subrange_size && n > k && k < delegate_capacity;
        PlannedQuery {
            k,
            alpha,
            use_delegates,
            predicted_recall: 1.0,
            config: DrTopKConfig {
                alpha: Some(alpha),
                ..config.clone()
            },
        }
    }

    /// Resolve a bucket-based approximate plan, or `None` when the
    /// approximate machinery cannot apply to this shape.
    ///
    /// With `config.alpha` unpinned the bucketing comes from
    /// [`optimal_approx_tuning`]; with a pinned α (how the engine holds a
    /// fused group on one shared candidate vector) only the per-bucket
    /// budget is derived, from the recall model at that α.
    fn plan_approx(
        n: usize,
        k: usize,
        target: RecallTarget,
        config: &DrTopKConfig,
    ) -> Option<PlannedQuery> {
        let (alpha, budget, predicted_recall) = match config.alpha {
            None => {
                let t = optimal_approx_tuning(n, k, target)?;
                (t.alpha, t.budget, t.predicted_recall)
            }
            Some(alpha) => {
                let bucket_size = 1usize.checked_shl(alpha)?;
                if k == 0 || k >= n || bucket_size >= n {
                    return None;
                }
                let num_buckets = n.div_ceil(bucket_size);
                // Same variance guard as `optimal_approx_tuning`: with
                // fewer than 2k buckets the recall model constrains only
                // the mean while the loss concentrates in hot buckets, so
                // a pinned α that cannot give 2k buckets falls back to
                // the exact machinery instead of over-promising.
                if num_buckets < 2 * k {
                    return None;
                }
                let budget = required_budget(k, num_buckets, target.with_planning_headroom());
                if budget > bucket_size
                    || num_buckets * budget >= n
                    || (num_buckets - 1) * budget + 1 < k
                {
                    return None;
                }
                (alpha, budget, expected_recall(k, num_buckets, budget))
            }
        };
        Some(PlannedQuery {
            k,
            alpha,
            use_delegates: true,
            predicted_recall,
            config: DrTopKConfig {
                alpha: Some(alpha),
                beta: budget,
                ..config.clone()
            },
        })
    }
}

/// Run Dr. Top-k on `data`, returning the full result with breakdowns.
pub fn dr_topk_with_stats<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
) -> DrTopKResult<K> {
    let planned = PlannedQuery::plan(data.len(), k, config);
    dr_topk_planned(device, data, None, &planned)
}

/// Execute a [`PlannedQuery`] on `data`, optionally against a shared,
/// already-built delegate vector.
///
/// When `shared_delegates` is `Some`, phase 1 (delegate construction) is
/// skipped entirely: the query charges **zero** delegate time and delegate
/// kernel counters to its own result — the provider of the shared vector
/// accounts for that one-time cost (this is how the batching engine
/// amortizes one delegate pass over a whole same-corpus batch, and how a
/// delegate cache makes repeat traffic on an unchanged corpus skip the
/// `|V|` scan altogether). The shared vector's α, β and subrange count are
/// asserted against the plan; that it was built from *this* `data` is an
/// unchecked caller contract — delegates of different same-length data
/// pass the asserts and silently select over the wrong corpus.
pub fn dr_topk_planned<K: TopKKey>(
    device: &Device,
    data: &[K],
    shared_delegates: Option<&DelegateVector<K>>,
    planned: &PlannedQuery,
) -> DrTopKResult<K> {
    let config = &planned.config;
    let k = planned.k.min(data.len());
    if k == 0 || data.is_empty() {
        return DrTopKResult {
            values: Vec::new(),
            kth_value: K::default(),
            alpha: 0,
            breakdown: PhaseBreakdown::default(),
            workload: WorkloadStats::default(),
            stats: KernelStats::default(),
            time_ms: 0.0,
            stages: StageReport::default(),
        };
    }
    assert!(config.beta >= 1, "beta must be at least 1");
    let alpha = planned.alpha;

    if planned.use_delegates && config.mode.strict_target().is_some() {
        // Recall-targeted approximate path: per-bucket candidates, then the
        // inner top-k — no first top-k, no concatenation, no refill. The
        // path hint does not apply here (the bucket machinery has no radix
        // twin).
        return dr_topk_approx_planned(device, data, shared_delegates, planned);
    }

    // Exact-mode path routing: a pinned hint is obeyed, `Auto` defers to
    // the data-aware modeled crossover on the executing device's profile
    // (a sampled survival probe keeps duplicate-heavy inputs on the
    // delegate side; see `choose_path_sampled`). The crossover also covers
    // plans whose delegate machinery degenerated to one direct inner run —
    // since the sampled filter made the radix path a single input scan
    // plus O(k), it can beat even that at large k. A provided shared
    // delegate vector pins the delegate path — its construction is already
    // paid for, so escaping to radix would only waste it.
    if shared_delegates.is_none()
        && (config.path == PathHint::Radix
            || config.path.resolve_for(data, k, device.spec()) == ChosenPath::Radix)
    {
        return radix_dr_topk(device, data, k, config);
    }

    if !planned.use_delegates {
        // Fallback: the inner algorithm runs directly on the input (a
        // one-stage graph). The workload statistics report the fallback
        // honestly: no delegate vector, no concatenation, one effective
        // subrange.
        let mut graph: StageGraph<'_, Mutex<Option<TopKResult<K>>>> = StageGraph::new();
        graph.add(StageKind::SecondTopK, Resource::Compute(0), &[], |slot| {
            let inner = config.inner.run(device, data, k);
            let outcome = StageOutcome {
                stats: inner.stats,
                time_ms: inner.time_ms,
            };
            *slot.lock().unwrap() = Some(inner);
            outcome
        });
        let slot = Mutex::new(None);
        let report = graph.execute(&slot);
        let inner = slot.into_inner().unwrap().expect("the fallback stage ran");
        return DrTopKResult {
            kth_value: inner.kth_value,
            alpha,
            breakdown: report.phase_breakdown(),
            workload: WorkloadStats {
                input_len: data.len(),
                delegate_vector_len: 0,
                concatenated_len: 0,
                num_subranges: 1,
                fully_taken_subranges: 0,
                second_topk_skipped: false,
                fell_back: true,
            },
            stats: report.stats(),
            time_ms: report.makespan_ms,
            values: inner.values,
            stages: report,
        };
    }

    if let Some(shared) = shared_delegates {
        assert_eq!(
            shared.subrange_size,
            1usize << alpha,
            "shared delegate vector was built with a different alpha"
        );
        assert_eq!(
            shared.beta, config.beta,
            "shared delegate vector was built with a different beta"
        );
        assert_eq!(
            shared.num_subranges,
            data.len().div_ceil(shared.subrange_size),
            "shared delegate vector does not cover this input"
        );
    }

    // The exact pipeline as a stage graph: one stage per paper phase, all
    // on this device's compute queue, chained by their buffer dependencies.
    // Buffers travel through the context (a single mutex: every stage lives
    // on one compute queue, so the lock is never contended); the executor
    // owns all timing.
    struct ExactCtx<K: TopKKey> {
        built: Option<DelegateVector<K>>,
        first: Option<FirstTopK<K>>,
        concatenated: Option<Concatenated<K>>,
        second_skipped: bool,
        values: Vec<K>,
        kth_value: K,
    }
    fn delegates_of<'c, K: TopKKey>(
        ctx: &'c ExactCtx<K>,
        shared: Option<&'c DelegateVector<K>>,
    ) -> &'c DelegateVector<K> {
        shared
            .or(ctx.built.as_ref())
            .expect("delegate vector available once phase 1 ran")
    }

    let mut graph: StageGraph<'_, Mutex<ExactCtx<K>>> = StageGraph::new();
    let mut deps = Vec::new();
    // Phase 1: delegate vector construction — the stage exists only when
    // the caller did not supply a shared vector (a shared pass's one-time
    // construction cost is accounted by its provider, not per query).
    if shared_delegates.is_none() {
        let built_id = graph.add(
            StageKind::DelegateConstruction,
            Resource::Compute(0),
            &[],
            move |ctx: &Mutex<ExactCtx<K>>| {
                let built =
                    build_delegate_vector(device, data, alpha, config.beta, config.construction);
                let outcome = StageOutcome {
                    stats: built.stats,
                    time_ms: built.time_ms,
                };
                ctx.lock().unwrap().built = Some(built);
                outcome
            },
        );
        deps.push(built_id);
    }

    // Phase 2: first top-k on the delegate vector.
    let first_id = graph.add(
        StageKind::FirstTopK,
        Resource::Compute(0),
        &deps,
        move |ctx: &Mutex<ExactCtx<K>>| {
            let mut guard = ctx.lock().unwrap();
            let first = first_topk(
                device,
                delegates_of(&guard, shared_delegates),
                k,
                config.resolve_skip_last(),
            );
            let outcome = StageOutcome {
                stats: first.stats,
                time_ms: first.time_ms,
            };
            guard.first = Some(first);
            outcome
        },
    );

    // Phase 3: concatenation (Rule 1/3 subrange selection + Rule 2 filter).
    let concat_id = graph.add(
        StageKind::Concatenate,
        Resource::Compute(0),
        &[first_id],
        move |ctx: &Mutex<ExactCtx<K>>| {
            let mut guard = ctx.lock().unwrap();
            let subrange_size = delegates_of(&guard, shared_delegates).subrange_size;
            let first = guard.first.as_ref().expect("first top-k ran");
            let concatenated = concatenate(
                device,
                data,
                subrange_size,
                &first.fully_taken_subranges,
                &first.partial_delegate_values,
                first.threshold,
                config.filtering,
            );
            let outcome = StageOutcome {
                stats: concatenated.stats,
                time_ms: concatenated.time_ms,
            };
            guard.concatenated = Some(concatenated);
            outcome
        },
    );

    // Phase 4: second top-k on the concatenated vector — a zero-cost
    // stage when no subrange was fully taken and the taken delegates alone
    // already answer the query exactly (Figure 8b).
    graph.add(
        StageKind::SecondTopK,
        Resource::Compute(0),
        &[concat_id],
        move |ctx: &Mutex<ExactCtx<K>>| {
            let mut guard = ctx.lock().unwrap();
            let ctx = &mut *guard;
            let first = ctx.first.as_ref().expect("first top-k ran");
            let concatenated = ctx.concatenated.as_ref().expect("concatenation ran");
            ctx.second_skipped = first.fully_taken_subranges.is_empty()
                && first.exact_threshold
                && concatenated.elements.len() == k;
            if ctx.second_skipped {
                let mut vals = concatenated.elements.clone();
                vals.sort_unstable_by_key(|v| Reverse(v.to_bits()));
                ctx.kth_value = vals.last().copied().unwrap_or_default();
                ctx.values = vals;
                StageOutcome::default()
            } else {
                let inner = config.inner.run(device, &concatenated.elements, k);
                let outcome = StageOutcome {
                    stats: inner.stats,
                    time_ms: inner.time_ms,
                };
                ctx.values = inner.values;
                ctx.kth_value = inner.kth_value;
                outcome
            }
        },
    );

    let ctx = Mutex::new(ExactCtx {
        built: None,
        first: None,
        concatenated: None,
        second_skipped: false,
        values: Vec::new(),
        kth_value: K::default(),
    });
    let report = graph.execute(&ctx);
    let mut ctx = ctx.into_inner().unwrap();

    let delegates = delegates_of(&ctx, shared_delegates);
    let first = ctx.first.as_ref().expect("first top-k ran");
    let concatenated = ctx.concatenated.as_ref().expect("concatenation ran");
    let workload = WorkloadStats {
        input_len: data.len(),
        delegate_vector_len: delegates.len(),
        concatenated_len: concatenated.elements.len(),
        num_subranges: delegates.num_subranges,
        fully_taken_subranges: first.fully_taken_subranges.len(),
        second_topk_skipped: ctx.second_skipped,
        fell_back: false,
    };

    DrTopKResult {
        values: std::mem::take(&mut ctx.values),
        kth_value: ctx.kth_value,
        alpha,
        time_ms: report.makespan_ms,
        breakdown: report.phase_breakdown(),
        workload,
        stats: report.stats(),
        stages: report,
    }
}

/// Convenience wrapper around [`dr_topk_with_stats`] (same result type; the
/// name mirrors the two-function API described in the README quickstart).
///
/// ```
/// use drtopk_core::{dr_topk, DrTopKConfig};
/// use gpu_sim::{Device, DeviceSpec};
///
/// let device = Device::new(DeviceSpec::v100s());
/// let data: Vec<u32> = (0..50_000u32).map(|x| x.wrapping_mul(2654435761)).collect();
/// let result = dr_topk(&device, &data, 5, &DrTopKConfig::default());
/// assert_eq!(result.values, topk_baselines::reference_topk(&data, 5));
/// assert_eq!(result.kth_value, result.values[4]);
/// ```
pub fn dr_topk<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
) -> DrTopKResult<K> {
    dr_topk_with_stats(device, data, k, config)
}

/// Recall-targeted approximate top-k: the same signature as [`dr_topk`]
/// plus an expected-recall floor in `(0, 1]`.
///
/// Equivalent to running [`dr_topk`] with
/// [`DrTopKConfig::approx`]`(target_recall)` layered over `config`: the
/// input is split into buckets, the top-`k'` candidates of each bucket are
/// extracted (with `k'` sized by the analytic recall model of
/// [`crate::approx`]), and the inner algorithm selects the top-k of the
/// candidates — the exact pipeline's concatenation and refill passes never
/// run. A target of 1.0 runs the exact pipeline unchanged.
///
/// ```
/// use drtopk_core::{dr_topk_approx, measured_recall, DrTopKConfig};
/// use gpu_sim::{Device, DeviceSpec};
///
/// let device = Device::new(DeviceSpec::v100s());
/// let data: Vec<u32> = (0..1u32 << 16).map(|x| x.wrapping_mul(2654435761)).collect();
///
/// let got = dr_topk_approx(&device, &data, 64, 0.95, &DrTopKConfig::default());
/// assert_eq!(got.values.len(), 64);
///
/// let exact = topk_baselines::reference_topk(&data, 64);
/// assert!(measured_recall(&got.values, &exact) >= 0.9);
/// // the second stage ran on a candidate vector, not the input
/// assert!(got.workload.delegate_vector_len < data.len() / 4);
/// assert_eq!(got.workload.concatenated_len, 0);
/// ```
pub fn dr_topk_approx<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    target_recall: f64,
    config: &DrTopKConfig,
) -> DrTopKResult<K> {
    let cfg = DrTopKConfig {
        mode: Mode::Approx {
            target_recall: RecallTarget::from_fraction(target_recall),
        },
        ..config.clone()
    };
    dr_topk_with_stats(device, data, k, &cfg)
}

/// Top-k **smallest**: the k minimum elements of `data`, ascending
/// (closest-first for distance data).
///
/// This is the natural entry point for k-nearest-neighbour search over
/// native distances (f32 squared L2, etc.) — no caller-side bit flipping is
/// needed. Internally the input is *reinterpreted* (not copied) as a slice
/// of the order-reversing [`Desc`] key adapter, so the cost is identical to
/// [`dr_topk`].
///
/// Float caveat (see the NaN policy in [`topk_baselines::key`]): positive
/// NaNs are the *largest* keys in the total order, so a min-query ranks
/// them last — NaN distances can never displace a genuine neighbour.
///
/// ```
/// use drtopk_core::{dr_topk_min, DrTopKConfig};
/// use gpu_sim::{Device, DeviceSpec};
///
/// let device = Device::new(DeviceSpec::v100s());
/// let distances: Vec<f32> = (0..50_000u32)
///     .map(|x| (x.wrapping_mul(2654435761) % 100_000) as f32 * 0.125)
///     .collect();
/// let nearest = dr_topk_min(&device, &distances, 10, &DrTopKConfig::default());
/// assert_eq!(nearest.values, topk_baselines::reference_topk_min(&distances, 10));
/// assert!(nearest.values.windows(2).all(|w| w[0] <= w[1])); // closest first
/// ```
pub fn dr_topk_min<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
    config: &DrTopKConfig,
) -> DrTopKResult<K> {
    dr_topk_with_stats(device, as_desc(data), k, config).into_native()
}

/// Reinterpret a key slice through the order-reversing [`Desc`] adapter,
/// without copying: running any max-machinery over the result answers the
/// corresponding *min* query. This is the one place that relies on the
/// `#[repr(transparent)]` layout of `Desc<K>`; every min-direction path
/// ([`dr_topk_min`], the batching engine) goes through it.
pub fn as_desc<K: TopKKey>(data: &[K]) -> &[Desc<K>] {
    // SAFETY: `Desc<K>` is `#[repr(transparent)]` over `K`, so the slice
    // layouts are identical and the reinterpretation is sound.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<Desc<K>>(), data.len()) }
}

impl<K: TopKKey> DrTopKResult<Desc<K>> {
    /// Unwrap a result computed in [`Desc`] space back to native keys
    /// (ascending order for the caller's smallest-direction query).
    pub fn into_native(self) -> DrTopKResult<K> {
        DrTopKResult {
            values: self.values.into_iter().map(|d| d.0).collect(),
            kth_value: self.kth_value.0,
            alpha: self.alpha,
            breakdown: self.breakdown,
            workload: self.workload,
            stats: self.stats,
            time_ms: self.time_ms,
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use topk_baselines::{reference_topk, reference_topk_min};
    use topk_datagen::Distribution;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn default_config_matches_reference_across_distributions_and_k() {
        let dev = device();
        for dist in Distribution::SYNTHETIC {
            let data = topk_datagen::generate(dist, 1 << 15, 11);
            for &k in &[1usize, 2, 64, 1000, 1 << 12] {
                let got = dr_topk(&dev, &data, k, &DrTopKConfig::default());
                assert_eq!(got.values, reference_topk(&data, k), "{dist} k={k}");
                assert_eq!(got.kth_value, *got.values.last().unwrap());
            }
        }
    }

    #[test]
    fn all_config_variants_are_correct() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 77);
        let k = 333;
        let expected = reference_topk(&data, k);
        let configs = [
            DrTopKConfig::max_delegate_only(),
            DrTopKConfig::with_filtering_only(),
            DrTopKConfig::beta_only(2),
            DrTopKConfig::beta_only(3),
            DrTopKConfig {
                beta: 4,
                ..DrTopKConfig::default()
            },
            DrTopKConfig {
                alpha: Some(6),
                ..DrTopKConfig::default()
            },
            DrTopKConfig {
                skip_last_first_pass: Some(true),
                ..DrTopKConfig::default()
            },
        ];
        for (i, cfg) in configs.iter().enumerate() {
            let got = dr_topk(&dev, &data, k, cfg);
            assert_eq!(got.values, expected, "config #{i}: {cfg:?}");
        }
    }

    #[test]
    fn all_inner_algorithms_are_correct() {
        let dev = device();
        let data = topk_datagen::normal(1 << 14, 5);
        let k = 200;
        let expected = reference_topk(&data, k);
        for inner in InnerAlgorithm::ALL {
            let cfg = DrTopKConfig {
                inner,
                ..DrTopKConfig::default()
            };
            assert_eq!(dr_topk(&dev, &data, k, &cfg).values, expected, "{inner}");
        }
    }

    #[test]
    fn real_world_proxies_are_correct() {
        let dev = device();
        for dist in Distribution::REAL_WORLD {
            let data = topk_datagen::generate(dist, 1 << 13, 3);
            let got = dr_topk(&dev, &data, 128, &DrTopKConfig::default());
            assert_eq!(got.values, reference_topk(&data, 128), "{dist}");
        }
    }

    #[test]
    fn generic_keys_match_reference() {
        let dev = device();
        let signed: Vec<i64> = topk_datagen::uniform(1 << 14, 23)
            .into_iter()
            .map(|x| x as i64 - (1 << 31))
            .collect();
        assert_eq!(
            dr_topk(&dev, &signed, 100, &DrTopKConfig::default()).values,
            reference_topk(&signed, 100)
        );
        let floats: Vec<f32> = topk_datagen::uniform(1 << 14, 29)
            .into_iter()
            .map(|x| (x as f32 / u32::MAX as f32) * 2000.0 - 1000.0)
            .collect();
        for inner in InnerAlgorithm::ALL {
            let cfg = DrTopKConfig {
                inner,
                ..DrTopKConfig::default()
            };
            assert_eq!(
                dr_topk(&dev, &floats, 64, &cfg).values,
                reference_topk(&floats, 64),
                "{inner} over f32"
            );
        }
    }

    #[test]
    fn dr_topk_min_returns_smallest_ascending() {
        let dev = device();
        let distances: Vec<f32> = topk_datagen::uniform(1 << 14, 31)
            .into_iter()
            .map(|x| (x % 100_000) as f32 * 0.125)
            .collect();
        let got = dr_topk_min(&dev, &distances, 50, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk_min(&distances, 50));
        assert_eq!(got.kth_value, *got.values.last().unwrap());
        // u32 keys work through the same entry point
        let ints = topk_datagen::uniform(1 << 13, 5);
        let got = dr_topk_min(&dev, &ints, 17, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk_min(&ints, 17));
    }

    #[test]
    fn dr_topk_min_ranks_nan_distances_last() {
        let dev = device();
        let mut distances: Vec<f32> = (0..4096).map(|i| 1.0 + (i % 977) as f32).collect();
        distances[7] = f32::NAN;
        distances[999] = f32::NAN;
        let got = dr_topk_min(&dev, &distances, 64, &DrTopKConfig::default());
        assert!(
            got.values.iter().all(|v| !v.is_nan()),
            "NaN distances must never displace genuine neighbours"
        );
        assert_eq!(got.values, reference_topk_min(&distances, 64));
    }

    #[test]
    fn workload_reduction_is_substantial() {
        let dev = device();
        let n = 1 << 18;
        let data = topk_datagen::uniform(n, 9);
        let got = dr_topk(&dev, &data, 128, &DrTopKConfig::default());
        let frac = got.workload.workload_fraction();
        assert!(
            frac < 0.10,
            "delegate+concatenated should be a small fraction of |V|, got {frac}"
        );
        assert_eq!(got.workload.input_len, n);
        assert!(got.workload.delegate_vector_len > 0);
        assert!(got.workload.num_subranges > 1);
        assert!(!got.workload.fell_back);
    }

    #[test]
    fn filtering_shrinks_the_concatenated_vector() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 16, 31);
        let k = 512;
        let without = dr_topk(&dev, &data, k, &DrTopKConfig::max_delegate_only());
        let with = dr_topk(&dev, &data, k, &DrTopKConfig::with_filtering_only());
        assert_eq!(without.values, with.values);
        assert!(
            with.workload.concatenated_len < without.workload.concatenated_len,
            "filtering: {} vs {}",
            with.workload.concatenated_len,
            without.workload.concatenated_len
        );
    }

    #[test]
    fn beta_delegate_reduces_concatenation_further() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 16, 13);
        let k = 512;
        let beta1 = dr_topk(&dev, &data, k, &DrTopKConfig::with_filtering_only());
        let beta2 = dr_topk(&dev, &data, k, &DrTopKConfig::default());
        assert_eq!(beta1.values, beta2.values);
        // β = 2 lets Dr. Top-k skip subranges whose second delegate did not
        // qualify, so fewer subranges are fully taken.
        assert!(
            beta2.workload.fully_taken_subranges <= beta1.workload.fully_taken_subranges,
            "beta2 {} vs beta1 {}",
            beta2.workload.fully_taken_subranges,
            beta1.workload.fully_taken_subranges
        );
    }

    #[test]
    fn tiny_inputs_fall_back_to_inner_algorithm() {
        let dev = device();
        let data: Vec<u32> = (0..100u32).collect();
        let got = dr_topk(&dev, &data, 50, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, 50));
        let got = dr_topk(&dev, &data, 100, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, 100));
        assert!(dr_topk(&dev, &data, 0, &DrTopKConfig::default())
            .values
            .is_empty());
        assert!(dr_topk::<u32>(&dev, &[], 5, &DrTopKConfig::default())
            .values
            .is_empty());
    }

    #[test]
    fn fallback_stats_are_honest() {
        // Regression: the fallback path used to report
        // `concatenated_len = |V|` with `delegate_vector_len = 0`, making
        // `workload_fraction()` 1.0 while also claiming `num_subranges: 1`
        // against a resolved α that implies many subranges.
        let dev = device();
        let data: Vec<u32> = (0..100u32).collect();
        let got = dr_topk(&dev, &data, 50, &DrTopKConfig::default());
        let w = got.workload;
        assert!(w.fell_back, "k = |V|/2 on a tiny input must fall back");
        assert!(
            w.workload_fraction() <= 1.0,
            "fallback workload fraction {} must stay ≤ 1.0",
            w.workload_fraction()
        );
        assert_eq!(w.delegate_vector_len, 0, "no delegate vector was built");
        assert_eq!(w.concatenated_len, 0, "no concatenation happened");
        assert_eq!(w.num_subranges, 1);
        assert_eq!(w.fully_taken_subranges, 0);
        assert_eq!(w.input_len, data.len());
        // the non-fallback path keeps reporting real workloads
        let big = topk_datagen::uniform(1 << 15, 3);
        let got = dr_topk(&dev, &big, 64, &DrTopKConfig::default());
        assert!(!got.workload.fell_back);
        assert!(got.workload.delegate_vector_len > 0);
    }

    #[test]
    fn auto_config_pins_the_rule4_alpha() {
        // `auto(n, k)` must wire n and k into an eagerly resolved Rule 4 α
        // identical to what the lazy default would compute.
        let n = 1 << 20;
        let k = 1 << 7;
        let auto = DrTopKConfig::auto(n, k);
        let lazy = DrTopKConfig::default();
        assert_eq!(auto.alpha, Some(lazy.resolve_alpha(n, k)));
        assert_eq!(auto.resolve_alpha(n, k), lazy.resolve_alpha(n, k));
        // the pinned α is used even if the input later differs in size
        assert_eq!(auto.resolve_alpha(1 << 10, 1), auto.alpha.unwrap());
        // everything else matches the recommended defaults
        assert_eq!(auto.beta, lazy.beta);
        assert!(auto.filtering);
        // degenerate sizes are clamped, not panicking
        let tiny = DrTopKConfig::auto(0, 0);
        assert!(tiny.alpha.is_some());
        let dev = device();
        let data = topk_datagen::uniform(n, 41);
        let got = dr_topk(&dev, &data, k, &auto);
        assert_eq!(got.alpha, auto.alpha.unwrap());
        assert_eq!(got.values, reference_topk(&data, k));
    }

    #[test]
    fn duplicate_heavy_inputs_are_exact() {
        let dev = device();
        let mut data = vec![7u32; 1 << 14];
        for (i, x) in data.iter_mut().enumerate().take(100) {
            *x = 1000 + i as u32;
        }
        let got = dr_topk(&dev, &data, 150, &DrTopKConfig::default());
        assert_eq!(got.values, reference_topk(&data, 150));
    }

    #[test]
    fn breakdown_and_time_are_consistent() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 16, 2);
        let got = dr_topk(&dev, &data, 256, &DrTopKConfig::default());
        let b = got.breakdown;
        assert!(b.delegate_ms > 0.0);
        assert!(b.first_topk_ms > 0.0);
        assert!((b.total_ms() - got.time_ms).abs() < 1e-9);
        assert!(got.stats.global_load_transactions > 0);
    }

    #[test]
    fn planned_query_splits_dr_topk_exactly() {
        // dr_topk_with_stats == plan + execute: same values, same breakdown,
        // same counters — the seam adds nothing and loses nothing.
        let dev = device();
        let data = topk_datagen::uniform(1 << 15, 17);
        for k in [1usize, 64, 1 << 10] {
            let cfg = DrTopKConfig::default();
            let planned = PlannedQuery::plan(data.len(), k, &cfg);
            let via_seam = dr_topk_planned(&dev, &data, None, &planned);
            let direct = dr_topk_with_stats(&dev, &data, k, &cfg);
            assert_eq!(via_seam.values, direct.values, "k={k}");
            assert_eq!(via_seam.alpha, direct.alpha);
            assert_eq!(via_seam.stats, direct.stats);
            assert_eq!(via_seam.workload, direct.workload);
            assert!((via_seam.time_ms - direct.time_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn planned_query_decides_fallback_like_the_pipeline() {
        let cfg = DrTopKConfig::default();
        // tiny input → fallback
        assert!(!PlannedQuery::plan(100, 50, &cfg).use_delegates);
        // k == n → fallback
        assert!(!PlannedQuery::plan(1 << 14, 1 << 14, &cfg).use_delegates);
        // k == 0 → fallback (degenerate, returns empty anyway)
        assert!(!PlannedQuery::plan(1 << 14, 0, &cfg).use_delegates);
        // ordinary query → delegates
        let p = PlannedQuery::plan(1 << 20, 128, &cfg);
        assert!(p.use_delegates);
        // α is pinned into the returned config, so re-planning is free
        assert_eq!(p.config.alpha, Some(p.alpha));
        assert_eq!(p.k, 128);
    }

    #[test]
    fn shared_delegates_produce_identical_values_with_zero_delegate_cost() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 15, 23);
        let cfg = DrTopKConfig::default();
        // one shared delegate pass, sized by the largest k of the "batch"
        let ks = [16usize, 128, 1000];
        let k_max = 1000;
        let group = PlannedQuery::plan(data.len(), k_max, &cfg);
        let delegates = build_delegate_vector(&dev, &data, group.alpha, cfg.beta, cfg.construction);
        for k in ks {
            // per-query plan under the group's pinned α
            let planned = PlannedQuery::plan(data.len(), k, &group.config);
            let shared = dr_topk_planned(&dev, &data, Some(&delegates), &planned);
            assert_eq!(shared.values, reference_topk(&data, k), "k={k}");
            // the shared pass charges no delegate time/bytes to the query
            assert_eq!(shared.breakdown.delegate_ms, 0.0);
            // but the first-top-k workload is still reported
            assert_eq!(shared.workload.delegate_vector_len, delegates.len());
            // and the query's own counters exclude the |V|-scan construction
            let independent = dr_topk_with_stats(&dev, &data, k, &group.config);
            assert_eq!(shared.values, independent.values);
            assert!(
                shared.stats.global_loaded_bytes < independent.stats.global_loaded_bytes,
                "shared-delegate query must not re-pay the |V| construction scan"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn shared_delegates_with_wrong_alpha_panic() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 12, 3);
        let delegates = build_delegate_vector(&dev, &data, 6, 2, ConstructionMethod::Auto);
        let planned = PlannedQuery::plan(
            data.len(),
            32,
            &DrTopKConfig {
                alpha: Some(7),
                ..DrTopKConfig::default()
            },
        );
        dr_topk_planned(&dev, &data, Some(&delegates), &planned);
    }

    #[test]
    fn explicit_alpha_is_respected() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 2);
        let got = dr_topk(
            &dev,
            &data,
            64,
            &DrTopKConfig {
                alpha: Some(7),
                ..DrTopKConfig::default()
            },
        );
        assert_eq!(got.alpha, 7);
        assert_eq!(got.workload.num_subranges, (1 << 14) / (1 << 7));
    }
}
