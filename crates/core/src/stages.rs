//! The stage-graph IR and executor — the single execution spine behind
//! every Dr. Top-k entry point.
//!
//! Historically the paper's pipeline (delegate construction → first top-k →
//! concatenation → second top-k) was hardwired as a sequence of calls inside
//! the pipeline module, the approximate mode forked its own two-stage
//! variant, and the distributed runner interleaved modeled host→device
//! reloads with compute *serially*. This module replaces all three with one
//! explicit representation:
//!
//! * a stage ([`StageKind`] + [`Resource`] + a work closure) is one
//!   schedulable piece of work — a paper phase
//!   ([`StageKind::DelegateConstruction`], [`StageKind::FirstTopK`], …), the
//!   approximate mode's bucket-top-k′ candidate pass, or an out-of-core
//!   chunk load — bound to a [`Resource`] (a device's compute queue or a
//!   transfer lane) and to the stages it depends on;
//! * a [`StageGraph`] collects stages plus a caller-owned context the stage
//!   closures read and write their buffers through;
//! * [`StageGraph::execute`] runs the stages (host-side, in dependency
//!   order) and *schedules* them in modeled time on per-resource
//!   [`gpu_sim::Stream`]s: stages on the same resource serialize, stages on
//!   different resources overlap as far as their dependencies allow —
//!   which is exactly how double-buffered chunked ingestion hides
//!   host→device transfers behind compute.
//!
//! The executor is also the one instrumentation point: the returned
//! [`StageReport`] carries every executed stage's interval, the modeled
//! makespan, the compute/transfer split, the overlap efficiency, and a
//! [`PhaseBreakdown`] derived from the stage kinds — the pipeline,
//! approximate, distributed and engine reports are all views of it.

use gpu_sim::{KernelStats, StreamSet};

use crate::pipeline::PhaseBreakdown;

/// Which paper phase (or infrastructure step) a stage implements.
///
/// The mapping from the paper's Figure 3(b) phases (and the extensions this
/// reproduction adds) to stage kinds is one-to-one; `docs/PAPER_MAP.md`
/// tabulates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Delegate vector construction (Sections 4.1/5.3) — the β-delegate
    /// `|V|`-scan.
    DelegateConstruction,
    /// First top-k on the delegate vector (Section 4.2).
    FirstTopK,
    /// Rule 1–3 subrange concatenation with Rule 2 filtering (Section 4.3).
    Concatenate,
    /// Second top-k on the concatenated vector (Section 4.4) — also the
    /// direct inner-algorithm run on the fallback path.
    SecondTopK,
    /// The approximate mode's per-bucket top-k′ candidate pass (the
    /// delegate kernels run with β = k′; replaces phases 2–4 entirely).
    BucketTopKPrime,
    /// Host→device ingestion of one out-of-core sub-vector chunk.
    ChunkLoad,
    /// One chunk's whole local Dr. Top-k pipeline in the distributed
    /// runner (attributed to selection compute in coarse breakdowns; the
    /// distributed result refines it from the per-chunk results).
    LocalTopK,
    /// Per-device merge of several chunks' local top-k's (Section 5.4).
    LocalMerge,
    /// Asynchronous gather of every device's k winners to the primary
    /// (Section 5.4).
    Gather,
    /// Final top-k over the `#devices × k` candidates on the primary.
    FinalTopK,
}

impl StageKind {
    /// Whether stages of this kind represent data movement rather than
    /// kernel execution.
    pub fn is_transfer(self) -> bool {
        matches!(self, StageKind::ChunkLoad | StageKind::Gather)
    }

    /// Display name used by reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::DelegateConstruction => "delegate_construction",
            StageKind::FirstTopK => "first_topk",
            StageKind::Concatenate => "concatenate",
            StageKind::SecondTopK => "second_topk",
            StageKind::BucketTopKPrime => "bucket_topk_prime",
            StageKind::ChunkLoad => "chunk_load",
            StageKind::LocalTopK => "local_topk",
            StageKind::LocalMerge => "local_merge",
            StageKind::Gather => "gather",
            StageKind::FinalTopK => "final_topk",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A modeled transfer lane (one independent copy queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferLane {
    /// Host memory → device `dst` (each device has its own PCIe lane, as
    /// the Table 2 reload model assumes).
    HostToDevice(usize),
    /// Device `src` → host memory.
    DeviceToHost(usize),
    /// The device↔device interconnect used by the asynchronous gather.
    Interconnect,
}

/// The hardware queue a stage occupies. Stages tagged with the same
/// resource serialize in modeled time; stages on different resources
/// overlap as far as their dependencies allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The compute queue of one device (index within the cluster; 0 for
    /// single-device graphs).
    Compute(usize),
    /// A transfer lane.
    Transfer(TransferLane),
}

/// What executing one stage produced: the kernel counters it accumulated
/// and its modeled duration. Buffers travel through the graph's context,
/// not through the outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageOutcome {
    /// Counters accumulated by the stage's kernels (empty for pure
    /// transfers).
    pub stats: KernelStats,
    /// Modeled duration of the stage in milliseconds.
    pub time_ms: f64,
}

/// Handle to a stage within its graph, used to declare dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(usize);

struct StageNode<'g, C> {
    kind: StageKind,
    label: String,
    resource: Resource,
    deps: Vec<usize>,
    run: Box<dyn FnOnce(&mut C) -> StageOutcome + 'g>,
}

/// A DAG of [`Stage`](StageKind)s over a caller-owned context `C`.
///
/// Stages must be added in a topological order (every dependency's
/// [`StageId`] comes from an earlier `add` call — enforced by construction,
/// since ids are only handed out by [`StageGraph::add`]). Stage closures
/// receive `&mut C` and communicate buffers through it; the closure's
/// return value is only the stage's instrumentation.
pub struct StageGraph<'g, C> {
    stages: Vec<StageNode<'g, C>>,
}

impl<'g, C> Default for StageGraph<'g, C> {
    fn default() -> Self {
        StageGraph::new()
    }
}

impl<'g, C> StageGraph<'g, C> {
    /// An empty graph.
    pub fn new() -> Self {
        StageGraph { stages: Vec::new() }
    }

    /// Number of stages added so far.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stage has been added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Add a stage with an explicit display label. `deps` are the stages
    /// whose completion this stage must wait for *across* resources;
    /// same-resource ordering is implicit (a resource is an in-order
    /// queue).
    pub fn add_labeled(
        &mut self,
        kind: StageKind,
        label: impl Into<String>,
        resource: Resource,
        deps: &[StageId],
        run: impl FnOnce(&mut C) -> StageOutcome + 'g,
    ) -> StageId {
        let id = self.stages.len();
        self.stages.push(StageNode {
            kind,
            label: label.into(),
            resource,
            deps: deps.iter().map(|d| d.0).collect(),
            run: Box::new(run),
        });
        StageId(id)
    }

    /// Add a stage labeled by its kind.
    pub fn add(
        &mut self,
        kind: StageKind,
        resource: Resource,
        deps: &[StageId],
        run: impl FnOnce(&mut C) -> StageOutcome + 'g,
    ) -> StageId {
        self.add_labeled(kind, kind.name(), resource, deps, run)
    }

    /// Execute the graph.
    ///
    /// Host-side, stages run serially in insertion (= topological) order;
    /// in *modeled* time each stage is scheduled on its resource's stream:
    /// it starts at the later of (a) the resource's cursor and (b) its
    /// dependencies' completion events, exactly like a kernel launched on a
    /// CUDA stream after `cudaStreamWaitEvent`s.
    pub fn execute(self, ctx: &mut C) -> StageReport {
        let mut streams: StreamSet<Resource> = StreamSet::new();
        let mut finished: Vec<gpu_sim::Event> = Vec::with_capacity(self.stages.len());
        let mut executed: Vec<ExecutedStage> = Vec::with_capacity(self.stages.len());
        for node in self.stages {
            let outcome = (node.run)(ctx);
            let stream = streams.stream_mut(node.resource);
            for &dep in &node.deps {
                stream.wait_event(&finished[dep]);
            }
            let start_ms = stream.cursor_ms();
            let done = stream.launch(outcome.time_ms);
            executed.push(ExecutedStage {
                kind: node.kind,
                label: node.label,
                resource: node.resource,
                start_ms,
                end_ms: done.ready_at_ms(),
                stats: outcome.stats,
            });
            finished.push(done);
        }
        StageReport {
            makespan_ms: streams.makespan_ms(),
            stages: executed,
        }
    }
}

/// One stage as it was actually scheduled.
#[derive(Debug, Clone)]
pub struct ExecutedStage {
    /// The stage's kind.
    pub kind: StageKind,
    /// Display label (defaults to the kind's name; chunked stages carry
    /// their chunk index).
    pub label: String,
    /// The resource the stage occupied.
    pub resource: Resource,
    /// Modeled start time, ms.
    pub start_ms: f64,
    /// Modeled completion time, ms.
    pub end_ms: f64,
    /// Kernel counters the stage accumulated.
    pub stats: KernelStats,
}

impl ExecutedStage {
    /// The stage's modeled duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// The executor's instrumentation: every scheduled stage plus the modeled
/// makespan. All per-phase, compute-vs-transfer and overlap reporting in
/// the crate (and the engine) derives from this one structure.
#[derive(Debug, Clone, Default)]
pub struct StageReport {
    /// Every executed stage, in execution order.
    pub stages: Vec<ExecutedStage>,
    /// Modeled end-to-end time: the latest stage completion across all
    /// resources.
    pub makespan_ms: f64,
}

impl StageReport {
    /// Sum of the durations of all compute stages.
    pub fn compute_ms(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| matches!(s.resource, Resource::Compute(_)))
            .map(ExecutedStage::duration_ms)
            .sum()
    }

    /// Sum of the durations of all transfer stages.
    pub fn transfer_ms(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| matches!(s.resource, Resource::Transfer(_)))
            .map(ExecutedStage::duration_ms)
            .sum()
    }

    /// What the graph would cost with no overlap at all: the sum of every
    /// stage's duration.
    pub fn serial_ms(&self) -> f64 {
        self.stages.iter().map(ExecutedStage::duration_ms).sum()
    }

    /// Modeled time hidden by overlap: `serial_ms − makespan_ms` (0 for a
    /// fully serial schedule).
    pub fn hidden_ms(&self) -> f64 {
        (self.serial_ms() - self.makespan_ms).max(0.0)
    }

    /// Fraction of the serialized cost hidden by overlap:
    /// `1 − makespan / serial`, in `[0, 1)`; 0 for an empty or fully
    /// serial schedule.
    pub fn overlap_efficiency(&self) -> f64 {
        let serial = self.serial_ms();
        if serial <= 0.0 {
            return 0.0;
        }
        (1.0 - self.makespan_ms / serial).max(0.0)
    }

    /// Kernel counters summed over every stage.
    pub fn stats(&self) -> KernelStats {
        self.stages.iter().map(|s| s.stats).sum()
    }

    /// Derive the paper-phase breakdown from the stage kinds:
    /// [`StageKind::DelegateConstruction`] and
    /// [`StageKind::BucketTopKPrime`] charge delegate time,
    /// [`StageKind::FirstTopK`] / [`StageKind::Concatenate`] /
    /// [`StageKind::SecondTopK`] their namesakes, every selection stage of
    /// the distributed runner ([`StageKind::LocalTopK`],
    /// [`StageKind::LocalMerge`], [`StageKind::FinalTopK`]) second-top-k
    /// time, and the transfer kinds ([`StageKind::ChunkLoad`],
    /// [`StageKind::Gather`]) the breakdown's transfer slot.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let mut b = PhaseBreakdown::default();
        for s in &self.stages {
            let d = s.duration_ms();
            match s.kind {
                StageKind::DelegateConstruction | StageKind::BucketTopKPrime => {
                    b.delegate_ms += d;
                }
                StageKind::FirstTopK => b.first_topk_ms += d,
                StageKind::Concatenate => b.concat_ms += d,
                StageKind::SecondTopK
                | StageKind::LocalTopK
                | StageKind::LocalMerge
                | StageKind::FinalTopK => b.second_topk_ms += d,
                StageKind::ChunkLoad | StageKind::Gather => b.transfer_ms += d,
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(ms: f64) -> StageOutcome {
        StageOutcome {
            stats: KernelStats::default(),
            time_ms: ms,
        }
    }

    #[test]
    fn serial_chain_on_one_resource_sums() {
        let mut g: StageGraph<'_, Vec<&'static str>> = StageGraph::new();
        let a = g.add(
            StageKind::DelegateConstruction,
            Resource::Compute(0),
            &[],
            |log| {
                log.push("delegate");
                outcome(2.0)
            },
        );
        let b = g.add(StageKind::FirstTopK, Resource::Compute(0), &[a], |log| {
            log.push("first");
            outcome(1.0)
        });
        g.add(StageKind::SecondTopK, Resource::Compute(0), &[b], |log| {
            log.push("second");
            outcome(0.5)
        });
        let mut log = Vec::new();
        let report = g.execute(&mut log);
        assert_eq!(log, vec!["delegate", "first", "second"]);
        assert_eq!(report.makespan_ms, 3.5);
        assert_eq!(report.serial_ms(), 3.5);
        assert_eq!(report.overlap_efficiency(), 0.0);
        assert_eq!(report.compute_ms(), 3.5);
        assert_eq!(report.transfer_ms(), 0.0);
        let b = report.phase_breakdown();
        assert_eq!(b.delegate_ms, 2.0);
        assert_eq!(b.first_topk_ms, 1.0);
        assert_eq!(b.second_topk_ms, 0.5);
        assert_eq!(b.transfer_ms, 0.0);
    }

    #[test]
    fn transfers_overlap_compute_across_resources() {
        // load0 [0,3) ∥ nothing; compute0 [3,7); load1 [3,6) overlaps
        // compute0; compute1 [7,11). Makespan 11 vs serial 14.
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let lane = Resource::Transfer(TransferLane::HostToDevice(0));
        let l0 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(3.0));
        let _c0 = g.add(StageKind::LocalTopK, Resource::Compute(0), &[l0], |_| {
            outcome(4.0)
        });
        let l1 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(3.0));
        g.add(StageKind::LocalTopK, Resource::Compute(0), &[l1], |_| {
            outcome(4.0)
        });
        let report = g.execute(&mut ());
        assert_eq!(report.makespan_ms, 11.0);
        assert_eq!(report.serial_ms(), 14.0);
        assert!((report.hidden_ms() - 3.0).abs() < 1e-12);
        assert!((report.overlap_efficiency() - 3.0 / 14.0).abs() < 1e-12);
        assert_eq!(report.compute_ms(), 8.0);
        assert_eq!(report.transfer_ms(), 6.0);
        assert_eq!(report.phase_breakdown().transfer_ms, 6.0);
        // the second load started while compute 0 was still running
        assert!(report.stages[2].start_ms < report.stages[1].end_ms);
    }

    #[test]
    fn same_resource_stages_serialize_without_explicit_deps() {
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let lane = Resource::Transfer(TransferLane::HostToDevice(0));
        g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(2.0));
        g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(2.0));
        let report = g.execute(&mut ());
        assert_eq!(report.stages[1].start_ms, 2.0);
        assert_eq!(report.makespan_ms, 4.0);
    }

    #[test]
    fn empty_graph_reports_zeroes() {
        let g: StageGraph<'_, ()> = StageGraph::new();
        assert!(g.is_empty());
        let report = g.execute(&mut ());
        assert!(report.stages.is_empty());
        assert_eq!(report.makespan_ms, 0.0);
        assert_eq!(report.overlap_efficiency(), 0.0);
        assert!(report.stats().is_empty());
        assert_eq!(report.phase_breakdown(), PhaseBreakdown::default());
    }

    #[test]
    fn labels_and_kinds_are_reported() {
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        g.add_labeled(
            StageKind::ChunkLoad,
            "chunk 3 load",
            Resource::Transfer(TransferLane::HostToDevice(1)),
            &[],
            |_| outcome(1.0),
        );
        let report = g.execute(&mut ());
        assert_eq!(report.stages[0].label, "chunk 3 load");
        assert_eq!(report.stages[0].kind, StageKind::ChunkLoad);
        assert!(report.stages[0].kind.is_transfer());
        assert_eq!(
            format!("{}", StageKind::BucketTopKPrime),
            "bucket_topk_prime"
        );
    }
}
