//! The stage-graph IR and executor — the single execution spine behind
//! every Dr. Top-k entry point.
//!
//! Historically the paper's pipeline (delegate construction → first top-k →
//! concatenation → second top-k) was hardwired as a sequence of calls inside
//! the pipeline module, the approximate mode forked its own two-stage
//! variant, and the distributed runner interleaved modeled host→device
//! reloads with compute *serially*. This module replaces all three with one
//! explicit representation:
//!
//! * a stage ([`StageKind`] + [`Resource`] + a work closure) is one
//!   schedulable piece of work — a paper phase
//!   ([`StageKind::DelegateConstruction`], [`StageKind::FirstTopK`], …), the
//!   approximate mode's bucket-top-k′ candidate pass, or an out-of-core
//!   chunk load — bound to a [`Resource`] (a device's compute queue or a
//!   transfer lane) and to the stages it depends on;
//! * a [`StageGraph`] collects stages plus a caller-owned context the stage
//!   closures read and write their buffers through;
//! * [`StageGraph::execute`] dispatches ready stages onto one host worker
//!   thread per modeled resource, with dependency events gating
//!   cross-resource handoff — so real wall-clock tracks the modeled
//!   makespan instead of the sum of all stages — and then *replays* the
//!   graph deterministically in modeled time on per-resource
//!   [`gpu_sim::Stream`]s: stages on the same resource serialize, stages on
//!   different resources overlap as far as their dependencies allow —
//!   which is exactly how double-buffered chunked ingestion hides
//!   host→device transfers behind compute.
//!
//! # Modeled vs measured time
//!
//! Every stage interval exists in two clocks. *Modeled* milliseconds come
//! from the simulator's analytic timing model and are **deterministic**: the
//! replay runs in insertion order regardless of how the host threads
//! interleaved, so `makespan_ms`, per-stage `start_ms`/`end_ms`, phase
//! breakdowns and kernel counters are bit-identical run to run (see
//! [`StageReport::deterministic_summary`]). *Measured* milliseconds are host
//! wall-clock timestamps taken around each closure
//! ([`ExecutedStage::measured_start_ms`] / [`ExecutedStage::measured_end_ms`],
//! [`StageReport::measured_makespan_ms`]) and vary run to run; the
//! [`crate::calibrate`] module regresses measured against modeled time per
//! [`StageKind`] so benches can print the two side by side.
//!
//! Because stage closures run concurrently, they take `&C` (not `&mut C`)
//! and must be `Send`; the caller partitions or synchronizes the context —
//! per-device buffer slots behind `std::sync::Mutex`, say — so that
//! independent stages never contend for the same slot.
//!
//! The executor is also the one instrumentation point: the returned
//! [`StageReport`] carries every executed stage's interval, the modeled
//! makespan, the compute/transfer split, the overlap efficiency, the
//! per-kind calibration fit, and a [`PhaseBreakdown`] derived from the
//! stage kinds — the pipeline, approximate, distributed and engine reports
//! are all views of it.

// Approved `std::sync` lock holder (see clippy.toml + ARCHITECTURE.md):
// the executor's slot table is the synchronization primitive everything
// else builds on.
#![allow(clippy::disallowed_types)]

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use drtopk_obs::{EventKind, ExecEvent, SpanRecord, TraceSink};
use gpu_sim::{KernelStats, StreamSet};

use crate::calibrate::CalibrationFit;
use crate::pipeline::PhaseBreakdown;
use crate::verify::{verify_specs, Diagnostic, StageSpec, VerifyOptions};

/// Which paper phase (or infrastructure step) a stage implements.
///
/// The mapping from the paper's Figure 3(b) phases (and the extensions this
/// reproduction adds) to stage kinds is one-to-one; `docs/PAPER_MAP.md`
/// tabulates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Delegate vector construction (Sections 4.1/5.3) — the β-delegate
    /// `|V|`-scan.
    DelegateConstruction,
    /// First top-k on the delegate vector (Section 4.2).
    FirstTopK,
    /// Rule 1–3 subrange concatenation with Rule 2 filtering (Section 4.3).
    Concatenate,
    /// Second top-k on the concatenated vector (Section 4.4) — also the
    /// direct inner-algorithm run on the fallback path.
    SecondTopK,
    /// The approximate mode's per-bucket top-k′ candidate pass (the
    /// delegate kernels run with β = k′; replaces phases 2–4 entirely).
    BucketTopKPrime,
    /// Host→device ingestion of one out-of-core sub-vector chunk.
    ChunkLoad,
    /// One chunk's whole local Dr. Top-k pipeline in the distributed
    /// runner (attributed to selection compute in coarse breakdowns; the
    /// distributed result refines it from the per-chunk results).
    LocalTopK,
    /// Per-device merge of several chunks' local top-k's (Section 5.4).
    LocalMerge,
    /// Asynchronous gather of one device's k winners to the primary
    /// (Section 5.4) — one stage per source device, each on its own
    /// interconnect lane, so per-device gathers overlap.
    Gather,
    /// Final top-k over the `#devices × k` candidates on the primary.
    FinalTopK,
    /// One MSD digit-histogram pass of the multi-pass radix-select path
    /// (the large-k escape hatch; see `docs/ARCHITECTURE.md`): a full scan
    /// of the surviving candidates counting 256-way digit occupancy.
    RadixHistogram,
    /// The refine step after a digit-histogram pass: locate the digit
    /// bucket containing the k-th element from the histogram prefix and
    /// compact the surviving candidates out-of-place.
    RadixRefine,
    /// Gather of the elements above the resolved radix threshold (plus
    /// tie refill up to exactly `k`) from the original vector.
    CandidateGather,
    /// Final ordering of the `k` gathered radix candidates — the terminal
    /// stage of the radix-select pipeline.
    RadixSelect,
}

impl StageKind {
    /// Every stage kind, in declaration order. Kept exhaustive by a
    /// compile-time match in the docs drift tests: adding a variant without
    /// extending this list (and `docs/PAPER_MAP.md`) fails the build or the
    /// suite.
    pub const ALL: [StageKind; 14] = [
        StageKind::DelegateConstruction,
        StageKind::FirstTopK,
        StageKind::Concatenate,
        StageKind::SecondTopK,
        StageKind::BucketTopKPrime,
        StageKind::ChunkLoad,
        StageKind::LocalTopK,
        StageKind::LocalMerge,
        StageKind::Gather,
        StageKind::FinalTopK,
        StageKind::RadixHistogram,
        StageKind::RadixRefine,
        StageKind::CandidateGather,
        StageKind::RadixSelect,
    ];

    /// Whether stages of this kind represent data movement rather than
    /// kernel execution.
    pub fn is_transfer(self) -> bool {
        matches!(self, StageKind::ChunkLoad | StageKind::Gather)
    }

    /// Display name used by reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::DelegateConstruction => "delegate_construction",
            StageKind::FirstTopK => "first_topk",
            StageKind::Concatenate => "concatenate",
            StageKind::SecondTopK => "second_topk",
            StageKind::BucketTopKPrime => "bucket_topk_prime",
            StageKind::ChunkLoad => "chunk_load",
            StageKind::LocalTopK => "local_topk",
            StageKind::LocalMerge => "local_merge",
            StageKind::Gather => "gather",
            StageKind::FinalTopK => "final_topk",
            StageKind::RadixHistogram => "radix_histogram",
            StageKind::RadixRefine => "radix_refine",
            StageKind::CandidateGather => "candidate_gather",
            StageKind::RadixSelect => "radix_select",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A modeled transfer lane (one independent copy queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferLane {
    /// Host memory → device `dst` (each device has its own PCIe lane, as
    /// the Table 2 reload model assumes).
    HostToDevice(usize),
    /// Device `src` → host memory.
    DeviceToHost(usize),
    /// The device↔device interconnect lane *sourced* at device `src`. The
    /// Section 5.4 gather is asynchronous: every secondary device pushes
    /// its k winners to the primary on its own lane, so per-device gathers
    /// overlap instead of serializing on one shared queue.
    Interconnect(usize),
}

/// The hardware queue a stage occupies. Stages tagged with the same
/// resource serialize in modeled time; stages on different resources
/// overlap as far as their dependencies allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The compute queue of one device (index within the cluster; 0 for
    /// single-device graphs).
    Compute(usize),
    /// A transfer lane.
    Transfer(TransferLane),
}

impl Resource {
    /// Stable track label used by trace exports: `compute[d]` for compute
    /// queues, `h2d[d]` / `d2h[d]` / `ic[d]` for the transfer lanes.
    pub fn label(&self) -> String {
        match self {
            Resource::Compute(d) => format!("compute[{d}]"),
            Resource::Transfer(TransferLane::HostToDevice(d)) => format!("h2d[{d}]"),
            Resource::Transfer(TransferLane::DeviceToHost(d)) => format!("d2h[{d}]"),
            Resource::Transfer(TransferLane::Interconnect(d)) => format!("ic[{d}]"),
        }
    }
}

/// What executing one stage produced: the kernel counters it accumulated
/// and its modeled duration. Buffers travel through the graph's context,
/// not through the outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageOutcome {
    /// Counters accumulated by the stage's kernels (empty for pure
    /// transfers).
    pub stats: KernelStats,
    /// Modeled duration of the stage in milliseconds.
    pub time_ms: f64,
}

/// Handle to a stage within its graph, used to declare dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(usize);

/// Which host execution strategy runs the stage closures.
///
/// Every strategy produces bit-identical results and byte-identical
/// *modeled* reports; they differ only in host wall-clock (the `measured_*`
/// fields) and in which dispatch order actually runs the closures.
/// [`Executor::Threaded`] is the default everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Executor {
    /// Run every stage closure on the calling thread, in insertion order.
    /// The historical behavior: measured wall-clock is the sum of all
    /// stages no matter how much the modeled schedule overlaps.
    Serial,
    /// Dispatch ready stages onto one host worker thread per modeled
    /// resource, with dependency events gating cross-resource handoff, so
    /// measured wall-clock tracks the modeled makespan. Graphs that touch
    /// a single resource (or none) run inline on the calling thread — a
    /// lone worker could only replay insertion order anyway.
    #[default]
    Threaded,
    /// Run one deterministic *adversarial* dispatch order on the calling
    /// thread: at every step, dispatch the highest-index stage the
    /// threaded executor's workers could legally pick (dependencies done,
    /// per-resource FIFO respected). This is the single schedule furthest
    /// from insertion order — a cheap anti-insertion-order probe. The
    /// full schedule-space enumeration lives in
    /// [`crate::explore::explore_schedules`], which drives
    /// [`StageGraph::execute_in_order`] over *every* reachable order.
    Explore,
}

type BoxedStage<'g, C> = Box<dyn FnOnce(&C) -> StageOutcome + Send + 'g>;
type PanicPayload = Box<dyn Any + Send>;

struct StageNode<'g, C> {
    kind: StageKind,
    label: String,
    resource: Resource,
    deps: Vec<usize>,
    run: BoxedStage<'g, C>,
}

/// The scheduling-relevant part of a stage, split from its closure so the
/// worker threads can consult dependencies while closures are moved into
/// per-resource worklists.
struct StageMeta {
    kind: StageKind,
    label: String,
    resource: Resource,
    deps: Vec<usize>,
}

/// What one closure invocation produced, plus its host wall-clock interval
/// relative to the executor's epoch.
struct RunRecord {
    outcome: StageOutcome,
    measured_start_ms: f64,
    measured_end_ms: f64,
}

/// Completion state of one stage slot under the threaded executor.
enum Slot {
    /// Not run yet.
    Pending,
    /// Ran to completion.
    Done(RunRecord),
    /// Panicked, or depends (transitively) on a stage that panicked.
    Poisoned,
}

fn ms_since(epoch: Instant) -> f64 {
    epoch.elapsed().as_secs_f64() * 1e3
}

/// Emit a live executor event iff a sink is attached *and* wants events
/// (deterministic recorders do not — event timing is wall-clock). The
/// label is only cloned on the enabled path.
fn emit_event(sink: Option<&dyn TraceSink>, kind: EventKind, label: &str, at_ms: f64) {
    if let Some(s) = sink {
        if s.wants_events() {
            s.event(ExecEvent {
                kind,
                label: label.to_string(),
                at_ms,
            });
        }
    }
}

/// A DAG of [`Stage`](StageKind)s over a caller-owned context `C`.
///
/// Stages must be added in a topological order (every dependency's
/// [`StageId`] comes from an earlier `add` call on *this* graph — validated
/// at `add` time). Stage closures receive `&C` and communicate buffers
/// through it; because the threaded executor runs independent stages
/// concurrently, closures must be `Send` and any mutable state inside `C`
/// must be partitioned (per-device slots) or synchronized (`Mutex`). The
/// closure's return value is only the stage's instrumentation.
pub struct StageGraph<'g, C> {
    stages: Vec<StageNode<'g, C>>,
    /// Optional telemetry receiver; `None` (the default) costs one branch
    /// per emission site and nothing else.
    sink: Option<&'g dyn TraceSink>,
}

impl<'g, C> Default for StageGraph<'g, C> {
    fn default() -> Self {
        StageGraph::new()
    }
}

impl<'g, C> StageGraph<'g, C> {
    /// An empty graph.
    pub fn new() -> Self {
        StageGraph {
            stages: Vec::new(),
            sink: None,
        }
    }

    /// Attach a [`TraceSink`]: every `execute*` entry point will then
    /// record one span per executed stage (via
    /// [`StageReport::record_into`]) and live executor events — dispatches,
    /// dependency-gate wakes, and debug-build verifier passes. Detached
    /// graphs skip all of it.
    pub fn set_trace_sink(&mut self, sink: &'g dyn TraceSink) {
        self.sink = Some(sink);
    }

    /// Number of stages added so far.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stage has been added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Add a stage with an explicit display label. `deps` are the stages
    /// whose completion this stage must wait for *across* resources;
    /// same-resource ordering is implicit (a resource is an in-order
    /// queue).
    ///
    /// # Panics
    ///
    /// Panics when a dependency does not name an earlier stage of this
    /// graph — e.g. a [`StageId`] minted by a *different* graph. Catching
    /// this at `add` time turns what used to be a bare out-of-bounds index
    /// deep inside `execute` into an immediate, attributable error.
    pub fn add_labeled(
        &mut self,
        kind: StageKind,
        label: impl Into<String>,
        resource: Resource,
        deps: &[StageId],
        run: impl FnOnce(&C) -> StageOutcome + Send + 'g,
    ) -> StageId {
        for dep in deps {
            assert!(
                dep.0 < self.stages.len(),
                "stage dependency StageId({}) does not name an earlier stage of this graph \
                 (the graph has {} stage(s)); StageIds are only valid within the graph whose \
                 `add` call minted them",
                dep.0,
                self.stages.len()
            );
        }
        let id = self.stages.len();
        self.stages.push(StageNode {
            kind,
            label: label.into(),
            resource,
            deps: deps.iter().map(|d| d.0).collect(),
            run: Box::new(run),
        });
        StageId(id)
    }

    /// Add a stage labeled by its kind.
    pub fn add(
        &mut self,
        kind: StageKind,
        resource: Resource,
        deps: &[StageId],
        run: impl FnOnce(&C) -> StageOutcome + Send + 'g,
    ) -> StageId {
        self.add_labeled(kind, kind.name(), resource, deps, run)
    }

    /// The scheduling-relevant description of every stage — kinds, labels,
    /// resources, dependencies — with the work closures stripped. This is
    /// the input shape of [`crate::verify::verify_specs`] and the
    /// schedule-enumeration substrate of [`crate::explore`].
    pub fn specs(&self) -> Vec<StageSpec> {
        self.stages
            .iter()
            .map(|node| StageSpec {
                kind: node.kind,
                label: node.label.clone(),
                resource: node.resource,
                deps: node.deps.clone(),
            })
            .collect()
    }

    /// Statically verify the graph with default [`VerifyOptions`],
    /// returning every [`Diagnostic`] (empty = clean). See
    /// [`crate::verify`] for the checks and their stable codes. In debug
    /// builds every `execute*` entry point runs this automatically and
    /// panics on findings.
    pub fn verify(&self) -> Vec<Diagnostic> {
        self.verify_with(&VerifyOptions::default())
    }

    /// Statically verify the graph with explicit [`VerifyOptions`] (e.g. a
    /// staging-buffer count enabling the `V010` double-buffer hazard
    /// analysis).
    pub fn verify_with(&self, opts: &VerifyOptions) -> Vec<Diagnostic> {
        verify_specs(&self.specs(), opts)
    }

    /// Debug-build gate: panic before running any closure when the graph
    /// fails verification. Release builds skip the check entirely. A clean
    /// pass is reported to an attached sink as a
    /// [`EventKind::VerifierPass`] event (at `t = 0`: verification precedes
    /// the executor epoch).
    fn debug_verify(&self) {
        #[cfg(debug_assertions)]
        {
            let diags = self.verify();
            assert!(
                diags.is_empty(),
                "stage graph failed verification:\n{}",
                diags
                    .iter()
                    .map(|d| format!("  {d}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            if self.sink.is_some() {
                emit_event(
                    self.sink,
                    EventKind::VerifierPass,
                    &format!("{} stage(s) verified", self.stages.len()),
                    0.0,
                );
            }
        }
    }

    fn into_parts(self) -> (Vec<StageMeta>, Vec<BoxedStage<'g, C>>) {
        let mut metas = Vec::with_capacity(self.stages.len());
        let mut runs = Vec::with_capacity(self.stages.len());
        for node in self.stages {
            metas.push(StageMeta {
                kind: node.kind,
                label: node.label,
                resource: node.resource,
                deps: node.deps,
            });
            runs.push(node.run);
        }
        (metas, runs)
    }

    /// Execute the graph with the default [`Executor::Threaded`] strategy.
    ///
    /// Host-side, ready stages dispatch onto one worker thread per modeled
    /// resource — dependency events gate cross-resource handoff, exactly
    /// like kernels launched on CUDA streams after `cudaStreamWaitEvent`s —
    /// so real wall-clock tracks the modeled makespan. Afterwards the graph
    /// is replayed in insertion order on modeled per-resource streams, so
    /// every modeled field of the report is deterministic regardless of how
    /// the host threads interleaved.
    pub fn execute(self, ctx: &C) -> StageReport
    where
        C: Sync,
    {
        self.execute_with(ctx, Executor::Threaded)
    }

    /// Execute the graph with an explicit host strategy. Results and
    /// modeled reports are identical either way; only the `measured_*`
    /// wall-clock fields differ.
    pub fn execute_with(self, ctx: &C, executor: Executor) -> StageReport
    where
        C: Sync,
    {
        match executor {
            Executor::Serial => self.execute_serial(ctx),
            Executor::Threaded => {
                self.debug_verify();
                self.execute_threaded(ctx)
            }
            Executor::Explore => {
                let order = self.adversarial_order();
                self.execute_in_order(ctx, &order)
            }
        }
    }

    /// Execute every stage closure on the calling thread, in insertion
    /// order (the historical serial executor). Does not require `C: Sync`.
    pub fn execute_serial(self, ctx: &C) -> StageReport {
        self.debug_verify();
        self.run_serial(ctx)
    }

    /// The serial executor body, shared by [`StageGraph::execute_serial`]
    /// and the threaded executor's single-resource short circuit (which has
    /// already verified the graph).
    fn run_serial(self, ctx: &C) -> StageReport {
        let sink = self.sink;
        let (metas, runs) = self.into_parts();
        let epoch = Instant::now();
        let records = runs
            .into_iter()
            .enumerate()
            .map(|(i, run)| {
                let measured_start_ms = ms_since(epoch);
                emit_event(
                    sink,
                    EventKind::Dispatch,
                    &metas[i].label,
                    measured_start_ms,
                );
                let outcome = run(ctx);
                RunRecord {
                    outcome,
                    measured_start_ms,
                    measured_end_ms: ms_since(epoch),
                }
            })
            .collect();
        finish_report(metas, records, sink)
    }

    /// One worker per distinct resource; dependencies gate handoff through
    /// a slot table + condvar. Deadlock-free because `add_labeled`
    /// guarantees every dependency index is smaller than the stage's own
    /// index and each worker walks its list in insertion order: the
    /// globally smallest unfinished stage always has every dependency
    /// finished, so its worker can run it.
    fn execute_threaded(self, ctx: &C) -> StageReport
    where
        C: Sync,
    {
        let mut resources: Vec<Resource> = Vec::new();
        for node in &self.stages {
            if !resources.contains(&node.resource) {
                resources.push(node.resource);
            }
        }
        if resources.len() <= 1 {
            // A lone worker could only replay insertion order; skip the
            // thread machinery (and keep plain panic propagation).
            return self.run_serial(ctx);
        }
        let sink = self.sink;
        let (metas, runs) = self.into_parts();
        let n = metas.len();
        type Worklist<'g, C> = Vec<(usize, BoxedStage<'g, C>)>;
        let mut worklists: Vec<(Resource, Worklist<'g, C>)> =
            resources.into_iter().map(|r| (r, Vec::new())).collect();
        for (i, run) in runs.into_iter().enumerate() {
            let resource = metas[i].resource;
            worklists
                .iter_mut()
                .find(|(r, _)| *r == resource)
                .expect("every stage's resource was collected above")
                .1
                .push((i, run));
        }
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..n).map(|_| Slot::Pending).collect());
        let progressed = Condvar::new();
        let panics: Mutex<Vec<(usize, PanicPayload)>> = Mutex::new(Vec::new());
        let epoch = Instant::now();
        std::thread::scope(|scope| {
            for (_, work) in worklists {
                let metas = &metas;
                let slots = &slots;
                let progressed = &progressed;
                let panics = &panics;
                scope.spawn(move || {
                    for (i, run) in work {
                        let mut dep_poisoned;
                        let mut gated = false;
                        {
                            let mut guard = slots.lock().unwrap();
                            'scan: loop {
                                dep_poisoned = false;
                                for &dep in &metas[i].deps {
                                    match guard[dep] {
                                        Slot::Pending => {
                                            gated = true;
                                            guard = progressed.wait(guard).unwrap();
                                            continue 'scan;
                                        }
                                        Slot::Poisoned => dep_poisoned = true,
                                        Slot::Done(_) => {}
                                    }
                                }
                                break;
                            }
                        }
                        if gated {
                            emit_event(
                                sink,
                                EventKind::DepGateWake,
                                &metas[i].label,
                                ms_since(epoch),
                            );
                        }
                        let slot = if dep_poisoned {
                            Slot::Poisoned
                        } else {
                            let measured_start_ms = ms_since(epoch);
                            emit_event(
                                sink,
                                EventKind::Dispatch,
                                &metas[i].label,
                                measured_start_ms,
                            );
                            match std::panic::catch_unwind(AssertUnwindSafe(|| run(ctx))) {
                                Ok(outcome) => Slot::Done(RunRecord {
                                    outcome,
                                    measured_start_ms,
                                    measured_end_ms: ms_since(epoch),
                                }),
                                Err(payload) => {
                                    panics.lock().unwrap().push((i, payload));
                                    Slot::Poisoned
                                }
                            }
                        };
                        slots.lock().unwrap()[i] = slot;
                        progressed.notify_all();
                    }
                });
            }
        });
        let mut panics = panics.into_inner().unwrap();
        if !panics.is_empty() {
            // Re-raise the earliest stage's panic — the one the serial
            // executor would have hit first.
            panics.sort_by_key(|(i, _)| *i);
            std::panic::resume_unwind(panics.remove(0).1);
        }
        let records = slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(record) => record,
                Slot::Pending | Slot::Poisoned => {
                    unreachable!("non-panicking graphs complete every stage")
                }
            })
            .collect();
        finish_report(metas, records, sink)
    }

    /// Execute the stage closures serially in an explicit dispatch `order`
    /// — the schedule-replay primitive behind
    /// [`crate::explore::explore_schedules`]. The report is byte-identical
    /// (modeled fields) to any other executor's: the modeled replay always
    /// runs in insertion order.
    ///
    /// # Panics
    ///
    /// Panics when `order` is not a dispatch order the threaded executor
    /// could take: it must be a permutation of `0..len()` in which every
    /// stage appears after all of its dependencies *and* after every
    /// earlier-inserted stage on its own resource (workers drain their
    /// worklists in FIFO order). Does not require `C: Sync` — everything
    /// runs on the calling thread.
    pub fn execute_in_order(self, ctx: &C, order: &[usize]) -> StageReport {
        self.debug_verify();
        let sink = self.sink;
        let (metas, runs) = self.into_parts();
        let n = metas.len();
        assert_eq!(
            order.len(),
            n,
            "dispatch order names {} stage(s) but the graph has {n}",
            order.len()
        );
        let mut done = vec![false; n];
        for &i in order {
            assert!(i < n, "dispatch order names stage {i} of a {n}-stage graph");
            assert!(!done[i], "dispatch order runs stage {i} twice");
            for &dep in &metas[i].deps {
                assert!(
                    done[dep],
                    "dispatch order runs stage {i} ('{}') before its dependency {dep}",
                    metas[i].label
                );
            }
            for (j, meta) in metas.iter().enumerate().take(i) {
                assert!(
                    meta.resource != metas[i].resource || done[j],
                    "dispatch order runs stage {i} ('{}') before stage {j} on the same \
                     resource; per-resource dispatch is FIFO in insertion order",
                    metas[i].label
                );
            }
            done[i] = true;
        }
        let mut runs: Vec<Option<BoxedStage<'g, C>>> = runs.into_iter().map(Some).collect();
        let mut records: Vec<Option<RunRecord>> = (0..n).map(|_| None).collect();
        let epoch = Instant::now();
        for &i in order {
            let run = runs[i].take().expect("order is a permutation");
            let measured_start_ms = ms_since(epoch);
            emit_event(
                sink,
                EventKind::Dispatch,
                &metas[i].label,
                measured_start_ms,
            );
            let outcome = run(ctx);
            records[i] = Some(RunRecord {
                outcome,
                measured_start_ms,
                measured_end_ms: ms_since(epoch),
            });
        }
        let records = records
            .into_iter()
            .map(|r| r.expect("every stage was dispatched"))
            .collect();
        finish_report(metas, records, sink)
    }

    /// The deterministic [`Executor::Explore`] schedule: at every step,
    /// dispatch the highest-index stage whose dependencies are done and
    /// whose resource has no earlier undispatched stage.
    fn adversarial_order(&self) -> Vec<usize> {
        let n = self.stages.len();
        let mut done = vec![false; n];
        let mut order = Vec::with_capacity(n);
        while order.len() < n {
            let next = (0..n)
                .rev()
                .find(|&i| {
                    !done[i]
                        && self.stages[i].deps.iter().all(|&d| done[d])
                        && (0..i)
                            .all(|j| done[j] || self.stages[j].resource != self.stages[i].resource)
                })
                .expect(
                    "a graph whose dependencies point at earlier stages always has a \
                     dispatchable stage",
                );
            done[next] = true;
            order.push(next);
        }
        order
    }
}

/// [`build_report`] plus span emission: every executor funnels through
/// here, so an attached sink sees exactly the report's stages, in insertion
/// order — which is what makes deterministic traces byte-identical across
/// executors.
fn finish_report(
    metas: Vec<StageMeta>,
    records: Vec<RunRecord>,
    sink: Option<&dyn TraceSink>,
) -> StageReport {
    let report = build_report(metas, records);
    if let Some(sink) = sink {
        report.record_into(sink);
    }
    report
}

/// Deterministic modeled replay: schedule every stage in insertion order on
/// its resource's stream, independent of how the host threads interleaved.
fn build_report(metas: Vec<StageMeta>, records: Vec<RunRecord>) -> StageReport {
    let mut streams: StreamSet<Resource> = StreamSet::new();
    let mut finished: Vec<gpu_sim::Event> = Vec::with_capacity(metas.len());
    let mut executed: Vec<ExecutedStage> = Vec::with_capacity(metas.len());
    let mut measured_makespan_ms: f64 = 0.0;
    for (meta, record) in metas.into_iter().zip(records) {
        let stream = streams.stream_mut(meta.resource);
        for &dep in &meta.deps {
            stream.wait_event(&finished[dep]);
        }
        let start_ms = stream.cursor_ms();
        let done = stream.launch(record.outcome.time_ms);
        measured_makespan_ms = measured_makespan_ms.max(record.measured_end_ms);
        executed.push(ExecutedStage {
            kind: meta.kind,
            label: meta.label,
            resource: meta.resource,
            deps: meta.deps,
            start_ms,
            end_ms: done.ready_at_ms(),
            measured_start_ms: record.measured_start_ms,
            measured_end_ms: record.measured_end_ms,
            stats: record.outcome.stats,
        });
        finished.push(done);
    }
    let makespan_ms = streams.makespan_ms();
    let serial_ms: f64 = executed.iter().map(ExecutedStage::duration_ms).sum();
    debug_assert!(
        makespan_ms <= serial_ms + 1e-9 * serial_ms.max(1.0),
        "modeled makespan ({makespan_ms} ms) must never exceed the serialized cost \
         ({serial_ms} ms); overlap can only hide time"
    );
    let calibration = CalibrationFit::fit(&executed);
    StageReport {
        stages: executed,
        makespan_ms,
        measured_makespan_ms,
        calibration,
    }
}

/// One stage as it was actually scheduled.
#[derive(Debug, Clone)]
pub struct ExecutedStage {
    /// The stage's kind.
    pub kind: StageKind,
    /// Display label (defaults to the kind's name; chunked stages carry
    /// their chunk index).
    pub label: String,
    /// The resource the stage occupied.
    pub resource: Resource,
    /// Indices (within the report's stage list) of the stages this stage
    /// declared as dependencies.
    pub deps: Vec<usize>,
    /// Modeled start time, ms (deterministic).
    pub start_ms: f64,
    /// Modeled completion time, ms (deterministic).
    pub end_ms: f64,
    /// Host wall-clock at which the stage closure started, in ms since the
    /// executor's epoch. **Not deterministic** — varies run to run.
    pub measured_start_ms: f64,
    /// Host wall-clock at which the stage closure returned, in ms since
    /// the executor's epoch. **Not deterministic** — varies run to run.
    pub measured_end_ms: f64,
    /// Kernel counters the stage accumulated.
    pub stats: KernelStats,
}

impl ExecutedStage {
    /// The stage's modeled duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    /// The stage's measured host wall-clock duration in milliseconds.
    pub fn measured_ms(&self) -> f64 {
        self.measured_end_ms - self.measured_start_ms
    }
}

/// The executor's instrumentation: every scheduled stage plus the modeled
/// makespan. All per-phase, compute-vs-transfer and overlap reporting in
/// the crate (and the engine) derives from this one structure.
///
/// Modeled fields (`makespan_ms`, per-stage `start_ms`/`end_ms`, stats,
/// everything derived from them) are deterministic; the `measured_*`
/// fields and [`StageReport::calibration`] reflect host wall-clock and
/// vary run to run.
#[derive(Debug, Clone, Default)]
pub struct StageReport {
    /// Every executed stage, in insertion (= replay) order.
    pub stages: Vec<ExecutedStage>,
    /// Modeled end-to-end time: the latest stage completion across all
    /// resources. Deterministic.
    pub makespan_ms: f64,
    /// Measured end-to-end host wall-clock: the latest measured stage
    /// completion. Under [`Executor::Threaded`] this tracks `makespan_ms`
    /// through the calibration fit; under [`Executor::Serial`] it tracks
    /// the serialized sum. **Not deterministic.**
    pub measured_makespan_ms: f64,
    /// Per-[`StageKind`] least-squares fit of measured against modeled
    /// stage durations (see [`crate::calibrate`]). **Not deterministic.**
    pub calibration: CalibrationFit,
}

impl StageReport {
    /// Sum of the durations of all compute stages.
    pub fn compute_ms(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| matches!(s.resource, Resource::Compute(_)))
            .map(ExecutedStage::duration_ms)
            .sum()
    }

    /// Sum of the durations of all transfer stages.
    pub fn transfer_ms(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| matches!(s.resource, Resource::Transfer(_)))
            .map(ExecutedStage::duration_ms)
            .sum()
    }

    /// What the graph would cost with no overlap at all: the sum of every
    /// stage's duration.
    pub fn serial_ms(&self) -> f64 {
        self.stages.iter().map(ExecutedStage::duration_ms).sum()
    }

    /// Modeled time hidden by overlap: `serial_ms − makespan_ms` (0 for a
    /// fully serial schedule). In modeled time makespan ≤ serial always
    /// holds (the executor debug-asserts it), so the clamp at 0 is purely
    /// defensive.
    pub fn hidden_ms(&self) -> f64 {
        (self.serial_ms() - self.makespan_ms).max(0.0)
    }

    /// Fraction of the serialized cost hidden by overlap:
    /// `1 − makespan / serial`, in `[0, 1)`; 0 for an empty or fully
    /// serial schedule.
    pub fn overlap_efficiency(&self) -> f64 {
        let serial = self.serial_ms();
        if serial <= 0.0 {
            return 0.0;
        }
        (1.0 - self.makespan_ms / serial).max(0.0)
    }

    /// Sum of every stage's *measured* host wall-clock duration — what the
    /// run would have cost with no host-side overlap at all.
    pub fn measured_serial_ms(&self) -> f64 {
        self.stages.iter().map(ExecutedStage::measured_ms).sum()
    }

    /// Measured host wall-clock hidden by the threaded executor:
    /// `measured_serial_ms − measured_makespan_ms`, clamped at 0.
    ///
    /// Unlike the modeled timeline, the measured one may *violate*
    /// makespan ≤ serial (scheduling jitter, contended host cores), so
    /// here the clamp is load-bearing, not defensive.
    pub fn measured_hidden_ms(&self) -> f64 {
        (self.measured_serial_ms() - self.measured_makespan_ms).max(0.0)
    }

    /// Fraction of the measured serialized cost hidden by the threaded
    /// executor, clamped into `[0, 1]`. The pre-clamp ratio can go
    /// negative when scheduling jitter makes the measured makespan exceed
    /// the measured serial sum — see [`StageReport::measured_hidden_ms`].
    pub fn measured_overlap_efficiency(&self) -> f64 {
        let serial = self.measured_serial_ms();
        if serial <= 0.0 {
            return 0.0;
        }
        (1.0 - self.measured_makespan_ms / serial).clamp(0.0, 1.0)
    }

    /// Kernel counters summed over every stage.
    pub fn stats(&self) -> KernelStats {
        self.stages.iter().map(|s| s.stats).sum()
    }

    /// Re-verify the executed schedule with default [`VerifyOptions`]: the
    /// report carries every stage's kind/resource/dependency wiring, so the
    /// same static checks that gate execution (see [`crate::verify`]) can
    /// run after the fact — e.g. in tests that only kept the report.
    pub fn verify(&self) -> Vec<Diagnostic> {
        self.verify_with(&VerifyOptions::default())
    }

    /// Re-verify the executed schedule with explicit [`VerifyOptions`].
    pub fn verify_with(&self, opts: &VerifyOptions) -> Vec<Diagnostic> {
        let specs: Vec<StageSpec> = self
            .stages
            .iter()
            .map(|s| StageSpec {
                kind: s.kind,
                label: s.label.clone(),
                resource: s.resource,
                deps: s.deps.clone(),
            })
            .collect();
        verify_specs(&specs, opts)
    }

    /// A byte-stable rendering of every *deterministic* field of the
    /// report: stage kinds, labels, resources, dependencies, modeled
    /// intervals (as exact bit patterns) and kernel counters, plus the
    /// modeled makespan. Two runs of the same graph — under any executor,
    /// any thread count — must produce identical strings; the determinism
    /// CI step and the executor stress test diff exactly this. Measured
    /// wall-clock and calibration fields are deliberately excluded.
    pub fn deterministic_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stages={} makespan_bits={:016x} makespan_ms={}",
            self.stages.len(),
            self.makespan_ms.to_bits(),
            self.makespan_ms
        );
        for (i, s) in self.stages.iter().enumerate() {
            let _ = writeln!(
                out,
                "[{i}] {} '{}' {:?} deps={:?} start_bits={:016x} end_bits={:016x} stats={:?}",
                s.kind,
                s.label,
                s.resource,
                s.deps,
                s.start_ms.to_bits(),
                s.end_ms.to_bits(),
                s.stats
            );
        }
        out
    }

    /// Emit every stage as a [`SpanRecord`] into a [`TraceSink`], in
    /// insertion (= replay) order with unshifted intervals — so recorded
    /// spans carry the report's modeled `start_ms`/`end_ms` **bit-for-bit**.
    /// `queue_wait_ms` is the modeled gap between a stage's readiness (all
    /// dependencies complete) and its start, i.e. time spent waiting for
    /// its resource.
    pub fn record_into(&self, sink: &dyn TraceSink) {
        self.record_shifted(sink, 0.0);
    }

    /// Like [`StageReport::record_into`] but with every interval (modeled
    /// *and* measured) shifted by `offset_ms` — used by the engine to place
    /// per-unit stage reports onto the batch timeline at their scheduled
    /// worker start times. An offset of exactly `0.0` preserves the
    /// original `f64` bit patterns.
    pub fn record_shifted(&self, sink: &dyn TraceSink, offset_ms: f64) {
        for (i, s) in self.stages.iter().enumerate() {
            let ready_ms = s
                .deps
                .iter()
                .map(|&d| self.stages[d].end_ms)
                .fold(0.0, f64::max);
            sink.span(SpanRecord {
                seq: i,
                kind: s.kind.name().to_string(),
                label: s.label.clone(),
                track: s.resource.label(),
                deps: s.deps.clone(),
                start_ms: s.start_ms + offset_ms,
                end_ms: s.end_ms + offset_ms,
                measured_start_ms: s.measured_start_ms + offset_ms,
                measured_end_ms: s.measured_end_ms + offset_ms,
                queue_wait_ms: (s.start_ms - ready_ms).max(0.0),
            });
        }
    }

    /// Per-resource busy time and occupancy, in first-occurrence order:
    /// `(resource, busy_ms, busy_ms / makespan_ms)`. This is the modeled
    /// view of how idle each executor worker was — ROADMAP item 5's
    /// transfer-lane workers show up here as low-occupancy rows.
    pub fn resource_occupancy(&self) -> Vec<(Resource, f64, f64)> {
        let mut rows: Vec<(Resource, f64, f64)> = Vec::new();
        for s in &self.stages {
            match rows.iter_mut().find(|(r, _, _)| *r == s.resource) {
                Some((_, busy, _)) => *busy += s.duration_ms(),
                None => rows.push((s.resource, s.duration_ms(), 0.0)),
            }
        }
        if self.makespan_ms > 0.0 {
            for (_, busy, occ) in &mut rows {
                *occ = *busy / self.makespan_ms;
            }
        }
        rows
    }

    /// Derive the paper-phase breakdown from the stage kinds:
    /// [`StageKind::DelegateConstruction`] and
    /// [`StageKind::BucketTopKPrime`] charge delegate time,
    /// [`StageKind::FirstTopK`] / [`StageKind::Concatenate`] /
    /// [`StageKind::SecondTopK`] their namesakes, every selection stage of
    /// the distributed runner ([`StageKind::LocalTopK`],
    /// [`StageKind::LocalMerge`], [`StageKind::FinalTopK`]) second-top-k
    /// time, and the transfer kinds ([`StageKind::ChunkLoad`],
    /// [`StageKind::Gather`]) the breakdown's transfer slot. The radix
    /// path maps onto the same four compute slots: the narrowing passes
    /// ([`StageKind::RadixHistogram`], [`StageKind::RadixRefine`]) play
    /// the role of the first selection, [`StageKind::CandidateGather`]
    /// that of concatenation, and [`StageKind::RadixSelect`] that of the
    /// final selection.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let mut b = PhaseBreakdown::default();
        for s in &self.stages {
            let d = s.duration_ms();
            match s.kind {
                StageKind::DelegateConstruction | StageKind::BucketTopKPrime => {
                    b.delegate_ms += d;
                }
                StageKind::FirstTopK | StageKind::RadixHistogram | StageKind::RadixRefine => {
                    b.first_topk_ms += d;
                }
                StageKind::Concatenate | StageKind::CandidateGather => b.concat_ms += d,
                StageKind::SecondTopK
                | StageKind::LocalTopK
                | StageKind::LocalMerge
                | StageKind::FinalTopK
                | StageKind::RadixSelect => b.second_topk_ms += d,
                StageKind::ChunkLoad | StageKind::Gather => b.transfer_ms += d,
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(ms: f64) -> StageOutcome {
        StageOutcome {
            stats: KernelStats::default(),
            time_ms: ms,
        }
    }

    #[test]
    fn serial_chain_on_one_resource_sums() {
        let mut g: StageGraph<'_, Mutex<Vec<&'static str>>> = StageGraph::new();
        let a = g.add(
            StageKind::DelegateConstruction,
            Resource::Compute(0),
            &[],
            |log| {
                log.lock().unwrap().push("delegate");
                outcome(2.0)
            },
        );
        let b = g.add(StageKind::FirstTopK, Resource::Compute(0), &[a], |log| {
            log.lock().unwrap().push("first");
            outcome(1.0)
        });
        let c = g.add(StageKind::Concatenate, Resource::Compute(0), &[b], |log| {
            log.lock().unwrap().push("concat");
            outcome(0.0)
        });
        g.add(StageKind::SecondTopK, Resource::Compute(0), &[c], |log| {
            log.lock().unwrap().push("second");
            outcome(0.5)
        });
        let log = Mutex::new(Vec::new());
        let report = g.execute(&log);
        assert_eq!(
            log.into_inner().unwrap(),
            vec!["delegate", "first", "concat", "second"]
        );
        assert_eq!(report.makespan_ms, 3.5);
        assert_eq!(report.serial_ms(), 3.5);
        assert_eq!(report.overlap_efficiency(), 0.0);
        assert_eq!(report.compute_ms(), 3.5);
        assert_eq!(report.transfer_ms(), 0.0);
        let b = report.phase_breakdown();
        assert_eq!(b.delegate_ms, 2.0);
        assert_eq!(b.first_topk_ms, 1.0);
        assert_eq!(b.second_topk_ms, 0.5);
        assert_eq!(b.transfer_ms, 0.0);
    }

    #[test]
    fn transfers_overlap_compute_across_resources() {
        // load0 [0,3) ∥ nothing; compute0 [3,7); load1 [3,6) overlaps
        // compute0; compute1 [7,11). Makespan 11 vs serial 14.
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let lane = Resource::Transfer(TransferLane::HostToDevice(0));
        let l0 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(3.0));
        let c0 = g.add(StageKind::LocalTopK, Resource::Compute(0), &[l0], |_| {
            outcome(4.0)
        });
        let l1 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(3.0));
        let c1 = g.add(StageKind::LocalTopK, Resource::Compute(0), &[l1], |_| {
            outcome(4.0)
        });
        g.add(
            StageKind::FinalTopK,
            Resource::Compute(0),
            &[c0, c1],
            |_| outcome(0.0),
        );
        let report = g.execute(&());
        assert_eq!(report.makespan_ms, 11.0);
        assert_eq!(report.serial_ms(), 14.0);
        assert!((report.hidden_ms() - 3.0).abs() < 1e-12);
        assert!((report.overlap_efficiency() - 3.0 / 14.0).abs() < 1e-12);
        assert_eq!(report.compute_ms(), 8.0);
        assert_eq!(report.transfer_ms(), 6.0);
        assert_eq!(report.phase_breakdown().transfer_ms, 6.0);
        // the second load started while compute 0 was still running
        assert!(report.stages[2].start_ms < report.stages[1].end_ms);
    }

    #[test]
    fn same_resource_stages_serialize_without_explicit_deps() {
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let lane = Resource::Transfer(TransferLane::HostToDevice(0));
        let l0 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(2.0));
        let l1 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(2.0));
        let c = g.add(
            StageKind::LocalTopK,
            Resource::Compute(0),
            &[l0, l1],
            |_| outcome(0.0),
        );
        g.add(StageKind::FinalTopK, Resource::Compute(0), &[c], |_| {
            outcome(0.0)
        });
        let report = g.execute(&());
        assert_eq!(report.stages[1].start_ms, 2.0);
        assert_eq!(report.makespan_ms, 4.0);
    }

    #[test]
    fn empty_graph_reports_zeroes() {
        let g: StageGraph<'_, ()> = StageGraph::new();
        assert!(g.is_empty());
        let report = g.execute(&());
        assert!(report.stages.is_empty());
        assert_eq!(report.makespan_ms, 0.0);
        assert_eq!(report.measured_makespan_ms, 0.0);
        assert_eq!(report.overlap_efficiency(), 0.0);
        assert_eq!(report.measured_overlap_efficiency(), 0.0);
        assert!(report.stats().is_empty());
        assert!(report.calibration.fits.is_empty());
        assert_eq!(report.phase_breakdown(), PhaseBreakdown::default());
    }

    #[test]
    fn labels_and_kinds_are_reported() {
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let load = g.add_labeled(
            StageKind::ChunkLoad,
            "chunk 3 load",
            Resource::Transfer(TransferLane::HostToDevice(1)),
            &[],
            |_| outcome(1.0),
        );
        let local = g.add(StageKind::LocalTopK, Resource::Compute(1), &[load], |_| {
            outcome(1.0)
        });
        g.add(StageKind::FinalTopK, Resource::Compute(1), &[local], |_| {
            outcome(0.5)
        });
        let report = g.execute(&());
        assert_eq!(report.stages[0].label, "chunk 3 load");
        assert_eq!(report.stages[0].kind, StageKind::ChunkLoad);
        assert!(report.stages[0].kind.is_transfer());
        assert_eq!(
            format!("{}", StageKind::BucketTopKPrime),
            "bucket_topk_prime"
        );
    }

    /// The same two-resource graph, buildable repeatedly for
    /// executor-equivalence tests.
    fn two_resource_graph(g: &mut StageGraph<'_, Mutex<Vec<u32>>>) {
        let lane = Resource::Transfer(TransferLane::HostToDevice(0));
        let l0 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(3.0));
        let c0 = g.add(StageKind::LocalTopK, Resource::Compute(0), &[l0], |log| {
            log.lock().unwrap().push(10);
            outcome(4.0)
        });
        let l1 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(3.0));
        let c1 = g.add(StageKind::LocalTopK, Resource::Compute(0), &[l1], |log| {
            log.lock().unwrap().push(20);
            outcome(4.0)
        });
        g.add(
            StageKind::FinalTopK,
            Resource::Compute(0),
            &[c0, c1],
            |log| {
                let sum = log.lock().unwrap().iter().sum();
                log.lock().unwrap().push(sum);
                outcome(1.0)
            },
        );
    }

    #[test]
    fn threaded_and_serial_executors_agree_on_everything_deterministic() {
        let mut serial_graph = StageGraph::new();
        two_resource_graph(&mut serial_graph);
        let serial_log = Mutex::new(Vec::new());
        let serial = serial_graph.execute_with(&serial_log, Executor::Serial);

        let mut threaded_graph = StageGraph::new();
        two_resource_graph(&mut threaded_graph);
        let threaded_log = Mutex::new(Vec::new());
        let threaded = threaded_graph.execute_with(&threaded_log, Executor::Threaded);

        // Same context bits: the compute stages are chained on one
        // resource, so their side effects land in the same order.
        assert_eq!(
            serial_log.into_inner().unwrap(),
            threaded_log.into_inner().unwrap()
        );
        // Byte-identical modeled report.
        assert_eq!(
            serial.deterministic_summary(),
            threaded.deterministic_summary()
        );
        assert_eq!(serial.makespan_ms, threaded.makespan_ms);
        // Measured fields exist and are sane under both executors.
        for report in [&serial, &threaded] {
            for s in &report.stages {
                assert!(s.measured_end_ms >= s.measured_start_ms);
            }
            assert!(report.measured_makespan_ms >= 0.0);
            assert!(report.measured_overlap_efficiency() >= 0.0);
            assert!(report.measured_overlap_efficiency() <= 1.0);
        }
    }

    #[test]
    fn explore_executor_matches_threaded_results_and_summary() {
        let mut threaded_graph = StageGraph::new();
        two_resource_graph(&mut threaded_graph);
        let threaded_log = Mutex::new(Vec::new());
        let threaded = threaded_graph.execute_with(&threaded_log, Executor::Threaded);

        let mut explore_graph = StageGraph::new();
        two_resource_graph(&mut explore_graph);
        let explore_log = Mutex::new(Vec::new());
        let explored = explore_graph.execute_with(&explore_log, Executor::Explore);

        assert_eq!(
            threaded_log.into_inner().unwrap(),
            explore_log.into_inner().unwrap()
        );
        assert_eq!(
            threaded.deterministic_summary(),
            explored.deterministic_summary()
        );
    }

    #[test]
    fn attached_recorder_sees_the_report_bit_for_bit() {
        let rec = drtopk_obs::TraceRecorder::deterministic();
        let mut g = StageGraph::new();
        two_resource_graph(&mut g);
        g.set_trace_sink(&rec);
        let log = Mutex::new(Vec::new());
        let report = g.execute(&log);
        let spans = rec.spans();
        assert_eq!(spans.len(), report.stages.len());
        for (span, stage) in spans.iter().zip(&report.stages) {
            assert_eq!(span.start_ms.to_bits(), stage.start_ms.to_bits());
            assert_eq!(span.end_ms.to_bits(), stage.end_ms.to_bits());
            assert_eq!(span.kind, stage.kind.name());
            assert_eq!(span.label, stage.label);
            assert_eq!(span.track, stage.resource.label());
            assert_eq!(span.deps, stage.deps);
            assert!(span.queue_wait_ms >= 0.0);
        }
        // Deterministic mode: no events, measured fields zeroed.
        assert!(rec.events().is_empty());
        assert!(spans.iter().all(|s| s.measured_end_ms == 0.0));
    }

    #[test]
    fn deterministic_traces_are_byte_identical_across_executors() {
        let trace_of = |executor: Executor| {
            let rec = drtopk_obs::TraceRecorder::deterministic();
            let mut g = StageGraph::new();
            two_resource_graph(&mut g);
            g.set_trace_sink(&rec);
            let log = Mutex::new(Vec::new());
            g.execute_with(&log, executor);
            rec.chrome_trace_json()
        };
        let serial = trace_of(Executor::Serial);
        assert_eq!(serial, trace_of(Executor::Threaded));
        assert_eq!(serial, trace_of(Executor::Explore));
        drtopk_obs::validate_chrome_trace(&serial).unwrap();
    }

    #[test]
    fn full_recorder_collects_dispatch_events() {
        let rec = drtopk_obs::TraceRecorder::new();
        let mut g = StageGraph::new();
        two_resource_graph(&mut g);
        g.set_trace_sink(&rec);
        let log = Mutex::new(Vec::new());
        g.execute_with(&log, Executor::Threaded);
        let dispatches = rec
            .events()
            .iter()
            .filter(|e| e.kind == drtopk_obs::EventKind::Dispatch)
            .count();
        assert_eq!(dispatches, 5, "one dispatch per stage");
        // In debug builds the verifier gate reports its pass too.
        #[cfg(debug_assertions)]
        assert!(rec
            .events()
            .iter()
            .any(|e| e.kind == drtopk_obs::EventKind::VerifierPass));
    }

    #[test]
    fn resource_occupancy_accounts_every_resource() {
        let mut g = StageGraph::new();
        two_resource_graph(&mut g);
        let log = Mutex::new(Vec::new());
        let report = g.execute(&log);
        let rows = report.resource_occupancy();
        assert_eq!(rows.len(), 2);
        let busy_total: f64 = rows.iter().map(|(_, busy, _)| busy).sum();
        assert!((busy_total - report.serial_ms()).abs() < 1e-9);
        for &(resource, busy, occ) in &rows {
            assert!(occ > 0.0 && occ <= 1.0, "{resource:?} occupancy {occ}");
            assert!((occ - busy / report.makespan_ms).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "per-resource dispatch is FIFO")]
    fn execute_in_order_rejects_fifo_violations() {
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let lane = Resource::Transfer(TransferLane::HostToDevice(0));
        let l0 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(1.0));
        let l1 = g.add(StageKind::ChunkLoad, lane, &[], |_| outcome(1.0));
        let c = g.add(
            StageKind::LocalTopK,
            Resource::Compute(0),
            &[l0, l1],
            |_| outcome(1.0),
        );
        g.add(StageKind::FinalTopK, Resource::Compute(0), &[c], |_| {
            outcome(1.0)
        });
        // Stage 1 before stage 0 on the shared host→device lane: no worker
        // could dispatch that.
        g.execute_in_order(&(), &[1, 0, 2, 3]);
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // sleeps *are* the workload here
    fn threaded_executor_overlaps_real_wall_clock() {
        // Two independent 25 ms sleeps on different resources (a chunk
        // load feeding device 1, and device 0's own compute): the threaded
        // executor runs them concurrently, so the measured makespan lands
        // below the ~50 ms serialized sum. Retried to shrug off scheduler
        // jitter on loaded CI hosts.
        let sleepy = |ms: u64| {
            move |_: &()| {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                outcome(ms as f64)
            }
        };
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let mut g: StageGraph<'_, ()> = StageGraph::new();
            let load = g.add(
                StageKind::ChunkLoad,
                Resource::Transfer(TransferLane::HostToDevice(1)),
                &[],
                sleepy(25),
            );
            let c0 = g.add(StageKind::LocalTopK, Resource::Compute(0), &[], sleepy(25));
            let c1 = g.add(StageKind::LocalTopK, Resource::Compute(1), &[load], |_| {
                outcome(0.0)
            });
            g.add(
                StageKind::FinalTopK,
                Resource::Compute(0),
                &[c0, c1],
                |_| outcome(0.0),
            );
            let report = g.execute(&());
            attempts.push((report.measured_makespan_ms, report.measured_serial_ms()));
            if report.measured_makespan_ms < report.measured_serial_ms() {
                return;
            }
        }
        panic!("no attempt overlapped wall-clock: {attempts:?}");
    }

    #[test]
    #[should_panic(expected = "does not name an earlier stage")]
    fn cross_graph_stage_ids_are_rejected_at_add_time() {
        let mut other: StageGraph<'_, ()> = StageGraph::new();
        other.add(StageKind::FirstTopK, Resource::Compute(0), &[], |_| {
            outcome(1.0)
        });
        let foreign = other.add(StageKind::SecondTopK, Resource::Compute(0), &[], |_| {
            outcome(1.0)
        });
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        // `foreign` indexes stage 1 of `other`; `g` has no stages yet.
        g.add(
            StageKind::FirstTopK,
            Resource::Compute(0),
            &[foreign],
            |_| outcome(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "boom in stage closure")]
    fn threaded_executor_propagates_closure_panics() {
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        let bad = g.add(
            StageKind::ChunkLoad,
            Resource::Transfer(TransferLane::HostToDevice(0)),
            &[],
            |_| panic!("boom in stage closure"),
        );
        // A dependent on another resource must not deadlock waiting for
        // the poisoned stage.
        let local = g.add(StageKind::LocalTopK, Resource::Compute(0), &[bad], |_| {
            outcome(1.0)
        });
        g.add(StageKind::FinalTopK, Resource::Compute(0), &[local], |_| {
            outcome(1.0)
        });
        g.execute(&());
    }

    #[test]
    fn measured_clamps_hold_even_when_jitter_inverts_the_timeline() {
        // Hand-build a report whose measured makespan exceeds the
        // measured serial sum (possible under scheduling jitter): the
        // measured-side accessors clamp instead of going negative.
        let report = StageReport {
            stages: vec![ExecutedStage {
                kind: StageKind::LocalTopK,
                label: "jittery".into(),
                resource: Resource::Compute(0),
                deps: vec![],
                start_ms: 0.0,
                end_ms: 1.0,
                measured_start_ms: 5.0,
                measured_end_ms: 6.0,
                stats: KernelStats::default(),
            }],
            makespan_ms: 1.0,
            measured_makespan_ms: 6.0,
            calibration: CalibrationFit::default(),
        };
        assert_eq!(report.measured_serial_ms(), 1.0);
        assert_eq!(report.measured_hidden_ms(), 0.0);
        assert_eq!(report.measured_overlap_efficiency(), 0.0);
        assert!(report.hidden_ms() >= 0.0);
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // the sleep is the wall-clock noise under test
    fn deterministic_summary_excludes_measured_fields() {
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        g.add(StageKind::SecondTopK, Resource::Compute(0), &[], |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            outcome(1.5)
        });
        let a = g.execute(&()).deterministic_summary();
        let mut g: StageGraph<'_, ()> = StageGraph::new();
        g.add(StageKind::SecondTopK, Resource::Compute(0), &[], |_| {
            outcome(1.5)
        });
        let b = g.execute(&()).deterministic_summary();
        assert_eq!(
            a, b,
            "wall-clock differences must not leak into the summary"
        );
        assert!(a.contains("second_topk"));
    }
}
