//! First top-k: select the top-k *delegates* and derive which subranges
//! qualify for concatenation (Rules 1 and 3) plus the filtering threshold
//! (Rule 2).
//!
//! The first top-k differs from an ordinary k-selection in two ways the
//! paper calls out (Section 5.1):
//!
//! 1. it operates on (key = delegate value, value = subrange id) pairs,
//!    because the subrange ids of the winning delegates are what the
//!    concatenation step consumes; and
//! 2. it must be a *top-k* (identify all winners), not merely a k-selection
//!    (identify the threshold), because every qualified subrange has to be
//!    concatenated.
//!
//! The selection itself uses the optimized flag-based radix select from
//! [`crate::radix_flags`]; a follow-up scan marks the winning delegate
//! entries and groups them by subrange.

use gpu_sim::{Device, KernelStats};
use topk_baselines::TopKKey;

use crate::delegate::DelegateVector;
use crate::radix_flags::{flag_radix_select_by_key, FlagSelectConfig, ELEMS_PER_WARP};

/// Outcome of the first top-k over the delegate vector.
#[derive(Debug, Clone)]
pub struct FirstTopK<K: TopKKey = u32> {
    /// Rule 2 threshold: the k-th largest delegate value (or a safe lower
    /// bound when the last radix pass is skipped). Only elements `≥ threshold`
    /// (in the key's total order) can reach the final top-k.
    pub threshold: K,
    /// Whether `threshold` is the exact k-th delegate.
    pub exact_threshold: bool,
    /// Subranges whose **entire** β delegate set is within the top-k of the
    /// delegate vector; these are the only subranges that may still hide
    /// non-delegate candidates and therefore must be concatenated (Rule 3;
    /// with β = 1 this is simply Rule 1's qualified set).
    pub fully_taken_subranges: Vec<u32>,
    /// Delegate values taken from subranges that are *not* fully taken; they
    /// are already candidates themselves and are prepended to the
    /// concatenated vector without rescanning their subranges.
    pub partial_delegate_values: Vec<K>,
    /// Total number of delegate entries that made the top-k.
    pub taken_entries: usize,
    /// Counters accumulated by the first top-k kernels.
    pub stats: KernelStats,
    /// Modeled first top-k time in milliseconds.
    pub time_ms: f64,
}

/// Run the first top-k on a delegate vector.
///
/// `k` is the query's k; `skip_last_pass` enables the paper's optimization of
/// dropping the final radix pass when β delegates and filtering make the
/// precision unnecessary.
pub fn first_topk<K: TopKKey>(
    device: &Device,
    delegates: &DelegateVector<K>,
    k: usize,
    skip_last_pass: bool,
) -> FirstTopK<K> {
    assert!(!delegates.is_empty(), "delegate vector must not be empty");
    let k = k.min(delegates.len());
    let config = FlagSelectConfig {
        skip_last_pass,
        elems_per_warp: ELEMS_PER_WARP,
    };

    // Selection over the delegate *values* (the key column).
    let select = flag_radix_select_by_key(
        device,
        &delegates.values,
        |&v| v,
        k,
        &config,
        "drtopk_first_topk_select",
    );
    let mut stats = select.stats;
    let mut time_ms = select.time_ms;
    let threshold = select.threshold;
    let threshold_bits = threshold.to_bits();

    // Mark pass: find every delegate entry ≥ threshold and report it together
    // with its subrange id. When the threshold is exact we cap the ties so
    // exactly k entries are taken (a true top-k); with a skipped pass the
    // threshold is a lower bound and every qualifying entry is taken.
    let values = &delegates.values;
    let ids = &delegates.subrange_ids;
    let kv_words = 1 + std::mem::size_of::<K>() / std::mem::size_of::<u32>();
    let num_warps = values.len().div_ceil(ELEMS_PER_WARP).max(1);
    let launch = device.launch("drtopk_first_topk_mark", num_warps, |ctx| {
        let chunk = ctx.chunk_of(values.len());
        let vals = ctx.read_coalesced(&values[chunk.clone()]);
        let mut above: Vec<(K, u32)> = Vec::new();
        let mut ties: Vec<(K, u32)> = Vec::new();
        for (offset, &v) in vals.iter().enumerate() {
            let vb = v.to_bits();
            if vb >= threshold_bits {
                let id = ids[chunk.start + offset];
                ctx.record_load_coalesced::<u32>(1);
                if vb > threshold_bits {
                    above.push((v, id));
                } else {
                    ties.push((v, id));
                }
            }
            ctx.record_alu(1);
        }
        ctx.record_store_coalesced::<u32>(kv_words * (above.len() + ties.len()));
        (above, ties)
    });
    stats += launch.stats;
    time_ms += launch.time_ms;

    let mut above: Vec<(K, u32)> = Vec::new();
    let mut ties: Vec<(K, u32)> = Vec::new();
    for (a, t) in launch.output {
        above.extend(a);
        ties.extend(t);
    }

    let taken: Vec<(K, u32)> = if select.exact {
        // exactly k entries: all strictly-above entries plus enough ties
        let need = k.saturating_sub(above.len());
        above.extend(ties.into_iter().take(need));
        above
    } else {
        // relaxed threshold: everything ≥ threshold is taken (correct, just
        // admits a few extra subranges, as the paper's skipping accepts)
        above.extend(ties);
        above
    };

    // Group the taken entries per subrange to apply Rule 3.
    let beta = delegates.beta;
    let mut per_subrange: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for &(_, id) in &taken {
        *per_subrange.entry(id).or_insert(0) += 1;
    }
    // A short final subrange (or a subrange smaller than β) holds fewer than
    // β delegate entries; it counts as fully taken once all the delegates it
    // *has* are taken.
    let regular_entries = beta.min(delegates.subrange_size);
    let tail_entries = delegates
        .len()
        .saturating_sub((delegates.num_subranges - 1) * regular_entries)
        .max(1);
    let entries_of = |id: u32| -> usize {
        if id as usize + 1 == delegates.num_subranges {
            tail_entries
        } else {
            regular_entries
        }
    };

    let mut fully_taken_subranges: Vec<u32> = Vec::new();
    let mut partial_ids: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (&id, &count) in &per_subrange {
        if count as usize >= entries_of(id) {
            fully_taken_subranges.push(id);
        } else {
            partial_ids.insert(id);
        }
    }
    fully_taken_subranges.sort_unstable();

    let partial_delegate_values: Vec<K> = taken
        .iter()
        .filter(|&&(_, id)| partial_ids.contains(&id))
        .map(|&(v, _)| v)
        .collect();

    FirstTopK {
        threshold,
        exact_threshold: select.exact,
        fully_taken_subranges,
        partial_delegate_values,
        taken_entries: taken.len(),
        stats,
        time_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegate::{build_delegate_vector, ConstructionMethod};
    use gpu_sim::DeviceSpec;
    use topk_baselines::reference_kth;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    fn build(data: &[u32], alpha: u32, beta: usize, dev: &Device) -> DelegateVector {
        build_delegate_vector(dev, data, alpha, beta, ConstructionMethod::Auto)
    }

    #[test]
    fn threshold_is_kth_delegate() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 3);
        let dv = build(&data, 8, 1, &dev);
        let k = 37;
        let got = first_topk(&dev, &dv, k, false);
        assert_eq!(got.threshold, reference_kth(&dv.values, k));
        assert!(got.exact_threshold);
        assert_eq!(got.taken_entries, k);
    }

    #[test]
    fn rule1_beta1_every_taken_subrange_is_fully_taken() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 9);
        let dv = build(&data, 8, 1, &dev);
        let got = first_topk(&dev, &dv, 64, false);
        // β = 1: a taken delegate always exhausts its subrange's delegates
        assert!(got.partial_delegate_values.is_empty());
        assert_eq!(got.fully_taken_subranges.len(), 64);
        // subrange ids must be valid and unique
        let mut ids = got.fully_taken_subranges.clone();
        ids.dedup();
        assert_eq!(ids.len(), 64);
        assert!(ids.iter().all(|&id| (id as usize) < dv.num_subranges));
    }

    #[test]
    fn rule3_beta2_partial_subranges_contribute_only_their_delegates() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 21);
        let dv = build(&data, 8, 2, &dev);
        let k = 41;
        let got = first_topk(&dev, &dv, k, false);
        assert_eq!(
            got.taken_entries,
            got.partial_delegate_values.len() + 2 * got.fully_taken_subranges.len(),
            "every taken entry is either a partial delegate or part of a fully taken subrange"
        );
        assert_eq!(got.taken_entries, k);
        // the threshold bounds every partial delegate from below
        assert!(got
            .partial_delegate_values
            .iter()
            .all(|&v| v >= got.threshold));
    }

    #[test]
    fn skipping_last_pass_takes_at_least_k_entries() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 14, 5);
        let dv = build(&data, 8, 2, &dev);
        let k = 100;
        let exact = first_topk(&dev, &dv, k, false);
        let relaxed = first_topk(&dev, &dv, k, true);
        assert!(relaxed.threshold <= exact.threshold);
        assert!(!relaxed.exact_threshold);
        assert!(relaxed.taken_entries >= k);
        assert!(relaxed.fully_taken_subranges.len() >= exact.fully_taken_subranges.len());
    }

    #[test]
    fn duplicate_heavy_input_does_not_over_take() {
        let dev = device();
        let data = vec![1000u32; 4096];
        let dv = build(&data, 6, 1, &dev);
        let got = first_topk(&dev, &dv, 5, false);
        assert_eq!(got.taken_entries, 5);
        assert_eq!(got.fully_taken_subranges.len(), 5);
        assert_eq!(got.threshold, 1000);
    }

    #[test]
    fn k_larger_than_delegate_vector_is_clamped() {
        let dev = device();
        let data: Vec<u32> = (0..256u32).collect();
        let dv = build(&data, 6, 1, &dev); // 4 subranges, 4 delegates
        let got = first_topk(&dev, &dv, 1000, false);
        assert_eq!(got.taken_entries, 4);
        assert_eq!(got.fully_taken_subranges.len(), 4);
    }

    #[test]
    fn short_tail_subrange_can_be_fully_taken() {
        let dev = device();
        // 2^6-element subranges; the last subrange has a single element which
        // happens to be the global maximum.
        let mut data: Vec<u32> = (0..257u32).collect();
        data[256] = 1_000_000;
        let dv = build(&data, 6, 2, &dev);
        let got = first_topk(&dev, &dv, 3, false);
        assert!(
            got.fully_taken_subranges.contains(&4),
            "the single-element tail subrange only has one delegate and it is taken: {:?}",
            got
        );
    }
}
