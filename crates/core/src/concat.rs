//! Warp-centric concatenation with delegate-top-k-enabled filtering
//! (Sections 4.2 and 5.1), generic over any [`TopKKey`].
//!
//! The subranges that the first top-k fully qualified are copied into a new,
//! much smaller *concatenated vector* on which the second top-k runs. When
//! filtering (Rule 2) is enabled, only the elements that are at least the
//! k-th delegate value are copied; since the number of surviving elements
//! per subrange is unknown in advance, each warp claims output positions
//! with an atomic counter, exactly as the paper describes.
//!
//! The host-side gather allocates exactly the surviving elements: each
//! simulated warp returns the elements it kept and they are appended to the
//! output directly, instead of materializing the full
//! `fully_taken × subrange_size` upper-bound buffer and copying a prefix of
//! it (which doubled the allocation on the hot path).

use gpu_sim::{AtomicCounter, Device, KernelStats};
use topk_baselines::TopKKey;

/// Result of the concatenation step.
#[derive(Debug, Clone)]
pub struct Concatenated<K: TopKKey = u32> {
    /// The concatenated vector: partial delegates first, then every element
    /// gathered from the fully-taken subranges (filtered if requested).
    pub elements: Vec<K>,
    /// How many of `elements` came straight from partially-taken subranges'
    /// delegates (no subrange scan was needed for them).
    pub partial_delegates: usize,
    /// Counters accumulated by the concatenation kernel.
    pub stats: KernelStats,
    /// Modeled concatenation time in milliseconds.
    pub time_ms: f64,
}

/// Concatenate the fully-taken subranges of `data` (ids in
/// `fully_taken_subranges`, subrange size `subrange_size`), prepending
/// `partial_delegate_values`, filtering by `threshold` when
/// `filtering` is true.
pub fn concatenate<K: TopKKey>(
    device: &Device,
    data: &[K],
    subrange_size: usize,
    fully_taken_subranges: &[u32],
    partial_delegate_values: &[K],
    threshold: K,
    filtering: bool,
) -> Concatenated<K> {
    let mut stats = KernelStats::default();
    let mut time_ms = 0.0;

    if fully_taken_subranges.is_empty() {
        // Rule 3 special case (Figure 8b): nothing to scan at all.
        return Concatenated {
            elements: partial_delegate_values.to_vec(),
            partial_delegates: partial_delegate_values.len(),
            stats,
            time_ms,
        };
    }

    let threshold_bits = threshold.to_bits();
    let cursor = AtomicCounter::new(0);

    // One simulated warp per group of qualified subranges.
    let num_warps = fully_taken_subranges.len().clamp(1, 1 << 14);
    let launch = device.launch("drtopk_concatenation", num_warps, |ctx| {
        let share = ctx.chunk_of(fully_taken_subranges.len());
        // reading the qualified subrange ids produced by the first top-k
        let ids = ctx.read_coalesced(&fully_taken_subranges[share]);
        let mut gathered: Vec<K> = Vec::new();
        for &id in ids {
            let start = (id as usize) * subrange_size;
            let end = (start + subrange_size).min(data.len());
            let slice = ctx.read_coalesced(&data[start..end]);
            let mut kept: Vec<K> = Vec::with_capacity(slice.len());
            for &x in slice {
                if !filtering || x.to_bits() >= threshold_bits {
                    kept.push(x);
                }
                ctx.record_alu(1);
            }
            if !kept.is_empty() {
                // the eligible count is unknown beforehand: claim positions
                // with an atomic, then store (warp-aggregated)
                cursor.fetch_add(ctx, kept.len() as u64);
                ctx.record_store_coalesced::<K>(kept.len());
                gathered.append(&mut kept);
            }
        }
        gathered
    });
    stats += launch.stats;
    time_ms += launch.time_ms;

    let gathered_len = cursor.load() as usize;
    let mut elements: Vec<K> = Vec::with_capacity(partial_delegate_values.len() + gathered_len);
    elements.extend_from_slice(partial_delegate_values);
    for warp_kept in launch.output {
        elements.extend(warp_kept);
    }
    debug_assert_eq!(elements.len(), partial_delegate_values.len() + gathered_len);

    Concatenated {
        elements,
        partial_delegates: partial_delegate_values.len(),
        stats,
        time_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::with_host_threads(DeviceSpec::v100s(), 4)
    }

    #[test]
    fn concatenates_whole_subranges_without_filtering() {
        let dev = device();
        let data: Vec<u32> = (0..64u32).collect();
        let got = concatenate(&dev, &data, 16, &[1, 3], &[], 0, false);
        let mut sorted = got.elements.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (16..32).chain(48..64).collect();
        assert_eq!(sorted, expected);
        assert_eq!(got.partial_delegates, 0);
    }

    #[test]
    fn filtering_drops_small_elements() {
        let dev = device();
        let data: Vec<u32> = (0..64u32).collect();
        let got = concatenate(&dev, &data, 16, &[3], &[], 60, true);
        let mut sorted = got.elements.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![60, 61, 62, 63]);
    }

    #[test]
    fn partial_delegates_are_prepended() {
        let dev = device();
        let data: Vec<u32> = (0..32u32).collect();
        let got = concatenate(&dev, &data, 16, &[1], &[100, 101], 30, true);
        assert_eq!(&got.elements[..2], &[100, 101]);
        assert_eq!(got.partial_delegates, 2);
        let mut rest = got.elements[2..].to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![30, 31]);
    }

    #[test]
    fn no_fully_taken_subranges_skips_the_scan() {
        let dev = device();
        dev.reset_stats();
        let data: Vec<u32> = (0..32u32).collect();
        let got = concatenate(&dev, &data, 16, &[], &[31, 30], 30, true);
        assert_eq!(got.elements, vec![31, 30]);
        assert!(got.stats.is_empty());
        assert!(dev.stats().kernels.is_empty(), "no kernel must be launched");
    }

    #[test]
    fn tail_subrange_shorter_than_subrange_size() {
        let dev = device();
        let data: Vec<u32> = (0..40u32).collect(); // subrange 2 has 8 elements
        let got = concatenate(&dev, &data, 16, &[2], &[], 0, false);
        let mut sorted = got.elements.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (32..40).collect::<Vec<u32>>());
    }

    #[test]
    fn filtering_uses_atomics_for_positions() {
        let dev = device();
        let data = topk_datagen::uniform(1 << 12, 7);
        let got = concatenate(&dev, &data, 64, &[0, 5, 9, 60], &[], 1 << 30, true);
        assert!(got.stats.atomic_operations > 0);
        // every surviving element really is above the filter
        assert!(got.elements.iter().all(|&x| x >= 1 << 30));
    }

    #[test]
    fn gather_allocates_exactly_the_survivors() {
        // Regression for the double-allocation bug: the output vector's
        // capacity must match the surviving element count, not the
        // fully_taken × subrange_size upper bound.
        let dev = device();
        let data: Vec<u32> = (0..1024u32).collect();
        // threshold keeps only the top 8 values of the last subrange
        let got = concatenate(&dev, &data, 256, &[0, 1, 2, 3], &[7], 1016, true);
        assert_eq!(got.elements.len(), 9);
        assert!(
            got.elements.capacity() < 64,
            "capacity {} must track survivors, not the 1024-element upper bound",
            got.elements.capacity()
        );
    }

    #[test]
    fn float_keys_filter_in_total_order() {
        let dev = device();
        let data: Vec<f32> = vec![-2.0, -1.0, 0.5, 3.0, f32::NEG_INFINITY, 7.5, -0.0, 8.0];
        let got = concatenate(&dev, &data, 4, &[0, 1], &[], 0.5, true);
        let mut sorted = got.elements.clone();
        sorted.sort_unstable_by(f32::total_cmp);
        assert_eq!(sorted, vec![0.5, 3.0, 7.5, 8.0]);
    }
}
