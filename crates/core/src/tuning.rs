//! Subrange-size (α) tuning: the analytic cost model of Section 5.2 and
//! Rule 4, plus an empirical oracle search.
//!
//! The total Dr. Top-k time is
//! `T = T_Delegate + T_FirstK + T_Concat + T_SecondK` (Equation 1), each term
//! expressed in global-memory accesses and shuffle instructions
//! (Equations 2–5). `T` is convex in α (Equations 8–9), so the optimum is the
//! zero of the derivative, giving Rule 4 / Equation 11:
//!
//! ```text
//! α = ½ · (log2 |V| − log2 k + const)
//! ```
//!
//! The paper sets `const = 3` on the V100S after performance tuning; the
//! analytic value `log2(6·C_global + 31·C_shfl) − log2(6·C_global)` is also
//! available from [`gpu_sim::DeviceSpec::rule4_const_analytic`].

use gpu_sim::DeviceSpec;
use topk_baselines::{KeyBits, TopKKey};

use crate::approx::{expected_recall, required_budget, RecallTarget};

/// The `const` term of Rule 4 that the paper reports as the tuned value for
/// its V100S platform.
pub const PAPER_RULE4_CONST: f64 = 3.0;

/// Predicted per-phase cost of Dr. Top-k in abstract *cycles* (Equations
/// 2–5), for maximum delegate (β = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedCost {
    /// Delegate vector construction (Equation 2).
    pub delegate: f64,
    /// First top-k (Equation 3).
    pub first_topk: f64,
    /// Concatenation (Equation 4).
    pub concat: f64,
    /// Second top-k (Equation 5).
    pub second_topk: f64,
}

impl PredictedCost {
    /// Total predicted cost (Equation 6).
    pub fn total(&self) -> f64 {
        self.delegate + self.first_topk + self.concat + self.second_topk
    }
}

/// Evaluate the Section 5.2 cost model for subrange exponent `alpha`,
/// query size `k`, input size `n` and the device constants of `spec`.
pub fn predicted_cost(alpha: f64, k: usize, n: usize, spec: &DeviceSpec) -> PredictedCost {
    let c_global = spec.c_global_cycles;
    let c_shfl = spec.c_shfl_cycles;
    let v = n as f64;
    let k = k as f64;
    let sub = 2f64.powf(alpha);

    // Equation 2: read |V|, write |V|/2^α delegates, 31 shuffles per subrange.
    let delegate = (1.0 + 1.0 / sub) * v * c_global + 31.0 * (v / sub) * c_shfl;
    // Equation 3: the in-place radix first top-k reads the delegate vector
    // five times (4 digit passes + 1 identification pass) and writes k
    // (value, subrange-id) pairs.
    let first_topk = 5.0 * (v / sub) * c_global + 2.0 * k * c_global;
    // Equation 4: read k subrange indices, copy k subranges in and out.
    let concat = k * c_global + 2.0 * k * sub * c_global;
    // Equation 5: the second top-k reads the concatenated vector four times.
    let second_topk = 4.0 * k * sub * c_global;

    PredictedCost {
        delegate,
        first_topk,
        concat,
        second_topk,
    }
}

/// Rule 4 (Equation 11): the optimal subrange exponent as a real number.
pub fn rule4_alpha(n: usize, k: usize, const_term: f64) -> f64 {
    assert!(n > 0 && k > 0);
    0.5 * ((n as f64).log2() - (k as f64).log2() + const_term)
}

/// The auto-tuned integer α used by [`crate::DrTopKConfig::auto`]: Rule 4
/// with the paper's tuned constant, rounded to the nearest integer and
/// clamped to a sane range (at least 1, at most log2 |V| − 1 so there are
/// always ≥ 2 subranges, and never below log2 β so a subrange can hold its
/// β delegates).
pub fn auto_alpha(n: usize, k: usize, beta: usize, const_term: f64) -> u32 {
    assert!(n > 1, "need at least two elements to partition");
    let k = k.clamp(1, n);
    let raw = rule4_alpha(n, k, const_term);
    let max_alpha = ((n as f64).log2().floor() as u32).saturating_sub(1).max(1);
    let min_alpha = (beta.max(1) as f64).log2().ceil() as u32;
    (raw.round() as i64).clamp(min_alpha.max(1) as i64, max_alpha as i64) as u32
}

/// Minimize the analytic model over integer α (used to cross-check Rule 4
/// and by the Figure 13/14 harnesses as the model-side optimum).
pub fn model_optimal_alpha(n: usize, k: usize, spec: &DeviceSpec) -> u32 {
    let max_alpha = ((n as f64).log2().floor() as u32).saturating_sub(1).max(1);
    (1..=max_alpha)
        .min_by(|&a, &b| {
            let ca = predicted_cost(a as f64, k, n, spec).total();
            let cb = predicted_cost(b as f64, k, n, spec).total();
            ca.partial_cmp(&cb).unwrap()
        })
        .unwrap_or(1)
}

/// The resolved bucketing of one recall-targeted approximate query: the
/// subrange exponent, the per-bucket candidate budget, and what the recall
/// model predicts for that pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxTuning {
    /// Bucket exponent (bucket size `2^alpha`).
    pub alpha: u32,
    /// Per-bucket candidate budget `k'` (the construction β).
    pub budget: usize,
    /// Number of buckets `⌈n / 2^alpha⌉`.
    pub num_buckets: usize,
    /// Candidate-vector size the second stage selects over (upper bound
    /// `num_buckets × budget`; short tail buckets may contribute less).
    pub candidates: usize,
    /// The recall the analytic model predicts for `(alpha, budget)` — at
    /// least the target by construction.
    pub predicted_recall: f64,
}

/// Pick the `(α, k')` pair for a recall-targeted approximate query: the
/// bucketing that **minimises the candidate count** subject to
/// [`expected_recall`] meeting `target`, over bucketings with at least
/// `2k` buckets.
///
/// Unlike Rule 4, the optimum needs no device constants: every candidate
/// costs one extra construction store plus ~5 candidate-top-k accesses
/// regardless of the split (both terms scale with `num_buckets × budget`),
/// so minimising the candidate count minimises every device's cost — see
/// [`predicted_approx_cost`] for the full model. Ties prefer the larger α
/// (fewer buckets ⇒ fewer warp reductions during construction).
///
/// The `num_buckets ≥ 2k` floor is a variance guard, following the
/// bucketed approximate-top-k literature: [`expected_recall`] constrains
/// only the *mean*, and with few buckets the loss is concentrated — a
/// single hot bucket overflowing its budget drops several winners at
/// once, so measured recall swings far around the prediction. With ≥ 2k
/// buckets (mean occupancy ≤ ½) the loss is a sum of many small
/// independent overflow events and concentrates tightly.
///
/// Returns `None` when no bucketing helps: the input is too small to
/// partition into `2k` buckets, `k` is not smaller than the input, or
/// every recall-meeting candidate set would be at least as large as the
/// input itself (the caller should fall back to the exact path, whose
/// recall trivially meets any target).
pub fn optimal_approx_tuning(n: usize, k: usize, target: RecallTarget) -> Option<ApproxTuning> {
    if k == 0 || n < 4 || k >= n {
        return None;
    }
    // Size budgets for the inflated planning target (see
    // [`RecallTarget::with_planning_headroom`]); the reported
    // `predicted_recall` is the honest model value for the chosen budget.
    let planning_target = target.with_planning_headroom();
    let max_alpha = ((n as f64).log2().floor() as u32).saturating_sub(1).max(1);
    let mut best: Option<ApproxTuning> = None;
    for alpha in 1..=max_alpha {
        let bucket_size = 1usize << alpha;
        if bucket_size >= n {
            break;
        }
        let num_buckets = n.div_ceil(bucket_size);
        if num_buckets < 2 || num_buckets < 2 * k {
            break;
        }
        let budget = required_budget(k, num_buckets, planning_target);
        if budget > bucket_size {
            // a bucket cannot hold the budget the model demands here
            continue;
        }
        let candidates = num_buckets * budget;
        // the second stage must still be a real reduction, and it must be
        // able to produce k winners even with a short tail bucket
        if candidates >= n || (num_buckets - 1) * budget + 1 < k {
            continue;
        }
        let tuning = ApproxTuning {
            alpha,
            budget,
            num_buckets,
            candidates,
            predicted_recall: expected_recall(k, num_buckets, budget),
        };
        // strict `<`: on a candidate-count tie the later (larger) α wins,
        // matching the documented preference for fewer buckets
        best = match best {
            Some(b) if b.candidates < candidates => Some(b),
            _ => Some(tuning),
        };
    }
    best
}

/// Predicted per-phase cost of the approximate mode in abstract cycles,
/// mirroring [`predicted_cost`]'s Equations 2–5 shape: the construction
/// term generalises Equation 2 to β = `budget` delegates per bucket, the
/// first-top-k and concatenation terms are zero (those phases are skipped),
/// and the second top-k reads the `(|V|/2^α)·k'` candidate vector five
/// times (4 digit passes + 1 identification pass) and writes k winners.
pub fn predicted_approx_cost(
    alpha: f64,
    budget: usize,
    k: usize,
    n: usize,
    spec: &DeviceSpec,
) -> PredictedCost {
    let c_global = spec.c_global_cycles;
    let c_shfl = spec.c_shfl_cycles;
    let v = n as f64;
    let kf = k as f64;
    let sub = 2f64.powf(alpha);
    let candidates = (v / sub) * budget as f64;

    // Equation 2 generalised: read |V|, write budget candidates per bucket,
    // 31 shuffles per reduction × budget reductions per bucket.
    let delegate =
        (1.0 + budget as f64 / sub) * v * c_global + 31.0 * budget as f64 * (v / sub) * c_shfl;
    let second_topk = 5.0 * candidates * c_global + 2.0 * kf * c_global;

    PredictedCost {
        delegate,
        first_topk: 0.0,
        concat: 0.0,
        second_topk,
    }
}

/// Numerically verify convexity of the model total around the evaluated α
/// grid (second difference ≥ 0). Returns true when the sampled curve is
/// convex; the property test in this module and the Figure 13 harness rely
/// on it.
pub fn is_convex_in_alpha(k: usize, n: usize, spec: &DeviceSpec, alphas: &[f64]) -> bool {
    if alphas.len() < 3 {
        return true;
    }
    let costs: Vec<f64> = alphas
        .iter()
        .map(|&a| predicted_cost(a, k, n, spec).total())
        .collect();
    costs
        .windows(3)
        .all(|w| w[0] + w[2] >= 2.0 * w[1] - 1e-6 * w[1])
}

/// Which execution path a query is pinned to.
///
/// The delegate pipeline (the paper's design) wins at small-to-moderate k;
/// hierarchical multi-pass radix select keeps scaling as k grows into the
/// 10⁴–10⁵ range where delegate/bucket approaches degrade (RadiK's
/// observation — see PAPER_MAP.md). `Auto` defers the decision to
/// [`choose_path`] at execution time, where the key width and the device
/// profile are known; the pinned variants exist so tests and benches can
/// force either path.
///
/// Approximate-mode plans ignore the hint: the recall-targeted bucket
/// machinery has no radix twin. A shared delegate vector also pins the
/// delegate path — the caller already paid for construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PathHint {
    /// Let [`choose_path`] pick per `(n, k, key_bits, device)`.
    #[default]
    Auto,
    /// Always run the delegate pipeline (Figure 3b).
    Delegate,
    /// Always run the hierarchical multi-pass radix-select pipeline.
    Radix,
}

impl PathHint {
    /// Every hint, in declaration order.
    pub const ALL: [PathHint; 3] = [PathHint::Auto, PathHint::Delegate, PathHint::Radix];

    /// Display name used by harnesses and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            PathHint::Auto => "auto",
            PathHint::Delegate => "delegate",
            PathHint::Radix => "radix",
        }
    }

    /// Resolve the hint into a concrete path: pins map to themselves,
    /// `Auto` defers to the data-blind [`choose_path`]. Seams that hold
    /// the input use [`PathHint::resolve_for`] instead.
    pub fn resolve(&self, n: usize, k: usize, key_bits: u32, spec: &DeviceSpec) -> ChosenPath {
        match self {
            PathHint::Auto => choose_path(n, k, key_bits, spec),
            PathHint::Delegate => ChosenPath::Delegate,
            PathHint::Radix => ChosenPath::Radix,
        }
    }

    /// Data-aware resolution: pins map to themselves, `Auto` defers to
    /// [`choose_path_sampled`] over the actual input — so a duplicate-heavy
    /// corpus stays on the delegate path even at k far past the
    /// well-distributed crossover.
    pub fn resolve_for<K: TopKKey>(&self, data: &[K], k: usize, spec: &DeviceSpec) -> ChosenPath {
        match self {
            PathHint::Auto => choose_path_sampled(data, k, spec),
            PathHint::Delegate => ChosenPath::Delegate,
            PathHint::Radix => ChosenPath::Radix,
        }
    }
}

impl std::fmt::Display for PathHint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The execution path [`choose_path`] resolved a query to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChosenPath {
    /// The delegate pipeline.
    Delegate,
    /// The multi-pass radix-select pipeline.
    Radix,
}

impl ChosenPath {
    /// Display name used by harnesses and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            ChosenPath::Delegate => "delegate",
            ChosenPath::Radix => "radix",
        }
    }
}

impl std::fmt::Display for ChosenPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Predicted per-stage cost of the multi-pass radix-select path in abstract
/// cycles, mirroring the Equations 2–5 shape of [`PredictedCost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadixPredictedCost {
    /// Digit-histogram passes (read the shrinking candidate set once per
    /// pass; pass 0 also writes the fused sampled-filter output).
    pub histogram: f64,
    /// Candidate refinement passes (re-read the candidates — the filter
    /// output after a pass-0 hit — and write the survivors plus the
    /// collected above-threshold elements out of place).
    pub compact: f64,
    /// Candidate assembly (read the collected above-set, write exactly k
    /// candidates — `O(k)`, no input re-scan).
    pub gather: f64,
    /// Final ordering of the gathered k (a small radix top-k).
    pub select: f64,
}

impl RadixPredictedCost {
    /// Total predicted cost.
    pub fn total(&self) -> f64 {
        self.histogram + self.compact + self.gather + self.select
    }
}

/// Per-pass candidate survival fraction the *data-blind* radix cost model
/// assumes: 8-bit digits split the candidates into 256 buckets, and on
/// well-distributed keys only the bucket holding the k-th value survives.
/// When the input is at hand, [`estimate_radix_survival`] measures the
/// actual survival from a sample instead — adversarially low-entropy keys
/// shrink much slower (up to not at all), which is exactly what routes
/// them back to the delegate path.
pub const RADIX_DIGIT_SURVIVAL: f64 = 1.0 / 256.0;

/// Multiplier [`choose_path`] applies to the modeled radix makespan before
/// comparing it with the delegate model.
///
/// Both sides are expressed in modeled microseconds (global traffic over
/// effective bandwidth plus per-kernel launch overhead), built from the
/// same [`DeviceSpec`] constants the simulator charges — so after the
/// sampled-filter optimisation the analytic crossover lands in the same
/// inter-sample gap as the measured one (`large_k_sweep`) with no
/// correction. The constant stays as the single re-tuning knob should the
/// pipelines and the model drift apart again.
pub const RADIX_MODEL_CALIBRATION: f64 = 1.0;

/// Kernel launches the delegate pipeline issues, as charged by the modeled
/// crossover: delegate-vector construction, the five-pass in-place first
/// top-k, subrange concatenation, the five-pass second top-k, and the
/// refill/identification step.
const DELEGATE_MODEL_LAUNCHES: f64 = 13.0;

/// Kernel launches the radix path issues for a given number of digit
/// passes: the sample probe, a histogram + refine pair per pass, the
/// `O(k)` gather, and the ~5-launch inner select.
fn radix_model_launches(passes: u32) -> f64 {
    2.0 * f64::from(passes) + 7.0
}

/// Modeled makespan in microseconds: `cycles / C_global` global accesses
/// of `key_bytes` each over the device's effective bandwidth, plus the
/// fixed per-kernel launch overhead. This is what makes the crossover
/// scale-aware: at small `|V|` the launch term dominates and the delegate
/// pipeline's shorter schedule wins even when radix moves fewer bytes.
fn modeled_path_us(cycles: f64, launches: f64, key_bytes: f64, spec: &DeviceSpec) -> f64 {
    let bytes_per_us = spec.mem_bandwidth_gbps * spec.mem_efficiency * 1e3;
    (cycles / spec.c_global_cycles) * key_bytes / bytes_per_us + launches * spec.launch_overhead_us
}

/// Evaluate the radix-path cost model for an `n`-element input of
/// `key_bits`-wide keys and the device constants of `spec`, assuming the
/// data-blind [`RADIX_DIGIT_SURVIVAL`] per-pass shrink.
pub fn radix_predicted_cost(
    n: usize,
    k: usize,
    key_bits: u32,
    spec: &DeviceSpec,
) -> RadixPredictedCost {
    radix_predicted_cost_with_survival(n, k, key_bits, spec, RADIX_DIGIT_SURVIVAL)
}

/// Evaluate the radix-path cost model under an explicit per-pass candidate
/// `survival` fraction (as sampled by [`estimate_radix_survival`]).
///
/// The model mirrors the staged pipeline stage by stage: pass 0 reads the
/// input once and writes the fused sampled-filter output (sized
/// `max(2k, n/128, n·survival)` — the filter's headroom target, its
/// minimum sample floor, or the chosen bucket itself, whichever is
/// largest); each refine pass reads the current candidates and writes the
/// `survival`-fraction survivors; the gather and select are `O(k)`. When
/// the predicted filter output exceeds `n/4` the filter is modeled as
/// disabled — exactly the pipeline's bail-out — and every pass re-reads
/// the full, barely-shrinking candidate set, which is what prices
/// duplicate-heavy adversarial keys out of the radix path. Unlike Rule 4
/// there is no free parameter to tune: the cost is fixed by
/// `(n, k, key_bits, survival)`, and k enters only through the filter
/// width and the `O(k)` tail, never multiplied by a subrange size.
pub fn radix_predicted_cost_with_survival(
    n: usize,
    k: usize,
    key_bits: u32,
    spec: &DeviceSpec,
    survival: f64,
) -> RadixPredictedCost {
    let c_global = spec.c_global_cycles;
    let nf = n.max(1) as f64;
    let kf = k.min(n) as f64;
    let s = survival.clamp(1.0 / nf, 1.0);
    let passes = key_bits.div_ceil(8);
    let kept_frac = (crate::radix_path::FILTER_HEADROOM as f64 * kf / nf)
        .max(crate::radix_path::MIN_SAMPLE_TARGET as f64 / crate::radix_path::SAMPLE_SIZE as f64)
        .max(s);
    let filter_on = kept_frac <= 1.0 / crate::radix_path::FILTER_BAILOUT_DIV as f64;
    let mut histogram = 0.0;
    let mut compact = 0.0;
    let mut remaining = nf;
    for pass in 0..passes {
        if remaining <= 1.0 {
            // the k-th value is pinned down early (the staged pipeline's
            // no-op tail stages)
            break;
        }
        let survivors = (remaining * s).max(1.0);
        if pass == 0 && filter_on {
            let kept = nf * kept_frac;
            histogram += (remaining + kept) * c_global;
            compact += (kept + survivors) * c_global;
        } else {
            histogram += remaining * c_global;
            compact += (remaining + survivors) * c_global;
        }
        remaining = survivors;
    }
    let gather = 2.0 * kf * c_global;
    let select = 5.0 * kf * c_global;
    RadixPredictedCost {
        histogram,
        compact,
        gather,
        select,
    }
}

/// Estimate the radix path's per-pass candidate survival from the data: a
/// deterministic strided sample's top-digit histogram, reduced to the
/// largest single-bucket share.
///
/// Uniform keys land near `1/256` (every bucket holds a sample-noise-sized
/// share); low-entropy keys that concentrate in one top digit return
/// close to 1.0, which prices every radix pass at a full re-scan and
/// disables the modeled filter — the planner then keeps such inputs on
/// the delegate path at every k. The sample is strided (no RNG), so the
/// estimate — and therefore [`choose_path_sampled`] — is a pure function
/// of the data.
pub fn estimate_radix_survival<K: TopKKey>(data: &[K]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let sample_n = data.len().min(crate::radix_path::SAMPLE_SIZE);
    let stride = data.len() / sample_n;
    let shift = <K::Bits as KeyBits>::BITS - 8;
    let digit_mask = K::Bits::from_u64(255);
    let mut hist = [0u32; 256];
    for i in 0..sample_n {
        let bits = data[i * stride].to_bits();
        hist[((bits >> shift) & digit_mask).as_digit()] += 1;
    }
    f64::from(hist.iter().copied().max().unwrap_or(0)) / sample_n as f64
}

/// The planner crossover: pick the cheaper execution path for a top-k query
/// of `k` over `n` keys of `key_bits` bits on the device described by
/// `spec`, under an explicit sampled `survival` fraction.
///
/// Compares the Equations 2–5 delegate model at the Rule 4 α (the α the
/// pipeline itself would resolve) against
/// [`radix_predicted_cost_with_survival`], both converted to modeled
/// microseconds — global traffic over the device's effective bandwidth
/// plus per-kernel launch overhead (`modeled_path_us`) — and the radix
/// side scaled by [`RADIX_MODEL_CALIBRATION`]. Both models are built from
/// the same per-device constants, so the crossover moves with the
/// hardware profile. The delegate side grows like `√(n·k)` (concatenation
/// and second top-k at the shrinking Rule 4 subrange size) while the
/// radix side is one input scan plus `O(k)`, so on well-distributed keys
/// every device has a single crossover k; on low-survival-shrink
/// (duplicate-heavy) keys the radix side prices at several full scans and
/// the delegate path wins everywhere.
///
/// Degenerate shapes (`k == 0`, `k ≥ n`, tiny inputs) return
/// [`ChosenPath::Delegate`]: the delegate pipeline owns the fallback
/// machinery for them.
pub fn choose_path_with_survival(
    n: usize,
    k: usize,
    key_bits: u32,
    spec: &DeviceSpec,
    survival: f64,
) -> ChosenPath {
    if k == 0 || n < 4 || k >= n {
        return ChosenPath::Delegate;
    }
    let key_bytes = f64::from(key_bits) / 8.0;
    let alpha = auto_alpha(n, k, 2, PAPER_RULE4_CONST);
    let delegate = modeled_path_us(
        predicted_cost(alpha as f64, k, n, spec).total(),
        DELEGATE_MODEL_LAUNCHES,
        key_bytes,
        spec,
    );
    let radix = modeled_path_us(
        radix_predicted_cost_with_survival(n, k, key_bits, spec, survival).total(),
        radix_model_launches(key_bits.div_ceil(8)),
        key_bytes,
        spec,
    ) * RADIX_MODEL_CALIBRATION;
    if radix < delegate {
        ChosenPath::Radix
    } else {
        ChosenPath::Delegate
    }
}

/// Data-blind crossover: [`choose_path_with_survival`] at the
/// well-distributed [`RADIX_DIGIT_SURVIVAL`] default. Used where only the
/// query shape is known; resolution seams that hold the input prefer
/// [`choose_path_sampled`].
pub fn choose_path(n: usize, k: usize, key_bits: u32, spec: &DeviceSpec) -> ChosenPath {
    choose_path_with_survival(n, k, key_bits, spec, RADIX_DIGIT_SURVIVAL)
}

/// Data-aware crossover: measure the per-pass survival from the input via
/// [`estimate_radix_survival`], then resolve through
/// [`choose_path_with_survival`]. This is what the pipeline's `Auto` seam
/// and the engine planner call — it keeps duplicate-heavy inputs on the
/// delegate path at every k while letting well-distributed inputs escape
/// to radix past the crossover.
pub fn choose_path_sampled<K: TopKKey>(data: &[K], k: usize, spec: &DeviceSpec) -> ChosenPath {
    choose_path_with_survival(
        data.len(),
        k,
        <K::Bits as KeyBits>::BITS,
        spec,
        estimate_radix_survival(data),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule4_matches_hand_computation() {
        // |V| = 2^30, k = 2^13, const = 3  ->  α = (30 - 13 + 3)/2 = 10
        assert_eq!(rule4_alpha(1 << 30, 1 << 13, 3.0), 10.0);
        // |V| = 2^30, k = 2^24, const = 2  ->  α = 4 (the paper's example)
        assert_eq!(rule4_alpha(1 << 30, 1 << 24, 2.0), 4.0);
    }

    #[test]
    fn alpha_decreases_as_k_grows() {
        let n = 1 << 30;
        let mut last = f64::INFINITY;
        for exp in [0u32, 5, 10, 15, 20, 24] {
            let a = rule4_alpha(n, 1 << exp, PAPER_RULE4_CONST);
            assert!(a <= last);
            last = a;
        }
    }

    #[test]
    fn auto_alpha_is_clamped_and_respects_beta() {
        // huge k drives the raw α below 1; clamp to at least log2 β
        assert!(auto_alpha(1 << 20, 1 << 19, 1, 3.0) >= 1);
        assert!(auto_alpha(1 << 20, 1 << 19, 4, 3.0) >= 2);
        // tiny k cannot exceed log2 n - 1
        assert!(auto_alpha(1 << 10, 1, 1, 30.0) <= 9);
        // typical case matches Rule 4 rounding
        assert_eq!(auto_alpha(1 << 30, 1 << 13, 1, 3.0), 10);
    }

    #[test]
    fn predicted_cost_phases_move_in_opposite_directions() {
        let spec = DeviceSpec::v100s();
        let n = 1 << 30;
        let k = 1 << 13;
        let small = predicted_cost(4.0, k, n, &spec);
        let large = predicted_cost(16.0, k, n, &spec);
        // larger subranges: cheaper delegate construction + first top-k,
        // more expensive concatenation + second top-k (Figure 13's shape)
        assert!(large.delegate < small.delegate);
        assert!(large.first_topk < small.first_topk);
        assert!(large.concat > small.concat);
        assert!(large.second_topk > small.second_topk);
    }

    #[test]
    fn model_total_is_convex_in_alpha() {
        let spec = DeviceSpec::v100s();
        let alphas: Vec<f64> = (1..=26).map(|a| a as f64).collect();
        for (n, k) in [
            (1usize << 30, 1usize << 13),
            (1 << 26, 1 << 20),
            (1 << 22, 128),
        ] {
            assert!(is_convex_in_alpha(k, n, &spec, &alphas), "n={n} k={k}");
        }
    }

    #[test]
    fn rule4_and_model_optimum_agree_within_two() {
        // Rule 4 is derived from the model, so with the analytic constant the
        // two optima must be close (the paper's Figure 14 makes the same
        // comparison against an empirical oracle).
        let spec = DeviceSpec::v100s();
        let const_analytic = spec.rule4_const_analytic();
        for kexp in [5u32, 10, 15, 20] {
            let n = 1 << 26;
            let k = 1usize << kexp;
            let model = model_optimal_alpha(n, k, &spec) as i64;
            let rule = rule4_alpha(n, k, const_analytic).round() as i64;
            assert!(
                (model - rule).abs() <= 2,
                "k=2^{kexp}: model α={model}, Rule 4 α={rule}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rule4_rejects_zero_sizes() {
        rule4_alpha(0, 10, 3.0);
    }

    #[test]
    fn rule4_handles_fractional_optima() {
        // |V| = 2^20, k = 2^7, const = 3  ->  α = (20 − 7 + 3)/2 = 8
        assert_eq!(rule4_alpha(1 << 20, 1 << 7, 3.0), 8.0);
        // odd sum: |V| = 2^21, k = 2^8, const = 2  ->  α = 15/2 = 7.5
        assert_eq!(rule4_alpha(1 << 21, 1 << 8, 2.0), 7.5);
        // k = |V| collapses the log difference to the constant alone
        assert_eq!(rule4_alpha(1 << 16, 1 << 16, 3.0), 1.5);
        // const = 0 gives the pure half-gap
        assert_eq!(rule4_alpha(1 << 24, 1 << 4, 0.0), 10.0);
    }

    #[test]
    fn auto_alpha_rounds_to_nearest_integer() {
        // raw α = 7.5 rounds to 8 (round-half-up of f64::round)
        assert_eq!(auto_alpha(1 << 21, 1 << 8, 1, 2.0), 8);
        // raw α = (22 − 9 + 3)/2 = 8.0 stays 8
        assert_eq!(auto_alpha(1 << 22, 1 << 9, 1, 3.0), 8);
        // oversized k is clamped to n before the formula is applied
        assert_eq!(
            auto_alpha(1 << 16, usize::MAX, 1, 3.0),
            auto_alpha(1 << 16, 1 << 16, 1, 3.0)
        );
    }

    #[test]
    fn predicted_cost_matches_hand_computed_equations() {
        // A spec with C_global = 400, C_shfl = 1 (the V100S constants), at
        // α = 10, k = 2^13 = 8192, |V| = 2^30, sub = 2^10 = 1024:
        let spec = DeviceSpec::v100s();
        assert_eq!(spec.c_global_cycles, 400.0);
        assert_eq!(spec.c_shfl_cycles, 1.0);
        let n = 1usize << 30;
        let k = 1usize << 13;
        let got = predicted_cost(10.0, k, n, &spec);
        let v = n as f64;
        let kf = k as f64;
        let sub = 1024.0;
        // Eq. 2: (1 + 1/2^α)|V|·C_g + 31(|V|/2^α)·C_s
        let delegate = (1.0 + 1.0 / sub) * v * 400.0 + 31.0 * (v / sub) * 1.0;
        // Eq. 3: 5(|V|/2^α)·C_g + 2k·C_g
        let first = 5.0 * (v / sub) * 400.0 + 2.0 * kf * 400.0;
        // Eq. 4: k·C_g + 2k·2^α·C_g
        let concat = kf * 400.0 + 2.0 * kf * sub * 400.0;
        // Eq. 5: 4k·2^α·C_g
        let second = 4.0 * kf * sub * 400.0;
        assert_eq!(got.delegate, delegate);
        assert_eq!(got.first_topk, first);
        assert_eq!(got.concat, concat);
        assert_eq!(got.second_topk, second);
        assert_eq!(got.total(), delegate + first + concat + second);
    }

    #[test]
    fn convexity_holds_on_a_fine_grid_for_every_preset() {
        // Quarter-integer grid over the α range every preset can reach.
        let alphas: Vec<f64> = (4..=104).map(|q| q as f64 * 0.25).collect();
        for spec in [
            DeviceSpec::v100s(),
            DeviceSpec::titan_xp(),
            DeviceSpec::a100(),
        ] {
            for (n, k) in [(1usize << 30, 1usize << 13), (1 << 24, 1 << 10)] {
                assert!(
                    is_convex_in_alpha(k, n, &spec, &alphas),
                    "model not convex for {} n={n} k={k}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn rule4_analytic_constant_is_near_the_papers_tuned_value() {
        // log2(6·400 + 31·1) − log2(6·400) ≈ 0.0186 per the V100S constants;
        // the paper then tunes const to 3 empirically, so the two must both
        // lie in a small non-negative range that keeps α well-defined.
        let c = DeviceSpec::v100s().rule4_const_analytic();
        let expected = (6.0f64 * 400.0 + 31.0).log2() - (6.0f64 * 400.0).log2();
        assert!((c - expected).abs() < 1e-12);
        assert!((0.0..PAPER_RULE4_CONST).contains(&c));
    }

    #[test]
    fn approx_tuning_meets_target_and_minimises_candidates() {
        let n = 1 << 22;
        let k = 256;
        let target = RecallTarget::from_fraction(0.95);
        let t = optimal_approx_tuning(n, k, target).expect("large input must tune");
        assert!(t.predicted_recall >= 0.95);
        assert_eq!(t.num_buckets, n.div_ceil(1 << t.alpha));
        assert_eq!(t.candidates, t.num_buckets * t.budget);
        assert!(t.candidates < n / 16, "the second stage must shrink a lot");
        // every other feasible α needs at least as many candidates (the
        // planner sizes for the inflated planning target, over bucketings
        // with at least 2k buckets)
        for alpha in 1..=21u32 {
            let b = n.div_ceil(1usize << alpha);
            if b < 2 || b < 2 * k {
                continue;
            }
            let budget = required_budget(k, b, target.with_planning_headroom());
            if budget > (1usize << alpha) || b * budget >= n || (b - 1) * budget + 1 < k {
                continue;
            }
            assert!(
                b * budget >= t.candidates,
                "α={alpha} gives {} candidates, tuned α={} gives {}",
                b * budget,
                t.alpha,
                t.candidates
            );
        }
    }

    #[test]
    fn approx_tuning_tightens_with_the_target() {
        let n = 1 << 20;
        let k = 128;
        let loose = optimal_approx_tuning(n, k, RecallTarget::from_fraction(0.9)).unwrap();
        let tight = optimal_approx_tuning(n, k, RecallTarget::from_fraction(0.99)).unwrap();
        assert!(
            tight.candidates >= loose.candidates,
            "tight {} vs loose {}",
            tight.candidates,
            loose.candidates
        );
        assert!(loose.predicted_recall >= 0.9);
        assert!(tight.predicted_recall >= 0.99);
    }

    #[test]
    fn approx_tuning_degenerates_to_none() {
        let target = RecallTarget::from_fraction(0.95);
        assert!(optimal_approx_tuning(2, 1, target).is_none());
        assert!(optimal_approx_tuning(1 << 20, 0, target).is_none());
        assert!(optimal_approx_tuning(100, 100, target).is_none());
        assert!(optimal_approx_tuning(100, 1 << 20, target).is_none());
    }

    #[test]
    fn approx_cost_model_is_cheaper_than_exact_at_serving_shapes() {
        // The whole point: at n = 2^26, k = 256, the approximate second
        // stage is far below the exact concat + second top-k.
        let spec = DeviceSpec::v100s();
        let n = 1usize << 26;
        let k = 256;
        let t = optimal_approx_tuning(n, k, RecallTarget::from_fraction(0.95)).unwrap();
        let approx = predicted_approx_cost(t.alpha as f64, t.budget, k, n, &spec);
        let exact_alpha = auto_alpha(n, k, 1, PAPER_RULE4_CONST);
        let exact = predicted_cost(exact_alpha as f64, k, n, &spec);
        assert!(approx.total() < exact.total());
        // the post-construction phases shrink by far more than 25%
        let approx_tail = approx.second_topk;
        let exact_tail = exact.first_topk + exact.concat + exact.second_topk;
        assert!(
            approx_tail < 0.75 * exact_tail,
            "approx tail {approx_tail} vs exact tail {exact_tail}"
        );
        assert_eq!(approx.first_topk, 0.0);
        assert_eq!(approx.concat, 0.0);
    }

    #[test]
    fn model_optimal_alpha_stays_in_partition_bounds() {
        let spec = DeviceSpec::v100s();
        for nexp in [4u32, 10, 20, 26] {
            let n = 1usize << nexp;
            for k in [1usize, 16, n / 4] {
                let a = model_optimal_alpha(n, k.max(1), &spec);
                assert!(a >= 1, "α must keep subranges non-trivial");
                assert!(
                    a <= nexp.saturating_sub(1).max(1),
                    "α must leave ≥ 2 subranges"
                );
            }
        }
    }

    #[test]
    fn path_hint_defaults_to_auto_and_pins_resolve_to_themselves() {
        assert_eq!(PathHint::default(), PathHint::Auto);
        let spec = DeviceSpec::v100s();
        for (n, k) in [(1usize << 20, 64usize), (1 << 20, 1 << 17)] {
            assert_eq!(
                PathHint::Delegate.resolve(n, k, 32, &spec),
                ChosenPath::Delegate
            );
            assert_eq!(PathHint::Radix.resolve(n, k, 32, &spec), ChosenPath::Radix);
            assert_eq!(
                PathHint::Auto.resolve(n, k, 32, &spec),
                choose_path(n, k, 32, &spec)
            );
        }
        assert_eq!(PathHint::ALL.len(), 3);
        assert_eq!(PathHint::Auto.name(), "auto");
        assert_eq!(ChosenPath::Radix.name(), "radix");
        assert_eq!(format!("{}", PathHint::Radix), "radix");
        assert_eq!(format!("{}", ChosenPath::Delegate), "delegate");
    }

    #[test]
    fn radix_cost_is_one_input_scan_plus_linear_k_terms() {
        let spec = DeviceSpec::v100s();
        let n = 1usize << 24;
        let c = radix_predicted_cost(n, 1 << 10, 32, &spec);
        let scan = n as f64 * spec.c_global_cycles;
        // pass 0 reads the input once and the fused filter shrinks every
        // later stage to noise: the total sits just above one full scan
        assert!(c.total() > 1.0 * scan, "total {} vs scan {scan}", c.total());
        assert!(c.total() < 1.1 * scan, "total {} vs scan {scan}", c.total());
        // k enters through the filter width and the O(k) gather/select
        // tail: monotone, and still under two scans at k = n/16
        let big_k = radix_predicted_cost(n, 1 << 20, 32, &spec);
        assert!(big_k.total() > c.total());
        assert!(big_k.total() < 2.0 * scan, "total {}", big_k.total());
        // 64-bit keys pay more passes, but the geometric shrink pins the
        // candidates down long before the extra passes can cost anything
        let wide = radix_predicted_cost(n, 1 << 10, 64, &spec);
        assert!(wide.total() >= c.total());
        assert!(wide.total() < 1.05 * c.total());
        // a survival of 1.0 (every key in one top bucket) disables the
        // modeled filter and re-scans the full input every pass
        let worst = radix_predicted_cost_with_survival(n, 1 << 10, 32, &spec, 1.0);
        assert!(worst.total() > 10.0 * scan, "total {}", worst.total());
    }

    #[test]
    fn survival_estimate_separates_uniform_from_low_entropy() {
        let uniform = topk_datagen::uniform(1 << 16, 5);
        let s = estimate_radix_survival(&uniform);
        assert!(s < 0.05, "uniform keys spread over the buckets: {s}");
        // all keys share the top byte: the sample sees one bucket
        let low: Vec<u32> = (0..1u32 << 14).map(|i| u32::MAX - (i % 16)).collect();
        assert_eq!(estimate_radix_survival(&low), 1.0);
        assert_eq!(estimate_radix_survival::<u32>(&[]), 1.0);
        // strided sampling is deterministic
        assert_eq!(s, estimate_radix_survival(&uniform));
    }

    #[test]
    fn sampled_crossover_keeps_low_entropy_keys_on_delegates() {
        let spec = DeviceSpec::v100s();
        let n = 1 << 20;
        let uniform = topk_datagen::uniform(n, 11);
        let low: Vec<u32> = (0..n as u32).map(|i| u32::MAX - (i % 16)).collect();
        for kexp in [6u32, 10, 14, 17] {
            let k = 1usize << kexp;
            assert_eq!(
                choose_path_sampled(&low, k, &spec),
                ChosenPath::Delegate,
                "duplicate-heavy keys must never escape to radix (k={k})"
            );
            assert_eq!(
                PathHint::Auto.resolve_for(&low, k, &spec),
                ChosenPath::Delegate
            );
        }
        // well-distributed keys still cross over at large k
        assert_eq!(
            choose_path_sampled(&uniform, 1 << 17, &spec),
            ChosenPath::Radix
        );
        assert_eq!(
            PathHint::Radix.resolve_for(&uniform, 64, &spec),
            ChosenPath::Radix,
            "pins ignore the data"
        );
        assert_eq!(
            PathHint::Delegate.resolve_for(&uniform, 1 << 17, &spec),
            ChosenPath::Delegate
        );
    }

    #[test]
    fn choose_path_crosses_over_once_per_device() {
        // Small k → delegate, huge k → radix, and the decision flips exactly
        // once along the k grid, for every catalog device.
        for spec in DeviceSpec::catalog() {
            let n = 1usize << 22;
            let choices: Vec<ChosenPath> = (4..=20)
                .map(|kexp| choose_path(n, 1usize << kexp, 32, &spec))
                .collect();
            assert_eq!(
                choices.first(),
                Some(&ChosenPath::Delegate),
                "{}: k = 16 must stay on the paper's path",
                spec.name
            );
            assert_eq!(
                choices.last(),
                Some(&ChosenPath::Radix),
                "{}: k = 2^20 must escape to radix",
                spec.name
            );
            let flips = choices.windows(2).filter(|w| w[0] != w[1]).count();
            assert_eq!(flips, 1, "{}: one crossover, got {choices:?}", spec.name);
        }
    }

    #[test]
    fn choose_path_degenerates_to_delegate() {
        let spec = DeviceSpec::v100s();
        assert_eq!(choose_path(1 << 20, 0, 32, &spec), ChosenPath::Delegate);
        assert_eq!(choose_path(2, 1, 32, &spec), ChosenPath::Delegate);
        let n = 1 << 20;
        assert_eq!(choose_path(n, n, 32, &spec), ChosenPath::Delegate);
        assert_eq!(choose_path(n, n + 5, 32, &spec), ChosenPath::Delegate);
    }
}
