//! Figure 7: breakdown with delegate-top-k-enabled filtering (Rule 2) added
//! to the maximum-delegate design, UD dataset.

use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use topk_datagen::Distribution;

fn main() {
    breakdown_sweep(
        "fig07_breakdown_filtering",
        |_k| DrTopKConfig::with_filtering_only(),
        Distribution::Uniform,
    );
}
