//! Wall-clock calibration of the threaded stage-graph executor: run the
//! same out-of-core distributed graph under the serial and threaded
//! executors, verify the modeled reports are byte-identical, and report
//! the per-[`StageKind`] regression of measured host milliseconds against
//! modeled simulator milliseconds — slope, intercept and R² — plus the
//! calibrated makespan prediction next to what the host actually measured.
//!
//! Beyond the CSV every harness writes, this target records
//! `bench_results/calibration_fit.json`; the committed
//! `calibration_fit_baseline.json` is the trajectory-tracking reference
//! (its *modeled* columns are deterministic; the measured ones are a
//! sample from the machine that wrote it).
//!
//! [`StageKind`]: drtopk_core::StageKind

use std::io::Write as _;

use drtopk_bench_harness::*;
use drtopk_core::{distributed_dr_topk_executor, DrTopKConfig, Executor, ReloadSchedule};
use drtopk_obs::{Json, Snapshot};
use gpu_sim::{Device, DeviceSpec, GpuCluster, InterconnectSpec};
use topk_baselines::reference_topk;

const DEVICES: usize = 4;
const K: usize = 128;
const MULTIPLE: usize = 4; // corpus = 4× aggregate capacity

fn cluster(capacity: usize) -> GpuCluster {
    // One host thread per simulated device: the only host parallelism in
    // the measurement is the stage-graph executor's own.
    let devices = (0..DEVICES)
        .map(|_| Device::with_host_threads(DeviceSpec::v100s(), 1))
        .collect();
    let c = GpuCluster::new(devices, InterconnectSpec::default());
    for d in c.devices() {
        d.set_capacity_elems(capacity);
    }
    c
}

fn main() {
    let capacity = (default_n() >> 4).max(1 << 14);
    let n = capacity * MULTIPLE * DEVICES;
    let data = topk_datagen::uniform(n, seed());
    let cfg = DrTopKConfig::default();
    let expected = reference_topk(&data, K);

    let serial = distributed_dr_topk_executor(
        &cluster(capacity),
        &data,
        K,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        Executor::Serial,
    );
    let threaded = distributed_dr_topk_executor(
        &cluster(capacity),
        &data,
        K,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        Executor::Threaded,
    );
    assert_eq!(serial.values, expected, "serial executor must be exact");
    assert_eq!(threaded.values, expected, "threaded executor must be exact");
    assert_eq!(
        serial.stages.deterministic_summary(),
        threaded.stages.deterministic_summary(),
        "modeled report must not depend on the executor"
    );

    let report = &threaded.stages;
    let predicted = report.calibration.predicted_makespan_ms(report);
    let rows: Vec<Vec<String>> = report
        .calibration
        .fits
        .iter()
        .map(|f| {
            vec![
                format!("{}", f.kind),
                f.samples.to_string(),
                fmt(f.slope),
                fmt(f.intercept_ms),
                fmt(f.r2),
                fmt(f.mean_abs_residual_ms),
            ]
        })
        .collect();
    emit(
        "calibration_fit",
        &[
            "stage_kind",
            "samples",
            "slope",
            "intercept_ms",
            "r2",
            "mean_abs_residual_ms",
        ],
        &rows,
    );
    println!(
        "modeled {:.4} ms | measured serial {:.4} ms, threaded {:.4} ms | calibrated prediction {:.4} ms",
        report.makespan_ms, serial.stages.measured_makespan_ms, report.measured_makespan_ms, predicted,
    );

    // Baseline JSON for trajectory tracking, under the shared obs snapshot
    // schema. Modeled fields are deterministic; measured and fitted fields
    // are one sample of host wall-clock.
    let fit_objs: Vec<Json> = report
        .calibration
        .fits
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("stage_kind", Json::str(format!("{}", f.kind))),
                ("samples", Json::Int(f.samples as i64)),
                ("slope", Json::Num(f.slope)),
                ("intercept_ms", Json::Num(f.intercept_ms)),
                ("r2", Json::Num(f.r2)),
                ("mean_abs_residual_ms", Json::Num(f.mean_abs_residual_ms)),
            ])
        })
        .collect();
    let json = Snapshot::new("calibration_fit")
        .field("capacity", Json::Int(capacity as i64))
        .field("devices", Json::Int(DEVICES as i64))
        .field("k", Json::Int(K as i64))
        .field("seed", Json::Int(seed() as i64))
        .field("n", Json::Int(n as i64))
        .field("modeled_makespan_ms", Json::Num(report.makespan_ms))
        .field(
            "measured_serial_ms",
            Json::Num(serial.stages.measured_makespan_ms),
        )
        .field(
            "measured_threaded_ms",
            Json::Num(report.measured_makespan_ms),
        )
        .field("predicted_makespan_ms", Json::Num(predicted))
        .field("fits", Json::Arr(fit_objs))
        .to_pretty_string();
    let path = results_dir().join("calibration_fit.json");
    let mut file = std::fs::File::create(&path).expect("cannot create JSON file");
    file.write_all(json.as_bytes()).unwrap();
    println!("[written to {}]", path.display());
}
