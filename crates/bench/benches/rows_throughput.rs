//! Row-wise matrix top-k throughput: modeled cost of [`topk_rows`] over a
//! `rows × cols` sweep against the same rows run as independent `dr_topk`
//! calls — the fused-plan claim in numbers: delegate passes scale with
//! row-blocks, modeled time and global-memory transactions undercut the
//! per-row loop.
//!
//! Every cell self-verifies each row against the CPU reference before its
//! numbers are reported. Beyond the CSV every harness writes, this target
//! records `bench_results/rows_throughput.json` under the shared
//! `drtopk-obs` snapshot schema; the committed
//! `rows_throughput_baseline.json` is the reference point for trajectory
//! tracking.

use std::io::Write as _;

use drtopk_bench_harness::*;
use drtopk_core::{topk_rows, DrTopKConfig, RowK, RowMatrix};
use drtopk_obs::{Json, Snapshot};
use gpu_sim::{DeviceSpec, GpuCluster};

const DEVICES: usize = 2;
const K: usize = 8;

struct Cell {
    rows: usize,
    cols: usize,
    fused_ms: f64,
    independent_ms: f64,
    delegate_passes: usize,
    num_blocks: usize,
    fused_txn: u64,
    independent_txn: u64,
    rows_per_s: f64,
}

fn main() {
    let cluster = GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s());
    let dev = device();
    let cfg = DrTopKConfig::default();

    let mut cells: Vec<Cell> = Vec::new();
    for rows in [64usize, 512, 4096] {
        for cols in [128usize, 2048] {
            let data = topk_datagen::uniform(rows * cols, seed() ^ (rows * cols) as u64);
            let matrix = RowMatrix::new(&data, rows, cols);

            let fused = topk_rows(&cluster, matrix, &RowK::Uniform(K), &cfg);
            let mut independent_ms = 0.0;
            let mut independent_txn = 0u64;
            for r in 0..rows {
                let single = run_drtopk_checked(&dev, matrix.row(r), K, &cfg);
                assert_eq!(
                    fused.rows[r].values, single.values,
                    "{rows}x{cols} row {r}: fused plan must match the per-row pipeline"
                );
                independent_ms += single.time_ms;
                independent_txn += single.stats.total_transactions();
            }

            cells.push(Cell {
                rows,
                cols,
                fused_ms: fused.time_ms,
                independent_ms,
                delegate_passes: fused.delegate_passes,
                num_blocks: fused.num_blocks,
                fused_txn: fused.stats.total_transactions(),
                independent_txn,
                rows_per_s: rows as f64 / (fused.time_ms / 1e3),
            });
        }
    }

    let table: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.rows.to_string(),
                c.cols.to_string(),
                fmt(c.fused_ms),
                fmt(c.independent_ms),
                fmt(c.independent_ms / c.fused_ms),
                c.delegate_passes.to_string(),
                c.num_blocks.to_string(),
                c.fused_txn.to_string(),
                c.independent_txn.to_string(),
                fmt(c.rows_per_s),
            ]
        })
        .collect();
    emit(
        "rows_throughput",
        &[
            "rows",
            "cols",
            "fused_ms",
            "independent_ms",
            "speedup",
            "delegate_passes",
            "num_blocks",
            "fused_transactions",
            "independent_transactions",
            "rows_per_s",
        ],
        &table,
    );

    // Baseline JSON for trajectory tracking, under the shared obs snapshot
    // schema (versioned `schema` + `kind` header).
    let cell_objs: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("rows", Json::Int(c.rows as i64)),
                ("cols", Json::Int(c.cols as i64)),
                ("fused_ms", Json::Num(c.fused_ms)),
                ("independent_ms", Json::Num(c.independent_ms)),
                ("speedup", Json::Num(c.independent_ms / c.fused_ms)),
                ("delegate_passes", Json::Int(c.delegate_passes as i64)),
                ("num_blocks", Json::Int(c.num_blocks as i64)),
                ("fused_transactions", Json::Int(c.fused_txn as i64)),
                (
                    "independent_transactions",
                    Json::Int(c.independent_txn as i64),
                ),
                ("rows_per_s", Json::Num(c.rows_per_s)),
            ])
        })
        .collect();
    let json = Snapshot::new("rows_throughput")
        .field("devices", Json::Int(DEVICES as i64))
        .field("k", Json::Int(K as i64))
        .field("seed", Json::Int(seed() as i64))
        .field("cells", Json::Arr(cell_objs))
        .to_pretty_string();
    let path = results_dir().join("rows_throughput.json");
    let mut file = std::fs::File::create(&path).expect("cannot create JSON file");
    file.write_all(json.as_bytes()).unwrap();
    println!("[written to {}]", path.display());
}
