//! Figure 17: time consumption of Dr. Top-k-assisted algorithms vs the
//! state-of-the-art (and sort-and-choose) as |V| grows, k = 1024.

use drtopk_bench_harness::*;
use drtopk_core::{DrTopKConfig, InnerAlgorithm};
use topk_baselines::BaselineAlgorithm;
use topk_datagen::Distribution;

fn main() {
    let device = device();
    let k = 1024usize;
    let mut rows = Vec::new();
    for exp in (v_exp().saturating_sub(4))..=v_exp() {
        let n = 1usize << exp;
        let data = dataset(Distribution::Uniform, n);
        let k = k.min(n / 4);
        for algo in [
            BaselineAlgorithm::SortAndChoose,
            BaselineAlgorithm::Radix,
            BaselineAlgorithm::Bucket,
            BaselineAlgorithm::Bitonic,
        ] {
            let r = run_baseline_checked(&device, algo, &data, k);
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                algo.name().into(),
                fmt(r.time_ms),
            ]);
        }
        for inner in [
            InnerAlgorithm::Radix,
            InnerAlgorithm::Bucket,
            InnerAlgorithm::Bitonic,
        ] {
            let cfg = DrTopKConfig {
                inner,
                ..DrTopKConfig::default()
            };
            let r = run_drtopk_checked(&device, &data, k, &cfg);
            rows.push(vec![
                n.to_string(),
                k.to_string(),
                format!("drtopk+{}", inner.name()),
                fmt(r.time_ms),
            ]);
        }
    }
    emit(
        "fig17_time_vs_v",
        &["n", "k", "algorithm", "time_ms"],
        &rows,
    );
}
