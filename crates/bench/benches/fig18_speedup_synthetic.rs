//! Figure 18: speedup of Dr. Top-k-assisted radix/bucket/bitonic top-k over
//! the corresponding stand-alone algorithm, for varying k on the synthetic
//! UD / ND / CD datasets.

use drtopk_bench_harness::*;
use drtopk_core::{DrTopKConfig, InnerAlgorithm};
use topk_baselines::BaselineAlgorithm;
use topk_datagen::Distribution;

fn pair(algo: BaselineAlgorithm) -> InnerAlgorithm {
    match algo {
        BaselineAlgorithm::Radix => InnerAlgorithm::Radix,
        BaselineAlgorithm::Bucket => InnerAlgorithm::Bucket,
        BaselineAlgorithm::Bitonic => InnerAlgorithm::Bitonic,
        BaselineAlgorithm::SortAndChoose => InnerAlgorithm::FlagRadix,
    }
}

fn main() {
    let n = default_n();
    let device = device();
    let mut rows = Vec::new();
    for dist in Distribution::SYNTHETIC {
        let data = dataset(dist, n);
        for k in k_sweep(2) {
            for algo in BaselineAlgorithm::TOPK {
                let base = run_baseline_checked(&device, algo, &data, k);
                let cfg = DrTopKConfig {
                    inner: pair(algo),
                    ..DrTopKConfig::default()
                };
                let dr = run_drtopk_checked(&device, &data, k, &cfg);
                rows.push(vec![
                    dist.abbrev().into(),
                    k.to_string(),
                    algo.name().into(),
                    fmt(base.time_ms),
                    fmt(dr.time_ms),
                    fmt(base.time_ms / dr.time_ms),
                ]);
            }
        }
    }
    emit(
        "fig18_speedup_synthetic",
        &[
            "dist",
            "k",
            "algorithm",
            "baseline_ms",
            "drtopk_ms",
            "speedup",
        ],
        &rows,
    );
}
