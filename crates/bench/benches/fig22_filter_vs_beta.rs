//! Figure 22: separate and combined effect of delegate-top-k-enabled
//! filtering and β delegate (both with the construction optimization).

use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let data = dataset(Distribution::Uniform, n);
    let device = device();
    let mut rows = Vec::new();
    for k in k_sweep(2) {
        let filtering_only =
            run_drtopk_checked(&device, &data, k, &DrTopKConfig::with_filtering_only());
        let beta_only = run_drtopk_checked(&device, &data, k, &DrTopKConfig::beta_only(2));
        let combined = run_drtopk_checked(&device, &data, k, &DrTopKConfig::default());
        rows.push(vec![
            k.to_string(),
            fmt(filtering_only.time_ms),
            fmt(beta_only.time_ms),
            fmt(combined.time_ms),
        ]);
    }
    emit(
        "fig22_filter_vs_beta",
        &["k", "filtering_only_ms", "beta_delegate_ms", "combined_ms"],
        &rows,
    );
}
