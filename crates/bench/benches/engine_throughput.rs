//! Engine throughput: modeled queries/second of the batched multi-query
//! engine, swept over batch size × query mix on a 4-device cluster.
//!
//! Each cell runs the same batch twice — a cold pass (caches empty) and a
//! warm pass (tuning plans + delegate vectors cached) — reporting modeled
//! throughput, batch occupancy and the warm pass's cache hit rates. Beyond
//! the CSV every harness writes, this target also records
//! `bench_results/engine_throughput.json`; the committed
//! `engine_throughput_baseline.json` is the reference point for future
//! trajectory tracking.

use std::io::Write as _;

use drtopk_bench_harness::*;
use drtopk_core::InnerAlgorithm;
use drtopk_engine::{Direction, Query, QueryBatch, TopKEngine};
use gpu_sim::{DeviceSpec, GpuCluster};
use topk_datagen::{multi_query_workload, CorpusMix};

const DEVICES: usize = 4;

struct Cell {
    batch: usize,
    mix: &'static str,
    cold_qps: f64,
    warm_qps: f64,
    occupancy: f64,
    warm_plan_hit: f64,
    warm_delegate_hit: f64,
    cold_ms: f64,
    warm_ms: f64,
}

fn main() {
    // Corpora are deliberately smaller than the single-query harness
    // default: serving batches multiply the work by the batch size.
    let n = (default_n() >> 4).max(1 << 16);
    let k_max = 1 << 10;
    let mixes: [(&str, CorpusMix); 3] = [
        ("shared", CorpusMix::Shared),
        ("clustered4", CorpusMix::Clustered { corpora: 4 }),
        ("disjoint", CorpusMix::Disjoint),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for batch_size in [4usize, 16, 64] {
        for (mix_name, mix) in mixes {
            let num_corpora = mix.num_corpora(batch_size);
            let corpora: Vec<Vec<u32>> = (0..num_corpora)
                .map(|i| topk_datagen::uniform(n, seed() ^ (i as u64) << 8))
                .collect();
            let specs = multi_query_workload(batch_size, mix, k_max, 1.0, 0.25, 0.0, seed());
            let engine = TopKEngine::new(GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s()));

            let run = || {
                let mut batch = QueryBatch::new();
                let ids: Vec<usize> = corpora
                    .iter()
                    .enumerate()
                    .map(|(i, d)| batch.add_corpus(i as u64, d))
                    .collect();
                for spec in &specs {
                    batch.push(Query {
                        corpus: ids[spec.corpus],
                        k: spec.k,
                        direction: if spec.largest {
                            Direction::Largest
                        } else {
                            Direction::Smallest
                        },
                        inner: InnerAlgorithm::FlagRadix,
                        mode: drtopk_core::Mode::Exact,
                    });
                }
                engine.run_batch(&batch).expect("batch must execute")
            };
            let cold = run();
            let warm = run();
            cells.push(Cell {
                batch: batch_size,
                mix: mix_name,
                cold_qps: cold.report.throughput_qps,
                warm_qps: warm.report.throughput_qps,
                occupancy: cold.report.batch_occupancy,
                warm_plan_hit: warm.report.plan_cache.hit_rate(),
                warm_delegate_hit: warm.report.delegate_cache.hit_rate(),
                cold_ms: cold.report.total_ms,
                warm_ms: warm.report.total_ms,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.batch.to_string(),
                c.mix.to_string(),
                fmt(c.cold_qps),
                fmt(c.warm_qps),
                fmt(c.occupancy),
                fmt(c.warm_plan_hit),
                fmt(c.warm_delegate_hit),
                fmt(c.cold_ms),
                fmt(c.warm_ms),
            ]
        })
        .collect();
    emit(
        "engine_throughput",
        &[
            "batch_size",
            "mix",
            "cold_qps",
            "warm_qps",
            "occupancy",
            "warm_plan_hit_rate",
            "warm_delegate_hit_rate",
            "cold_total_ms",
            "warm_total_ms",
        ],
        &rows,
    );

    // Baseline JSON for trajectory tracking (hand-rolled: no serde in the
    // offline workspace).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"n\": {n},\n  \"devices\": {DEVICES},\n  \"k_max\": {k_max},\n  \"seed\": {},\n  \"cells\": [\n",
        seed()
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_size\": {}, \"mix\": \"{}\", \"cold_qps\": {:.1}, \"warm_qps\": {:.1}, \"occupancy\": {:.2}, \"warm_plan_hit_rate\": {:.3}, \"warm_delegate_hit_rate\": {:.3}}}{}\n",
            c.batch,
            c.mix,
            c.cold_qps,
            c.warm_qps,
            c.occupancy,
            c.warm_plan_hit,
            c.warm_delegate_hit,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("engine_throughput.json");
    let mut file = std::fs::File::create(&path).expect("cannot create JSON file");
    file.write_all(json.as_bytes()).unwrap();
    println!("[written to {}]", path.display());
}
