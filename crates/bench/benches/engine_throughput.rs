//! Engine throughput: modeled queries/second of the batched multi-query
//! engine, swept over batch size × query mix on a 4-device cluster.
//!
//! Each cell runs the same batch twice — a cold pass (caches empty) and a
//! warm pass (tuning plans + delegate vectors cached) — reporting modeled
//! throughput, batch occupancy, the warm pass's cache hit rates and the
//! warm per-query latency percentiles (p50/p95/p99, from a batch-scoped
//! [`Histogram`]). Beyond the CSV every harness writes, this target also
//! records `bench_results/engine_throughput.json` under the shared
//! `drtopk-obs` snapshot schema; the committed
//! `engine_throughput_baseline.json` is the reference point for future
//! trajectory tracking.

use std::io::Write as _;

use drtopk_bench_harness::*;
use drtopk_core::InnerAlgorithm;
use drtopk_engine::{Direction, Query, QueryBatch, TopKEngine};
use drtopk_obs::{Histogram, HistogramSummary, Json, Snapshot};
use gpu_sim::{DeviceSpec, GpuCluster};
use topk_datagen::{multi_query_workload, CorpusMix};

const DEVICES: usize = 4;

struct Cell {
    batch: usize,
    mix: &'static str,
    cold_qps: f64,
    warm_qps: f64,
    occupancy: f64,
    warm_plan_hit: f64,
    warm_delegate_hit: f64,
    cold_ms: f64,
    warm_ms: f64,
    warm_latency: HistogramSummary,
}

fn main() {
    // Corpora are deliberately smaller than the single-query harness
    // default: serving batches multiply the work by the batch size.
    let n = (default_n() >> 4).max(1 << 16);
    let k_max = 1 << 10;
    let mixes: [(&str, CorpusMix); 3] = [
        ("shared", CorpusMix::Shared),
        ("clustered4", CorpusMix::Clustered { corpora: 4 }),
        ("disjoint", CorpusMix::Disjoint),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for batch_size in [4usize, 16, 64] {
        for (mix_name, mix) in mixes {
            let num_corpora = mix.num_corpora(batch_size);
            let corpora: Vec<Vec<u32>> = (0..num_corpora)
                .map(|i| topk_datagen::uniform(n, seed() ^ (i as u64) << 8))
                .collect();
            let specs = multi_query_workload(batch_size, mix, k_max, 1.0, 0.25, 0.0, seed());
            let engine = TopKEngine::new(GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s()));

            let run = || {
                let mut batch = QueryBatch::new();
                let ids: Vec<usize> = corpora
                    .iter()
                    .enumerate()
                    .map(|(i, d)| batch.add_corpus(i as u64, d))
                    .collect();
                for spec in &specs {
                    batch.push(Query {
                        corpus: ids[spec.corpus],
                        k: spec.k,
                        direction: if spec.largest {
                            Direction::Largest
                        } else {
                            Direction::Smallest
                        },
                        inner: InnerAlgorithm::FlagRadix,
                        mode: drtopk_core::Mode::Exact,
                        path: drtopk_core::PathHint::Auto,
                    });
                }
                engine.run_batch(&batch).expect("batch must execute")
            };
            let cold = run();
            let warm = run();
            // Batch-scoped latency percentiles: the engine's own registry
            // is cumulative (cold + warm), so a fresh histogram over the
            // warm pass isolates the steady-state distribution.
            let warm_hist = Histogram::new();
            for r in &warm.results {
                warm_hist.record(r.time_ms);
            }
            cells.push(Cell {
                batch: batch_size,
                mix: mix_name,
                cold_qps: cold.report.throughput_qps,
                warm_qps: warm.report.throughput_qps,
                occupancy: cold.report.batch_occupancy,
                warm_plan_hit: warm.report.plan_cache.hit_rate(),
                warm_delegate_hit: warm.report.delegate_cache.hit_rate(),
                cold_ms: cold.report.total_ms,
                warm_ms: warm.report.total_ms,
                warm_latency: warm_hist.summary(),
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.batch.to_string(),
                c.mix.to_string(),
                fmt(c.cold_qps),
                fmt(c.warm_qps),
                fmt(c.occupancy),
                fmt(c.warm_plan_hit),
                fmt(c.warm_delegate_hit),
                fmt(c.cold_ms),
                fmt(c.warm_ms),
                fmt(c.warm_latency.p50_ms),
                fmt(c.warm_latency.p95_ms),
                fmt(c.warm_latency.p99_ms),
            ]
        })
        .collect();
    emit(
        "engine_throughput",
        &[
            "batch_size",
            "mix",
            "cold_qps",
            "warm_qps",
            "occupancy",
            "warm_plan_hit_rate",
            "warm_delegate_hit_rate",
            "cold_total_ms",
            "warm_total_ms",
            "warm_p50_ms",
            "warm_p95_ms",
            "warm_p99_ms",
        ],
        &rows,
    );

    // Baseline JSON for trajectory tracking, under the shared obs snapshot
    // schema (versioned `schema` + `kind` header).
    let cell_objs: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("batch_size", Json::Int(c.batch as i64)),
                ("mix", Json::str(c.mix)),
                ("cold_qps", Json::Num(c.cold_qps)),
                ("warm_qps", Json::Num(c.warm_qps)),
                ("occupancy", Json::Num(c.occupancy)),
                ("warm_plan_hit_rate", Json::Num(c.warm_plan_hit)),
                ("warm_delegate_hit_rate", Json::Num(c.warm_delegate_hit)),
                ("cold_total_ms", Json::Num(c.cold_ms)),
                ("warm_total_ms", Json::Num(c.warm_ms)),
                ("warm_latency_ms", c.warm_latency.to_json()),
            ])
        })
        .collect();
    let json = Snapshot::new("engine_throughput")
        .field("n", Json::Int(n as i64))
        .field("devices", Json::Int(DEVICES as i64))
        .field("k_max", Json::Int(k_max as i64))
        .field("seed", Json::Int(seed() as i64))
        .field("cells", Json::Arr(cell_objs))
        .to_pretty_string();
    let path = results_dir().join("engine_throughput.json");
    let mut file = std::fs::File::create(&path).expect("cannot create JSON file");
    file.write_all(json.as_bytes()).unwrap();
    println!("[written to {}]", path.display());
}
