//! Figure 10: breakdown with β = 2 delegates + filtering, before the
//! delegate-vector-construction optimization (warp-shuffle construction).

use drtopk_bench_harness::*;
use drtopk_core::{ConstructionMethod, DrTopKConfig};
use topk_datagen::Distribution;

fn main() {
    breakdown_sweep(
        "fig10_breakdown_beta",
        |_k| DrTopKConfig {
            construction: ConstructionMethod::WarpShuffle,
            ..DrTopKConfig::default()
        },
        Distribution::Uniform,
    );
}
