//! Figure 9: performance vs β — (a) varying k at the default |V|,
//! (b) varying |V| at a fixed large k. Performance is normalized to β = 1.

use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use topk_datagen::Distribution;

fn run(n: usize, k: usize, beta: usize, device: &gpu_sim::Device, data: &[u32]) -> f64 {
    let config = DrTopKConfig {
        beta,
        ..DrTopKConfig::default()
    };
    let _ = n;
    run_drtopk_checked(device, data, k, &config).time_ms
}

fn main() {
    let device = device();
    let mut rows = Vec::new();

    // (a) vary k at the default |V|
    let n = default_n();
    let data = dataset(Distribution::Uniform, n);
    for k in k_sweep(4) {
        let base = run(n, k, 1, &device, &data);
        for beta in [1usize, 2, 3, 4] {
            let t = run(n, k, beta, &device, &data);
            rows.push(vec![
                "vary_k".into(),
                n.to_string(),
                k.to_string(),
                beta.to_string(),
                fmt(t),
                fmt(base / t),
            ]);
        }
    }

    // (b) vary |V| at a fixed (large) k
    let k = 1usize << kmax_exp();
    for exp in (v_exp().saturating_sub(3))..=v_exp() {
        let n = 1usize << exp;
        let data = dataset(Distribution::Uniform, n);
        let base = run(n, k.min(n / 2), 1, &device, &data);
        for beta in [1usize, 2, 3, 4] {
            let t = run(n, k.min(n / 2), beta, &device, &data);
            rows.push(vec![
                "vary_v".into(),
                n.to_string(),
                k.min(n / 2).to_string(),
                beta.to_string(),
                fmt(t),
                fmt(base / t),
            ]);
        }
    }
    emit(
        "fig09_beta_sweep",
        &["sweep", "n", "k", "beta", "time_ms", "speedup_vs_beta1"],
        &rows,
    );
}
