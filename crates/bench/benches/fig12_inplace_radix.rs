//! Figure 12: the flag-based in-place radix top-k (Dr. Top-k's optimization)
//! vs the GGKS in-place radix top-k on a uniformly distributed vector.

use drtopk_bench_harness::*;
use drtopk_core::flag_radix_topk;
use topk_baselines::{radix_topk, RadixConfig};
use topk_datagen::Distribution;

fn main() {
    let n = default_n().min(1 << 21); // the paper uses |V| = 2^21 here
    let data = dataset(Distribution::Uniform, n);
    let device = device();
    let mut rows = Vec::new();
    for k in k_sweep(2) {
        let k = k.min(n / 2);
        let flag = flag_radix_topk(&device, &data, k);
        let ggks = radix_topk(&device, &data, k, &RadixConfig::in_place());
        assert_eq!(flag.values, ggks.values);
        rows.push(vec![
            k.to_string(),
            fmt(flag.time_ms),
            fmt(ggks.time_ms),
            fmt(ggks.time_ms / flag.time_ms),
        ]);
    }
    emit(
        "fig12_inplace_radix",
        &["k", "flag_radix_ms", "ggks_inplace_ms", "speedup"],
        &rows,
    );
}
