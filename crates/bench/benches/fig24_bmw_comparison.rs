//! Figure 24: ratio of the fully-evaluated workload of BMW to the workload
//! of Dr. Top-k (delegate vector + concatenated vector), on ND and UD.

use bmw_baseline::{bmw_topk, BmwIndex};
use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let device = device();
    let mut rows = Vec::new();
    for dist in [Distribution::Normal, Distribution::Uniform] {
        let data = dataset(dist, n);
        let index = BmwIndex::from_scores(&data, 128);
        for k in k_sweep(2) {
            let bmw = bmw_topk(&index, k);
            let dr = run_drtopk_checked(&device, &data, k, &DrTopKConfig::default());
            let dr_workload =
                (dr.workload.delegate_vector_len + dr.workload.concatenated_len) as f64;
            let ratio = bmw.stats.fully_evaluated as f64 / dr_workload.max(1.0);
            rows.push(vec![
                dist.abbrev().into(),
                k.to_string(),
                bmw.stats.fully_evaluated.to_string(),
                (dr.workload.delegate_vector_len + dr.workload.concatenated_len).to_string(),
                fmt(ratio),
            ]);
        }
    }
    emit(
        "fig24_bmw_comparison",
        &[
            "dist",
            "k",
            "bmw_fully_evaluated",
            "drtopk_workload",
            "ratio",
        ],
        &rows,
    );
}
