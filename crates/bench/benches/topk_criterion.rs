//! Criterion micro-benchmarks: wall-clock cost of simulating Dr. Top-k and
//! the baselines at a fixed problem size. These measure the *simulator*
//! throughput (useful for tracking regressions in this repository); the
//! modeled GPU times reported by the figure benches are what reproduces the
//! paper.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use drtopk_core::{dr_topk, DrTopKConfig};
use gpu_sim::{Device, DeviceSpec};
use topk_baselines::{
    bitonic_topk, bucket_topk, radix_topk, BitonicConfig, BucketConfig, RadixConfig,
};

fn bench_topk(c: &mut Criterion) {
    let n = 1 << 18;
    let k = 1024;
    let data = topk_datagen::uniform(n, 42);
    let device = Device::new(DeviceSpec::v100s());

    let mut group = c.benchmark_group("topk_n18_k1024");
    group.sample_size(10);
    group.bench_function("dr_topk_default", |b| {
        b.iter_batched(
            || (),
            |_| dr_topk(&device, &data, k, &DrTopKConfig::default()),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("baseline_radix", |b| {
        b.iter(|| radix_topk(&device, &data, k, &RadixConfig::default()))
    });
    group.bench_function("baseline_bucket", |b| {
        b.iter(|| bucket_topk(&device, &data, k, &BucketConfig::default()))
    });
    group.bench_function("baseline_bitonic", |b| {
        b.iter(|| bitonic_topk(&device, &data, k, &BitonicConfig::default()))
    });
    group.finish();

    let mut group = c.benchmark_group("delegate_construction_n18");
    group.sample_size(10);
    group.bench_function("warp_shuffle_a8_b2", |b| {
        b.iter(|| {
            drtopk_core::build_delegate_vector(
                &device,
                &data,
                8,
                2,
                drtopk_core::ConstructionMethod::WarpShuffle,
            )
        })
    });
    group.bench_function("coalesced_shared_a4_b2", |b| {
        b.iter(|| {
            drtopk_core::build_delegate_vector(
                &device,
                &data,
                4,
                2,
                drtopk_core::ConstructionMethod::CoalescedShared,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
