//! Recall-targeted approximate top-k vs exact Dr. Top-k: modeled
//! global-memory transactions and measured recall at recall targets
//! {0.99, 0.95, 0.90}, k ∈ {32, 256}, over Uniform and Zipf corpora.
//!
//! Two transaction comparisons are reported per cell:
//!
//! * **one-shot** — a single cold query, construction scan included. Both
//!   modes read the corpus once, so the approximate savings here are the
//!   exact pipeline's first-top-k + concatenation + second-top-k tail.
//! * **resident** — the marginal per-query cost when the corpus's
//!   delegate/candidate pass is already built (the engine's warm delegate
//!   cache, i.e. steady-state repeat traffic on an unchanged corpus). This
//!   is where the approximate mode shines: the exact pipeline still pays
//!   first top-k + concatenation + second top-k per query, while the
//!   approximate mode only selects over the tiny candidate vector — at
//!   `|V| = 2^26, k = 256, target 0.95` it moves well over 25% (in fact
//!   >90%) fewer transactions per query.
//!
//! Run with `DRTOPK_V_EXP=26` to reproduce the paper-scale claim.

use drtopk_bench_harness::*;
use drtopk_core::{
    build_delegate_vector, dr_topk_planned, measured_recall, DrTopKConfig, DrTopKResult,
    PlannedQuery,
};
use gpu_sim::KernelStats;
use topk_baselines::reference_topk;

fn transactions(s: &KernelStats) -> u64 {
    s.global_load_transactions + s.global_store_transactions
}

/// Cold one-shot run plus the corpus-resident marginal run of one plan.
fn run_both(
    device: &gpu_sim::Device,
    data: &[u32],
    k: usize,
    config: &DrTopKConfig,
) -> (DrTopKResult, DrTopKResult) {
    let planned = PlannedQuery::plan(data.len(), k, config);
    let cold = dr_topk_planned(device, data, None, &planned);
    let resident = if planned.use_delegates {
        let shared = build_delegate_vector(
            device,
            data,
            planned.alpha,
            planned.config.beta,
            planned.config.construction,
        );
        dr_topk_planned(device, data, Some(&shared), &planned)
    } else {
        cold.clone()
    };
    (cold, resident)
}

fn main() {
    let n = default_n();
    let device = device();
    let corpora: [(&str, Vec<u32>); 2] = [
        ("uniform", topk_datagen::uniform(n, seed())),
        (
            // a distinct seed: at the same seed the underlying per-position
            // draws — and therefore the top-k *positions* — would coincide
            // with the uniform corpus, hiding any distribution effect
            "zipf",
            topk_datagen::zipf(n, u32::MAX, topk_datagen::ZIPF_EXPONENT, seed() ^ 0x51BF),
        ),
    ];

    let mut rows = Vec::new();
    for (corpus_name, data) in &corpora {
        for &k in &[32usize, 256] {
            let exact_ref = reference_topk(data, k);
            let (exact_cold, exact_resident) = run_both(&device, data, k, &DrTopKConfig::default());
            assert_eq!(exact_cold.values, exact_ref, "exact must stay exact");
            for &target in &[0.99f64, 0.95, 0.90] {
                let cfg = DrTopKConfig::approx(target);
                let planned = PlannedQuery::plan(data.len(), k, &cfg);
                let (approx_cold, approx_resident) = run_both(&device, data, k, &cfg);
                let recall = measured_recall(&approx_cold.values, &exact_ref);
                let cold_saving = 1.0
                    - transactions(&approx_cold.stats) as f64
                        / transactions(&exact_cold.stats).max(1) as f64;
                let resident_saving = 1.0
                    - transactions(&approx_resident.stats) as f64
                        / transactions(&exact_resident.stats).max(1) as f64;
                println!(
                    "{corpus_name} n=2^{v} k={k} target={target}: recall {recall:.4} \
                     (predicted {predicted:.4}) | one-shot {ac} vs exact {ec} txns \
                     ({cs:.1}% fewer) | resident {ar} vs exact {er} txns ({rs:.1}% fewer)",
                    v = v_exp(),
                    predicted = planned.predicted_recall,
                    ac = transactions(&approx_cold.stats),
                    ec = transactions(&exact_cold.stats),
                    cs = cold_saving * 100.0,
                    ar = transactions(&approx_resident.stats),
                    er = transactions(&exact_resident.stats),
                    rs = resident_saving * 100.0,
                );
                rows.push(vec![
                    (*corpus_name).into(),
                    n.to_string(),
                    k.to_string(),
                    fmt(target),
                    fmt(planned.predicted_recall),
                    fmt(recall),
                    transactions(&exact_cold.stats).to_string(),
                    transactions(&approx_cold.stats).to_string(),
                    fmt(cold_saving),
                    transactions(&exact_resident.stats).to_string(),
                    transactions(&approx_resident.stats).to_string(),
                    fmt(resident_saving),
                    exact_cold.workload.delegate_vector_len.to_string(),
                    approx_cold.workload.delegate_vector_len.to_string(),
                ]);
                // the bench never reports numbers from a broken run
                assert_eq!(approx_cold.values.len(), k.min(data.len()));
                assert!(
                    recall >= target - 0.05,
                    "{corpus_name} k={k}: measured recall {recall} far below target {target}"
                );
                assert!(
                    resident_saving >= 0.25,
                    "{corpus_name} k={k} target={target}: corpus-resident saving \
                     {resident_saving:.3} must be at least 25%"
                );
            }
        }
    }
    emit(
        "approx_recall",
        &[
            "corpus",
            "n",
            "k",
            "target_recall",
            "predicted_recall",
            "measured_recall",
            "exact_oneshot_txns",
            "approx_oneshot_txns",
            "oneshot_saving",
            "exact_resident_txns",
            "approx_resident_txns",
            "resident_saving",
            "exact_delegate_len",
            "approx_candidates",
        ],
        &rows,
    );
}
