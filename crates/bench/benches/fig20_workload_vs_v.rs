//! Figure 20: workload (delegate vector, concatenated vector and their sum,
//! as fractions of |V|) vs the input size |V| at a fixed large k.

use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use topk_datagen::Distribution;

fn main() {
    let device = device();
    let k = 1usize << kmax_exp(); // the paper fixes k = 2^19 at |V| = 2^22..2^30
    let mut rows = Vec::new();
    for exp in (v_exp().saturating_sub(6))..=v_exp() {
        let n = 1usize << exp;
        let k = k.min(n / 4).max(1);
        let data = dataset(Distribution::Uniform, n);
        let r = run_drtopk_checked(&device, &data, k, &DrTopKConfig::default());
        let w = r.workload;
        rows.push(vec![
            n.to_string(),
            k.to_string(),
            fmt(w.delegate_vector_len as f64 / n as f64 * 100.0),
            fmt(w.concatenated_len as f64 / n as f64 * 100.0),
            fmt(w.workload_fraction() * 100.0),
        ]);
    }
    emit(
        "fig20_workload_vs_v",
        &["n", "k", "first_topk_pct", "second_topk_pct", "sum_pct"],
        &rows,
    );
}
