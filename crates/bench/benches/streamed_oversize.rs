//! Out-of-core streaming: double-buffered vs serial-reload modeled makespan
//! on corpora at 2× and 8× the **aggregate** capacity of the 2-device
//! cluster (`capacity_multiple` in the CSV/JSON is that aggregate multiple;
//! in single-device terms the corpora are 4× and 16× one device's memory).
//!
//! The distributed stage graph pays one host→device `ChunkLoad` per
//! non-resident sub-vector. Under the serial schedule each load waits for the
//! previous chunk's compute; under the double-buffered schedule chunk *i + 1*
//! transfers while chunk *i* computes, so the makespan drops by (up to) the
//! smaller of the two sides. Every cell self-verifies: both schedules must be
//! bit-identical to the CPU reference.
//!
//! Beyond the CSV every harness writes, this target records
//! `bench_results/streamed_oversize.json`; the committed
//! `streamed_oversize_baseline.json` is the trajectory-tracking reference.

use std::io::Write as _;

use drtopk_bench_harness::*;
use drtopk_core::{distributed_dr_topk_scheduled, DrTopKConfig, ReloadSchedule};
use gpu_sim::{DeviceSpec, GpuCluster};
use topk_baselines::reference_topk;

const DEVICES: usize = 2;
const K: usize = 256;

struct Cell {
    multiple: usize,
    n: usize,
    chunks: usize,
    serial_ms: f64,
    double_buffered_ms: f64,
    win_pct: f64,
    overlap_efficiency: f64,
    reload_ms: f64,
}

fn main() {
    // Scale the per-device capacity with the harness size so the trends
    // survive DRTOPK_V_EXP overrides; the corpus is `multiple ×` that.
    let capacity = (default_n() >> 5).max(1 << 14);
    let cluster = GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s());
    for d in cluster.devices() {
        d.set_capacity_elems(capacity);
    }

    let mut cells = Vec::new();
    for multiple in [2usize, 8] {
        let n = capacity * multiple * DEVICES;
        let data = topk_datagen::uniform(n, seed());
        let expected = reference_topk(&data, K);
        let serial = distributed_dr_topk_scheduled(
            &cluster,
            &data,
            K,
            &DrTopKConfig::default(),
            ReloadSchedule::Serial,
        );
        let db = distributed_dr_topk_scheduled(
            &cluster,
            &data,
            K,
            &DrTopKConfig::default(),
            ReloadSchedule::DoubleBuffered,
        );
        assert_eq!(serial.values, expected, "serial schedule must be exact");
        assert_eq!(
            db.values, expected,
            "double-buffered schedule must be exact"
        );
        cells.push(Cell {
            multiple,
            n,
            chunks: multiple * DEVICES,
            serial_ms: serial.total_ms,
            double_buffered_ms: db.total_ms,
            win_pct: (1.0 - db.total_ms / serial.total_ms) * 100.0,
            overlap_efficiency: db.stages.overlap_efficiency(),
            reload_ms: db.reload_overhead_ms,
        });
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.multiple.to_string(),
                c.n.to_string(),
                c.chunks.to_string(),
                fmt(c.serial_ms),
                fmt(c.double_buffered_ms),
                fmt(c.win_pct),
                fmt(c.overlap_efficiency),
                fmt(c.reload_ms),
            ]
        })
        .collect();
    emit(
        "streamed_oversize",
        &[
            "capacity_multiple",
            "n",
            "chunks",
            "serial_ms",
            "double_buffered_ms",
            "win_pct",
            "overlap_efficiency",
            "reload_ms",
        ],
        &rows,
    );

    // Baseline JSON for trajectory tracking (hand-rolled: no serde in the
    // offline workspace).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"capacity\": {capacity},\n  \"devices\": {DEVICES},\n  \"k\": {K},\n  \"seed\": {},\n  \"cells\": [\n",
        seed()
    ));
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"capacity_multiple\": {}, \"n\": {}, \"chunks\": {}, \"serial_ms\": {:.4}, \"double_buffered_ms\": {:.4}, \"win_pct\": {:.1}, \"overlap_efficiency\": {:.3}}}{}\n",
            c.multiple,
            c.n,
            c.chunks,
            c.serial_ms,
            c.double_buffered_ms,
            c.win_pct,
            c.overlap_efficiency,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("streamed_oversize.json");
    let mut file = std::fs::File::create(&path).expect("cannot create JSON file");
    file.write_all(json.as_bytes()).unwrap();
    println!("[written to {}]", path.display());
}
