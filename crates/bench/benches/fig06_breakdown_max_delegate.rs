//! Figure 6: time-consumption breakdown of Dr. Top-k (maximum delegate only,
//! no filtering) assisting radix top-k on the UD dataset.

use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use topk_datagen::Distribution;

fn main() {
    breakdown_sweep(
        "fig06_breakdown_max_delegate",
        |_k| DrTopKConfig::max_delegate_only(),
        Distribution::Uniform,
    );
}
