//! Figure 21: workload (delegate vector, concatenated vector, sum, as
//! fractions of |V|) vs k at the default |V|.

use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let data = dataset(Distribution::Uniform, n);
    let device = device();
    let mut rows = Vec::new();
    for k in k_sweep(2) {
        let r = run_drtopk_checked(&device, &data, k, &DrTopKConfig::default());
        let w = r.workload;
        rows.push(vec![
            k.to_string(),
            fmt(w.delegate_vector_len as f64 / n as f64 * 100.0),
            fmt(w.concatenated_len as f64 / n as f64 * 100.0),
            fmt(w.workload_fraction() * 100.0),
        ]);
    }
    emit(
        "fig21_workload_vs_k",
        &["k", "first_topk_pct", "second_topk_pct", "sum_pct"],
        &rows,
    );
}
