//! Figure 15: breakdown after the coalesced-load-to-shared / strided-compute
//! delegate construction optimization (Section 5.3).

use drtopk_bench_harness::*;
use drtopk_core::{ConstructionMethod, DrTopKConfig};
use topk_datagen::Distribution;

fn main() {
    breakdown_sweep(
        "fig15_breakdown_optimized",
        |_k| DrTopKConfig {
            construction: ConstructionMethod::Auto,
            ..DrTopKConfig::default()
        },
        Distribution::Uniform,
    );
}
