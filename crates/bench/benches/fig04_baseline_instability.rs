//! Figure 4: performance (in)stability of radix/bucket/bitonic top-k across
//! the UD / ND / CD distributions as k grows.

use drtopk_bench_harness::*;
use topk_baselines::BaselineAlgorithm;
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let device = device();
    let mut rows = Vec::new();
    for dist in Distribution::SYNTHETIC {
        let data = dataset(dist, n);
        for k in k_sweep(2) {
            for algo in BaselineAlgorithm::TOPK {
                let r = run_baseline_checked(&device, algo, &data, k);
                rows.push(vec![
                    dist.abbrev().to_string(),
                    k.to_string(),
                    algo.name().to_string(),
                    fmt(r.time_ms),
                ]);
            }
        }
    }
    emit(
        "fig04_baseline_instability",
        &["dist", "k", "algorithm", "time_ms"],
        &rows,
    );
}
