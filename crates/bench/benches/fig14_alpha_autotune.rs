//! Figure 14: performance of the Rule 4 auto-tuned α against the empirical
//! oracle α (found by sweeping α and taking the fastest).

use drtopk_bench_harness::*;
use drtopk_core::{auto_alpha, DrTopKConfig, PAPER_RULE4_CONST};
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let data = dataset(Distribution::Uniform, n);
    let device = device();
    let mut rows = Vec::new();
    for k in k_sweep(2) {
        let auto = auto_alpha(n, k, 2, PAPER_RULE4_CONST);
        let auto_time = run_drtopk_checked(
            &device,
            &data,
            k,
            &DrTopKConfig {
                alpha: Some(auto),
                ..DrTopKConfig::default()
            },
        )
        .time_ms;
        // oracle: sweep a window of α values around the model optimum
        let mut oracle_alpha = auto;
        let mut oracle_time = f64::INFINITY;
        for alpha in 2..(v_exp() - 1) {
            let t = run_drtopk_checked(
                &device,
                &data,
                k,
                &DrTopKConfig {
                    alpha: Some(alpha),
                    ..DrTopKConfig::default()
                },
            )
            .time_ms;
            if t < oracle_time {
                oracle_time = t;
                oracle_alpha = alpha;
            }
        }
        rows.push(vec![
            k.to_string(),
            auto.to_string(),
            fmt(auto_time),
            oracle_alpha.to_string(),
            fmt(oracle_time),
            fmt(auto_time / oracle_time),
        ]);
    }
    emit(
        "fig14_alpha_autotune",
        &[
            "k",
            "auto_alpha",
            "auto_ms",
            "oracle_alpha",
            "oracle_ms",
            "auto_over_oracle",
        ],
        &rows,
    );
}
